"""Corner cases across the file systems: deep paths, collisions,
multi-block directories, relative symlinks, rename edge semantics."""

import pytest

from repro.common.errors import Errno, FSError

from conftest import FS_FACTORIES


class TestDeepPaths:
    def test_ten_levels(self, any_fs):
        path = ""
        for i in range(10):
            path += f"/lvl{i}"
            any_fs.mkdir(path)
        any_fs.write_file(path + "/leaf", b"deep")
        assert any_fs.read_file(path + "/leaf") == b"deep"

    def test_component_through_file_is_enotdir(self, any_fs):
        any_fs.write_file("/plain", b"x")
        with pytest.raises(FSError) as e:
            any_fs.stat("/plain/below")
        assert e.value.errno in (Errno.ENOTDIR, Errno.ENOENT)

    def test_dot_and_dotdot_navigation(self, any_fs):
        any_fs.mkdir("/a")
        any_fs.mkdir("/a/b")
        any_fs.write_file("/a/b/f", b"nav")
        assert any_fs.read_file("/a/b/../b/./f") == b"nav"
        assert any_fs.read_file("/a/../a/b/f") == b"nav"
        assert any_fs.read_file("/../../a/b/f") == b"nav"


class TestBigDirectories:
    def test_directory_grows_past_one_block(self, any_fs):
        any_fs.mkdir("/big")
        names = [f"entry-{i:04d}" for i in range(80)]
        for n in names:
            any_fs.write_file(f"/big/{n}", b".")
        got = set(any_fs.getdirentries("/big")) - {".", ".."}
        assert got == set(names)
        # Lookups still resolve after growth.
        assert any_fs.stat("/big/entry-0077").size == 1

    def test_remove_from_big_directory(self, any_fs):
        any_fs.mkdir("/big")
        for i in range(80):
            any_fs.write_file(f"/big/e{i:03d}", b".")
        for i in range(0, 80, 2):
            any_fs.unlink(f"/big/e{i:03d}")
        got = set(any_fs.getdirentries("/big")) - {".", ".."}
        assert got == {f"e{i:03d}" for i in range(1, 80, 2)}


class TestSymlinkEdges:
    def test_relative_symlink_target(self, any_fs):
        any_fs.mkdir("/a")
        any_fs.write_file("/a/real", b"relative works")
        any_fs.symlink("real", "/a/lnk")  # target relative to /a
        assert any_fs.read_file("/a/lnk") == b"relative works"

    def test_symlink_chain(self, any_fs):
        any_fs.write_file("/end", b"chained")
        any_fs.symlink("/end", "/hop1")
        any_fs.symlink("/hop1", "/hop2")
        any_fs.symlink("/hop2", "/hop3")
        assert any_fs.read_file("/hop3") == b"chained"

    def test_symlink_to_directory_traversed(self, any_fs):
        any_fs.mkdir("/realdir")
        any_fs.write_file("/realdir/f", b"via dir link")
        any_fs.symlink("/realdir", "/dirlink")
        assert any_fs.read_file("/dirlink/f") == b"via dir link"

    def test_unlink_symlink_keeps_target(self, any_fs):
        any_fs.write_file("/t", b"target stays")
        any_fs.symlink("/t", "/l")
        any_fs.unlink("/l")
        assert any_fs.read_file("/t") == b"target stays"
        assert not any_fs.exists("/l")


class TestRenameEdges:
    def test_rename_empty_dir_over_empty_dir(self, any_fs):
        any_fs.mkdir("/src")
        any_fs.mkdir("/dst")
        any_fs.rename("/src", "/dst")
        assert not any_fs.exists("/src")
        assert any_fs.stat("/dst").is_dir

    def test_rename_dir_over_nonempty_dir_fails(self, any_fs):
        any_fs.mkdir("/src")
        any_fs.mkdir("/dst")
        any_fs.write_file("/dst/occupied", b"x")
        with pytest.raises(FSError) as e:
            any_fs.rename("/src", "/dst")
        assert e.value.errno is Errno.ENOTEMPTY

    def test_rename_file_over_dir_fails(self, any_fs):
        any_fs.write_file("/f", b"x")
        any_fs.mkdir("/d")
        with pytest.raises(FSError) as e:
            any_fs.rename("/f", "/d")
        assert e.value.errno is Errno.EISDIR

    def test_rename_dir_over_file_fails(self, any_fs):
        any_fs.mkdir("/d")
        any_fs.write_file("/f", b"x")
        with pytest.raises(FSError) as e:
            any_fs.rename("/d", "/f")
        assert e.value.errno is Errno.ENOTDIR

    def test_rename_same_existing_path_is_noop(self, any_fs):
        any_fs.write_file("/f", b"kept")
        any_fs.rename("/f", "/f")
        assert any_fs.read_file("/f") == b"kept"

    def test_rename_missing_onto_itself_fails(self, any_fs):
        with pytest.raises(FSError) as e:
            any_fs.rename("/ghost", "/ghost")
        assert e.value.errno is Errno.ENOENT

    def test_rename_hard_link_alias(self, any_fs):
        any_fs.write_file("/f", b"aliased")
        any_fs.link("/f", "/g")
        any_fs.rename("/f", "/g")  # g and f are the same inode
        assert any_fs.read_file("/g") == b"aliased"


class TestUnlinkEdges:
    def test_unlink_open_file_fd_semantics(self, any_fs):
        """Our simplified VFS drops data at unlink even with open fds,
        but the fd itself must stay valid for close."""
        from repro.vfs import O_RDONLY
        any_fs.write_file("/f", b"short-lived")
        fd = any_fs.open("/f", O_RDONLY)
        any_fs.unlink("/f")
        any_fs.close(fd)  # must not raise
        assert not any_fs.exists("/f")

    def test_unlink_missing(self, any_fs):
        with pytest.raises(FSError) as e:
            any_fs.unlink("/nope")
        assert e.value.errno is Errno.ENOENT

    def test_unlink_directory_is_eisdir(self, any_fs):
        any_fs.mkdir("/d")
        with pytest.raises(FSError) as e:
            any_fs.unlink("/d")
        assert e.value.errno is Errno.EISDIR


class TestNameCollisions:
    def test_many_names_with_common_prefixes(self, any_fs):
        """Exercises ReiserFS's hash-probe chains and everyone's entry
        packing with similar names."""
        any_fs.mkdir("/c")
        names = [f"aaaaaaa{i}" for i in range(24)] + ["aaaaaaa", "aaaaaab"]
        for n in names:
            any_fs.write_file(f"/c/{n}", n.encode())
        for n in names:
            assert any_fs.read_file(f"/c/{n}") == n.encode()
        any_fs.unlink("/c/aaaaaaa")
        assert not any_fs.exists("/c/aaaaaaa")
        assert any_fs.exists("/c/aaaaaab")


class TestOutOfSpace:
    @pytest.mark.parametrize("name", ["ext3", "jfs", "ntfs"])
    def test_enospc_then_recoverable(self, name):
        disk, fs = FS_FACTORIES[name]()
        fs.mount()
        bs = fs.statfs().block_size
        written = []
        with pytest.raises(FSError) as e:
            for i in range(10_000):
                fs.write_file(f"/fill{i:04d}", b"F" * (8 * bs))
                written.append(i)
        assert e.value.errno is Errno.ENOSPC
        # Delete some and write again: the volume recovers.
        for i in written[:3]:
            fs.unlink(f"/fill{i:04d}")
        fs.write_file("/after", b"room again")
        assert fs.read_file("/after") == b"room again"
