"""The benchmark substrate: feature masks, workload determinism, the
variant runner, and the space analyzer."""

import pytest

from repro.bench import (
    BENCHMARKS,
    BenchScale,
    PAPER_BASELINE_SECONDS,
    TABLE6_PAPER,
    VARIANT_ORDER,
    analyze,
    analyze_all,
    features_mask,
    run_variant,
    variant_label,
)
from repro.bench.harness import BENCH_BASE_CONFIG, Table6Run, VariantResult, run_table6
from repro.bench.space import PROFILES, VolumeProfile
from repro.fs.ext3.structures import (
    FEAT_DATA_CSUM,
    FEAT_META_CSUM,
    FEAT_META_REPLICA,
    FEAT_TXN_CSUM,
)


class TestVariantTable:
    def test_thirty_two_variants(self):
        assert len(VARIANT_ORDER) == 32
        assert len(set(VARIANT_ORDER)) == 32
        assert VARIANT_ORDER[0] == ()
        assert VARIANT_ORDER[-1] == ("Mc", "Mr", "Dc", "Dp", "Tc")

    def test_ordered_by_cardinality(self):
        sizes = [len(v) for v in VARIANT_ORDER]
        assert sizes == sorted(sizes)

    def test_paper_data_complete(self):
        for bench, rows in TABLE6_PAPER.items():
            assert len(rows) == 32, bench
            assert rows[0] == 1.00
        # The headline paper numbers are in place.
        assert TABLE6_PAPER["TPCB"][VARIANT_ORDER.index(("Tc",))] == 0.80
        assert TABLE6_PAPER["Post"][VARIANT_ORDER.index(("Mr",))] == 1.18
        assert TABLE6_PAPER["TPCB"][-1] == 1.21

    def test_features_mask(self):
        assert features_mask(()) == 0
        assert features_mask(("Mc",)) == FEAT_META_CSUM
        assert features_mask(("Mc", "Tc")) == FEAT_META_CSUM | FEAT_TXN_CSUM
        assert features_mask(("Mr", "Dc")) == FEAT_META_REPLICA | FEAT_DATA_CSUM
        with pytest.raises(KeyError):
            features_mask(("Zz",))

    def test_variant_label(self):
        assert variant_label(()) == "(baseline)"
        assert variant_label(("Mc", "Tc")) == "Mc Tc"

    def test_paper_baselines_recorded(self):
        assert set(PAPER_BASELINE_SECONDS) == {"SSH", "Web", "Post", "TPCB"}


TINY = BenchScale(
    ssh_sources=8, ssh_objects=6, ssh_dirs=2,
    web_files=6, web_requests=12,
    post_files=10, post_txns=12,
    tpcb_accounts_blocks=8, tpcb_txns=6,
)


class TestRunVariant:
    def test_each_bench_produces_time_and_io(self):
        for bench in BENCHMARKS:
            r = run_variant(bench, (), scale=TINY)
            assert r.seconds > 0, bench
            assert r.reads + r.writes > 0 or bench == "Web", bench

    def test_deterministic(self):
        a = run_variant("Post", ("Mc",), scale=TINY)
        b = run_variant("Post", ("Mc",), scale=TINY)
        assert a.seconds == b.seconds
        assert (a.reads, a.writes) == (b.reads, b.writes)

    def test_features_change_io_profile(self):
        base = run_variant("Post", (), scale=TINY)
        mr = run_variant("Post", ("Mr",), scale=TINY)
        assert mr.writes > base.writes  # replicas cost extra writes

    def test_tc_reduces_tpcb_time(self):
        base = run_variant("TPCB", (), scale=TINY)
        tc = run_variant("TPCB", ("Tc",), scale=TINY)
        assert tc.seconds < base.seconds

    def test_run_table6_partial(self):
        run = run_table6(benches=["Web"], variants=[(), ("Tc",)], scale=TINY)
        norm = run.normalized("Web")
        assert norm[0] == 1.0
        assert 0.9 < norm[1] < 1.1

    def test_render_contains_paper_columns(self):
        run = run_table6(benches=["Web"], variants=list(VARIANT_ORDER), scale=TINY)
        text = run.render()
        assert "Web paper" in text and "(baseline)" in text


class TestSpaceAnalyzer:
    def test_profiles_cover_small_and_large_files(self):
        means = [p.mean_file_bytes for p in PROFILES]
        assert max(means) / min(means) > 4

    def test_analysis_deterministic(self):
        a = analyze(PROFILES[0])
        b = analyze(PROFILES[0])
        assert a == b

    def test_parity_tracks_file_count(self):
        small = analyze(VolumeProfile("s", 1000, 4 * 1024, 0.05))
        large = analyze(VolumeProfile("l", 1000, 4 * 1024 * 1024, 0.05))
        assert small.parity_fraction > large.parity_fraction

    def test_fractions_positive(self):
        for r in analyze_all():
            assert 0 < r.meta_redundancy_fraction < 0.25
            assert 0 < r.parity_fraction < 0.25
