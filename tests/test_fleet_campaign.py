"""Campaign aggregation and schedule-independence (repro.fleet.campaign)."""

from __future__ import annotations

import pytest

from repro.disk.disk import DiskStats
from repro.fleet.campaign import OUTCOMES, CellResult, run_fleet
from repro.fleet.rates import ZERO_RATES
from repro.fleet.spec import (
    CROSSCHECK_GEOMETRY,
    CROSSCHECK_POLICY,
    FleetSpec,
    GeometrySpec,
    PolicySpec,
)
from repro.obs.events import FleetTrialEvent
from repro.obs.metrics import validate_snapshot

SMALL = FleetSpec(
    trials=3, num_blocks=32, mission_hours=2000.0, seed=7,
    geometries=(GeometrySpec("single", "single", 1),
                GeometrySpec("mirror2", "mirror", 2),
                GeometrySpec("parity4", "parity", 4)),
    policies=(PolicySpec("baseline"),
              PolicySpec("no-scrub", scrub_interval_hours=0.0)),
)


class TestScheduleIndependence:
    def test_jobs_width_does_not_change_digest(self):
        serial = run_fleet(SMALL, jobs=1)
        fanned = run_fleet(SMALL, jobs=2)
        assert serial.digest == fanned.digest
        assert serial.matrix() == fanned.matrix()
        assert serial.render() == fanned.render()
        assert [(e.geometry, e.policy, e.trial, e.outcome)
                for e in serial.events] == \
            [(e.geometry, e.policy, e.trial, e.outcome)
             for e in fanned.events]

    def test_seed_changes_digest(self):
        a = run_fleet(SMALL, jobs=1)
        b = run_fleet(SMALL.scaled(seed=8), jobs=1)
        assert a.digest != b.digest


class TestAggregation:
    def test_matrix_covers_every_cell(self):
        report = run_fleet(SMALL, jobs=1)
        matrix = report.matrix()
        for geometry, policy in SMALL.cells():
            assert policy.name in matrix[geometry.label]
        # Every cell saw every trial, plus the cross-check cell.
        assert report.trials == len(SMALL.cells()) * SMALL.trials
        assert all(cell.trials == SMALL.trials
                   for cell in report.cells.values())

    def test_event_stream_is_one_typed_event_per_trial(self):
        report = run_fleet(SMALL, jobs=1)
        events = list(report.events)
        assert len(events) == report.trials
        assert all(isinstance(e, FleetTrialEvent) for e in events)
        assert all(e.outcome in OUTCOMES for e in events)

    def test_crosscheck_attached(self):
        report = run_fleet(SMALL, jobs=1)
        cc = report.crosscheck
        assert cc is not None
        assert cc["trials"] == SMALL.trials
        cell = report.cell(CROSSCHECK_GEOMETRY.label, CROSSCHECK_POLICY.name)
        assert cc["simulated_loss_probability"] == \
            round(cell.loss_probability, 6)

    def test_to_record_round_trips_json(self):
        import json

        report = run_fleet(SMALL, jobs=1)
        record = json.loads(json.dumps(report.to_record()))
        assert record["trials"] == report.trials
        assert record["matrix"] == report.matrix()


class TestEdgeCases:
    def test_empty_fleet(self):
        spec = SMALL.scaled(geometries=(), policies=(), crosscheck=False)
        report = run_fleet(spec, jobs=1)
        assert report.trials == 0
        assert report.cells == {}
        assert report.crosscheck is None
        # Digest of zero trials is still deterministic.
        assert report.digest == run_fleet(spec, jobs=2).digest

    def test_zero_rates_all_survive(self):
        spec = SMALL.scaled(rates=ZERO_RATES, crosscheck=False)
        report = run_fleet(spec, jobs=1)
        assert all(cell.outcomes["survived"] == cell.trials
                   for cell in report.cells.values())
        assert all(value == 0.0
                   for row in report.matrix().values()
                   for value in row.values())


class TestMetrics:
    def test_snapshot_validates(self):
        report = run_fleet(SMALL, jobs=1)
        snapshot = report.metrics().snapshot()
        assert validate_snapshot(snapshot) == []

    def test_trials_total_matches(self):
        report = run_fleet(SMALL, jobs=1)
        snapshot = report.metrics().snapshot()
        total = sum(
            counter["value"] for counter in snapshot["counters"]
            if counter["name"] == "repro_fleet_trials_total")
        assert total == report.trials


class TestIncidents:
    def test_every_terminal_trial_maps_to_one_incident(self):
        report = run_fleet(SMALL, jobs=1)
        terminal = sum(
            cell.outcomes["detected-loss"] + cell.outcomes["silent-loss"]
            + cell.outcomes["stopped"] for cell in report.cells.values())
        assert terminal == len(report.incidents) > 0
        keys = {(i.geometry, i.policy, i.trial) for i in report.incidents}
        assert len(keys) == len(report.incidents)

    def test_incident_digest_is_jobs_invariant(self):
        serial = run_fleet(SMALL, jobs=1)
        fanned = run_fleet(SMALL, jobs=2)
        assert serial.incident_digest == fanned.incident_digest
        assert serial.incident_digest

    def test_cause_refs_resolve_against_retained_streams(self):
        from repro.obs.trace import resolve_ref

        report = run_fleet(SMALL, jobs=1)
        for incident in report.incidents:
            assert incident.stream_label in report.streams
            for cause in incident.causes:
                event = resolve_ref(cause.ref, report.streams)
                assert event.tag == cause.tag

    def test_cells_count_incident_modes(self):
        report = run_fleet(SMALL, jobs=1)
        for (geometry, policy), cell in report.cells.items():
            expected = sum(1 for i in report.incidents
                           if (i.geometry, i.policy) == (geometry, policy))
            assert sum(cell.incident_modes.values()) == expected

    def test_incident_summary_lines(self):
        report = run_fleet(SMALL, jobs=1)
        summary = report.incident_summary()
        assert summary
        for line in summary:
            assert " incidents, top " in line

    def test_series_fold_into_the_registry(self):
        report = run_fleet(SMALL, jobs=1)
        snapshot = report.metrics().snapshot()
        names = {entry["name"] for entry in snapshot["timeseries"]}
        assert "repro_fleet_degraded_members" in names
        assert validate_snapshot(snapshot) == []


class TestCampaignReport:
    def test_schema_valid_and_self_consistent(self):
        from repro.obs.metrics import schema_root, validate_json

        report = run_fleet(SMALL, jobs=1)
        body = report.campaign_report()
        assert validate_json(
            body, schema_root() / "campaign_report.schema.json") == []
        assert body["schema"] == "repro-campaign-report/1"
        assert body["incident_digest"] == report.incident_digest
        assert body["outcome_digest"] == report.digest
        assert len(body["incidents"]) == len(report.incidents)
        assert body["timeseries"]

    def test_profile_attached_only_when_requested(self):
        spec = SMALL.scaled(trials=1, crosscheck=False)
        plain = run_fleet(spec, jobs=1)
        assert plain.profile is None
        profiled = run_fleet(spec, jobs=1, profile=True)
        assert profiled.profile
        assert profiled.digest == plain.digest
        body = profiled.campaign_report()
        assert "profile" in body


class TestCellResult:
    def test_probabilities(self):
        cell = CellResult("g", "p")
        assert cell.loss_probability == 0.0
        cell.outcomes["detected-loss"] = 3
        cell.outcomes["silent-loss"] = 1
        cell.outcomes["survived"] = 4
        cell.outcomes["stopped"] = 2
        cell.trials = 10
        assert cell.losses == 4
        assert cell.loss_probability == pytest.approx(0.4)
        assert cell.stop_probability == pytest.approx(0.2)


class TestDiskStatsMerge:
    def _stats(self, n: int) -> DiskStats:
        s = DiskStats()
        s.reads = n
        s.writes = 2 * n
        s.bytes_read = 512 * n
        s.bytes_written = 1024 * n
        s.seeks = 3 * n
        s.busy_time_s = 0.5 * n
        return s

    def test_merge_accumulates_and_returns_self(self):
        a, b = self._stats(1), self._stats(2)
        out = a.merge(b)
        assert out is a
        assert (a.reads, a.writes, a.seeks) == (3, 6, 9)
        assert (a.bytes_read, a.bytes_written) == (1536, 3072)
        assert a.busy_time_s == pytest.approx(1.5)

    def test_merge_is_associative(self):
        xs = [self._stats(n) for n in (1, 2, 3)]
        ys = [self._stats(n) for n in (1, 2, 3)]
        left = DiskStats().merge(xs[0]).merge(xs[1]).merge(xs[2])
        right = DiskStats().merge(ys[0].merge(ys[1].merge(ys[2])))
        assert vars(left) == vars(right)
