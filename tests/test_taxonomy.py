"""Units for the IRON taxonomy: levels, policy matrices, rendering."""

import pytest

from repro.taxonomy import (
    Detection,
    FAULT_CLASSES,
    PolicyMatrix,
    PolicyObservation,
    Recovery,
    relative_frequency_marks,
    render_detection_table,
    render_full_figure,
    render_key,
    render_matrix,
    render_recovery_table,
)


class TestLevels:
    def test_all_paper_detection_levels_present(self):
        assert {d.value for d in Detection} == {
            "D_zero", "D_errorcode", "D_sanity", "D_redundancy"}

    def test_all_paper_recovery_levels_present(self):
        assert {r.value for r in Recovery} == {
            "R_zero", "R_propagate", "R_stop", "R_guess",
            "R_retry", "R_repair", "R_remap", "R_redundancy"}

    def test_symbols_match_figure_key(self):
        assert Detection.ERROR_CODE.symbol == "-"
        assert Detection.SANITY.symbol == "|"
        assert Detection.REDUNDANCY.symbol == "\\"
        assert Recovery.RETRY.symbol == "/"
        assert Recovery.STOP.symbol == "|"
        assert Recovery.PROPAGATE.symbol == "-"

    def test_tables_render(self):
        t1 = render_detection_table()
        t2 = render_recovery_table()
        assert "Assumes disk works" in t1
        assert "Could be wrong; failure hidden" in t2


def _matrix():
    m = PolicyMatrix(fs_name="toyfs", block_types=["inode", "data"],
                     workloads=["read", "write"])
    m.put("read-failure", "inode", "read",
          PolicyObservation.of({Detection.ERROR_CODE},
                               {Recovery.PROPAGATE, Recovery.STOP}))
    m.put("write-failure", "data", "write",
          PolicyObservation.of({Detection.ZERO}, {Recovery.ZERO}))
    m.mark_not_applicable("corruption", "inode", "write")
    return m


class TestPolicyMatrix:
    def test_put_get(self):
        m = _matrix()
        obs = m.get("read-failure", "inode", "read")
        assert Recovery.STOP in obs.recovery
        assert m.get("read-failure", "data", "read") is None

    def test_validation(self):
        m = _matrix()
        with pytest.raises(ValueError):
            m.put("bogus-class", "inode", "read", PolicyObservation.of())
        with pytest.raises(ValueError):
            m.put("corruption", "nonesuch", "read", PolicyObservation.of())
        with pytest.raises(ValueError):
            m.put("corruption", "inode", "nonesuch", PolicyObservation.of())

    def test_observation_symbols_superimpose(self):
        obs = PolicyObservation.of({Detection.ERROR_CODE, Detection.SANITY}, set())
        assert sorted(obs.detection_symbols()) == ["-", "|"]

    def test_is_zero(self):
        assert PolicyObservation.of({Detection.ZERO}, {Recovery.ZERO}).is_zero()
        assert not PolicyObservation.of({Detection.ERROR_CODE}, set()).is_zero()

    def test_coverage(self):
        m = _matrix()
        covered, total = m.coverage()
        assert (covered, total) == (1, 2)

    def test_technique_counts(self):
        counts = _matrix().technique_counts()
        assert counts[Recovery.STOP] == 1
        assert counts[Detection.ZERO] == 1

    def test_fault_classes_constant(self):
        assert FAULT_CLASSES == ("read-failure", "write-failure", "corruption")


class TestRendering:
    def test_panel(self):
        text = render_matrix(_matrix(), "detection", "read-failure")
        assert "toyfs" in text
        assert "inode" in text

    def test_full_figure_has_all_panels_and_key(self):
        text = render_full_figure(_matrix())
        assert text.count("Detection") >= 3
        assert text.count("Recovery") >= 3
        assert "Key for Detection" in text
        assert "Workloads" in text

    def test_render_validation(self):
        with pytest.raises(ValueError):
            render_matrix(_matrix(), "bogus", "read-failure")
        with pytest.raises(ValueError):
            render_matrix(_matrix(), "detection", "bogus")

    def test_key_mentions_zero(self):
        assert "D_zero" in render_key()


class TestFrequencyMarks:
    def test_thresholds(self):
        counts = {Detection.ERROR_CODE: 60, Detection.SANITY: 30,
                  Recovery.RETRY: 10, Recovery.GUESS: 1, Recovery.REPAIR: 0}
        marks = relative_frequency_marks(counts, 100)
        assert marks[Detection.ERROR_CODE] == "****"
        assert marks[Detection.SANITY] == "***"
        assert marks[Recovery.RETRY] == "**"
        assert marks[Recovery.GUESS] == "*"
        assert Recovery.REPAIR not in marks

    def test_empty_total(self):
        assert relative_frequency_marks({Detection.SANITY: 5}, 0) == {}
