"""Per-FS fingerprinting adapters: figure rows, corruptors, oracles."""

import pytest

from repro.disk import make_disk
from repro.fingerprint.adapters import (
    ADAPTERS,
    ext3_field_corruptor,
    jfs_field_corruptor,
    make_ext3_adapter,
    make_ixt3_adapter,
    make_jfs_adapter,
    make_ntfs_adapter,
    make_reiserfs_adapter,
    ntfs_field_corruptor,
    reiserfs_field_corruptor,
)


ALL_MAKERS = [make_ext3_adapter, make_reiserfs_adapter, make_jfs_adapter,
              make_ntfs_adapter, make_ixt3_adapter]


class TestAdapterRegistry:
    def test_all_five_registered(self):
        bases = {"ext3", "reiserfs", "jfs", "ntfs", "ixt3"}
        assert bases <= set(ADAPTERS)
        # Every other key is an array-backed variant of a base.
        for key in set(ADAPTERS) - bases:
            base, _, spec = key.partition("@")
            assert base in bases and spec, key

    @pytest.mark.parametrize("make", ALL_MAKERS)
    def test_figure_rows_are_known_block_types(self, make):
        adapter = make()
        known = set(adapter.make_fs(adapter.build_device()).BLOCK_TYPES)
        for row in adapter.figure_block_types:
            assert row in known, row

    @pytest.mark.parametrize("make", ALL_MAKERS)
    def test_fresh_volume_mounts(self, make):
        adapter = make()
        disk = adapter.build_device()
        adapter.mkfs(disk)
        fs = adapter.make_fs(disk)
        fs.mount()
        assert fs.getdirentries("/") == [".", ".."]
        fs.unmount()

    @pytest.mark.parametrize("make", ALL_MAKERS)
    def test_oracle_labels_static_regions(self, make):
        adapter = make()
        disk = adapter.build_device()
        adapter.mkfs(disk)
        fs = adapter.make_fs(disk)
        fs.mount()
        census = {}
        for b in range(disk.num_blocks):
            t = fs.block_type(b)
            if t:
                census[t] = census.get(t, 0) + 1
        # Every FS labels its superblock-equivalent and its journal.
        assert any(k in census for k in ("super", "boot"))
        assert any(k.startswith("j-") or k == "logfile" for k in census)

    def test_ntfs_adapter_skips_recovery_workloads(self):
        adapter = make_ntfs_adapter()
        assert "s" not in adapter.workload_keys
        assert "t" not in adapter.workload_keys

    def test_ixt3_declares_redundancy_types(self):
        adapter = make_ixt3_adapter()
        assert set(adapter.redundancy_types) == {"replica", "parity"}
        assert make_ext3_adapter().redundancy_types == []
        assert make_jfs_adapter().redundancy_types == ["super"]


CORRUPTORS = {
    "ext3": (ext3_field_corruptor,
             ["inode", "dir", "indirect", "bitmap", "super", "j-desc", "data"]),
    "reiserfs": (reiserfs_field_corruptor,
                 ["stat item", "dir item", "indirect", "bitmap", "super",
                  "j-commit", "data", "root"]),
    "jfs": (jfs_field_corruptor,
            ["inode", "dir", "internal", "bmap", "imap", "super",
             "aggr-inode", "j-data", "data"]),
    "ntfs": (ntfs_field_corruptor,
             ["MFT", "directory", "volume-bitmap", "logfile", "boot", "data"]),
}


class TestFieldCorruptors:
    @pytest.mark.parametrize("name", sorted(CORRUPTORS))
    def test_preserves_block_size(self, name):
        corruptor, types = CORRUPTORS[name]
        payload = bytes((i * 7) % 256 for i in range(1024))
        for btype in types:
            out = corruptor(payload, btype)
            assert len(out) == len(payload), (name, btype)

    @pytest.mark.parametrize("name", sorted(CORRUPTORS))
    def test_actually_changes_the_block(self, name):
        corruptor, types = CORRUPTORS[name]
        payload = bytes((i * 7) % 256 for i in range(1024))
        for btype in types:
            assert corruptor(payload, btype) != payload, (name, btype)

    def test_ext3_inode_corruptor_leaves_free_slots_alone(self):
        from repro.fs.ext3.structures import Inode, patch_inode_block
        from repro.fs.ext3.config import INODE_SIZE
        raw = bytearray(1024)
        live = Inode(mode=0o100644, links=1, size=10)
        raw = bytearray(patch_inode_block(bytes(raw), 0, live))
        out = ext3_field_corruptor(bytes(raw), "inode")
        # The allocated slot changed; the free slots are untouched.
        assert out[:INODE_SIZE] != bytes(raw[:INODE_SIZE])
        assert out[INODE_SIZE:] == bytes(raw[INODE_SIZE:])
