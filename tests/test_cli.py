"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCLI:
    def test_taxonomy(self, capsys):
        assert main(["taxonomy"]) == 0
        out = capsys.readouterr().out
        assert "D_errorcode" in out and "R_redundancy" in out

    def test_space(self, capsys):
        assert main(["space"]) == 0
        out = capsys.readouterr().out
        assert "parity" in out and "%" in out

    def test_fingerprint_subset(self, capsys):
        assert main(["fingerprint", "ext3", "--workloads", "g"]) == 0
        out = capsys.readouterr().out
        assert "Detection" in out and "fault-injection tests" in out

    def test_fingerprint_unknown_fs(self, capsys):
        assert main(["fingerprint", "fat32"]) == 2
        assert "unknown file system" in capsys.readouterr().err

    def test_fsck_demo_repairs(self, capsys):
        assert main(["fsck-demo"]) == 0
        out = capsys.readouterr().out
        assert "problems found" in out
        assert out.rstrip().endswith("fsck: clean")

    def test_table6_quick_single_bench(self, capsys):
        assert main(["table6", "--quick", "--benches", "Web"]) == 0
        out = capsys.readouterr().out
        assert "(baseline)" in out
        assert "Mc Mr Dc Dp Tc" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
