"""The command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def bench_json(tmp_path, monkeypatch):
    """Redirect the CLI's timing records away from the repo root."""
    target = tmp_path / "BENCH_fingerprint.json"
    monkeypatch.setenv("REPRO_BENCH_JSON", str(target))
    return target


class TestCLI:
    def test_taxonomy(self, capsys):
        assert main(["taxonomy"]) == 0
        out = capsys.readouterr().out
        assert "D_errorcode" in out and "R_redundancy" in out

    def test_space(self, capsys):
        assert main(["space"]) == 0
        out = capsys.readouterr().out
        assert "parity" in out and "%" in out

    def test_fingerprint_subset(self, capsys):
        assert main(["fingerprint", "ext3", "--workloads", "g"]) == 0
        out = capsys.readouterr().out
        assert "Detection" in out and "fault-injection tests" in out

    def test_fingerprint_writes_bench_json(self, capsys, bench_json):
        assert main(["fingerprint", "ext3", "--workloads", "ab"]) == 0
        assert "timing written to" in capsys.readouterr().out
        data = json.loads(bench_json.read_text())
        entry = data["entries"]["fingerprint_ext3"]
        assert entry["jobs"] == 1 and entry["total_cells"] > 0
        assert set(entry["workloads"]) == {"a", "b"}

    def test_fingerprint_parallel_jobs(self, capsys, bench_json):
        assert main(["fingerprint", "ext3", "--workloads", "ab",
                     "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "fault-injection tests" in out
        data = json.loads(bench_json.read_text())
        assert data["entries"]["fingerprint_ext3"]["jobs"] == 2

    def test_fingerprint_no_bench_json(self, capsys, bench_json):
        assert main(["fingerprint", "ext3", "--workloads", "g",
                     "--no-bench-json"]) == 0
        assert "timing written" not in capsys.readouterr().out
        assert not bench_json.exists()

    def test_fingerprint_unknown_fs(self, capsys):
        assert main(["fingerprint", "fat32"]) == 2
        assert "unknown file system" in capsys.readouterr().err

    def test_fsck_demo_repairs(self, capsys):
        assert main(["fsck-demo"]) == 0
        out = capsys.readouterr().out
        assert "problems found" in out
        assert out.rstrip().endswith("fsck: clean")

    def test_table6_quick_single_bench(self, capsys):
        assert main(["table6", "--quick", "--benches", "Web"]) == 0
        out = capsys.readouterr().out
        assert "(baseline)" in out
        assert "Mc Mr Dc Dp Tc" in out

    def test_trace_writes_chrome_json_and_metrics(self, capsys, tmp_path):
        trace_out = tmp_path / "t.json"
        metrics_out = tmp_path / "m.json"
        assert main(["trace", "ext3", "--workload", "creat",
                     "-o", str(trace_out), "--metrics-out",
                     str(metrics_out)]) == 0
        out = capsys.readouterr().out
        assert "span-tree digest:" in out
        doc = json.loads(trace_out.read_text())
        assert doc["traceEvents"]
        assert doc["otherData"]["span_tree_digest"]
        snap = json.loads(metrics_out.read_text())
        assert snap["schema"] == "repro-metrics/1"
        assert metrics_out.with_suffix(".prom").read_text().startswith("# ")

    def test_trace_list_and_unknown_fs(self, capsys):
        assert main(["trace", "--list"]) == 0
        assert "creat" in capsys.readouterr().out
        assert main(["trace", "fat32"]) == 2
        assert "unknown file system" in capsys.readouterr().err

    def test_fingerprint_trace_and_metrics_flags(self, capsys, tmp_path,
                                                 bench_json):
        trace_out = tmp_path / "t.json"
        metrics_out = tmp_path / "m.json"
        assert main(["fingerprint", "ext3", "--workloads", "a",
                     "--trace", "--trace-out", str(trace_out),
                     "--metrics", "--metrics-out", str(metrics_out)]) == 0
        out = capsys.readouterr().out
        assert "span-tree digest:" in out
        assert json.loads(trace_out.read_text())["traceEvents"]
        entry = json.loads(bench_json.read_text())["entries"]["fingerprint_ext3"]
        assert entry["span_digest"]
        assert entry["metrics"]["schema"] == "repro-metrics/1"

    def test_crash_trace_flag(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CRASH_JSON",
                           str(tmp_path / "BENCH_crash.json"))
        trace_out = tmp_path / "c.json"
        assert main(["crash", "ext3", "--workload", "creat",
                     "--trace", "--trace-out", str(trace_out)]) == 0
        assert "span-tree digest:" in capsys.readouterr().out
        assert json.loads(trace_out.read_text())["traceEvents"]
        entry = json.loads(
            (tmp_path / "BENCH_crash.json").read_text()
        )["entries"]["crash_ext3_creat_j1"]
        assert entry["span_digest"]

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
