"""The command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def bench_json(tmp_path, monkeypatch):
    """Redirect the CLI's timing records away from the repo root."""
    target = tmp_path / "BENCH_fingerprint.json"
    monkeypatch.setenv("REPRO_BENCH_JSON", str(target))
    return target


class TestCLI:
    def test_taxonomy(self, capsys):
        assert main(["taxonomy"]) == 0
        out = capsys.readouterr().out
        assert "D_errorcode" in out and "R_redundancy" in out

    def test_space(self, capsys):
        assert main(["space"]) == 0
        out = capsys.readouterr().out
        assert "parity" in out and "%" in out

    def test_fingerprint_subset(self, capsys):
        assert main(["fingerprint", "ext3", "--workloads", "g"]) == 0
        out = capsys.readouterr().out
        assert "Detection" in out and "fault-injection tests" in out

    def test_fingerprint_writes_bench_json(self, capsys, bench_json):
        assert main(["fingerprint", "ext3", "--workloads", "ab"]) == 0
        assert "timing written to" in capsys.readouterr().out
        data = json.loads(bench_json.read_text())
        entry = data["entries"]["fingerprint_ext3"]
        assert entry["jobs"] == 1 and entry["total_cells"] > 0
        assert set(entry["workloads"]) == {"a", "b"}

    def test_fingerprint_parallel_jobs(self, capsys, bench_json):
        assert main(["fingerprint", "ext3", "--workloads", "ab",
                     "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "fault-injection tests" in out
        data = json.loads(bench_json.read_text())
        assert data["entries"]["fingerprint_ext3"]["jobs"] == 2

    def test_fingerprint_no_bench_json(self, capsys, bench_json):
        assert main(["fingerprint", "ext3", "--workloads", "g",
                     "--no-bench-json"]) == 0
        assert "timing written" not in capsys.readouterr().out
        assert not bench_json.exists()

    def test_fingerprint_unknown_fs(self, capsys):
        assert main(["fingerprint", "fat32"]) == 2
        assert "unknown file system" in capsys.readouterr().err

    def test_fsck_demo_repairs(self, capsys):
        assert main(["fsck-demo"]) == 0
        out = capsys.readouterr().out
        assert "problems found" in out
        assert out.rstrip().endswith("fsck: clean")

    def test_table6_quick_single_bench(self, capsys):
        assert main(["table6", "--quick", "--benches", "Web"]) == 0
        out = capsys.readouterr().out
        assert "(baseline)" in out
        assert "Mc Mr Dc Dp Tc" in out

    def test_trace_writes_chrome_json_and_metrics(self, capsys, tmp_path):
        trace_out = tmp_path / "t.json"
        metrics_out = tmp_path / "m.json"
        assert main(["trace", "ext3", "--workload", "creat",
                     "-o", str(trace_out), "--metrics-out",
                     str(metrics_out)]) == 0
        out = capsys.readouterr().out
        assert "span-tree digest:" in out
        doc = json.loads(trace_out.read_text())
        assert doc["traceEvents"]
        assert doc["otherData"]["span_tree_digest"]
        snap = json.loads(metrics_out.read_text())
        assert snap["schema"] == "repro-metrics/1"
        assert metrics_out.with_suffix(".prom").read_text().startswith("# ")

    def test_trace_list_and_unknown_fs(self, capsys):
        assert main(["trace", "--list"]) == 0
        assert "creat" in capsys.readouterr().out
        assert main(["trace", "fat32"]) == 2
        assert "unknown file system" in capsys.readouterr().err

    def test_fingerprint_trace_and_metrics_flags(self, capsys, tmp_path,
                                                 bench_json):
        trace_out = tmp_path / "t.json"
        metrics_out = tmp_path / "m.json"
        assert main(["fingerprint", "ext3", "--workloads", "a",
                     "--trace", "--trace-out", str(trace_out),
                     "--metrics", "--metrics-out", str(metrics_out)]) == 0
        out = capsys.readouterr().out
        assert "span-tree digest:" in out
        assert json.loads(trace_out.read_text())["traceEvents"]
        entry = json.loads(bench_json.read_text())["entries"]["fingerprint_ext3"]
        assert entry["span_digest"]
        assert entry["metrics"]["schema"] == "repro-metrics/1"

    def test_crash_trace_flag(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CRASH_JSON",
                           str(tmp_path / "BENCH_crash.json"))
        trace_out = tmp_path / "c.json"
        assert main(["crash", "ext3", "--workload", "creat",
                     "--trace", "--trace-out", str(trace_out)]) == 0
        assert "span-tree digest:" in capsys.readouterr().out
        assert json.loads(trace_out.read_text())["traceEvents"]
        entry = json.loads(
            (tmp_path / "BENCH_crash.json").read_text()
        )["entries"]["crash_ext3_creat_j1"]
        assert entry["span_digest"]

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


TINY_FLEET = ["--trials", "2", "--mission-hours", "2000",
              "--geometry", "single", "--geometry", "mirror2",
              "--policy", "baseline", "--no-crosscheck"]


class TestFleetCLI:
    @pytest.fixture(autouse=True)
    def fleet_json(self, tmp_path, monkeypatch):
        target = tmp_path / "BENCH_fleet.json"
        monkeypatch.setenv("REPRO_BENCH_FLEET_JSON", str(target))
        return target

    def test_fleet_prints_incident_summary(self, capsys):
        assert main(["fleet", *TINY_FLEET, "--no-bench-json"]) == 0
        out = capsys.readouterr().out
        assert "P(data loss)" in out
        assert "incidents (top loss mode per cell):" in out
        assert "single/baseline:" in out

    def test_fleet_records_both_digest_families(self, capsys, fleet_json):
        assert main(["fleet", *TINY_FLEET]) == 0
        entry = json.loads(
            fleet_json.read_text())["entries"]["fleet_default_j1"]
        assert entry["event_digest_jobs1"]
        assert entry["incident_digest_jobs1"]

    def test_fleet_rejects_unknown_geometry(self, capsys):
        assert main(["fleet", "--geometry", "floppy8"]) == 2
        assert "unknown geometry" in capsys.readouterr().err


class TestReportCLI:
    def test_report_writes_schema_valid_json(self, capsys, tmp_path):
        out_path = tmp_path / "campaign_report.json"
        assert main(["report", *TINY_FLEET, "-o", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "campaign report written to" in out
        assert "(schema-valid)" in out
        body = json.loads(out_path.read_text())
        assert body["schema"] == "repro-campaign-report/1"
        assert body["incident_digest"]
        assert body["timeseries"]
        assert len(body["incidents"]) >= 1
        for incident in body["incidents"]:
            assert incident["causes"]

    def test_report_profile_renders_attribution(self, capsys, tmp_path):
        out_path = tmp_path / "r.json"
        assert main(["report", *TINY_FLEET, "--profile",
                     "-o", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "self_s" in out
        assert "fleet:" in out
        assert "profile" in json.loads(out_path.read_text())

    def test_trace_trial_exports_perfetto_timeline(self, capsys, tmp_path):
        trace_out = tmp_path / "t.json"
        assert main(["report", *TINY_FLEET,
                     "--trace-trial", "mirror2/baseline:0",
                     "--trace-out", str(trace_out)]) == 0
        out = capsys.readouterr().out
        assert "trial mirror2/baseline#0:" in out
        assert "ui.perfetto.dev" in out
        doc = json.loads(trace_out.read_text())
        assert doc["traceEvents"]
        flight = json.loads(
            trace_out.with_suffix(".flight.json").read_text())
        assert flight["schema"] == "repro-timeseries/1"
        assert flight["tracks"]

    def test_trace_trial_rejects_bad_cell(self, capsys):
        assert main(["report", *TINY_FLEET,
                     "--trace-trial", "mirror2/baseline"]) == 2
        assert "GEOMETRY/POLICY:N" in capsys.readouterr().err
        assert main(["report", *TINY_FLEET,
                     "--trace-trial", "floppy8/baseline:0"]) == 2


class TestDigestMismatches:
    def test_flags_each_family_separately(self):
        from repro.cli import _digest_mismatches

        entries = {
            "ok": {"event_digest_jobs1": "a", "event_digest_jobs4": "a",
                   "incident_digest_jobs1": "b", "incident_digest_jobs4": "b"},
            "bad_event": {"event_digest_jobs1": "a",
                          "event_digest_jobs4": "x"},
            "bad_incident": {"incident_digest_jobs1": "b",
                             "incident_digest_jobs4": "y",
                             "event_digest_jobs1": "a",
                             "event_digest_jobs4": "a"},
            "not_a_record": 3,
        }
        assert _digest_mismatches(entries) == ["bad_event", "bad_incident"]
