"""Remaining odds and ends: scrub on a degraded volume, CLI table
rendering details, and version metadata."""

import pytest

import repro
from repro.disk import make_disk, write_failure, FaultInjector
from repro.fs.ixt3 import Ixt3, mkfs_ixt3

from conftest import IXT3_BASE, IXT3_CFG


class TestScrubDegraded:
    def test_scrub_on_read_only_volume_detects_without_writing(self):
        disk = make_disk(IXT3_CFG.total_blocks, IXT3_CFG.block_size)
        mkfs_ixt3(disk, IXT3_BASE, config=IXT3_CFG)
        fs = Ixt3(disk)
        fs.mount()
        fs.write_file("/f", b"x" * 2500)
        fs._abort_journal()  # volume degraded to read-only
        victim = next(b for b in range(disk.num_blocks)
                      if fs.block_type(b) == "data")
        before = disk.peek(victim)
        disk.poke(victim, b"\xcc" * disk.block_size)
        stats = fs.scrub()
        assert stats["corrupt"] >= 1
        # The damaged home block was not rewritten (no commits while RO);
        # nothing else on disk changed either.
        assert disk.peek(victim) == b"\xcc" * disk.block_size or \
            disk.peek(victim) == before

    def test_scrub_counters_shape(self):
        disk = make_disk(IXT3_CFG.total_blocks, IXT3_CFG.block_size)
        mkfs_ixt3(disk, IXT3_BASE, config=IXT3_CFG)
        fs = Ixt3(disk)
        fs.mount()
        stats = fs.scrub()
        assert set(stats) == {"scanned", "latent", "corrupt", "repaired", "lost"}
        assert all(v >= 0 for v in stats.values())


class TestPackageMetadata:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_public_modules_importable(self):
        import repro.bench
        import repro.disk
        import repro.fingerprint
        import repro.redundancy
        import repro.taxonomy
        import repro.vfs
        import repro.fs.ext3
        import repro.fs.ixt3
        import repro.fs.jfs
        import repro.fs.ntfs
        import repro.fs.reiserfs
