"""Cross-file-system semantics: every FS in the study must implement
the same POSIX-ish contract through the common VFS API."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import Errno, FSError
from repro.vfs import O_CREAT, O_RDONLY, O_RDWR, O_WRONLY

from conftest import FS_FACTORIES


class TestNamespace:
    def test_root_listing(self, any_fs):
        assert sorted(any_fs.getdirentries("/")) == [".", ".."]

    def test_mkdir_and_list(self, any_fs):
        any_fs.mkdir("/d")
        assert "d" in any_fs.getdirentries("/")
        assert any_fs.stat("/d").is_dir

    def test_mkdir_existing_fails(self, any_fs):
        any_fs.mkdir("/d")
        with pytest.raises(FSError) as e:
            any_fs.mkdir("/d")
        assert e.value.errno is Errno.EEXIST

    def test_mkdir_in_missing_parent_fails(self, any_fs):
        with pytest.raises(FSError) as e:
            any_fs.mkdir("/no/such")
        assert e.value.errno is Errno.ENOENT

    def test_nested_directories(self, any_fs):
        any_fs.mkdir("/a")
        any_fs.mkdir("/a/b")
        any_fs.mkdir("/a/b/c")
        assert any_fs.stat("/a/b/c").is_dir
        assert "c" in any_fs.getdirentries("/a/b")

    def test_rmdir_empty(self, any_fs):
        any_fs.mkdir("/gone")
        any_fs.rmdir("/gone")
        assert not any_fs.exists("/gone")

    def test_rmdir_nonempty_fails(self, any_fs):
        any_fs.mkdir("/d")
        any_fs.write_file("/d/f", b"x")
        with pytest.raises(FSError) as e:
            any_fs.rmdir("/d")
        assert e.value.errno is Errno.ENOTEMPTY

    def test_rmdir_file_fails(self, any_fs):
        any_fs.write_file("/f", b"x")
        with pytest.raises(FSError) as e:
            any_fs.rmdir("/f")
        assert e.value.errno is Errno.ENOTDIR

    def test_rmdir_root_fails(self, any_fs):
        with pytest.raises(FSError):
            any_fs.rmdir("/")

    def test_stat_missing(self, any_fs):
        with pytest.raises(FSError) as e:
            any_fs.stat("/missing")
        assert e.value.errno is Errno.ENOENT

    def test_dir_nlink_tracks_subdirs(self, any_fs):
        any_fs.mkdir("/p")
        base = any_fs.stat("/p").nlink
        any_fs.mkdir("/p/c1")
        any_fs.mkdir("/p/c2")
        assert any_fs.stat("/p").nlink == base + 2
        any_fs.rmdir("/p/c1")
        assert any_fs.stat("/p").nlink == base + 1


class TestFileIO:
    def test_create_write_read(self, any_fs):
        any_fs.write_file("/f", b"hello world")
        assert any_fs.read_file("/f") == b"hello world"
        assert any_fs.stat("/f").size == 11

    def test_overwrite_in_place(self, any_fs):
        any_fs.write_file("/f", b"AAAA")
        fd = any_fs.open("/f", O_RDWR)
        any_fs.write(fd, b"BB", offset=1)
        any_fs.close(fd)
        assert any_fs.read_file("/f") == b"ABBA"

    def test_multi_block_file(self, any_fs):
        bs = any_fs.statfs().block_size
        payload = bytes((i * 13 + 7) % 256 for i in range(5 * bs + 100))
        any_fs.write_file("/big", payload)
        assert any_fs.read_file("/big") == payload

    def test_large_file_through_indirection(self, any_fs):
        bs = any_fs.statfs().block_size
        payload = bytes((i * 31 + 3) % 256 for i in range(40 * bs))
        any_fs.write_file("/huge", payload)
        assert any_fs.read_file("/huge") == payload

    def test_sequential_read_with_offset_tracking(self, any_fs):
        any_fs.write_file("/f", b"abcdefgh")
        fd = any_fs.open("/f", O_RDONLY)
        assert any_fs.read(fd, 3) == b"abc"
        assert any_fs.read(fd, 3) == b"def"
        assert any_fs.read(fd, 10) == b"gh"
        any_fs.close(fd)

    def test_read_past_eof_is_empty(self, any_fs):
        any_fs.write_file("/f", b"tiny")
        fd = any_fs.open("/f", O_RDONLY)
        assert any_fs.read(fd, 10, offset=100) == b""
        any_fs.close(fd)

    def test_truncate_shrink(self, any_fs):
        bs = any_fs.statfs().block_size
        any_fs.write_file("/f", b"Z" * (3 * bs))
        any_fs.truncate("/f", 5)
        assert any_fs.stat("/f").size == 5
        assert any_fs.read_file("/f") == b"ZZZZZ"

    def test_truncate_grow_zero_fills(self, any_fs):
        any_fs.write_file("/f", b"ab")
        any_fs.truncate("/f", 6)
        assert any_fs.stat("/f").size == 6
        data = any_fs.read_file("/f")
        assert data[:2] == b"ab"
        assert all(b == 0 for b in data[2:])

    def test_truncate_frees_space(self, any_fs):
        bs = any_fs.statfs().block_size
        before = any_fs.statfs().free_blocks
        any_fs.write_file("/f", b"Q" * (10 * bs))
        used = before - any_fs.statfs().free_blocks
        assert used >= 10
        any_fs.truncate("/f", 0)
        after = any_fs.statfs().free_blocks
        assert after > before - used

    def test_creat_truncates_existing(self, any_fs):
        any_fs.write_file("/f", b"old contents")
        fd = any_fs.creat("/f")
        any_fs.close(fd)
        assert any_fs.stat("/f").size == 0

    def test_bad_fd(self, any_fs):
        with pytest.raises(FSError) as e:
            any_fs.read(999, 1)
        assert e.value.errno is Errno.EBADF

    def test_write_to_readonly_fd(self, any_fs):
        any_fs.write_file("/f", b"x")
        fd = any_fs.open("/f", O_RDONLY)
        with pytest.raises(FSError) as e:
            any_fs.write(fd, b"nope")
        assert e.value.errno is Errno.EBADF
        any_fs.close(fd)

    def test_open_missing_without_creat(self, any_fs):
        with pytest.raises(FSError) as e:
            any_fs.open("/missing", O_RDONLY)
        assert e.value.errno is Errno.ENOENT

    def test_open_creat_creates(self, any_fs):
        fd = any_fs.open("/newfile", O_WRONLY | O_CREAT)
        any_fs.write(fd, b"made")
        any_fs.close(fd)
        assert any_fs.read_file("/newfile") == b"made"


class TestLinksAndRename:
    def test_hard_link_shares_content(self, any_fs):
        any_fs.write_file("/a", b"shared")
        any_fs.link("/a", "/b")
        assert any_fs.read_file("/b") == b"shared"
        assert any_fs.stat("/a").nlink == 2
        assert any_fs.stat("/a").ino == any_fs.stat("/b").ino

    def test_unlink_one_name_keeps_other(self, any_fs):
        any_fs.write_file("/a", b"data")
        any_fs.link("/a", "/b")
        any_fs.unlink("/a")
        assert any_fs.read_file("/b") == b"data"
        assert any_fs.stat("/b").nlink == 1

    def test_unlink_frees_space(self, any_fs):
        bs = any_fs.statfs().block_size
        before = any_fs.statfs().free_blocks
        any_fs.write_file("/f", b"y" * (8 * bs))
        any_fs.unlink("/f")
        assert any_fs.statfs().free_blocks == before

    def test_link_to_directory_forbidden(self, any_fs):
        any_fs.mkdir("/d")
        with pytest.raises(FSError) as e:
            any_fs.link("/d", "/d2")
        assert e.value.errno is Errno.EPERM

    def test_rename_file(self, any_fs):
        any_fs.write_file("/old", b"payload")
        any_fs.rename("/old", "/new")
        assert not any_fs.exists("/old")
        assert any_fs.read_file("/new") == b"payload"

    def test_rename_overwrites_file(self, any_fs):
        any_fs.write_file("/src", b"SRC")
        any_fs.write_file("/dst", b"DST")
        any_fs.rename("/src", "/dst")
        assert any_fs.read_file("/dst") == b"SRC"

    def test_rename_directory_updates_dotdot(self, any_fs):
        any_fs.mkdir("/p1")
        any_fs.mkdir("/p2")
        any_fs.mkdir("/p1/child")
        any_fs.write_file("/p1/child/f", b"moves along")
        any_fs.rename("/p1/child", "/p2/child")
        assert any_fs.read_file("/p2/child/f") == b"moves along"
        assert not any_fs.exists("/p1/child")

    def test_rename_into_own_subtree_fails(self, any_fs):
        any_fs.mkdir("/d")
        with pytest.raises(FSError):
            any_fs.rename("/d", "/d/sub")

    def test_rename_missing_source(self, any_fs):
        with pytest.raises(FSError) as e:
            any_fs.rename("/nope", "/dst")
        assert e.value.errno is Errno.ENOENT


class TestSymlinks:
    def test_symlink_readlink(self, any_fs):
        any_fs.write_file("/target", b"pointed-at")
        any_fs.symlink("/target", "/lnk")
        assert any_fs.readlink("/lnk") == "/target"

    def test_symlink_followed_on_open(self, any_fs):
        any_fs.write_file("/target", b"pointed-at")
        any_fs.symlink("/target", "/lnk")
        assert any_fs.read_file("/lnk") == b"pointed-at"

    def test_lstat_does_not_follow(self, any_fs):
        any_fs.write_file("/target", b"pointed-at")
        any_fs.symlink("/target", "/lnk")
        assert any_fs.lstat("/lnk").is_symlink
        assert any_fs.stat("/lnk").is_file

    def test_dangling_symlink(self, any_fs):
        any_fs.symlink("/nowhere", "/lnk")
        with pytest.raises(FSError):
            any_fs.stat("/lnk")

    def test_symlink_loop_detected(self, any_fs):
        any_fs.symlink("/b", "/a")
        any_fs.symlink("/a", "/b")
        with pytest.raises(FSError) as e:
            any_fs.stat("/a")
        assert e.value.errno is Errno.ELOOP

    def test_readlink_on_file_fails(self, any_fs):
        any_fs.write_file("/f", b"x")
        with pytest.raises(FSError) as e:
            any_fs.readlink("/f")
        assert e.value.errno is Errno.EINVAL


class TestAttributes:
    def test_chmod(self, any_fs):
        any_fs.write_file("/f", b"x")
        any_fs.chmod("/f", 0o600)
        assert any_fs.stat("/f").perm_bits == 0o600

    def test_chown(self, any_fs):
        any_fs.write_file("/f", b"x")
        any_fs.chown("/f", 42, 43)
        st = any_fs.stat("/f")
        assert (st.uid, st.gid) == (42, 43)

    def test_utimes(self, any_fs):
        any_fs.write_file("/f", b"x")
        any_fs.utimes("/f", 1000.0, 2000.0)
        st = any_fs.stat("/f")
        assert (st.atime, st.mtime) == (1000.0, 2000.0)

    def test_access(self, any_fs):
        any_fs.write_file("/f", b"x")
        assert any_fs.access("/f")
        assert not any_fs.access("/missing")


class TestCwdAndChroot:
    def test_chdir_relative_paths(self, any_fs):
        any_fs.mkdir("/w")
        any_fs.write_file("/w/f", b"rel")
        any_fs.chdir("/w")
        assert any_fs.read_file("f") == b"rel"
        assert any_fs.read_file("./f") == b"rel"

    def test_chdir_to_file_fails(self, any_fs):
        any_fs.write_file("/f", b"x")
        with pytest.raises(FSError) as e:
            any_fs.chdir("/f")
        assert e.value.errno is Errno.ENOTDIR

    def test_chroot_confines_lookups(self, any_fs):
        any_fs.mkdir("/jail")
        any_fs.write_file("/jail/inside", b"in")
        any_fs.write_file("/outside", b"out")
        any_fs.chroot("/jail")
        assert any_fs.read_file("/inside") == b"in"
        with pytest.raises(FSError):
            any_fs.stat("/outside")


class TestPersistence:
    @pytest.mark.parametrize("name", sorted(FS_FACTORIES))
    def test_contents_survive_remount(self, name):
        disk, fs = FS_FACTORIES[name]()
        fs.mount()
        fs.mkdir("/d")
        bs = fs.statfs().block_size
        payload = bytes((i * 7) % 256 for i in range(3 * bs + 17))
        fs.write_file("/d/file", payload)
        fs.symlink("/d/file", "/lnk")
        fs.unmount()

        fs2 = type(fs)(disk)
        fs2.mount()
        assert fs2.read_file("/d/file") == payload
        assert fs2.readlink("/lnk") == "/d/file"
        assert sorted(fs2.getdirentries("/d")) == [".", "..", "file"]
        fs2.unmount()

    @pytest.mark.parametrize("name", sorted(FS_FACTORIES))
    def test_crash_recovery_replays_journal(self, name):
        disk, fs = FS_FACTORIES[name]()
        fs.mount()
        fs.write_file("/pre", b"before crash")
        fs.crash_after(lambda f: (f.write_file("/during", b"logged"),
                                  f.mkdir("/newdir")))
        fs2 = type(fs)(disk)
        fs2.mount()
        assert fs2.read_file("/pre") == b"before crash"
        assert fs2.read_file("/during") == b"logged"
        assert fs2.stat("/newdir").is_dir
        fs2.unmount()

    @pytest.mark.parametrize("name", sorted(FS_FACTORIES))
    def test_uncommitted_work_lost_on_crash(self, name):
        disk, fs = FS_FACTORIES[name]()
        fs.mount()
        fs.write_file("/durable", b"safe")
        fs.sync()
        fs.sync_mode = False
        fs.mkdir("/volatile_dir")  # never committed
        fs.crash()
        fs2 = type(fs)(disk)
        fs2.mount()
        assert fs2.read_file("/durable") == b"safe"
        assert not fs2.exists("/volatile_dir")
        fs2.unmount()


class TestStatfsAccounting:
    def test_free_blocks_decrease_on_write(self, any_fs):
        bs = any_fs.statfs().block_size
        before = any_fs.statfs().free_blocks
        any_fs.write_file("/f", b"D" * (4 * bs))
        assert any_fs.statfs().free_blocks < before

    def test_no_leak_over_create_delete_cycles(self, any_fs):
        bs = any_fs.statfs().block_size
        any_fs.write_file("/warmup", b"w" * bs)
        any_fs.unlink("/warmup")
        before = any_fs.statfs().free_blocks
        for round_ in range(3):
            for i in range(5):
                any_fs.write_file(f"/cyc{i}", bytes([i]) * (2 * bs))
            for i in range(5):
                any_fs.unlink(f"/cyc{i}")
        after = any_fs.statfs().free_blocks
        # Tree-structured file systems may retain a node or two of
        # structure; they must not leak per cycle.
        assert after >= before - 2


@settings(max_examples=15, deadline=None)
@given(data=st.binary(min_size=0, max_size=6000))
@pytest.mark.parametrize("name", sorted(FS_FACTORIES))
def test_property_file_roundtrip(name, data):
    """Any byte string written to any FS reads back identically."""
    disk, fs = FS_FACTORIES[name]()
    fs.mount()
    fs.write_file("/blob", data)
    assert fs.read_file("/blob") == data
    assert fs.stat("/blob").size == len(data)
