"""Single-trial mechanics of the fleet simulator (repro.fleet.sim)."""

from __future__ import annotations

import pytest

from repro.fleet.rates import FaultRates, ZERO_RATES
from repro.fleet.sim import IntervalScrubScheduler, run_trial
from repro.fleet.spec import (
    CROSSCHECK_GEOMETRY,
    CROSSCHECK_POLICY,
    FleetSpec,
    GeometrySpec,
    PolicySpec,
)
from repro.redundancy import make_array

MIRROR2 = GeometrySpec("mirror2", "mirror", 2)
PARITY4 = GeometrySpec("parity4", "parity", 4)
SINGLE = GeometrySpec("single", "single", 1)

BASELINE = PolicySpec("baseline")


def _spec(**kw) -> FleetSpec:
    base = dict(trials=4, num_blocks=32, block_size=512,
                mission_hours=2000.0, seed=99)
    base.update(kw)
    return FleetSpec(**base)


class TestTrialDeterminism:
    def test_same_inputs_same_outcome(self):
        spec = _spec()
        a = run_trial(spec, MIRROR2, BASELINE, trial=0)
        b = run_trial(spec, MIRROR2, BASELINE, trial=0)
        assert a == b
        assert a.digest == b.digest

    def test_trial_index_changes_draws(self):
        spec = _spec()
        a = run_trial(spec, MIRROR2, BASELINE, trial=0)
        b = run_trial(spec, MIRROR2, BASELINE, trial=1)
        assert a.digest != b.digest

    def test_cells_do_not_share_streams(self):
        spec = _spec()
        a = run_trial(spec, MIRROR2, BASELINE, trial=0)
        b = run_trial(spec, PARITY4, BASELINE, trial=0)
        assert a.digest != b.digest


class TestZeroRates:
    def test_quiet_mission_survives(self):
        spec = _spec(rates=ZERO_RATES)
        for geometry in (SINGLE, MIRROR2, PARITY4):
            out = run_trial(spec, geometry, BASELINE, trial=0)
            assert out.outcome == "survived"
            assert out.ttdl_hours is None
            assert out.counters.get("failstops", 0) == 0
            assert out.counters.get("lse", 0) == 0
            assert out.counters.get("corruptions", 0) == 0
            assert out.device_hours == geometry.members * spec.mission_hours


class TestFailStop:
    # One fail-stop is certain within the first hours at this rate.
    HOT = FaultRates(failstop_per_hour=0.05, lse_per_hour=0.0,
                     transient_fraction=0.0, corruption_per_hour=0.0)

    def test_single_loses_on_first_failstop(self):
        spec = _spec(rates=self.HOT)
        out = run_trial(spec, SINGLE, BASELINE, trial=0)
        assert out.outcome == "detected-loss"
        assert out.ttdl_hours is not None
        assert out.ttdl_hours < spec.mission_hours
        # The trial ends at the loss, not at mission end.
        assert out.end_hours == out.ttdl_hours

    def test_r_stop_freezes_before_loss(self):
        spec = _spec(rates=self.HOT)
        policy = PolicySpec("stop", stop_on_fault=True)
        for geometry in (SINGLE, MIRROR2):
            out = run_trial(spec, geometry, policy, trial=0)
            assert out.outcome == "stopped"
            assert out.ttdl_hours is None

    def test_mirror2_loses_when_repair_cannot_finish(self):
        # Replacement takes longer than the survivor's own expected
        # lifetime: the double-failure window closes on every trial.
        spec = _spec(rates=self.HOT, mission_hours=5000.0)
        policy = PolicySpec("slow-spare", replace_delay_hours=4000.0,
                            scrub_interval_hours=0.0, io_reads_per_tick=0)
        losses = sum(
            run_trial(spec, MIRROR2, policy, trial=t).lost for t in range(6))
        assert losses == 6

    def test_mirror2_survives_with_instant_repair(self):
        # A rebuilt window of ~1.3h at 0.05/h survivor hazard: the
        # overwhelmingly common outcome is full recovery; counters must
        # show the real rebuild machinery ran.
        spec = _spec(rates=FaultRates(0.002, 0.0, 0.0, 0.0),
                     mission_hours=2000.0)
        policy = PolicySpec("fast-spare", replace_delay_hours=0.5,
                            rebuild_rate_blocks_per_hour=1000.0,
                            scrub_interval_hours=0.0, io_reads_per_tick=0)
        outs = [run_trial(spec, MIRROR2, policy, trial=t) for t in range(8)]
        rebuilt = sum(o.counters.get("rebuilds", 0) for o in outs)
        assert rebuilt >= 4
        assert sum(o.outcome == "survived" for o in outs) >= 7


class TestLatentAndSilent:
    def test_scrub_heals_latent_errors(self):
        # LSE-only process with weekly scrub: repairs happen and the
        # mission survives far more often than not.
        rates = FaultRates(0.0, 0.002, 0.0, 0.0)
        spec = _spec(rates=rates, mission_hours=4000.0)
        outs = [run_trial(spec, MIRROR2, BASELINE, trial=t)
                for t in range(8)]
        assert sum(o.counters.get("lse", 0) for o in outs) > 0
        assert sum(o.counters.get("scrub_repairs", 0) for o in outs) > 0
        assert sum(o.outcome == "survived" for o in outs) >= 7

    def test_verify_catches_silent_corruption_on_single(self):
        # Corruption below the injector on a bare disk: no mechanism
        # ever flags it, the mission-end verify scores silent-loss.
        rates = FaultRates(0.0, 0.0, 0.0, 0.01)
        spec = _spec(rates=rates, mission_hours=1000.0)
        policy = PolicySpec("blind", scrub_interval_hours=0.0,
                            io_reads_per_tick=0)
        outs = [run_trial(spec, SINGLE, policy, trial=t) for t in range(4)]
        assert all(o.counters.get("corruptions", 0) > 0 for o in outs)
        assert all(o.outcome == "silent-loss" for o in outs)
        # Silent loss is established at the mission-end audit.
        assert all(o.ttdl_hours == spec.mission_hours for o in outs)

    def test_retry_recovers_transient_errors(self):
        # All-transient LSE process on a bare disk: without retries the
        # first touched error is user-visible loss; with R_retry depth
        # the trials ride through.
        rates = FaultRates(0.0, 0.01, 1.0, 0.0)
        spec = _spec(rates=rates, mission_hours=2000.0)
        plain = PolicySpec("plain")
        retry = PolicySpec("retry", retries=2)
        lost_plain = sum(
            run_trial(spec, SINGLE, plain, trial=t).lost for t in range(6))
        retry_outs = [run_trial(spec, SINGLE, retry, trial=t)
                      for t in range(6)]
        lost_retry = sum(o.lost for o in retry_outs)
        assert lost_retry < lost_plain
        assert sum(o.counters.get("retry_recoveries", 0)
                   for o in retry_outs) > 0


class TestCrosscheckCell:
    def test_isolates_failstop_process(self):
        spec = _spec()
        out = run_trial(spec, CROSSCHECK_GEOMETRY, CROSSCHECK_POLICY, 0)
        assert out.counters.get("lse", 0) == 0
        assert out.counters.get("corruptions", 0) == 0
        assert out.counters.get("scrub_ticks", 0) == 0


class TestIntervalScrubScheduler:
    def _array(self):
        array = make_array("mirror", 16, 512, members=2)
        for b in range(16):
            array.write_block(b, bytes([b]) * 512)
        return array

    def test_partial_progress_across_ticks(self):
        array = self._array()
        sched = IntervalScrubScheduler(array, interval_hours=10.0,
                                       units_per_tick=5)
        total = array.scrub_units
        assert not sched.due(9.9)
        assert sched.tick(9.9) is None
        report = sched.tick(10.0)
        assert report is not None and report.units_scanned == 5
        assert array.scrub_cursor == 5
        # A pass completes only once the cursor wraps to zero.
        ticks = 1
        while array.scrub_cursor != 0:
            assert sched.tick(10.0 * (ticks + 1)) is not None
            ticks += 1
        assert sched.passes_completed == 1
        assert sched.units_scanned == total
        assert ticks == -(-total // 5)  # ceil division

    def test_full_pass_when_units_zero(self):
        array = self._array()
        sched = IntervalScrubScheduler(array, interval_hours=24.0)
        report = sched.tick(24.0)
        assert report.units_scanned == array.scrub_units
        assert array.scrub_cursor == 0
        assert sched.passes_completed == 1

    def test_disabled_when_interval_zero(self):
        array = self._array()
        sched = IntervalScrubScheduler(array, interval_hours=0.0)
        assert not sched.enabled
        assert sched.tick(1e9) is None

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            IntervalScrubScheduler(self._array(), interval_hours=-1.0)


class TestFlightRecorder:
    """Instrumentation riding the trial: site attribution, sampled
    series, retained streams, tracing, and profiling."""

    HOT = FaultRates(failstop_per_hour=0.05, lse_per_hour=0.0,
                     transient_fraction=0.0, corruption_per_hour=0.0)

    def _lost(self, **kw):
        out = run_trial(_spec(rates=self.HOT, **kw), SINGLE, BASELINE, 0)
        assert out.outcome == "detected-loss"
        return out

    def test_terminal_trials_carry_a_site(self):
        assert self._lost().site == "failstop"

    def test_survivors_have_no_site_and_no_stream(self):
        out = run_trial(_spec(rates=ZERO_RATES), MIRROR2, BASELINE, 0)
        assert out.outcome == "survived"
        assert out.site == ""
        assert out.stream is None

    def test_series_cover_the_recorder_gauges(self):
        out = run_trial(_spec(), MIRROR2, BASELINE, 0)
        names = {entry["name"] for entry in out.series}
        assert "repro_fleet_degraded_members" in names
        assert "repro_fleet_scrub_cursor" in names
        for entry in out.series:
            assert entry["labels"] == {"geometry": "mirror2",
                                       "policy": "baseline"}

    def test_terminal_stream_is_log_events_with_clock_arrivals(self):
        from repro.obs.events import FleetClockEvent, LogEvent

        out = self._lost()
        assert out.stream is not None
        assert all(isinstance(e, LogEvent) for e in out.stream)
        clock = [e for e in out.stream if isinstance(e, FleetClockEvent)]
        tags = {e.tag for e in clock}
        assert "failstop-arrival" in tags
        assert "loss-established" in tags
        # Arrivals carry the virtual clock, not wall time.
        assert all(0.0 <= e.t_hours <= out.end_hours for e in clock)
        assert out.dropped_events == 0

    def test_trace_rerun_same_verdict_different_digest(self):
        from repro.obs.trace import SpanEndEvent, SpanStartEvent

        spec = _spec(rates=self.HOT)
        plain = run_trial(spec, SINGLE, BASELINE, 0)
        traced = run_trial(spec, SINGLE, BASELINE, 0, trace=True)
        assert traced.outcome == plain.outcome
        assert traced.ttdl_hours == plain.ttdl_hours
        assert traced.site == plain.site
        # Spans join the stream, so the digest differs by construction.
        assert traced.digest != plain.digest
        kinds = {type(e) for e in traced.stream}
        assert SpanStartEvent in kinds and SpanEndEvent in kinds
        assert traced.flight is not None
        assert traced.flight["schema"] == "repro-timeseries/1"

    def test_profile_rerun_keeps_the_digest(self):
        spec = _spec()
        plain = run_trial(spec, MIRROR2, BASELINE, 0)
        profiled = run_trial(spec, MIRROR2, BASELINE, 0, profile=True)
        assert profiled.digest == plain.digest
        assert profiled.outcome == plain.outcome
        assert profiled.profile
        for frame in profiled.profile.values():
            assert frame["calls"] >= 1
            assert frame["self_s"] >= 0.0

    def test_plain_runs_carry_no_heavy_payloads(self):
        out = run_trial(_spec(rates=ZERO_RATES), MIRROR2, BASELINE, 0)
        assert out.profile is None
        assert out.flight is None


class TestArrayScrubStep:
    def test_cursor_advances_and_wraps(self):
        array = make_array("parity", 24, 512, members=4)
        for b in range(24):
            array.write_block(b, bytes([b]) * 512)
        total = array.scrub_units
        seen = 0
        while True:
            report = array.scrub_step(3)
            seen += report.units_scanned
            if array.scrub_cursor == 0:
                break
            assert array.scrub_cursor == seen
        assert seen == total

    def test_step_repairs_in_its_window(self):
        # Three-way mirror: majority vote attributes the bad copy, so
        # the increment that covers block 3 repairs it in place.
        array = make_array("mirror", 16, 512, members=3)
        for b in range(16):
            array.write_block(b, bytes([b]) * 512)
        array.members[1].disk.poke(3, b"\xee" * 512)
        repaired = []
        while True:
            repaired += array.scrub_step(4).repaired
            if array.scrub_cursor == 0:
                break
        assert (1, 3) in repaired
        assert array.members[1].disk.peek(3) == bytes([3]) * 512

    def test_zero_units_rejected(self):
        array = make_array("mirror", 8, 512, members=2)
        with pytest.raises(ValueError):
            array.scrub_step(0)
