"""The array fingerprint matrix: member-fault scenarios classified
into IRON D_*/R_* levels from typed events, deterministically across
jobs widths, with the adapter registry wiring that lets workers
rebuild array-backed file systems."""

from __future__ import annotations

import pytest

from repro.fingerprint.adapters import ADAPTERS, make_array_adapter
from repro.redundancy.array import ArrayDevice
from repro.redundancy.fingerprint import (
    ARRAY_GEOMETRIES,
    ARRAY_SCENARIOS,
    WORKLOAD,
    run_array_fingerprint,
)
from repro.taxonomy.detection import Detection
from repro.taxonomy.recovery import Recovery


@pytest.fixture(scope="module")
def fingerprint():
    return run_array_fingerprint(jobs=1)


def _cell(fingerprint, label, scenario):
    fault_class = dict(ARRAY_SCENARIOS)[scenario]
    matrix = fingerprint.matrices[label]
    obs = matrix.get(fault_class, scenario, WORKLOAD)
    assert obs is not None, (label, scenario)
    return obs


def test_every_cell_is_populated(fingerprint):
    assert sorted(fingerprint.matrices) == sorted(
        label for label, _, _ in ARRAY_GEOMETRIES)
    for label, _, _ in ARRAY_GEOMETRIES:
        for scenario, _ in ARRAY_SCENARIOS:
            _cell(fingerprint, label, scenario)


def test_single_lse_recovers_via_redundancy_everywhere(fingerprint):
    for label, _, _ in ARRAY_GEOMETRIES:
        obs = _cell(fingerprint, label, "member-lse")
        assert Recovery.REDUNDANCY in obs.recovery, label
        assert Detection.ERROR_CODE in obs.detection, label
        assert Recovery.PROPAGATE not in obs.recovery, label


def test_double_lse_separates_single_from_double_redundancy(fingerprint):
    # Single-redundancy geometries lose the block and propagate EIO;
    # double-redundancy (3-way mirror, RDP) still reconstruct.
    for label in ("mirror2", "parity4"):
        obs = _cell(fingerprint, label, "member-lse-x2")
        assert Recovery.PROPAGATE in obs.recovery, label
    for label in ("mirror3", "rdp5"):
        obs = _cell(fingerprint, label, "member-lse-x2")
        assert Recovery.REDUNDANCY in obs.recovery, label
        assert Recovery.PROPAGATE not in obs.recovery, label


def test_failstop_rebuild_with_peer_lse_needs_double_parity(fingerprint):
    obs = _cell(fingerprint, "rdp5", "member-failstop")
    assert Recovery.REDUNDANCY in obs.recovery
    assert Recovery.PROPAGATE not in obs.recovery
    for label in ("mirror2", "parity4"):
        obs = _cell(fingerprint, label, "member-failstop")
        assert Recovery.REDUNDANCY in obs.recovery, label


def test_silent_corruption_detected_by_scrub_redundancy(fingerprint):
    for label, _, _ in ARRAY_GEOMETRIES:
        obs = _cell(fingerprint, label, "member-corrupt")
        assert Detection.REDUNDANCY in obs.detection, label


def test_jobs_width_is_invisible(fingerprint):
    fanned = run_array_fingerprint(jobs=3)
    assert fanned.digest == fingerprint.digest
    assert fanned.render() == fingerprint.render()


def test_label_subset_and_validation():
    fp = run_array_fingerprint(labels=["rdp5"])
    assert sorted(fp.matrices) == ["rdp5"]
    with pytest.raises(ValueError):
        run_array_fingerprint(labels=["raid0"])


class TestArrayAdapters:
    def test_registry_has_array_variants(self):
        for base in ("ext3", "reiserfs", "jfs", "ntfs", "ixt3"):
            for spec in ("mirror2", "parity4", "rdp5"):
                assert f"{base}@{spec}" in ADAPTERS

    def test_adapter_builds_working_array_volume(self):
        adapter = make_array_adapter(base="ext3", geometry="mirror", members=2)
        device = adapter.build_device()
        assert isinstance(device, ArrayDevice)
        adapter.mkfs(device)
        fs = adapter.make_fs(device)
        fs.mount()
        fs.write_file("/f", b"on an array")
        assert fs.read_file("/f") == b"on an array"
        fs.unmount()

    def test_adapter_registry_recipe_round_trips(self):
        adapter = ADAPTERS["ext3@mirror2"]()
        assert adapter.registry_key == "ext3@mirror2"
        rebuilt = ADAPTERS[adapter.registry_key](**adapter.registry_kwargs)
        assert rebuilt.name == adapter.name

    def test_array_device_matches_base_geometry(self):
        base = ADAPTERS["ext3"]().build_device()
        array = ADAPTERS["ext3@rdp5"]().build_device()
        assert array.num_blocks == base.num_blocks
        assert array.block_size == base.block_size
