"""Model-based testing: random operation sequences against every file
system must match a trivial in-memory model of a POSIX namespace.

This is the deepest invariant check in the suite: whatever sequence of
creates, writes, appends, truncates, links, renames, mkdirs and deletes
hypothesis invents, each file system must agree with the model on every
file's contents and every directory's listing — including across a
remount."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.errors import FSError

from conftest import FS_FACTORIES

NAMES = ["a", "b", "c", "dd", "ee"]
DIRS = ["/", "/d1", "/d2"]


op_st = st.one_of(
    st.tuples(st.just("write"), st.sampled_from(DIRS), st.sampled_from(NAMES),
              st.binary(max_size=3000)),
    st.tuples(st.just("append"), st.sampled_from(DIRS), st.sampled_from(NAMES),
              st.binary(min_size=1, max_size=500)),
    st.tuples(st.just("truncate"), st.sampled_from(DIRS), st.sampled_from(NAMES),
              st.integers(0, 4000)),
    st.tuples(st.just("unlink"), st.sampled_from(DIRS), st.sampled_from(NAMES),
              st.none()),
    st.tuples(st.just("rename"), st.sampled_from(DIRS), st.sampled_from(NAMES),
              st.sampled_from(NAMES)),
    st.tuples(st.just("link"), st.sampled_from(DIRS), st.sampled_from(NAMES),
              st.sampled_from(NAMES)),
)


def apply_model(model, op, where, name, arg):
    """Apply to the model; returns False when the op must fail.

    The model tracks inode identity so hard links alias correctly:
    ``names`` maps path -> file id, ``files`` maps file id -> bytes.
    """
    names, files = model["names"], model["files"]
    path = where.rstrip("/") + "/" + name
    if op == "write":
        if path in names:
            files[names[path]] = arg  # truncate + rewrite of the shared inode
        else:
            fid = model["next"] = model.get("next", 0) + 1
            names[path] = fid
            files[fid] = arg
        return True
    if op == "append":
        if path not in names:
            return False
        files[names[path]] += arg
        return True
    if op == "truncate":
        if path not in names:
            return False
        old = files[names[path]]
        files[names[path]] = old[:arg] + b"\x00" * max(0, arg - len(old))
        return True
    if op == "unlink":
        if path not in names:
            return False
        fid = names.pop(path)
        if fid not in names.values():
            del files[fid]
        return True
    if op == "rename":
        dst = where.rstrip("/") + "/" + arg
        if path not in names:
            return False
        if dst == path:
            return True  # POSIX: rename onto itself is a successful no-op
        if dst in names:
            old_fid = names.pop(dst)
            if old_fid not in names.values() and old_fid != names[path]:
                files.pop(old_fid, None)
        names[dst] = names.pop(path)
        return True
    if op == "link":
        dst = where.rstrip("/") + "/" + arg
        if path not in names or dst in names:
            return False
        names[dst] = names[path]
        return True
    raise AssertionError(op)


def apply_fs(fs, op, where, name, arg):
    from repro.vfs import O_WRONLY
    path = where.rstrip("/") + "/" + name
    if op == "write":
        fs.write_file(path, arg)
    elif op == "append":
        size = fs.stat(path).size
        fd = fs.open(path, O_WRONLY)
        fs.write(fd, arg, offset=size)
        fs.close(fd)
    elif op == "truncate":
        fs.truncate(path, arg)
    elif op == "unlink":
        fs.unlink(path)
    elif op == "rename":
        fs.rename(path, where.rstrip("/") + "/" + arg)
    elif op == "link":
        fs.link(path, where.rstrip("/") + "/" + arg)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
@given(ops=st.lists(op_st, max_size=25))
@pytest.mark.parametrize("name", sorted(FS_FACTORIES))
def test_property_fs_matches_model(name, ops):
    disk, fs = FS_FACTORIES[name]()
    fs.mount()
    fs.mkdir("/d1")
    fs.mkdir("/d2")
    model = {"names": {}, "files": {}, "next": 0}
    for op, where, fname, arg in ops:
        try:
            apply_fs(fs, op, where, fname, arg)
            worked = True
        except FSError:
            worked = False
        if worked:
            # When the file system accepted the operation, the model
            # must accept it too, and they stay in lock step.  (The FS
            # may legitimately refuse things the model allows — e.g.
            # ENOSPC — so the reverse is not asserted.)
            accepted = apply_model(model, op, where, fname, arg)
            assert accepted, (op, where, fname)

    def check(live_fs):
        for path, fid in model["names"].items():
            assert live_fs.read_file(path) == model["files"][fid], path
        for d in DIRS:
            expected = sorted(
                p.rsplit("/", 1)[1] for p in model["names"]
                if p.rsplit("/", 1)[0] == d.rstrip("/")
                or (d == "/" and p.count("/") == 1))
            got = sorted(n for n in live_fs.getdirentries(d)
                         if n not in (".", "..", "d1", "d2"))
            assert got == expected, d
        # Hard links agree on identity (same ino).
        by_fid = {}
        for path, fid in model["names"].items():
            by_fid.setdefault(fid, []).append(live_fs.stat(path).ino)
        for inos in by_fid.values():
            assert len(set(inos)) == 1

    # Converged state: contents, listings and link identity agree.
    check(fs)

    # And everything survives a remount.
    fs.unmount()
    fs2 = type(fs)(disk)
    fs2.mount()
    check(fs2)
    fs2.unmount()
