"""Explainable inference: every fingerprint cell and crash violation
must carry provenance references that resolve to real events in the
recorded streams."""

import pytest

from repro.crash import explore
from repro.fingerprint import Fingerprinter, WORKLOAD_BY_KEY
from repro.fingerprint.adapters import make_ext3_adapter
from repro.obs.events import IOEvent
from repro.obs.trace import SpanStartEvent, resolve_ref

SUBSET = [WORKLOAD_BY_KEY[k] for k in "ab"]


class TestFingerprintProvenance:
    @pytest.fixture(scope="class")
    def traced_run(self):
        fp = Fingerprinter(make_ext3_adapter(), workloads=SUBSET, trace=True)
        matrix = fp.run()
        streams = {
            label: events
            for per_workload in fp.workload_trace.values()
            for label, events in per_workload
        }
        return matrix, streams

    def test_every_cell_carries_provenance(self, traced_run):
        matrix, _ = traced_run
        assert matrix.cells
        for key, obs in matrix.cells.items():
            assert obs.provenance, f"cell {key} has no provenance"

    def test_all_references_resolve(self, traced_run):
        matrix, streams = traced_run
        resolved = 0
        for obs in matrix.cells.values():
            for ref in obs.provenance:
                resolve_ref(ref, streams)
                resolved += 1
        assert resolved >= len(matrix.cells)

    def test_faulty_io_reference_points_at_the_fault(self, traced_run):
        matrix, streams = traced_run
        for key, obs in matrix.cells.items():
            io_refs = [r for r in obs.provenance if ":io" in r]
            assert io_refs, f"cell {key} lacks a faulty-io reference"
            event = resolve_ref(io_refs[0], streams)
            assert isinstance(event, IOEvent)
            assert event.outcome in ("error", "corrupted")

    def test_cell_labels_match_their_cell(self, traced_run):
        # A cell's references must point into the stream of the very
        # run that produced it: "{workload}:{fault_class}:{btype}".
        matrix, _ = traced_run
        for (fault_class, btype, workload_name), obs in matrix.cells.items():
            for ref in obs.provenance:
                label = ref.rpartition("#")[0]
                assert f":{fault_class}:" in label, (ref, fault_class)

    def test_span_references_resolve_when_traced(self, traced_run):
        matrix, streams = traced_run
        span_refs = [
            r for obs in matrix.cells.values() for r in obs.provenance
            if r.rpartition("#")[2].startswith("s")
        ]
        assert span_refs, "traced run produced no span references"
        for ref in span_refs:
            assert isinstance(resolve_ref(ref, streams), SpanStartEvent)

    def test_untraced_run_still_carries_event_provenance(self):
        fp = Fingerprinter(make_ext3_adapter(), workloads=SUBSET[:1])
        matrix = fp.run()
        for key, obs in matrix.cells.items():
            assert obs.provenance, f"cell {key} has no provenance"
            assert all("#e" in r for r in obs.provenance)


class TestCrashProvenance:
    @pytest.fixture(scope="class")
    def report(self):
        return explore("ext3", "creat", jobs=1)

    def test_every_violation_resolves(self, report):
        assert report.violations
        streams = report.streams()
        for violation in report.violations:
            assert violation.provenance
            for ref in violation.provenance:
                resolve_ref(ref, streams)

    def test_replay_span_names_the_state(self, report):
        streams = report.streams()
        for violation in report.violations:
            span_refs = [r for r in violation.provenance
                         if r.rpartition("#")[2].startswith("s")]
            assert span_refs, f"{violation.state_key}: no replay-span ref"
            start = resolve_ref(span_refs[0], streams)
            assert start.name == f"replay:{violation.state_key}"

    def test_violation_digest_excludes_provenance(self, report):
        # as_tuple is the cross-jobs (and cross-version) determinism
        # witness: adding provenance must not have widened it.
        assert all(len(v.as_tuple()) == 3 for v in report.violations)
