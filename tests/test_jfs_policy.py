"""JFS failure-policy tests: §5.3's "kitchen sink" behaviors and bugs."""

import pytest

from repro.common.errors import Errno, FSError, KernelPanic
from repro.disk import (
    CorruptionMode,
    Fault,
    FaultInjector,
    FaultKind,
    FaultOp,
    Persistence,
    corruption,
    read_failure,
    write_failure,
)
from repro.fs.jfs import JFS

from conftest import faulty_remount, make_jfs


@pytest.fixture
def prepared():
    disk, fs = make_jfs()
    fs.mount()
    fs.mkdir("/d")
    bs = fs.statfs().block_size
    fs.write_file("/d/big", bytes((i * 9) % 256 for i in range(30 * bs)))
    fs.write_file("/plain", b"plain jfs file")
    fs.unmount()
    injector, fs2 = faulty_remount("jfs", disk)
    return disk, injector, fs2


class TestGenericRetry:
    def test_metadata_reads_retried_once(self, prepared):
        """The generic layer retries once; a single transient fault is
        invisible to the caller (§5.3)."""
        _, injector, fs = prepared
        injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block_type="inode",
                           persistence=Persistence.TRANSIENT, transient_count=1))
        st = fs.stat("/plain")  # absorbed by the generic retry
        assert st.size == 14
        assert fs.syslog.has_event("read-retry")

    def test_sticky_read_fails_after_single_retry(self, prepared):
        _, injector, fs = prepared
        fault = injector.arm(read_failure("inode"))
        with pytest.raises(FSError) as e:
            fs.stat("/plain")
        assert e.value.errno is Errno.EIO
        assert fault._fired == 2  # first attempt + one generic retry


class TestWritePolicy:
    @pytest.mark.parametrize("btype", ["inode", "dir", "bmap", "j-data", "data"])
    def test_most_write_errors_ignored(self, prepared, btype):
        """The operation reports success while the write is lost —
        which can silently corrupt the volume (§5.3)."""
        _, injector, fs = prepared
        injector.arm(write_failure(btype))
        fd = fs.creat("/newfile")  # succeeds despite the lost write
        fs.write(fd, b"n" * 2048, offset=0)
        fs.close(fd)
        assert not fs.read_only
        assert not fs.syslog.has_event("write-error")
        assert [e for e in injector.trace.errors() if e.op == "write"]

    def test_journal_superblock_write_failure_crashes(self, prepared):
        """The lone exception: j-super write failure → crash (§5.3)."""
        _, injector, fs = prepared
        injector.arm(write_failure("j-super"))
        with pytest.raises(KernelPanic):
            fs.write_file("/x", b"y")
            fs.sync()  # checkpoint updates the journal superblock


class TestAllocationMapPolicy:
    def test_bmap_read_failure_crashes(self, prepared):
        """Block-allocation-map read failure crashes the system (§5.3)."""
        _, injector, fs = prepared
        injector.arm(read_failure("bmap"))
        with pytest.raises(KernelPanic):
            fs.write_file("/alloc", b"a" * 4096)

    def test_imap_read_failure_crashes(self, prepared):
        _, injector, fs = prepared
        injector.arm(read_failure("imap"))
        with pytest.raises(KernelPanic):
            fs.creat("/newfile")

    def test_bmap_corruption_caught_by_equality_check(self, prepared):
        """JFS's duplicated free-count field detects map corruption."""
        _, injector, fs = prepared
        injector.arm(corruption("bmap"))
        with pytest.raises(FSError) as e:
            fs.write_file("/alloc", b"a" * 4096)
        assert e.value.errno is Errno.EUCLEAN
        assert fs.syslog.has_event("sanity-fail")
        assert fs.read_only  # propagate + remount read-only

    def test_imap_control_read_failure_ignored_bug(self, prepared):
        """The generic layer detects and retries, but JFS ignores the
        error and proceeds (§5.3)."""
        _, injector, fs = prepared
        fault = injector.arm(read_failure("imap-cntl"))
        fd = fs.creat("/ignored-error-file")  # proceeds despite the failure
        fs.close(fd)
        assert fault._fired >= 2  # retried by the generic layer...
        assert fs.exists("/ignored-error-file")  # ...then ignored by JFS


class TestDualSuperblocks:
    def test_primary_read_error_uses_secondary(self):
        disk, fs = make_jfs()
        injector = FaultInjector(disk)
        injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block=0))
        fs2 = JFS(injector)
        fs2.mount()  # survives via the adjacent secondary copy
        assert fs2.syslog.has_event("redundancy-used")
        assert injector.trace.reads_of(1) >= 1

    def test_primary_corruption_does_not_use_secondary(self):
        """The paper's illogical inconsistency: a *corrupt* primary is
        not recovered from the intact secondary (§5.3)."""
        disk, fs = make_jfs()
        disk.poke(0, b"\x13" * disk.block_size)
        fs2 = JFS(disk)
        with pytest.raises(FSError) as e:
            fs2.mount()
        assert e.value.errno is Errno.EUCLEAN
        assert fs2.syslog.has_event("mount-failed")
        assert not fs2.syslog.has_event("redundancy-used")

    def test_copies_are_adjacent(self):
        """Spatial-locality vulnerability: the secondary sits right next
        to the primary, so one scratch can take both (§5.6)."""
        disk, fs = make_jfs()
        injector = FaultInjector(disk)
        injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block=0,
                           locality_run=1))
        fs2 = JFS(injector)
        with pytest.raises(FSError):
            fs2.mount()


class TestAggregateInode:
    def test_read_error_does_not_use_secondary_table(self):
        """Bug: the secondary aggregate-inode table is never consulted."""
        disk, fs = make_jfs()
        fs.mount()
        aggr_block = fs.config.aggr_inode_block
        fs.unmount()
        injector = FaultInjector(disk)
        injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block=aggr_block))
        fs2 = JFS(injector)
        with pytest.raises(FSError) as e:
            fs2.mount()
        assert e.value.errno is Errno.EIO
        # The adjacent secondary was readable but never read.
        assert injector.trace.reads_of(aggr_block + 1) == 0


class TestBlankPageBug:
    def test_corrupt_internal_tree_block_returns_blank_page(self, prepared):
        """A failed sanity check on an internal (extent tree) block
        yields zeroes to the user instead of an error (§5.3)."""
        _, injector, fs = prepared
        injector.arm(corruption("internal"))
        bs = fs.statfs().block_size
        data = fs.read_file("/d/big")
        assert len(data) == 30 * bs
        # Blocks reached through the corrupted internal node read as zero.
        assert data.count(0) > bs
        assert fs.syslog.has_event("sanity-fail")


class TestDirectorySanity:
    def test_dir_corruption_detected_and_remounts_ro(self, prepared):
        _, injector, fs = prepared
        injector.arm(corruption("dir", mode=CorruptionMode.FIELD,
                                corruptor=lambda p, t: b"\xff\xff\xff\xff" + p[4:]))
        with pytest.raises(FSError) as e:
            fs.getdirentries("/")
        assert e.value.errno is Errno.EUCLEAN
        assert fs.read_only
