"""Loss post-mortems: mode classification, causal chains, provenance
refs, and the campaign incident digest (repro.obs.postmortem)."""

import json
from dataclasses import dataclass, field
from typing import Optional, Tuple

import pytest

from repro.common import Severity
from repro.obs.events import FleetClockEvent, StorageEvent
from repro.obs.metrics import schema_root
from repro.obs.postmortem import (
    CAUSE_CAP,
    INCIDENT_MODES,
    build_incident,
    classify,
    fold_incidents,
    mode_counts,
    stream_label,
)
from repro.obs.trace import resolve_ref


def clock(t, tag, member=None, block=None):
    return FleetClockEvent(Severity.INFO, "fleet", tag, tag,
                           block=block, t_hours=t, member=member)


@dataclass
class FakeOutcome:
    """Duck-typed trial verdict — postmortem must not need the real
    fleet dataclass (layering: obs sits below fleet)."""

    geometry: str = "mirror2"
    policy: str = "baseline"
    trial: int = 0
    outcome: str = "detected-loss"
    site: str = "rebuild"
    ttdl_hours: Optional[float] = 100.0
    end_hours: float = 100.0
    stream: Tuple[StorageEvent, ...] = field(default_factory=tuple)
    dropped_events: int = 0


class TestClassify:
    def test_stopped_is_rstop_freeze(self):
        out = FakeOutcome(outcome="stopped", site="failstop")
        assert classify(out, members=2) == "rstop-freeze"

    def test_silent_loss_is_corruption_past_scrub(self):
        out = FakeOutcome(outcome="silent-loss", site="verify")
        assert classify(out, members=2) == "silent-corruption-past-scrub"

    def test_rebuild_site_is_double_fault(self):
        out = FakeOutcome(site="rebuild")
        assert classify(out, members=4) == "double-fault-in-rebuild-window"

    def test_unprotected_failstop(self):
        out = FakeOutcome(geometry="single", site="failstop")
        assert classify(out, members=1) == "whole-disk-fail-stop"

    def test_unprotected_read_error(self):
        out = FakeOutcome(geometry="single", site="foreground")
        assert classify(out, members=1) == "unrecovered-media-error"

    def test_scrub_site_is_unrepairable_damage(self):
        out = FakeOutcome(site="scrub")
        assert classify(out, members=2) == "scrub-unrepairable-damage"

    def test_redundant_read_loss_is_latent_exposure(self):
        for site in ("foreground", "verify", ""):
            out = FakeOutcome(site=site)
            assert classify(out, members=2) == \
                "latent-error-exposed-by-reconstruction"

    def test_every_mode_is_in_the_closed_vocabulary(self):
        cases = [
            (FakeOutcome(outcome="stopped"), 2),
            (FakeOutcome(outcome="silent-loss"), 2),
            (FakeOutcome(site="rebuild"), 2),
            (FakeOutcome(site="failstop"), 1),
            (FakeOutcome(site="foreground"), 1),
            (FakeOutcome(site="scrub"), 2),
            (FakeOutcome(site="foreground"), 2),
        ]
        assert {classify(out, m) for out, m in cases} == set(INCIDENT_MODES)


class TestBuildIncident:
    def test_causes_in_stream_order_with_resolvable_refs(self):
        stream = (
            clock(10.0, "lse-arrival", member=1, block=7),
            clock(20.0, "failstop-arrival", member=0),
            clock(20.0, "spare-seated", member=0),  # not a cause
            clock(30.0, "loss-established"),
        )
        out = FakeOutcome(stream=stream)
        incident = build_incident(out, members=2)
        assert [c.tag for c in incident.causes] == [
            "lse-arrival", "failstop-arrival", "loss-established"]
        assert [c.t_hours for c in incident.causes] == [10.0, 20.0, 30.0]
        streams = {stream_label(out): stream}
        for cause in incident.causes:
            event = resolve_ref(cause.ref, streams)
            assert event.tag == cause.tag
            assert event.t_hours == cause.t_hours

    def test_mode_and_site_carried(self):
        incident = build_incident(FakeOutcome(), members=2)
        assert incident.mode == "double-fault-in-rebuild-window"
        assert incident.site == "rebuild"
        assert incident.stream_label == "fleet:mirror2:baseline:0"

    def test_long_chains_keep_head_and_tail(self):
        stream = tuple(clock(float(i), "lse-arrival", member=0, block=i)
                       for i in range(50)) + (clock(50.0, "loss-established"),)
        incident = build_incident(FakeOutcome(stream=stream), members=2)
        assert len(incident.causes) == CAUSE_CAP
        assert incident.dropped_causes == 51 - CAUSE_CAP
        # Head preserved, terminal verdict preserved.
        assert incident.causes[0].t_hours == 0.0
        assert incident.causes[-1].tag == "loss-established"
        # Tail refs still resolve (indices are stream positions, not
        # positions in the capped cause list).
        streams = {incident.stream_label: stream}
        for cause in incident.causes:
            assert resolve_ref(cause.ref, streams).tag == cause.tag

    def test_ring_truncation_reported_honestly(self):
        incident = build_incident(
            FakeOutcome(stream=(clock(1.0, "loss-established"),),
                        dropped_events=123),
            members=2)
        assert incident.dropped_events == 123

    def test_record_is_json_serializable(self):
        incident = build_incident(
            FakeOutcome(stream=(clock(1.0, "lse-arrival", 0, 3),
                                clock(2.0, "loss-established"))),
            members=2)
        record = json.loads(json.dumps(incident.to_record()))
        assert record["mode"] == "double-fault-in-rebuild-window"
        assert record["causes"][0]["block"] == 3


class TestDigest:
    def test_fold_is_order_sensitive_and_content_sensitive(self):
        a = build_incident(FakeOutcome(trial=0), members=2)
        b = build_incident(FakeOutcome(trial=1), members=2)
        assert fold_incidents([a, b]) != fold_incidents([b, a])
        assert fold_incidents([a]) != fold_incidents([b])
        assert fold_incidents([a, b]) == fold_incidents([a, b])

    def test_mode_counts(self):
        incidents = [
            build_incident(FakeOutcome(trial=i), members=2)
            for i in range(3)
        ] + [build_incident(FakeOutcome(trial=9, outcome="stopped"),
                            members=2)]
        assert mode_counts(incidents) == {
            "double-fault-in-rebuild-window": 3,
            "rstop-freeze": 1,
        }


class TestContracts:
    def test_postmortem_does_not_import_fleet(self):
        import repro.obs.postmortem as pm

        source = open(pm.__file__).read()
        assert "import repro.fleet" not in source
        assert "from repro.fleet" not in source

    def test_schema_enum_matches_incident_modes(self):
        schema = json.loads(
            (schema_root() / "campaign_report.schema.json").read_text())
        enum = schema["properties"]["incidents"]["items"][
            "properties"]["mode"]["enum"]
        assert tuple(enum) == INCIDENT_MODES
