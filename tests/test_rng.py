"""Named-stream RNG derivation (repro.common.rng).

The two load-bearing guarantees: no-name streams are byte-identical to
the legacy ``random.Random(seed)`` convention (committed BENCH digests
depend on it), and named child seeds depend only on (root, name path) —
not on process, creation order, or sibling count — which is what makes
fleet campaigns schedule-independent.
"""

from __future__ import annotations

import random

from repro.common.rng import SEED_BITS, derive_seed, spawn_seeds, stream


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "lse", 3) == derive_seed(42, "lse", 3)

    def test_pinned_values(self):
        # Frozen: these exact values feed every committed fleet digest.
        # A change here is a silent break of BENCH_fleet.json.
        assert derive_seed(0) == 6912158355717386040
        assert derive_seed(20260807, "fleet", "mirror2", "baseline", 0) == \
            17592897632619435049
        assert derive_seed(42, "lse", 3) == 4533179118843124217

    def test_fits_seed_bits(self):
        for root in (0, 1, 2**64, -7):
            for names in ((), ("a",), ("a", 0), (1, 2, 3)):
                assert 0 <= derive_seed(root, *names) < 2**SEED_BITS

    def test_distinct_names_distinct_seeds(self):
        seeds = {derive_seed(7, proc, member)
                 for proc in ("failstop", "lse", "corrupt")
                 for member in range(8)}
        assert len(seeds) == 24

    def test_name_path_is_not_concatenation(self):
        # ("ab", "c") and ("a", "bc") must differ: names are
        # NUL-separated, not glued.
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")

    def test_independent_of_sibling_creation(self):
        before = derive_seed(99, "trial", 5)
        _ = [derive_seed(99, "trial", i) for i in range(100)]
        assert derive_seed(99, "trial", 5) == before

    def test_int_and_str_names_equivalent(self):
        # Names stringify, so 3 and "3" address the same stream — the
        # convenience trade documented in the module.
        assert derive_seed(5, 3) == derive_seed(5, "3")


class TestStream:
    def test_no_names_is_legacy_random(self):
        # The compatibility contract: converted call sites (workload
        # generators, fault noise) keep their historical byte streams.
        for seed in (0, 1, 1234, 20260807):
            legacy = random.Random(seed)
            named = stream(seed)
            assert [named.random() for _ in range(32)] == \
                [legacy.random() for _ in range(32)]

    def test_named_stream_reproducible(self):
        a = stream(42, "io")
        b = stream(42, "io")
        assert [a.getrandbits(32) for _ in range(16)] == \
            [b.getrandbits(32) for _ in range(16)]

    def test_named_streams_independent(self):
        draws = {name: stream(42, name).getrandbits(64)
                 for name in ("io", "noise", "placement")}
        assert len(set(draws.values())) == 3

    def test_named_differs_from_root(self):
        assert stream(42, "io").getrandbits(64) != \
            random.Random(42).getrandbits(64)


class TestSpawnSeeds:
    def test_batch_equals_per_index(self):
        seeds = spawn_seeds(7, 10, "trial")
        assert seeds == [derive_seed(7, "trial", i) for i in range(10)]

    def test_all_distinct(self):
        seeds = spawn_seeds(7, 200, "trial")
        assert len(set(seeds)) == 200
