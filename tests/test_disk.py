"""Tests for the simulated disk: storage semantics, timing, failure."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import OutOfRangeError, ReadError, WriteError
from repro.disk import DiskGeometry, SimulatedDisk, make_disk


class TestBasicIO:
    def test_unwritten_blocks_read_zero(self):
        disk = make_disk(16, 1024)
        assert disk.read_block(5) == b"\x00" * 1024

    def test_read_after_write(self):
        disk = make_disk(16, 512)
        payload = bytes(range(256)) * 2
        disk.write_block(3, payload)
        assert disk.read_block(3) == payload

    def test_write_wrong_size_rejected(self):
        disk = make_disk(4, 512)
        with pytest.raises(ValueError):
            disk.write_block(0, b"short")

    def test_out_of_range(self):
        disk = make_disk(4, 512)
        with pytest.raises(OutOfRangeError):
            disk.read_block(4)
        with pytest.raises(OutOfRangeError):
            disk.write_block(-1, b"\x00" * 512)

    def test_stats_accumulate(self):
        disk = make_disk(16, 512)
        disk.write_block(0, b"\x00" * 512)
        disk.read_block(0)
        disk.read_block(8)
        assert disk.stats.writes == 1
        assert disk.stats.reads == 2
        assert disk.stats.bytes_read == 1024


class TestTimingModel:
    def test_clock_advances(self):
        disk = make_disk(1024, 512)
        t0 = disk.clock
        disk.read_block(500)
        assert disk.clock > t0

    def test_sequential_cheaper_than_random(self):
        geo = dict(num_blocks=100000, block_size=512)
        seq = make_disk(**geo)
        for i in range(100):
            seq.read_block(i)
        rnd = make_disk(**geo)
        for i in range(100):
            rnd.read_block((i * 7919) % 100000)
        assert seq.clock < rnd.clock

    def test_stall_adds_time(self):
        disk = make_disk(4, 512)
        disk.stall(0.5)
        assert disk.clock == pytest.approx(0.5)
        with pytest.raises(ValueError):
            disk.stall(-1.0)

    def test_seek_time_monotone_in_distance(self):
        geo = DiskGeometry(num_blocks=10000, block_size=512)
        near = geo.seek_time(0, 10)
        far = geo.seek_time(0, 9000)
        assert 0 < near < far

    def test_same_and_next_block_are_free_seeks(self):
        geo = DiskGeometry(num_blocks=100, block_size=512)
        assert geo.seek_time(5, 5) == 0.0
        assert geo.seek_time(5, 6) == 0.0

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            DiskGeometry(num_blocks=0)
        with pytest.raises(ValueError):
            DiskGeometry(num_blocks=4, block_size=100)


class TestWholeDiskFailure:
    def test_fail_stop(self):
        disk = make_disk(8, 512)
        disk.write_block(0, b"\x01" * 512)
        disk.fail_whole_disk()
        with pytest.raises(ReadError):
            disk.read_block(0)
        with pytest.raises(WriteError):
            disk.write_block(1, b"\x00" * 512)

    def test_revive(self):
        disk = make_disk(8, 512)
        disk.write_block(0, b"\x01" * 512)
        disk.fail_whole_disk()
        disk.revive()
        assert disk.read_block(0) == b"\x01" * 512


class TestSnapshotRestore:
    def test_roundtrip(self):
        disk = make_disk(8, 512)
        disk.write_block(2, b"\xaa" * 512)
        snap = disk.snapshot()
        disk.write_block(2, b"\xbb" * 512)
        disk.restore(snap)
        assert disk.read_block(2) == b"\xaa" * 512
        assert disk.clock > 0  # the verification read itself costs time

    def test_restore_resets_clock_and_stats(self):
        disk = make_disk(8, 512)
        disk.write_block(1, b"\x00" * 512)
        snap = disk.snapshot()
        disk.restore(snap)
        assert disk.clock == 0.0
        assert disk.stats.reads == 0

    def test_size_mismatch_rejected(self):
        disk = make_disk(8, 512)
        with pytest.raises(ValueError):
            disk.restore([None] * 4)

    def test_cow_roundtrip_is_bit_identical(self):
        """snapshot -> mutate -> restore round-trips every block exactly,
        and the golden image itself is never modified (restore aliases
        it; writes privatize into the delta)."""
        disk = make_disk(8, 512)
        disk.write_block(1, b"\x01" * 512)
        disk.write_block(6, b"\x06" * 512)
        snap = disk.snapshot()
        golden = list(snap)  # independent record of the snapshot contents
        disk.restore(snap)
        disk.write_block(1, b"\xee" * 512)
        disk.write_block(3, b"\x33" * 512)
        disk.poke(6, b"\x99" * 512)
        assert snap == golden, "mutating a restored disk altered its snapshot"
        disk.restore(snap)
        for block in range(8):
            expected = golden[block] if golden[block] is not None else b"\x00" * 512
            assert disk.peek(block) == expected, f"block {block} differs"
        assert snap == golden

    def test_cow_restore_resets_head_clock_stats_identically(self):
        """restore()-via-aliasing must reset the timing state exactly as
        a fresh device: same head position, zero clock, zero stats."""
        disk = make_disk(1024, 512)
        disk.write_block(900, b"\x0a" * 512)  # drag the head far out
        snap = disk.snapshot()
        disk.read_block(500)
        disk.restore(snap)
        assert disk._head == 0
        assert disk.clock == 0.0
        assert disk.stats.reads == 0 and disk.stats.writes == 0
        assert disk.stats.seeks == 0 and disk.stats.busy_time_s == 0.0
        assert not disk.failed
        # Behavioral check: the restored disk charges the same time for
        # the same access pattern as a brand-new device.
        fresh = make_disk(1024, 512)
        for block in (700, 3, 350):
            disk.read_block(block)
            fresh.read_block(block)
        assert disk.clock == pytest.approx(fresh.clock)

    def test_many_restores_from_one_snapshot(self):
        """The harness pattern: one golden image restored per cell."""
        disk = make_disk(8, 512)
        disk.write_block(2, b"\xaa" * 512)
        snap = disk.snapshot()
        for fill in (b"\x10", b"\x20", b"\x30"):
            disk.restore(snap)
            disk.write_block(2, fill * 512)
            disk.write_block(5, fill * 512)
            assert disk.read_block(2) == fill * 512
        disk.restore(snap)
        assert disk.read_block(2) == b"\xaa" * 512
        assert disk.read_block(5) == b"\x00" * 512


class TestPeekPoke:
    def test_peek_costs_no_time(self):
        disk = make_disk(8, 512)
        disk.write_block(3, b"\x42" * 512)
        t = disk.clock
        assert disk.peek(3) == b"\x42" * 512
        assert disk.clock == t

    def test_poke_changes_contents_silently(self):
        disk = make_disk(8, 512)
        disk.poke(1, b"\x07" * 512)
        assert disk.read_block(1) == b"\x07" * 512
        assert disk.stats.writes == 0


@settings(max_examples=50)
@given(st.lists(st.tuples(st.integers(0, 31), st.binary(min_size=512, max_size=512)),
                max_size=40))
def test_property_disk_is_a_block_map(ops):
    """The disk behaves exactly as a dict of block -> last write."""
    disk = make_disk(32, 512)
    model = {}
    for block, payload in ops:
        disk.write_block(block, payload)
        model[block] = payload
    for block in range(32):
        expected = model.get(block, b"\x00" * 512)
        assert disk.read_block(block) == expected
