"""Tests for the simulated disk: storage semantics, timing, failure."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import OutOfRangeError, ReadError, WriteError
from repro.disk import DiskGeometry, SimulatedDisk, make_disk


class TestBasicIO:
    def test_unwritten_blocks_read_zero(self):
        disk = make_disk(16, 1024)
        assert disk.read_block(5) == b"\x00" * 1024

    def test_read_after_write(self):
        disk = make_disk(16, 512)
        payload = bytes(range(256)) * 2
        disk.write_block(3, payload)
        assert disk.read_block(3) == payload

    def test_write_wrong_size_rejected(self):
        disk = make_disk(4, 512)
        with pytest.raises(ValueError):
            disk.write_block(0, b"short")

    def test_out_of_range(self):
        disk = make_disk(4, 512)
        with pytest.raises(OutOfRangeError):
            disk.read_block(4)
        with pytest.raises(OutOfRangeError):
            disk.write_block(-1, b"\x00" * 512)

    def test_stats_accumulate(self):
        disk = make_disk(16, 512)
        disk.write_block(0, b"\x00" * 512)
        disk.read_block(0)
        disk.read_block(8)
        assert disk.stats.writes == 1
        assert disk.stats.reads == 2
        assert disk.stats.bytes_read == 1024


class TestTimingModel:
    def test_clock_advances(self):
        disk = make_disk(1024, 512)
        t0 = disk.clock
        disk.read_block(500)
        assert disk.clock > t0

    def test_sequential_cheaper_than_random(self):
        geo = dict(num_blocks=100000, block_size=512)
        seq = make_disk(**geo)
        for i in range(100):
            seq.read_block(i)
        rnd = make_disk(**geo)
        for i in range(100):
            rnd.read_block((i * 7919) % 100000)
        assert seq.clock < rnd.clock

    def test_stall_adds_time(self):
        disk = make_disk(4, 512)
        disk.stall(0.5)
        assert disk.clock == pytest.approx(0.5)
        with pytest.raises(ValueError):
            disk.stall(-1.0)

    def test_seek_time_monotone_in_distance(self):
        geo = DiskGeometry(num_blocks=10000, block_size=512)
        near = geo.seek_time(0, 10)
        far = geo.seek_time(0, 9000)
        assert 0 < near < far

    def test_same_and_next_block_are_free_seeks(self):
        geo = DiskGeometry(num_blocks=100, block_size=512)
        assert geo.seek_time(5, 5) == 0.0
        assert geo.seek_time(5, 6) == 0.0

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            DiskGeometry(num_blocks=0)
        with pytest.raises(ValueError):
            DiskGeometry(num_blocks=4, block_size=100)


class TestWholeDiskFailure:
    def test_fail_stop(self):
        disk = make_disk(8, 512)
        disk.write_block(0, b"\x01" * 512)
        disk.fail_whole_disk()
        with pytest.raises(ReadError):
            disk.read_block(0)
        with pytest.raises(WriteError):
            disk.write_block(1, b"\x00" * 512)

    def test_revive(self):
        disk = make_disk(8, 512)
        disk.write_block(0, b"\x01" * 512)
        disk.fail_whole_disk()
        disk.revive()
        assert disk.read_block(0) == b"\x01" * 512


class TestSnapshotRestore:
    def test_roundtrip(self):
        disk = make_disk(8, 512)
        disk.write_block(2, b"\xaa" * 512)
        snap = disk.snapshot()
        disk.write_block(2, b"\xbb" * 512)
        disk.restore(snap)
        assert disk.read_block(2) == b"\xaa" * 512
        assert disk.clock > 0  # the verification read itself costs time

    def test_restore_resets_clock_and_stats(self):
        disk = make_disk(8, 512)
        disk.write_block(1, b"\x00" * 512)
        snap = disk.snapshot()
        disk.restore(snap)
        assert disk.clock == 0.0
        assert disk.stats.reads == 0

    def test_size_mismatch_rejected(self):
        disk = make_disk(8, 512)
        with pytest.raises(ValueError):
            disk.restore([None] * 4)


class TestPeekPoke:
    def test_peek_costs_no_time(self):
        disk = make_disk(8, 512)
        disk.write_block(3, b"\x42" * 512)
        t = disk.clock
        assert disk.peek(3) == b"\x42" * 512
        assert disk.clock == t

    def test_poke_changes_contents_silently(self):
        disk = make_disk(8, 512)
        disk.poke(1, b"\x07" * 512)
        assert disk.read_block(1) == b"\x07" * 512
        assert disk.stats.writes == 0


@settings(max_examples=50)
@given(st.lists(st.tuples(st.integers(0, 31), st.binary(min_size=512, max_size=512)),
                max_size=40))
def test_property_disk_is_a_block_map(ops):
    """The disk behaves exactly as a dict of block -> last write."""
    disk = make_disk(32, 512)
    model = {}
    for block, payload in ops:
        disk.write_block(block, payload)
        model[block] = payload
    for block in range(32):
        expected = model.get(block, b"\x00" * 512)
        assert disk.read_block(block) == expected
