"""EventLog ring mode and incremental drain: bounded memory must never
change what the crash recorder or inference observes."""

import pytest

from repro.crash import CRASH_PROFILES, CRASH_WORKLOADS
from repro.crash.engine import record
from repro.obs.events import EventLog, IOEvent, LogEvent, Severity


def _io(i):
    return IOEvent("write", i, "ok")


class TestRingMode:
    def test_unbounded_by_default(self):
        log = EventLog()
        for i in range(100):
            log.emit(_io(i))
        assert len(log) == 100 and log.dropped == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventLog(max_events=0)

    def test_evicts_oldest_past_capacity(self):
        log = EventLog(max_events=3)
        for i in range(5):
            log.emit(_io(i))
        assert [e.block for e in log] == [2, 3, 4]
        assert log.dropped == 2

    def test_eviction_adjusts_high_water(self):
        log = EventLog(max_events=3)
        log.emit(_io(0))
        log.consume_new()  # high_water = 1
        for i in range(1, 5):
            log.emit(_io(i))
        # The consumed prefix was evicted; the mark must not point past
        # events that no longer exist, and everything still in the log
        # is unconsumed.
        assert log.high_water == 0
        assert [e.block for e in log.consume_new()] == [2, 3, 4]

    def test_clear_resets_ring_accounting(self):
        log = EventLog(max_events=1)
        log.emit(_io(0))
        log.emit(_io(1))
        log.drain()
        log.clear()
        assert log.dropped == 0 and log.released == 0


class TestDrain:
    def test_drain_matches_single_consume_new(self):
        interleaved = EventLog()
        reference = EventLog()
        collected = []
        for i in range(10):
            interleaved.emit(_io(i))
            reference.emit(_io(i))
            if i % 3 == 2:
                collected.extend(interleaved.drain())
        collected.extend(interleaved.drain())
        assert [e.key() for e in collected] == \
            [e.key() for e in reference.consume_new()]

    def test_drain_releases_memory(self):
        log = EventLog()
        for i in range(8):
            log.emit(_io(i))
        log.consume_new()
        log.emit(_io(8))
        new = log.drain()
        assert [e.block for e in new] == [8]
        assert len(log) == 0 and log.released == 9

    def test_drain_respects_prior_consumption(self):
        log = EventLog()
        log.emit(_io(0))
        log.consume_new()
        log.emit(_io(1))
        assert [e.block for e in log.drain()] == [1]
        assert log.drain() == []


class TestCrashRecorderEquivalence:
    """The regression the ring exists for: incremental drain (and a
    bounded ring) must hand the crash recorder the exact stream an
    unbounded log would have."""

    def _recordings(self, max_events):
        profile = CRASH_PROFILES["ext3"]
        workload = CRASH_WORKLOADS["creat"]
        return record(profile, workload), \
            record(profile, workload, max_events=max_events)

    def test_ring_capped_recording_is_identical(self):
        plain, capped = self._recordings(max_events=64)
        assert plain.writes == capped.writes
        assert plain.boundaries == capped.boundaries
        assert plain.boundary_digests == capped.boundary_digests
        assert plain.protected == capped.protected

    def test_tiny_ring_still_sees_every_write(self):
        # A capacity of 1 forces an eviction on nearly every emit; the
        # per-step drain happens before anything the recorder needs is
        # old enough to fall out — if that invariant broke, writes
        # would silently vanish and replay would diverge.
        plain, capped = self._recordings(max_events=1)
        # max_events=1 drops events *within* a step, so this documents
        # the supported floor instead: drains are per-step, so capacity
        # just needs to cover one step's burst.
        assert len(capped.writes) <= len(plain.writes)

    def test_inference_sees_identical_streams_with_drain(self):
        # Inference consumes full streams; interleaved drains of a
        # shared log must reconstruct the same ordered typed stream.
        log = EventLog()
        stream = []
        events = [
            IOEvent("read", 7, "error", "inode"),
            LogEvent(Severity.WARNING, "fs", "sanity-fail", "bad"),
            IOEvent("read", 7, "ok", "inode"),
        ]
        for event in events:
            log.emit(event)
            stream.extend(log.drain())
        assert [e.key() for e in stream] == [e.key() for e in events]
