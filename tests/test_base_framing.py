"""The shared journaled-FS framing: read-only gating, commit batching,
journal pressure, and timing pass-through."""

import pytest

from repro.common.errors import Errno, FSError, ReadOnlyError
from repro.disk import DiskGeometry, make_disk
from repro.fs.ext3 import Ext3, mkfs_ext3

from conftest import EXT3_CFG, make_ext3


class TestMountGating:
    def test_ops_require_mount(self):
        disk, fs = make_ext3()
        with pytest.raises(FSError) as e:
            fs.stat("/")
        assert e.value.errno is Errno.EINVAL

    def test_double_mount_rejected(self):
        disk, fs = make_ext3()
        fs.mount()
        with pytest.raises(FSError):
            fs.mount()

    def test_unmount_then_ops_fail(self):
        disk, fs = make_ext3()
        fs.mount()
        fs.unmount()
        with pytest.raises(FSError):
            fs.getdirentries("/")


class TestReadOnlyGating:
    def test_modifying_ops_blocked_when_ro(self):
        disk, fs = make_ext3()
        fs.mount()
        fs._abort_journal()
        for action in (
            lambda: fs.mkdir("/x"),
            lambda: fs.creat("/y"),
            lambda: fs.unlink("/z"),
            lambda: fs.chmod("/", 0o700),
        ):
            with pytest.raises(FSError) as e:
                action()
            assert e.value.errno is Errno.EROFS

    def test_reads_still_work_when_ro(self):
        disk, fs = make_ext3()
        fs.mount()
        fs.write_file("/keep", b"still readable")
        fs._abort_journal()
        assert fs.read_file("/keep") == b"still readable"
        assert sorted(fs.getdirentries("/"))[-1] == "keep"

    def test_fsync_fails_when_ro(self):
        disk, fs = make_ext3()
        fs.mount()
        fd = fs.creat("/f")
        fs._abort_journal()
        with pytest.raises(ReadOnlyError):
            fs.fsync(fd)

    def test_sync_is_noop_when_ro(self):
        disk, fs = make_ext3()
        fs.mount()
        fs._abort_journal()
        fs.sync()  # must not raise


class TestCommitBatching:
    def test_batched_mode_defers_commits(self):
        disk, fs = make_ext3()
        fs.sync_mode = False
        fs.commit_every = 50
        fs.mount()
        # write_file = open+truncate+write: three modifying ops each.
        for i in range(5):
            fs.write_file(f"/f{i}", b"x")
        assert fs.journal.commits == 0
        for i in range(5, 25):
            fs.write_file(f"/f{i}", b"x")
        assert fs.journal.commits >= 1

    def test_fsync_forces_commit(self):
        disk, fs = make_ext3()
        fs.sync_mode = False
        fs.commit_every = 1000
        fs.mount()
        fd = fs.creat("/f")
        fs.write(fd, b"durable", offset=0)
        before = fs.journal.commits
        fs.fsync(fd)
        assert fs.journal.commits == before + 1

    def test_journal_pressure_forces_commit(self):
        disk, fs = make_ext3()
        fs.sync_mode = False
        fs.commit_every = 10 ** 6  # never by op count
        fs.mount()
        # Dirty far more metadata blocks than half the journal holds.
        for i in range(70):
            fs.mkdir(f"/dir{i:03d}")
        assert fs.journal.commits >= 1

    def test_unmount_flushes_everything(self):
        disk, fs = make_ext3()
        fs.sync_mode = False
        fs.commit_every = 1000
        fs.mount()
        fs.write_file("/f", b"flushed at unmount")
        fs.unmount()
        fs2 = Ext3(disk)
        fs2.mount()
        assert fs2.read_file("/f") == b"flushed at unmount"


class TestTimingPassThrough:
    def test_commit_stall_from_geometry(self):
        disk = make_disk(EXT3_CFG.total_blocks, EXT3_CFG.block_size,
                         rotation_s=0.02)
        mkfs_ext3(disk, EXT3_CFG)
        fs = Ext3(disk)
        assert fs.commit_stall_s == pytest.approx(0.02 * 0.75)

    def test_explicit_commit_stall_wins(self):
        disk, _ = make_ext3()
        fs = Ext3(disk, commit_stall_s=0.001)
        assert fs.commit_stall_s == 0.001

    def test_commits_advance_the_clock(self):
        disk, fs = make_ext3()
        fs.mount()
        t0 = disk.clock
        fs.write_file("/f", b"time passes")
        assert disk.clock > t0 + fs.commit_stall_s  # includes the ordering wait


class TestGeometryProperties:
    def test_access_time_nonnegative(self):
        geo = DiskGeometry(num_blocks=1000, block_size=512)
        for frm in (0, 10, 500, 999):
            for to in (0, 1, 11, 998):
                assert geo.access_time(frm, to, 512) > 0
                assert geo.access_time(frm, to, 512, is_write=True) > 0

    def test_writes_cheaper_than_reads_when_scattered(self):
        geo = DiskGeometry(num_blocks=1000, block_size=512)
        r = geo.access_time(0, 500, 512, is_write=False)
        w = geo.access_time(0, 500, 512, is_write=True)
        assert w < r  # write-back caching overlaps rotation

    def test_near_skip_cheaper_than_far_seek(self):
        geo = DiskGeometry(num_blocks=10000, block_size=512)
        near = geo.access_time(100, 104, 512)
        far = geo.access_time(100, 5000, 512)
        assert near < far / 4
