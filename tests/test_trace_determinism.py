"""Tracing must not perturb results, and traced fan-outs must merge to
byte-identical span trees and metrics at any --jobs width."""

import json

import pytest

from repro.crash import explore
from repro.fingerprint import Fingerprinter, WORKLOAD_BY_KEY
from repro.fingerprint.adapters import make_ext3_adapter
from repro.obs.metrics import MetricsRegistry, validate_snapshot
from repro.taxonomy import render_full_figure

SUBSET = [WORKLOAD_BY_KEY[k] for k in "ab"]


@pytest.fixture(scope="module")
def traced_serial_and_parallel():
    fp1 = Fingerprinter(make_ext3_adapter(), workloads=SUBSET,
                        trace=True, metrics=True)
    fp4 = Fingerprinter(make_ext3_adapter(), workloads=SUBSET,
                        trace=True, metrics=True, jobs=4)
    return fp1.run(), fp4.run(), fp1, fp4


class TestFingerprintTraceDeterminism:
    def test_span_digests_identical_across_jobs(self, traced_serial_and_parallel):
        _, _, fp1, fp4 = traced_serial_and_parallel
        assert fp1.span_digest() == fp4.span_digest()
        assert fp1.workload_span_digest == fp4.workload_span_digest
        assert all(fp1.workload_span_digest.values())

    def test_merged_metrics_identical_across_jobs(self, traced_serial_and_parallel):
        _, _, fp1, fp4 = traced_serial_and_parallel
        m1, m4 = fp1.merged_metrics(), fp4.merged_metrics()
        assert json.dumps(m1, sort_keys=True) == json.dumps(m4, sort_keys=True)
        assert validate_snapshot(m1) == []

    def test_tracing_does_not_change_the_figure(self, traced_serial_and_parallel):
        m_traced, _, _, _ = traced_serial_and_parallel
        fp_plain = Fingerprinter(make_ext3_adapter(), workloads=SUBSET)
        m_plain = fp_plain.run()
        assert render_full_figure(m_traced) == render_full_figure(m_plain)
        for key in m_plain.cells:
            assert m_plain.cells[key].detection == m_traced.cells[key].detection
            assert m_plain.cells[key].recovery == m_traced.cells[key].recovery
        # The event digests folded per workload must also be unaffected:
        # a disabled tracer emits nothing into untraced streams, and
        # traced streams fold the same non-span events.
        assert fp_plain.workload_digest.keys() == \
            traced_serial_and_parallel[2].workload_digest.keys()

    def test_workload_metrics_merge_associatively(self, traced_serial_and_parallel):
        _, _, fp1, _ = traced_serial_and_parallel
        snaps = [s for s in fp1.workload_metrics.values() if s is not None]
        assert len(snaps) == len(SUBSET)
        left = MetricsRegistry.merge_snapshots(
            [MetricsRegistry.merge_snapshots(snaps[:1]), snaps[1]]
        )
        flat = MetricsRegistry.merge_snapshots(snaps)
        assert json.dumps(left, sort_keys=True) == json.dumps(flat, sort_keys=True)


class TestCrashTraceDeterminism:
    @pytest.fixture(scope="class")
    def reports(self):
        r1 = explore("ext3", "creat", jobs=1, trace=True)
        r4 = explore("ext3", "creat", jobs=4, trace=True)
        return r1, r4

    def test_span_digests_identical_across_jobs(self, reports):
        r1, r4 = reports
        assert r1.span_digest() == r4.span_digest()

    def test_violation_digest_unchanged_by_tracing(self, reports):
        r1, _ = reports
        plain = explore("ext3", "creat", jobs=1)
        assert r1.violation_digest() == plain.violation_digest()

    def test_traced_run_keeps_every_state_stream(self, reports):
        r1, _ = reports
        assert r1.traced
        assert len(r1.streams()) == r1.states_explored
