"""The typed storage-event pipeline: tag classification, EventLog
semantics, digests, and the SysLog rendering view's compatibility with
the historical string-based interface."""

from __future__ import annotations

import hashlib
import pickle

from repro.common.syslog import LogRecord, SysLog
from repro.obs.events import (
    DETECTION_MECHANISMS,
    POLICY_ACTION_TAGS,
    RECOVERY_MECHANISMS,
    DetectionEvent,
    EventLog,
    FaultArmedEvent,
    IOEvent,
    JournalCommitEvent,
    LogEvent,
    PolicyActionEvent,
    RecoveryEvent,
    Severity,
    classify_log,
    fold_digest,
)


class TestClassification:
    def test_detection_tags(self):
        for tag, mechanism in DETECTION_MECHANISMS.items():
            e = classify_log(Severity.ERROR, "ext3", tag, "boom", block=7)
            assert isinstance(e, DetectionEvent)
            assert e.kind == "detection"
            assert e.mechanism == mechanism

    def test_recovery_tags(self):
        for tag, mechanism in RECOVERY_MECHANISMS.items():
            e = classify_log(Severity.INFO, "jfs", tag, "again")
            assert isinstance(e, RecoveryEvent)
            assert e.mechanism == mechanism

    def test_policy_action_tags(self):
        for tag in POLICY_ACTION_TAGS:
            e = classify_log(Severity.ERROR, "ntfs", tag, "act")
            assert isinstance(e, PolicyActionEvent)
            assert e.action == tag

    def test_unknown_tag_stays_plain_log(self):
        e = classify_log(Severity.DEBUG, "x", "something-new", "?")
        assert type(e) is LogEvent
        assert e.kind == "log"

    def test_classification_tables_are_disjoint(self):
        det, rec = set(DETECTION_MECHANISMS), set(RECOVERY_MECHANISMS)
        assert not det & rec
        assert not det & POLICY_ACTION_TAGS
        assert not rec & POLICY_ACTION_TAGS


class TestEventSemantics:
    def test_keys_are_stable_content_tuples(self):
        a = IOEvent("read", 5, "ok", "inode")
        b = IOEvent("read", 5, "ok", "inode")
        assert a.key() == b.key() == ("io", "read", 5, "ok", "inode")
        assert a.key() != IOEvent("read", 5, "error", "inode").key()

    def test_kinds_distinguish_log_subclasses(self):
        d = DetectionEvent(Severity.ERROR, "s", "read-error", "m", mechanism="error-code")
        r = RecoveryEvent(Severity.INFO, "s", "read-retry", "m", mechanism="retry")
        assert d.key()[0] == "detection" and r.key()[0] == "recovery"

    def test_events_pickle_roundtrip(self):
        events = [
            IOEvent("write", 1, "ok"),
            FaultArmedEvent("read", "fail", block=3),
            JournalCommitEvent("ext3", ops=4),
            classify_log(Severity.ERROR, "ext3", "sanity-fail", "bad inode", 9),
        ]
        back = pickle.loads(pickle.dumps(events))
        assert [e.key() for e in back] == [e.key() for e in events]


class TestEventLog:
    def test_empty_log_is_truthy(self):
        """EventLog is sized, and an empty shared stream must never be
        mistaken for an absent one by `or`-style defaulting."""
        log = EventLog()
        assert len(log) == 0
        assert bool(log)

    def test_ordered_iteration_and_filters(self):
        log = EventLog()
        io = log.emit(IOEvent("read", 1, "ok"))
        det = log.emit(DetectionEvent(Severity.ERROR, "s", "read-error", "m",
                                      mechanism="error-code"))
        commit = log.emit(JournalCommitEvent("s"))
        assert list(log) == [io, det, commit]
        assert log.io_events() == [io]
        assert log.log_events() == [det]  # commits are not log lines
        assert log.of_type(JournalCommitEvent) == [commit]

    def test_remove_where_keeps_order(self):
        log = EventLog()
        for block in range(4):
            log.emit(IOEvent("read", block, "ok"))
        log.emit(PolicyActionEvent(Severity.ERROR, "s", "remount-ro", "m"))
        log.remove_where(lambda e: isinstance(e, IOEvent) and e.block % 2 == 0)
        assert [e.key()[0:3] for e in log] == [
            ("io", "read", 1), ("io", "read", 3),
            ("policy-action", Severity.ERROR, "s"),
        ]

    def test_digest_tracks_content_and_order(self):
        one, two = EventLog(), EventLog()
        for log in (one, two):
            log.emit(IOEvent("read", 1, "ok"))
            log.emit(IOEvent("write", 2, "ok"))
        assert one.digest() == two.digest()
        swapped = EventLog([IOEvent("write", 2, "ok"), IOEvent("read", 1, "ok")])
        assert swapped.digest() != one.digest()

    def test_fold_digest_separates_runs(self):
        """The run label is folded in, so the same events attributed to
        different runs produce different accumulated digests."""
        ev = [IOEvent("read", 1, "ok")]
        h1, h2 = hashlib.sha256(), hashlib.sha256()
        fold_digest(h1, "a:baseline", ev)
        fold_digest(h2, "b:baseline", ev)
        assert h1.hexdigest() != h2.hexdigest()
        h3 = hashlib.sha256()
        fold_digest(h3, "a:baseline", ev)
        assert h3.hexdigest() == h1.hexdigest()


class TestSysLogView:
    def test_string_interface_renders_typed_events(self):
        log = SysLog()
        log.error("ext3", "sanity-fail", "inode 3 bad", block=3)
        [rec] = log.records
        assert rec == LogRecord(Severity.ERROR, "ext3", "sanity-fail",
                                "inode 3 bad", 3)
        [event] = list(log.events_log)
        assert isinstance(event, DetectionEvent) and event.mechanism == "sanity"

    def test_typed_emitters_match_classify_log(self):
        """Converted call sites must be observationally identical to the
        string path: same event, bit for bit."""
        via_string, via_typed = SysLog(), SysLog()
        via_string.error("jfs", "sanity-fail", "m", block=2)
        via_typed.detection("jfs", "sanity-fail", "m", mechanism="sanity", block=2)
        via_string.info("jfs", "read-retry", "m")
        via_typed.recovery("jfs", "read-retry", "m", mechanism="retry")
        via_string.error("jfs", "remount-ro", "m")
        via_typed.action("jfs", "remount-ro", "m")
        assert via_string.events_log.key_sequence() == via_typed.events_log.key_sequence()
        assert via_string.render() == via_typed.render()

    def test_non_log_events_do_not_render(self):
        shared = EventLog()
        shared.emit(IOEvent("read", 1, "ok"))
        log = SysLog(shared)
        log.journal_commit("ext3", ops=3)
        log.error("ext3", "read-error", "m")
        assert len(log) == 1
        assert log.events() == ["read-error"]
        assert "journal" not in log.render()

    def test_clear_spares_other_layers_events(self):
        shared = EventLog()
        shared.emit(IOEvent("read", 1, "ok"))
        log = SysLog(shared)
        log.error("ext3", "read-error", "m")
        log.clear()
        assert len(log) == 0
        assert [e.kind for e in shared] == ["io"]  # injector history survives

    def test_queries(self):
        log = SysLog()
        log.warning("fs", "ignored-error", "dropped")
        log.error("fs", "read-error", "io", block=5)
        assert log.has_event("read-error") and not log.has_event("panic")
        assert [r.block for r in log.find("read-error")] == [5]
