"""Property-based checks for the fleet simulator.

The headline property is satellite 3: under a pure fail-stop process
the simulated mirror2 loss frequency must converge on the closed-form
two-failure integral for *any* (seed, rate) the strategy draws — the
simulation and the analytic model are two derivations of the same
quantity, so a drift between them is a bug in one of them.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.fleet.analytic import (
    binomial_tolerance,
    crosscheck_summary,
    mirror2_loss_probability,
)
from repro.fleet.rates import FaultRates, ZERO_RATES
from repro.fleet.sim import run_trial
from repro.fleet.spec import FleetSpec, GeometrySpec, PolicySpec

MIRROR2 = GeometrySpec("mirror2", "mirror", 2)

#: Fail-stop-only policy with a fixed repair window (no scrub, no
#: foreground reads: nothing but the two-failure process runs).
def _failstop_policy(rate: float) -> PolicySpec:
    return PolicySpec(
        "failstop-only", scrub_interval_hours=0.0, io_reads_per_tick=0,
        rates_override=FaultRates(rate, 0.0, 0.0, 0.0))


class TestAnalyticModel:
    @given(lam=st.floats(1e-7, 1e-2), repair=st.floats(0.0, 500.0),
           mission=st.floats(0.0, 1e6))
    def test_probability_bounds(self, lam, repair, mission):
        p = mirror2_loss_probability(lam, repair, mission)
        assert 0.0 <= p <= 1.0

    @given(lam=st.floats(1e-6, 1e-3), repair=st.floats(1.0, 100.0),
           mission=st.floats(100.0, 1e5))
    def test_monotone_in_every_axis(self, lam, repair, mission):
        p = mirror2_loss_probability(lam, repair, mission)
        assert mirror2_loss_probability(2 * lam, repair, mission) >= p
        assert mirror2_loss_probability(lam, 2 * repair, mission) >= p
        assert mirror2_loss_probability(lam, repair, 2 * mission) >= p

    @given(lam=st.floats(0.0, 1e-3), mission=st.floats(0.0, 1e5))
    def test_instant_repair_never_loses(self, lam, mission):
        assert mirror2_loss_probability(lam, 0.0, mission) == 0.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            mirror2_loss_probability(-1e-4, 10.0, 100.0)
        with pytest.raises(ValueError):
            binomial_tolerance(0.1, 0)

    @given(p=st.floats(0.0, 1.0), trials=st.integers(1, 10_000))
    def test_tolerance_positive_and_shrinks(self, p, trials):
        tol = binomial_tolerance(p, trials)
        assert tol > 0.0
        assert binomial_tolerance(p, 4 * trials) <= tol


class TestSimulationMatchesAnalytic:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1),
           rate=st.sampled_from([3e-4, 5.2e-4, 8e-4]))
    def test_mirror2_loss_converges_to_closed_form(self, seed, rate):
        """Satellite 3: simulated mirror2 loss frequency sits inside
        the binomial tolerance band around the closed form, for any
        root seed and several operating points."""
        policy = _failstop_policy(rate)
        spec = FleetSpec(trials=1, num_blocks=16, block_size=512,
                         mission_hours=10_000.0, seed=seed)
        trials = 60
        losses = sum(
            run_trial(spec, MIRROR2, policy, trial=t).lost
            for t in range(trials))
        repair = policy.replace_delay_hours + policy.rebuild_hours(
            spec.num_blocks)
        summary = crosscheck_summary(
            losses, trials, rate, repair, spec.mission_hours)
        assert summary["within_tolerance"], summary

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1),
           members=st.integers(2, 3))
    def test_zero_rates_survive_any_seed(self, seed, members):
        spec = FleetSpec(trials=1, num_blocks=16, block_size=512,
                         mission_hours=3000.0, seed=seed, rates=ZERO_RATES)
        geometry = GeometrySpec(f"mirror{members}", "mirror", members)
        out = run_trial(spec, geometry, PolicySpec("baseline"), trial=0)
        assert out.outcome == "survived"

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), trial=st.integers(0, 1000))
    def test_trial_purity_any_seed(self, seed, trial):
        """A trial is a pure function of (spec, cell, trial) — the
        keystone the --jobs determinism guarantee stands on."""
        spec = FleetSpec(trials=1, num_blocks=16, block_size=512,
                         mission_hours=1000.0, seed=seed)
        a = run_trial(spec, MIRROR2, PolicySpec("baseline"), trial=trial)
        b = run_trial(spec, MIRROR2, PolicySpec("baseline"), trial=trial)
        assert a == b
