"""ixt3's in-file-system scrubbing (§3.2): eager detection plus repair
from the redundancy the file system already maintains."""

import pytest

from repro.common.errors import FSError
from repro.disk import (
    CorruptionMode,
    Fault,
    FaultInjector,
    FaultKind,
    FaultOp,
    corruption,
    make_disk,
    read_failure,
)
from repro.fs.ixt3 import Ixt3, mkfs_ixt3

from conftest import IXT3_BASE, IXT3_CFG


def build():
    disk = make_disk(IXT3_CFG.total_blocks, IXT3_CFG.block_size)
    mkfs_ixt3(disk, IXT3_BASE, config=IXT3_CFG)
    fs = Ixt3(disk)
    fs.mount()
    fs.mkdir("/d")
    for i in range(3):
        fs.write_file(f"/d/f{i}", bytes([i + 1]) * 2500)
    fs.unmount()
    injector = FaultInjector(disk)
    fs2 = Ixt3(injector)
    fs2.mount()
    injector.set_type_oracle(fs2.block_type)
    return disk, injector, fs2


class TestCleanScrub:
    def test_clean_volume_scrubs_clean(self):
        disk, injector, fs = build()
        stats = fs.scrub()
        assert stats["scanned"] > 10
        assert stats["latent"] == stats["corrupt"] == 0
        assert stats["repaired"] == stats["lost"] == 0
        assert fs.syslog.has_event("scrub-complete")


class TestScrubRepairsAtRestDamage:
    def test_at_rest_corruption_found_and_repaired(self):
        disk, injector, fs = build()
        # Corrupt a data block at rest (no injected read fault).
        victim = next(b for b in range(disk.num_blocks)
                      if fs.block_type(b) == "data")
        good = disk.peek(victim)
        disk.poke(victim, b"\xbd" * disk.block_size)

        stats = fs.scrub()
        assert stats["corrupt"] >= 1
        assert stats["repaired"] >= 1
        assert disk.peek(victim) == good  # home copy rewritten

    def test_latent_error_repaired_through_parity(self):
        disk, injector, fs = build()
        victim = next(b for b in range(disk.num_blocks)
                      if fs.block_type(b) == "data")
        injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block=victim))
        stats = fs.scrub()
        assert stats["latent"] >= 1
        assert stats["repaired"] >= 1

    def test_metadata_corruption_repaired_from_replica(self):
        disk, injector, fs = build()
        victim = IXT3_CFG.inode_table_start(0)
        good = disk.peek(victim)
        disk.poke(victim, b"\x99" * disk.block_size)
        stats = fs.scrub()
        assert stats["corrupt"] >= 1
        assert stats["repaired"] >= 1
        assert disk.peek(victim) == good
        # And the namespace still works afterwards.
        assert fs.read_file("/d/f0") == b"\x01" * 2500

    def test_unrecoverable_damage_counted_as_lost(self):
        disk, injector, fs = build()
        victim = next(b for b in range(disk.num_blocks)
                      if fs.block_type(b) == "data")
        # Kill the block and its file's parity: nothing left to rebuild from.
        owner = fs._owner_of(victim)
        assert owner is not None
        _, inode, _ = owner
        injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block=victim))
        injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL,
                           block=inode.parity_block))
        stats = fs.scrub()
        assert stats["lost"] >= 1
        assert fs.syslog.has_event("scrub-loss")


class TestScrubbedVolumeSurvivesFaultRemoval:
    def test_repairs_are_durable(self):
        disk, injector, fs = build()
        victim = next(b for b in range(disk.num_blocks)
                      if fs.block_type(b) == "data")
        disk.poke(victim, b"\x77" * disk.block_size)
        fs.scrub()
        fs.unmount()
        fs2 = Ixt3(disk)
        fs2.mount()
        for i in range(3):
            assert fs2.read_file(f"/d/f{i}") == bytes([i + 1]) * 2500
