"""Units for the common substrate: errors, units, checksums, syslog."""

import pytest
from hypothesis import given, strategies as st

from repro.common import (
    CorruptionDetected,
    DiskError,
    Errno,
    FSError,
    KernelPanic,
    LogRecord,
    ReadError,
    ReadOnlyError,
    Severity,
    SysLog,
    WriteError,
    blocks_for,
    crc32,
    human_bytes,
    sha1,
    transaction_checksum,
)
from repro.common.checksum import SHA1_SIZE, crc32_bytes, verify_sha1
from repro.common.errors import OutOfRangeError


class TestErrors:
    def test_fserror_carries_errno(self):
        err = FSError(Errno.ENOENT, "gone")
        assert err.errno is Errno.ENOENT
        assert "gone" in str(err)

    def test_fserror_default_message(self):
        err = FSError(Errno.EIO)
        assert "EIO" in str(err)

    def test_read_write_errors_are_disk_errors(self):
        assert isinstance(ReadError(5), DiskError)
        assert isinstance(WriteError(5), DiskError)
        assert ReadError(5).op == "read"
        assert WriteError(5).op == "write"
        assert ReadError(7).block == 7

    def test_out_of_range_is_disk_error(self):
        err = OutOfRangeError(100, "read", 50)
        assert isinstance(err, DiskError)
        assert "100" in str(err)

    def test_readonly_error_is_erofs(self):
        assert ReadOnlyError().errno is Errno.EROFS

    def test_kernel_panic_message(self):
        p = KernelPanic("reiserfs", "bad block")
        assert "panic" in str(p)
        assert p.source == "reiserfs"

    def test_corruption_detected_carries_block(self):
        c = CorruptionDetected(42, "bad magic")
        assert c.block == 42
        assert "42" in str(c)


class TestUnits:
    def test_blocks_for(self):
        assert blocks_for(0, 1024) == 0
        assert blocks_for(1, 1024) == 1
        assert blocks_for(1024, 1024) == 1
        assert blocks_for(1025, 1024) == 2

    def test_blocks_for_rejects_negative(self):
        with pytest.raises(ValueError):
            blocks_for(-1, 1024)

    def test_human_bytes(self):
        assert human_bytes(512) == "512 B"
        assert human_bytes(1536) == "1.5 KB"
        assert human_bytes(3 * 1024 * 1024) == "3.0 MB"

    @given(st.integers(min_value=0, max_value=10**15), st.sampled_from([512, 1024, 4096]))
    def test_property_blocks_for_covers(self, nbytes, bs):
        n = blocks_for(nbytes, bs)
        assert n * bs >= nbytes
        assert (n - 1) * bs < nbytes or n == 0


class TestChecksums:
    def test_sha1_size(self):
        assert len(sha1(b"x")) == SHA1_SIZE

    def test_verify(self):
        digest = sha1(b"payload")
        assert verify_sha1(b"payload", digest)
        assert not verify_sha1(b"other", digest)

    def test_crc32_bytes_is_4(self):
        assert len(crc32_bytes(b"abc")) == 4
        assert crc32(b"abc") == crc32(b"abc")
        assert crc32(b"abc") != crc32(b"abd")

    def test_transaction_checksum_order_sensitive(self):
        a, b = b"block-a" * 10, b"block-b" * 10
        assert transaction_checksum([a, b]) != transaction_checksum([b, a])
        assert transaction_checksum([a, b]) == transaction_checksum([a, b])

    @given(st.lists(st.binary(max_size=64), max_size=8))
    def test_property_txn_checksum_deterministic(self, blocks):
        assert transaction_checksum(blocks) == transaction_checksum(list(blocks))


class TestSysLog:
    def test_append_and_query(self):
        log = SysLog()
        log.error("ext3", "read-error", "boom", block=7)
        log.info("ext3", "recovery", "done")
        assert len(log) == 2
        assert log.has_event("read-error")
        assert not log.has_event("panic")
        assert [r.block for r in log.find("read-error")] == [7]

    def test_severity_ordering(self):
        assert Severity.DEBUG < Severity.INFO < Severity.ERROR < Severity.CRITICAL

    def test_render_contains_fields(self):
        log = SysLog()
        log.critical("jfs", "panic", "dying", block=3)
        text = log.render()
        assert "CRITICAL" in text and "jfs" in text and "block=3" in text

    def test_clear(self):
        log = SysLog()
        log.warning("x", "y", "z")
        log.clear()
        assert len(log) == 0
        assert log.events() == []

    def test_records_are_frozen(self):
        rec = LogRecord(Severity.INFO, "a", "b", "c")
        with pytest.raises(AttributeError):
            rec.event = "other"
