"""ext3 failure-policy tests: the behaviors §5.1 documents, including
the bugs, must arise from the implementation's code paths."""

import pytest

from repro.common.errors import Errno, FSError, KernelPanic
from repro.disk import (
    CorruptionMode,
    Fault,
    FaultKind,
    FaultOp,
    Persistence,
    corruption,
    read_failure,
    write_failure,
)
from repro.fs.ext3.structures import Inode
from repro.fs.ext3.config import INODE_SIZE
from repro.vfs import O_RDONLY

from conftest import faulty_remount, make_ext3


@pytest.fixture
def prepared():
    """An ext3 volume with a directory tree and a multi-block file,
    remounted behind a fault injector."""
    disk, fs = make_ext3()
    fs.mount()
    fs.mkdir("/d")
    bs = fs.statfs().block_size
    fs.write_file("/d/file", bytes((i * 3) % 256 for i in range(30 * bs)))
    fs.write_file("/plain", b"plain contents")
    fs.mkdir("/empty")
    fs.unmount()
    injector, fs2 = faulty_remount("ext3", disk)
    return disk, injector, fs2


class TestReadFailures:
    def test_metadata_read_failure_propagates_eio(self, prepared):
        _, injector, fs = prepared
        injector.arm(read_failure("inode"))
        with pytest.raises(FSError) as e:
            fs.stat("/plain")
        assert e.value.errno is Errno.EIO
        assert fs.syslog.has_event("read-error")

    def test_metadata_read_failure_in_write_path_aborts_journal(self, prepared):
        _, injector, fs = prepared
        injector.arm(read_failure("bitmap"))
        with pytest.raises(FSError):
            fs.write_file("/newfile", b"x" * 4096)
        assert fs.read_only
        assert fs.syslog.has_event("journal-abort")
        assert fs.syslog.has_event("remount-ro")

    def test_data_read_failure_propagates_without_stop(self, prepared):
        _, injector, fs = prepared
        injector.arm(read_failure("data"))
        with pytest.raises(FSError) as e:
            fs.read_file("/d/file")
        assert e.value.errno is Errno.EIO
        assert not fs.read_only

    def test_multiblock_read_retries_requested_block_once(self, prepared):
        """The prefetch quirk: a transient failure inside a multi-block
        read is absorbed by retrying the originally requested block."""
        _, injector, fs = prepared
        injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block_type="data",
                           persistence=Persistence.TRANSIENT, transient_count=1))
        data = fs.read_file("/d/file")  # multi-block: retry saves it
        assert len(data) == 30 * fs.statfs().block_size


class TestWriteFailuresIgnored:
    @pytest.mark.parametrize("btype", ["inode", "bitmap", "i-bitmap", "dir",
                                       "super", "g-desc", "j-commit", "j-data"])
    def test_write_errors_silently_ignored(self, prepared, btype):
        """The headline ext3 bug: no write return code is ever checked."""
        _, injector, fs = prepared
        injector.arm(write_failure(btype))
        fs.mkdir("/fresh")  # succeeds despite the lost write
        assert not fs.read_only
        assert not fs.syslog.has_event("write-error")
        assert [e for e in injector.trace.errors() if e.op == "write"]

    def test_failed_journal_write_still_commits(self, prepared):
        """A failed j-data write does not stop the commit block (§5.1)."""
        _, injector, fs = prepared
        injector.arm(write_failure("j-data"))
        fs.mkdir("/doomed")
        jtypes = [e.block_type for e in injector.trace
                  if e.op == "write" and e.outcome == "ok"]
        assert "j-commit" in jtypes


class TestSilentFailureBugs:
    def test_truncate_fails_silently_on_indirect_read_error(self, prepared):
        _, injector, fs = prepared
        injector.arm(read_failure("indirect"))
        fs.truncate("/d/file", 10)  # no exception: silent failure
        assert fs.syslog.has_event("silent-failure")

    def test_rmdir_fails_silently_on_dir_read_error(self, prepared):
        _, injector, fs = prepared
        # Skip the lookup's read of the parent directory block; fail the
        # emptiness scan of /empty itself.
        injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL,
                           block_type="dir", match_index=1))
        fs.rmdir("/empty")  # returns "success" without doing anything
        assert fs.exists("/empty")
        assert fs.syslog.has_event("silent-failure")

    def test_unlink_crashes_on_zero_link_count(self, prepared):
        """unlink does not sanity-check the link count (§5.1)."""
        disk, injector, fs = prepared

        def zero_links(payload, btype):
            raw = bytearray(payload)
            for off in range(0, len(raw) - INODE_SIZE + 1, INODE_SIZE):
                inode = Inode.unpack(bytes(raw[off:off + INODE_SIZE]))
                if inode.is_allocated:
                    inode.links = 0
                    raw[off:off + INODE_SIZE] = inode.pack()
            return bytes(raw)

        injector.arm(corruption("inode", mode=CorruptionMode.FIELD, corruptor=zero_links))
        with pytest.raises(KernelPanic):
            fs.unlink("/plain")


class TestSanityChecks:
    def test_corrupt_superblock_fails_mount(self):
        disk, fs = make_ext3()
        disk.poke(0, b"\x00" * disk.block_size)
        with pytest.raises(FSError) as e:
            fs.mount()
        assert e.value.errno is Errno.EUCLEAN
        assert fs.syslog.has_event("sanity-fail")

    def test_open_detects_overly_large_size(self, prepared):
        disk, injector, fs = prepared

        def huge_size(payload, btype):
            raw = bytearray(payload)
            for off in range(0, len(raw) - INODE_SIZE + 1, INODE_SIZE):
                inode = Inode.unpack(bytes(raw[off:off + INODE_SIZE]))
                if inode.is_allocated and inode.mode & 0o100000:
                    inode.size = 1 << 60
                    raw[off:off + INODE_SIZE] = inode.pack()
            return bytes(raw)

        injector.arm(corruption("inode", mode=CorruptionMode.FIELD, corruptor=huge_size))
        with pytest.raises(FSError) as e:
            fs.open("/plain", O_RDONLY)
        assert e.value.errno is Errno.EUCLEAN
        assert fs.syslog.has_event("sanity-fail")

    def test_directory_corruption_is_not_detected(self, prepared):
        """Directories carry no type info; garbage parses blindly (§5.1)."""
        _, injector, fs = prepared
        injector.arm(corruption("dir"))
        try:
            fs.getdirentries("/d")  # blind parse: garbage or empty
        except FSError:
            pass  # downstream consequence, not detection
        assert not fs.syslog.has_event("sanity-fail")


class TestSuperblockReplicasUnused:
    def test_backups_written_at_mkfs_but_never_updated(self):
        disk, fs = make_ext3()
        fs.mount()
        cfg = fs.config
        backup_before = disk.peek(cfg.sb_backup_block(1))
        for i in range(5):
            fs.write_file(f"/f{i}", b"churn" * 100)
        fs.unmount()
        assert disk.peek(cfg.sb_backup_block(1)) == backup_before

    def test_backups_not_consulted_on_primary_failure(self):
        disk, fs = make_ext3()
        injector, fs2 = None, None
        from repro.disk import FaultInjector
        injector = FaultInjector(disk)
        injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block=0))
        from repro.fs.ext3 import Ext3
        fs2 = Ext3(injector)
        with pytest.raises(FSError):
            fs2.mount()  # no fallback to the copies: mount just fails
