"""Rendering sanity for the figure/table outputs the benchmarks save."""

import pytest

from repro.fingerprint import Fingerprinter, WORKLOAD_BY_KEY
from repro.fingerprint.adapters import make_ext3_adapter
from repro.taxonomy import render_full_figure, render_matrix


@pytest.fixture(scope="module")
def small_matrix():
    subset = [WORKLOAD_BY_KEY[k] for k in "bdg"]
    return Fingerprinter(make_ext3_adapter(), workloads=subset).run()


class TestFigureRendering:
    def test_every_row_appears_in_every_panel(self, small_matrix):
        for aspect in ("detection", "recovery"):
            for fc in ("read-failure", "write-failure", "corruption"):
                panel = render_matrix(small_matrix, aspect, fc)
                for btype in small_matrix.block_types:
                    assert btype[:13] in panel

    def test_column_count_matches_workloads(self, small_matrix):
        panel = render_matrix(small_matrix, "detection", "read-failure")
        header = panel.splitlines()[1]
        letters = header.split()
        assert letters == ["a", "b", "c"]

    def test_na_cells_render_as_dots(self, small_matrix):
        # Workload 'b' (read-only family) writes nothing: its whole
        # write-failure column is dots.
        panel = render_matrix(small_matrix, "recovery", "write-failure")
        lines = panel.splitlines()[2:]
        for line in lines:
            cells = line[14:].split()
            assert cells[0] == "."  # column a = access family

    def test_full_figure_structure(self, small_matrix):
        text = render_full_figure(small_matrix)
        assert text.count("ext3 Detection") == 3
        assert text.count("ext3 Recovery") == 3
        assert "Key for Detection" in text
        assert "a: access" in text

    def test_symbols_are_from_the_key(self, small_matrix):
        allowed = set("-|\\/?+> .")
        for aspect in ("detection", "recovery"):
            panel = render_matrix(small_matrix, aspect, "read-failure")
            for line in panel.splitlines()[2:]:
                for ch in line[14:].replace(" ", ""):
                    assert ch in allowed, ch


class TestResultFiles:
    def test_saved_artifacts_nonempty(self):
        import pathlib
        results = pathlib.Path(__file__).parent.parent / "benchmarks" / "results"
        if not results.exists():
            pytest.skip("benchmarks not yet run")
        for path in results.glob("*.txt"):
            assert path.stat().st_size > 40, path.name
