"""Property-based invariants for the redundancy arrays.

The core claim of every geometry is *erasure tolerance*: after any
random write history, killing any ``r`` members (1 for mirror/parity,
any 2 for RDP) must leave every logical block byte-identical through
the reconstruction path.  Hypothesis drives the write histories and
the choice of victims; scrub must likewise heal any single silently
corrupted member block it is allowed to locate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.redundancy import make_array
from repro.redundancy.rdp import _xor

NUM_BLOCKS = 24
BS = 512

GEOMETRY_CONFIGS = [("mirror", 2), ("mirror", 3), ("parity", 4), ("rdp", 5)]


def _xor_reference(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


@st.composite
def write_histories(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    return [
        (draw(st.integers(min_value=0, max_value=NUM_BLOCKS - 1)),
         bytes([draw(st.integers(min_value=0, max_value=255))]) * BS)
        for _ in range(n)
    ]


def _apply(array, history):
    contents = {}
    for block, data in history:
        array.write_block(block, data)
        contents[block] = data
    return contents


class TestErasureTolerance:
    @pytest.mark.parametrize("geometry,members", GEOMETRY_CONFIGS)
    @settings(max_examples=25, deadline=None)
    @given(history=write_histories(), data=st.data())
    def test_any_single_member_loss_is_invisible(
            self, geometry, members, history, data):
        array = make_array(geometry, NUM_BLOCKS, BS, members=members)
        contents = _apply(array, history)
        victim = data.draw(st.integers(
            min_value=0, max_value=len(array.members) - 1))
        array.fail_member(victim)
        for block, expected in sorted(contents.items()):
            assert array.read_block(block) == expected, (victim, block)

    @settings(max_examples=25, deadline=None)
    @given(history=write_histories(), data=st.data())
    def test_rdp_tolerates_any_two_member_losses(self, history, data):
        array = make_array("rdp", NUM_BLOCKS, BS, members=5)
        contents = _apply(array, history)
        n = len(array.members)
        pairs = [(a, b) for a in range(n) for b in range(a + 1, n)]
        va, vb = data.draw(st.sampled_from(pairs))
        array.fail_member(va)
        array.fail_member(vb)
        for block, expected in sorted(contents.items()):
            assert array.read_block(block) == expected, (va, vb, block)


class TestScrubHeals:
    @pytest.mark.parametrize("geometry,members", [("mirror", 3), ("rdp", 5)])
    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_scrub_repairs_any_single_silent_corruption(
            self, geometry, members, data):
        array = make_array(geometry, NUM_BLOCKS, BS, members=members)
        for block in range(NUM_BLOCKS):
            array.write_block(block, bytes([(block * 3 + 1) % 256]) * BS)
        block = data.draw(st.integers(min_value=0, max_value=NUM_BLOCKS - 1))
        m, mb = array._locate(block)
        good = array.members[m].disk.peek(mb)
        evil = data.draw(st.binary(min_size=BS, max_size=BS))
        if evil == good:
            return
        array.members[m].disk.poke(mb, evil)
        report = array.scrub()
        assert (m, mb) in report.repaired, (m, mb, report.unrepairable)
        assert array.members[m].disk.peek(mb) == good
        for b in range(NUM_BLOCKS):
            assert array.read_block(b) == bytes([(b * 3 + 1) % 256]) * BS


class TestXor:
    @settings(max_examples=200, deadline=None)
    @given(st.integers(min_value=0, max_value=4096), st.data())
    def test_wide_xor_matches_bytewise(self, n, data):
        a = data.draw(st.binary(min_size=n, max_size=n))
        b = data.draw(st.binary(min_size=n, max_size=n))
        assert _xor(a, b) == _xor_reference(a, b)

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_xor_identities(self, a):
        zero = bytes(len(a))
        assert _xor(a, a) == zero
        assert _xor(a, zero) == a

    def test_xor_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            _xor(b"ab", b"abc")
