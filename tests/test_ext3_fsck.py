"""fsck (R_repair): detection and repair of classic inconsistencies."""

import struct

import pytest

from repro.fs.ext3 import Ext3, mkfs_ext3
from repro.fs.ext3.config import ROOT_INO
from repro.fs.ext3.fsck import fsck_ext3
from repro.fs.ext3.structures import (
    DirEntry,
    FT_REG,
    Inode,
    inode_slot,
    pack_dir_block,
    patch_inode_block,
    unpack_dir_block,
)

from conftest import EXT3_CFG, make_ext3


def populated():
    disk, fs = make_ext3()
    fs.mount()
    fs.mkdir("/d")
    fs.write_file("/d/a", b"alpha" * 100)
    fs.write_file("/d/b", b"beta" * 400)
    fs.write_file("/top", b"top-level")
    fs.link("/top", "/hard")
    fs.unmount()
    return disk, fs


def inode_of(disk, path):
    fs = Ext3(disk)
    fs.mount()
    ino = fs.stat(path).ino
    fs.unmount()
    return ino


class TestCleanVolume:
    def test_fresh_volume_is_clean(self):
        disk, fs = make_ext3()
        report = fsck_ext3(disk)
        assert report.clean, report.render()

    def test_populated_volume_is_clean(self):
        disk, _ = populated()
        report = fsck_ext3(disk)
        assert report.clean, report.render()

    def test_volume_clean_after_crash_recovery(self):
        disk, fs0 = make_ext3()
        fs = Ext3(disk)
        fs.mount()
        fs.crash_after(lambda f: f.write_file("/x", b"y" * 3000))
        fs2 = Ext3(disk)
        fs2.mount()
        fs2.unmount()
        assert fsck_ext3(disk).clean


def corrupt_inode(disk, ino, mutate):
    from repro.fs.ext3.config import INODE_SIZE
    cfg = EXT3_CFG
    block, off = cfg.inode_location(ino)
    raw = disk.peek(block)
    inode = inode_slot(raw, off)
    mutate(inode)
    disk.poke(block, patch_inode_block(raw, off, inode))


class TestDetectionAndRepair:
    def test_bad_pointer_detected_and_cleared(self):
        disk, _ = populated()
        ino = inode_of(disk, "/d/a")
        corrupt_inode(disk, ino, lambda i: i.direct.__setitem__(0, 0x7FFFFFFF))

        report = fsck_ext3(disk)
        assert not report.clean
        assert any(i == ino for i, _ in report.bad_pointers)

        report = fsck_ext3(disk, repair=True)
        assert report.repaired
        assert fsck_ext3(disk).clean  # second pass is clean

    def test_bad_dir_entry_dropped(self):
        disk, _ = populated()
        # Find /d's directory block and append a bogus entry.
        d_ino = inode_of(disk, "/d")
        cfg = EXT3_CFG
        block, off = cfg.inode_location(d_ino)
        inode = inode_slot(disk.peek(block), off)
        dir_block = inode.direct[0]
        entries = unpack_dir_block(disk.peek(dir_block))
        entries.append(DirEntry(9999, FT_REG, "ghost"))
        disk.poke(dir_block, pack_dir_block(entries, cfg.block_size))

        report = fsck_ext3(disk)
        assert any(name == "ghost" for _, name in report.bad_dir_entries)

        fsck_ext3(disk, repair=True)
        assert fsck_ext3(disk).clean
        fs = Ext3(disk)
        fs.mount()
        assert "ghost" not in fs.getdirentries("/d")
        assert fs.read_file("/d/a") == b"alpha" * 100

    def test_wrong_link_count_repaired(self):
        disk, _ = populated()
        ino = inode_of(disk, "/top")  # true link count is 2 (/top + /hard)
        corrupt_inode(disk, ino, lambda i: setattr(i, "links", 9))

        report = fsck_ext3(disk)
        assert any(i == ino and expected == 2
                   for i, _, expected in report.wrong_link_counts)

        fsck_ext3(disk, repair=True)
        assert fsck_ext3(disk).clean
        fs = Ext3(disk)
        fs.mount()
        assert fs.stat("/top").nlink == 2

    def test_orphan_inode_reattached(self):
        disk, _ = populated()
        ino = inode_of(disk, "/top")
        # Remove /top and /hard from the root directory, leaving the
        # inode allocated but unreachable.
        cfg = EXT3_CFG
        block, off = cfg.inode_location(ROOT_INO)
        root = inode_slot(disk.peek(block), off)
        dir_block = root.direct[0]
        entries = [e for e in unpack_dir_block(disk.peek(dir_block))
                   if e.name not in ("top", "hard")]
        disk.poke(dir_block, pack_dir_block(entries, cfg.block_size))

        report = fsck_ext3(disk)
        assert ino in report.orphan_inodes

        fsck_ext3(disk, repair=True)
        fs = Ext3(disk)
        fs.mount()
        assert fs.read_file(f"/orphan-{ino}") == b"top-level"

    def test_stale_bitmap_rebuilt(self):
        disk, _ = populated()
        cfg = EXT3_CFG
        # Mark every data block allocated: classic leaked-space state.
        disk.poke(cfg.block_bitmap_block(1), b"\xff" * cfg.block_size)

        report = fsck_ext3(disk)
        assert report.bitmap_fixes >= 1

        fsck_ext3(disk, repair=True)
        assert fsck_ext3(disk).clean
        # The leaked space is usable again.
        fs = Ext3(disk)
        fs.mount()
        before = fs.statfs().free_blocks
        assert before > 0

    def test_wrong_free_counts_repaired(self):
        disk, _ = populated()
        raw = bytearray(disk.peek(0))
        struct.pack_into("<I", raw, 16, 1)  # free_blocks field
        disk.poke(0, bytes(raw))

        report = fsck_ext3(disk)
        assert report.counter_fixes >= 1
        fsck_ext3(disk, repair=True)
        assert fsck_ext3(disk).clean

    def test_doubly_claimed_block_detected(self):
        disk, _ = populated()
        a = inode_of(disk, "/d/a")
        b = inode_of(disk, "/d/b")
        cfg = EXT3_CFG
        blk_a, off_a = cfg.inode_location(a)
        target = inode_slot(disk.peek(blk_a), off_a).direct[0]
        corrupt_inode(disk, b, lambda i: i.direct.__setitem__(0, target))

        report = fsck_ext3(disk)
        assert target in report.doubly_claimed

    def test_invalid_superblock_reported(self):
        disk, _ = populated()
        disk.poke(0, b"\x00" * disk.block_size)
        report = fsck_ext3(disk)
        assert not report.clean
        assert "superblock" in report.render()
