"""Row-Diagonal Parity: every single and double erasure reconstructs."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.redundancy.rdp import RDPStripe, encode_blocks, is_prime


def make_stripe(p, bs=32, seed=7):
    import random
    rng = random.Random(seed)
    stripe = RDPStripe(p, bs)
    data = [[bytes(rng.randrange(256) for _ in range(bs))
             for _ in range(stripe.rows)]
            for _ in range(stripe.data_columns)]
    return stripe, data, stripe.encode(data)


class TestGeometry:
    def test_prime_required(self):
        with pytest.raises(ValueError):
            RDPStripe(4, 32)
        with pytest.raises(ValueError):
            RDPStripe(2, 32)
        RDPStripe(5, 32)

    def test_is_prime(self):
        primes = [n for n in range(2, 30) if is_prime(n)]
        assert primes == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]

    def test_shape(self):
        stripe, data, enc = make_stripe(5)
        assert len(enc) == 6            # p + 1 columns
        assert all(len(col) == 4 for col in enc)  # p - 1 rows

    def test_verify_accepts_and_rejects(self):
        stripe, data, enc = make_stripe(5)
        assert stripe.verify(enc)
        bad = [list(col) for col in enc]
        bad[0][0] = bytes(32)
        assert not stripe.verify(bad)


@pytest.mark.parametrize("p", [3, 5, 7, 11])
class TestErasures:
    def test_every_single_erasure(self, p):
        stripe, data, enc = make_stripe(p)
        for gone in range(p + 1):
            cols = [None if c == gone else enc[c] for c in range(p + 1)]
            rebuilt = stripe.reconstruct(cols)
            assert rebuilt == enc, f"column {gone}"

    def test_every_double_erasure(self, p):
        stripe, data, enc = make_stripe(p)
        for a, b in itertools.combinations(range(p + 1), 2):
            cols = [None if c in (a, b) else enc[c] for c in range(p + 1)]
            rebuilt = stripe.reconstruct(cols)
            assert rebuilt == enc, f"columns {a},{b}"

    def test_triple_erasure_rejected(self, p):
        stripe, data, enc = make_stripe(p)
        cols = [None, None, None] + [enc[c] for c in range(3, p + 1)]
        with pytest.raises(ValueError):
            stripe.reconstruct(cols)

    def test_no_erasure_is_identity(self, p):
        stripe, data, enc = make_stripe(p)
        assert stripe.reconstruct(enc) == enc


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 5), st.integers(0, 5), st.binary(min_size=16, max_size=16),
       st.integers(0, 2**31))
def test_property_double_erasure_random_stripes(a, b, blk, seed):
    stripe, data, enc = make_stripe(5, bs=16, seed=seed)
    cols = [None if c in (a, b) else enc[c] for c in range(6)]
    assert stripe.reconstruct(cols) == enc


class TestEncodeBlocks:
    def test_flat_packing_with_padding(self):
        blocks = [bytes([i]) * 64 for i in range(10)]
        stripes, padding = encode_blocks(blocks, p=5)
        per_stripe = 4 * 4
        assert padding == (-10) % per_stripe
        assert len(stripes) == 1
        # The data round-trips out of the stripe layout.
        flat = []
        for s in stripes:
            for c in range(4):
                flat.extend(s[c])
        assert flat[:10] == blocks

    def test_multiple_stripes(self):
        blocks = [bytes([i % 256]) * 16 for i in range(40)]
        stripes, padding = encode_blocks(blocks, p=5)
        assert len(stripes) == 3
        stripe = RDPStripe(5, 16)
        for s in stripes:
            assert stripe.verify(s)
