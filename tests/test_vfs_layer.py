"""Units for the VFS layer: paths, fd table, the generic buffer layer."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import Errno, FSError, ReadError, WriteError
from repro.common.syslog import SysLog
from repro.disk import Fault, FaultInjector, FaultKind, FaultOp, Persistence, make_disk
from repro.vfs import (
    BufferLayer,
    FDTable,
    O_RDONLY,
    O_RDWR,
    O_WRONLY,
    dirname_basename,
    is_ancestor,
    normalize,
    split_path,
)
from repro.vfs.paths import MAX_NAME_LEN


class TestPaths:
    def test_split_basic(self):
        assert split_path("/a/b/c") == ["a", "b", "c"]
        assert split_path("/") == []
        assert split_path("a//b/./c") == ["a", "b", "c"]

    def test_split_rejects_empty(self):
        with pytest.raises(FSError) as e:
            split_path("")
        assert e.value.errno is Errno.ENOENT

    def test_split_rejects_long_names(self):
        with pytest.raises(FSError) as e:
            split_path("/" + "x" * (MAX_NAME_LEN + 1))
        assert e.value.errno is Errno.ENAMETOOLONG

    def test_normalize_absolute(self):
        assert normalize("/a/b/../c") == "/a/c"
        assert normalize("/../..") == "/"
        assert normalize("/a/./b") == "/a/b"

    def test_normalize_relative_uses_cwd(self):
        assert normalize("x/y", cwd="/home") == "/home/x/y"
        assert normalize("../z", cwd="/home/me") == "/home/z"

    def test_dirname_basename(self):
        assert dirname_basename("/a/b/c") == ("/a/b", "c")
        assert dirname_basename("/top") == ("/", "top")

    def test_is_ancestor(self):
        assert is_ancestor("/a", "/a/b/c")
        assert is_ancestor("/a", "/a")
        assert not is_ancestor("/a/b", "/a")
        assert not is_ancestor("/ab", "/abc")  # no prefix confusion

    @given(st.lists(st.sampled_from(["a", "b", "..", ".", "x1"]), max_size=8))
    def test_property_normalize_idempotent(self, parts):
        path = "/" + "/".join(parts)
        once = normalize(path)
        assert normalize(once) == once
        assert once.startswith("/")
        assert ".." not in split_path(once)


class TestFDTable:
    def test_allocate_lowest_free(self):
        t = FDTable()
        a = t.allocate(1, O_RDONLY)
        b = t.allocate(2, O_RDONLY)
        assert b == a + 1
        t.close(a)
        assert t.allocate(3, O_RDONLY) == a  # lowest free reused

    def test_get_and_close(self):
        t = FDTable()
        fd = t.allocate(9, O_RDWR)
        assert t.get(fd).ino == 9
        t.close(fd)
        with pytest.raises(FSError) as e:
            t.get(fd)
        assert e.value.errno is Errno.EBADF

    def test_double_close(self):
        t = FDTable()
        fd = t.allocate(1, O_RDONLY)
        t.close(fd)
        with pytest.raises(FSError):
            t.close(fd)

    def test_flags_readable_writable(self):
        t = FDTable()
        r = t.get(t.allocate(1, O_RDONLY))
        w = t.get(t.allocate(1, O_WRONLY))
        rw = t.get(t.allocate(1, O_RDWR))
        assert r.readable and not r.writable
        assert w.writable and not w.readable
        assert rw.readable and rw.writable

    def test_close_all(self):
        t = FDTable()
        for i in range(5):
            t.allocate(i, O_RDONLY)
        t.close_all()
        assert len(t) == 0


def _layer(retries_r=0, retries_w=0):
    disk = make_disk(16, 512)
    for i in range(16):
        disk.write_block(i, bytes([i]) * 512)
    injector = FaultInjector(disk, type_oracle=lambda b: "blk")
    log = SysLog()
    return injector, log, BufferLayer(injector, log, "test",
                                      read_retries=retries_r,
                                      write_retries=retries_w)


class TestBufferLayer:
    def test_plain_read_write(self):
        injector, log, buf = _layer()
        buf.bwrite(3, b"\xaa" * 512)
        assert buf.bread(3) == b"\xaa" * 512

    def test_no_retries_fails_immediately(self):
        injector, log, buf = _layer(retries_r=0)
        injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block=3))
        with pytest.raises(ReadError):
            buf.bread(3)
        assert not log.has_event("read-retry")

    def test_retry_absorbs_transient(self):
        injector, log, buf = _layer(retries_r=2)
        injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block=3,
                           persistence=Persistence.TRANSIENT, transient_count=2))
        assert buf.bread(3) == bytes([3]) * 512
        assert sum(1 for r in log.records if r.event == "read-retry") == 2

    def test_retry_gives_up_on_sticky(self):
        injector, log, buf = _layer(retries_r=3)
        fault = injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block=3))
        with pytest.raises(ReadError):
            buf.bread(3)
        assert fault._fired == 4  # 1 + 3 retries

    def test_per_call_retry_override(self):
        injector, log, buf = _layer(retries_r=0)
        injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block=3,
                           persistence=Persistence.TRANSIENT, transient_count=1))
        assert buf.bread(3, retries=1) == bytes([3]) * 512

    def test_write_retry(self):
        injector, log, buf = _layer(retries_w=1)
        injector.arm(Fault(op=FaultOp.WRITE, kind=FaultKind.FAIL, block=5,
                           persistence=Persistence.TRANSIENT, transient_count=1))
        buf.bwrite(5, b"\xbb" * 512)
        assert log.has_event("write-retry")
        assert injector.lower.peek(5) == b"\xbb" * 512

    def test_bwrite_nocheck_swallows(self):
        injector, log, buf = _layer()
        injector.arm(Fault(op=FaultOp.WRITE, kind=FaultKind.FAIL, block=5))
        buf.bwrite_nocheck(5, b"\xcc" * 512)  # no exception: D_zero
        assert injector.lower.peek(5) == bytes([5]) * 512  # write lost

    def test_sticky_write_fails_after_retries(self):
        injector, log, buf = _layer(retries_w=2)
        with pytest.raises(WriteError):
            injector.arm(Fault(op=FaultOp.WRITE, kind=FaultKind.FAIL, block=5))
            buf.bwrite(5, b"\xdd" * 512)
