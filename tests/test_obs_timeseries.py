"""Virtual-clock time series: ring-bounded tracks, mergeable binned
series, the flight recorder, and their registry integration."""

import json

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    render_prometheus,
    validate_snapshot,
)
from repro.obs.timeseries import (
    SERIES_BINS,
    TRACK_CAP,
    FlightRecorder,
    TimeSeries,
    Track,
    labels_key,
)


class TestTrack:
    def test_accepts_everything_below_cap(self):
        track = Track("g", cap=16)
        for i in range(10):
            track.sample(float(i), float(i))
        assert track.samples == [(float(i), float(i)) for i in range(10)]
        assert track.stride == 1

    def test_bounded_by_cap_for_any_offer_count(self):
        track = Track("g", cap=32)
        for i in range(100_000):
            track.sample(float(i), 1.0)
        assert len(track.samples) < 32
        assert track.offered == 100_000

    def test_decimation_is_deterministic_in_offer_sequence(self):
        a, b = Track("g", cap=16), Track("g", cap=16)
        for i in range(5_000):
            a.sample(i * 0.5, i % 7)
            b.sample(i * 0.5, i % 7)
        assert a.samples == b.samples
        assert a.stride == b.stride

    def test_retained_samples_span_the_whole_timeline(self):
        track = Track("g", cap=16)
        for i in range(10_000):
            track.sample(float(i), 0.0)
        times = [t for t, _v in track.samples]
        assert times[0] == 0.0
        # After thinning, retained offers are multiples of the stride,
        # so coverage reaches at least the last accepted multiple.
        assert times[-1] >= 10_000 - track.stride

    def test_last_property(self):
        track = Track("g")
        assert track.last is None
        track.sample(1.0, 2.0)
        assert track.last == (1.0, 2.0)

    def test_cap_below_two_rejected(self):
        with pytest.raises(ValueError):
            Track("g", cap=1)


class TestTimeSeries:
    def test_bin_index_clamps_both_ends(self):
        series = TimeSeries("g", (), t_max=100.0, bins=10)
        assert series.bin_index(-5.0) == 0
        assert series.bin_index(0.0) == 0
        assert series.bin_index(99.9) == 9
        assert series.bin_index(100.0) == 9  # loss exactly at mission end
        assert series.bin_index(250.0) == 9

    def test_observe_tracks_count_sum_min_max(self):
        series = TimeSeries("g", (), t_max=10.0, bins=2)
        series.observe(1.0, 3.0)
        series.observe(2.0, 5.0)
        series.observe(9.0, 7.0)
        assert series.counts == [2, 1]
        assert series.sums == [8.0, 7.0]
        assert series.mins == [3.0, 7.0]
        assert series.maxs == [5.0, 7.0]

    def test_merge_is_associative_and_commutative(self):
        import random

        rnd = random.Random(11)
        # Exactly-representable values so float sums are order-free.
        obs = [(rnd.uniform(0, 50), float(rnd.randrange(16)))
               for _ in range(300)]

        def build(part):
            s = TimeSeries("g", (), 50.0, 8)
            for t, v in part:
                s.observe(t, v)
            return s

        a, b, c = build(obs[:100]), build(obs[100:180]), build(obs[180:])
        left = build([]).merge(a).merge(b).merge(c)
        right = build([]).merge(c).merge(b).merge(a)
        nested = build([]).merge(build([]).merge(a).merge(c)).merge(b)
        assert left.to_entry() == right.to_entry() == nested.to_entry()

    def test_merge_layout_mismatch_is_an_error(self):
        a = TimeSeries("g", (), 100.0, 10)
        with pytest.raises(ValueError):
            a.merge(TimeSeries("g", (), 100.0, 20))
        with pytest.raises(ValueError):
            a.merge(TimeSeries("g", (), 50.0, 10))

    def test_entry_round_trip(self):
        series = TimeSeries("g", labels_key({"cell": "m2"}), 10.0, 4)
        series.observe(1.0, 2.0)
        series.observe(8.0, 4.0)
        entry = series.to_entry()
        again = TimeSeries.from_entry(json.loads(json.dumps(entry)))
        assert again.to_entry() == entry

    def test_observe_track_folds_raw_samples(self):
        track = Track("g", cap=64)
        for i in range(20):
            track.sample(float(i), 1.0)
        series = TimeSeries("g", (), 20.0, 4)
        series.observe_track(track)
        assert series.count == 20


class TestFlightRecorder:
    def test_tracks_sorted_and_bounded(self):
        rec = FlightRecorder(cap=8)
        for i in range(1000):
            rec.sample("z_gauge", float(i), 1.0)
            rec.sample("a_gauge", float(i), 2.0)
        assert [t.name for t in rec.tracks()] == ["a_gauge", "z_gauge"]
        assert all(len(t.samples) < 8 for t in rec.tracks())
        assert len(rec) == 2

    def test_binned_entries_carry_labels(self):
        rec = FlightRecorder()
        rec.sample("g", 1.0, 5.0)
        entries = rec.binned(10.0, bins=4, geometry="mirror2",
                             policy="baseline")
        assert entries[0]["labels"] == {"geometry": "mirror2",
                                       "policy": "baseline"}
        assert entries[0]["bins"] == 4

    def test_snapshot_schema_tag(self):
        rec = FlightRecorder()
        rec.sample("g", 0.0, 1.0)
        snap = rec.to_snapshot()
        assert snap["schema"] == "repro-timeseries/1"
        assert snap["tracks"][0]["samples"] == [[0.0, 1.0]]


class TestRegistryIntegration:
    def test_timeseries_is_a_fourth_instrument(self):
        registry = MetricsRegistry()
        series = registry.timeseries("repro_fleet_latent_blocks", 100.0,
                                     10, geometry="mirror2")
        series.observe(5.0, 1.0)
        assert len(registry) == 1
        again = registry.timeseries("repro_fleet_latent_blocks", 100.0,
                                    10, geometry="mirror2")
        assert again is series

    def test_relayout_is_an_error(self):
        registry = MetricsRegistry()
        registry.timeseries("g", 100.0, 10)
        with pytest.raises(ValueError):
            registry.timeseries("g", 100.0, 20)

    def test_snapshot_round_trip_and_schema(self):
        registry = MetricsRegistry()
        series = registry.timeseries("g", 50.0, 5, cell="a")
        series.observe(10.0, 2.0)
        snap = registry.snapshot()
        assert validate_snapshot(snap) == []
        again = MetricsRegistry.from_snapshot(snap)
        assert again.snapshot() == snap

    def test_merge_folds_binwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.timeseries("g", 10.0, 2).observe(1.0, 1.0)
        b.timeseries("g", 10.0, 2).observe(8.0, 3.0)
        a.merge(b)
        entry = a.snapshot()["timeseries"][0]
        assert entry["counts"] == [1, 1]
        assert entry["sums"] == [1.0, 3.0]

    def test_old_snapshots_without_timeseries_still_load(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        snap = registry.snapshot()
        del snap["timeseries"]
        again = MetricsRegistry.from_snapshot(snap)
        assert again.snapshot()["counters"] == registry.snapshot()["counters"]

    def test_prometheus_renders_bin_means_with_timestamps(self):
        registry = MetricsRegistry()
        series = registry.timeseries("repro_fleet_degraded_members",
                                     100.0, 10, geometry="m2")
        series.observe(5.0, 1.0)
        series.observe(5.0, 3.0)
        text = render_prometheus(registry.snapshot())
        # Bin mean = 2, virtual timestamp = bin midpoint (5 h) in ms.
        assert ('repro_fleet_degraded_members{geometry="m2"} 2 '
                f"{5 * 3_600_000}") in text
        assert "# TYPE repro_fleet_degraded_members gauge" in text

    def test_defaults_are_sane(self):
        assert TRACK_CAP >= 64
        assert SERIES_BINS >= 12
