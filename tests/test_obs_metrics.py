"""Metrics registry: instruments, snapshots, associative merging,
Prometheus text rendering, event-stream accumulation, and the committed
JSON schema."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.events import (
    DetectionEvent,
    EventLog,
    FaultArmedEvent,
    IOEvent,
    JournalCommitEvent,
    PolicyActionEvent,
    RecoveryEvent,
    Severity,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    derive_rates,
    metrics_from_events,
    render_prometheus,
    validate_snapshot,
)
from repro.obs.trace import enable_tracing


class TestInstruments:
    def test_counter_accumulates_and_rejects_decrements(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_io_total", op="read", outcome="ok")
        c.inc()
        c.inc(3)
        assert c.value == 4
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_same_name_different_labels_are_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("repro_io_total", op="read").inc()
        reg.counter("repro_io_total", op="write").inc(2)
        snap = reg.snapshot()
        assert [c["value"] for c in snap["counters"]] == [1, 2]

    def test_label_order_does_not_split_series(self):
        reg = MetricsRegistry()
        reg.counter("x", a="1", b="2").inc()
        reg.counter("x", b="2", a="1").inc()
        assert len(reg.snapshot()["counters"]) == 1

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_io_latency_seconds", op="read")
        h.observe(LATENCY_BUCKETS[0] / 2)  # below the lowest bound
        assert all(n == 1 for n in h.bucket_counts)
        h.observe(LATENCY_BUCKETS[-1] * 10)  # above every bound
        assert all(n == 1 for n in h.bucket_counts)
        assert h.count == 2

    def test_histogram_bound_mismatch_is_an_error(self):
        reg = MetricsRegistry()
        reg.histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("h", bounds=(1.0, 5.0))


class TestSnapshots:
    def _sample(self, seed=1):
        reg = MetricsRegistry()
        reg.counter("repro_cache_hits_total", layer="block-cache").inc(3 * seed)
        reg.counter("repro_cache_misses_total", layer="block-cache").inc(seed)
        reg.gauge("repro_faults_currently_armed").set(seed)
        reg.histogram("repro_io_latency_seconds", op="read").observe(0.001 * seed)
        return reg

    def test_snapshot_round_trip(self):
        snap = self._sample().snapshot()
        again = MetricsRegistry.from_snapshot(snap).snapshot()
        assert json.dumps(snap, sort_keys=True) == json.dumps(again, sort_keys=True)

    def test_snapshot_is_deterministic(self):
        a = json.dumps(self._sample().snapshot(), sort_keys=True)
        b = json.dumps(self._sample().snapshot(), sort_keys=True)
        assert a == b

    def test_merge_sums_counters_and_maxes_gauges(self):
        merged = self._sample(1).merge(self._sample(2))
        snap = merged.snapshot()
        hits = next(c for c in snap["counters"]
                    if c["name"] == "repro_cache_hits_total")
        assert hits["value"] == 9
        armed = next(g for g in snap["gauges"]
                     if g["name"] == "repro_faults_currently_armed")
        assert armed["value"] == 2  # max, not sum

    def test_merge_snapshots_is_associative(self):
        snaps = [self._sample(s).snapshot() for s in (1, 2, 3)]
        left = MetricsRegistry.merge_snapshots([
            MetricsRegistry.merge_snapshots(snaps[:2]), snaps[2],
        ])
        right = MetricsRegistry.merge_snapshots([
            snaps[0], MetricsRegistry.merge_snapshots(snaps[1:]),
        ])
        flat = MetricsRegistry.merge_snapshots(snaps)
        assert json.dumps(left, sort_keys=True) == json.dumps(flat, sort_keys=True)
        assert json.dumps(right, sort_keys=True) == json.dumps(flat, sort_keys=True)

    def test_merge_rederives_hit_rate_from_summed_counters(self):
        merged = MetricsRegistry.merge_snapshots(
            [self._sample(1).snapshot(), self._sample(2).snapshot()]
        )
        rate = next(g for g in merged["gauges"]
                    if g["name"] == "repro_cache_hit_rate")
        # 9 hits / 12 lookups — not the max of the per-worker rates.
        assert rate["value"] == pytest.approx(9 / 12)

    def test_derive_rates_direct(self):
        reg = MetricsRegistry()
        reg.counter("repro_cache_hits_total", layer="l").inc(1)
        reg.counter("repro_cache_misses_total", layer="l").inc(3)
        derive_rates(reg)
        assert reg.gauge("repro_cache_hit_rate", layer="l").value == 0.25


class TestPrometheusText:
    def test_render_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.counter("repro_io_total", op="read", outcome="ok").inc(5)
        reg.gauge("repro_cache_hit_rate", layer="block-cache").set(0.5)
        h = reg.histogram("repro_io_latency_seconds", op="read",
                          bounds=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        text = render_prometheus(reg.snapshot())
        assert "# TYPE repro_io_total counter" in text
        assert 'repro_io_total{op="read",outcome="ok"} 5' in text
        assert "# TYPE repro_cache_hit_rate gauge" in text
        assert 'repro_io_latency_seconds_bucket{le="0.1",op="read"} 1' in text
        assert 'repro_io_latency_seconds_bucket{le="1",op="read"} 2' in text
        assert 'repro_io_latency_seconds_bucket{le="+Inf",op="read"} 2' in text
        assert 'repro_io_latency_seconds_count{op="read"} 2' in text

    def test_help_lines_present_for_known_families(self):
        reg = MetricsRegistry()
        reg.counter("repro_detections_total", level="D_sanity").inc()
        assert "# HELP repro_detections_total" in render_prometheus(reg.snapshot())


class TestMetricsFromEvents:
    def _stream(self):
        log = EventLog()
        tracer = enable_tracing(log)
        span = tracer.start("run", "run")
        log.emit(FaultArmedEvent(op="read", fault_kind="fail", block=7))
        log.emit(IOEvent("read", 7, "error", "inode"))
        log.emit(IOEvent("read", 8, "ok", "data"))
        log.emit(DetectionEvent(Severity.WARNING, "fs", "sanity-fail",
                                "bad inode", mechanism="sanity"))
        log.emit(RecoveryEvent(Severity.INFO, "fs", "retry-success",
                               "second attempt", mechanism="retry"))
        log.emit(PolicyActionEvent(Severity.ERROR, "fs", "remount-ro",
                                   "degrading"))
        log.emit(JournalCommitEvent(source="journal", ops=1))
        tracer.end(span)
        return log

    def _value(self, snap, name, **labels):
        for c in snap["counters"]:
            if c["name"] == name and all(
                c["labels"].get(k) == v for k, v in labels.items()
            ):
                return c["value"]
        return 0

    def test_iron_level_bucketing(self):
        snap = metrics_from_events(self._stream()).snapshot()
        assert self._value(snap, "repro_io_total", op="read", outcome="error") == 1
        assert self._value(snap, "repro_io_total", op="read", outcome="ok") == 1
        assert self._value(snap, "repro_faults_armed_total") == 1
        assert self._value(snap, "repro_faults_fired_total", op="read") == 1
        assert self._value(snap, "repro_detections_total", level="D_sanity") == 1
        assert self._value(snap, "repro_recoveries_total", level="R_retry") == 1
        # remount-ro is a stop action: counted under R_stop too.
        assert self._value(snap, "repro_recoveries_total", level="R_stop") == 1
        assert self._value(snap, "repro_policy_actions_total",
                           action="remount-ro") == 1
        assert self._value(snap, "repro_journal_commits_total") == 1
        assert self._value(snap, "repro_spans_total", category="run") == 1

    def test_accumulates_into_existing_registry(self):
        reg = metrics_from_events(self._stream())
        metrics_from_events(self._stream(), reg)
        snap = reg.snapshot()
        assert self._value(snap, "repro_faults_fired_total", op="read") == 2

    def test_stop_levels_match_inference_stop_actions(self):
        # The duplicated tag set must never drift from the inference
        # module's (obs cannot import fingerprint — import cycle).
        from repro.fingerprint.inference import STOP_ACTIONS
        from repro.obs.metrics import STOP_ACTION_TAGS

        assert STOP_ACTION_TAGS == STOP_ACTIONS


class TestSchemaValidation:
    def test_committed_schema_accepts_real_snapshots(self):
        snap = metrics_from_events(TestMetricsFromEvents()._stream()).snapshot()
        assert validate_snapshot(snap) == []

    def test_rejects_wrong_schema_tag(self):
        snap = MetricsRegistry().snapshot()
        snap["schema"] = "bogus/9"
        assert validate_snapshot(snap)

    def test_rejects_negative_counter(self):
        reg = MetricsRegistry()
        reg.counter("x").inc(2)
        snap = reg.snapshot()
        snap["counters"][0]["value"] = -1
        assert validate_snapshot(snap)

    def test_rejects_missing_sections_and_extra_keys(self):
        snap = MetricsRegistry().snapshot()
        del snap["gauges"]
        assert validate_snapshot(snap)
        snap2 = MetricsRegistry().snapshot()
        snap2["surprise"] = True
        assert validate_snapshot(snap2)

    def test_rejects_non_string_label_values(self):
        reg = MetricsRegistry()
        reg.counter("x", op="read").inc()
        snap = reg.snapshot()
        snap["counters"][0]["labels"]["op"] = 7
        assert validate_snapshot(snap)


class TestLabelEscaping:
    def test_backslash_quote_and_newline_escape(self):
        reg = MetricsRegistry()
        reg.counter("repro_io_total", path='a\\b"c\nd').inc()
        text = render_prometheus(reg.snapshot())
        assert 'path="a\\\\b\\"c\\nd"' in text
        # Exactly one physical sample line for the series: the newline
        # in the label value must not split the exposition.
        lines = [l for l in text.splitlines()
                 if l.startswith("repro_io_total{")]
        assert len(lines) == 1

    def test_backslash_escaped_before_quote(self):
        # A value ending in backslash must not swallow the closing
        # quote: \ -> \\ first, then " -> \".
        reg = MetricsRegistry()
        reg.counter("repro_io_total", path='trailing\\').inc()
        text = render_prometheus(reg.snapshot())
        assert 'path="trailing\\\\"' in text

    def test_plain_values_unchanged(self):
        reg = MetricsRegistry()
        reg.counter("repro_io_total", op="read").inc()
        assert 'op="read"' in render_prometheus(reg.snapshot())


class TestDeriveRatesGuards:
    def test_zero_reads_derives_no_hit_rate(self):
        reg = MetricsRegistry()
        reg.counter("repro_cache_hits_total", layer="buffer").inc(0)
        reg.counter("repro_cache_misses_total", layer="buffer").inc(0)
        derive_rates(reg)
        assert not any(e["name"] == "repro_cache_hit_rate"
                       for e in reg.snapshot()["gauges"])

    def test_zero_trials_derives_no_loss_probability(self):
        reg = MetricsRegistry()
        reg.counter("repro_fleet_trials_total", geometry="m2",
                    policy="base", outcome="survived").inc(0)
        derive_rates(reg)
        assert not any(e["name"] == "repro_fleet_loss_probability"
                       for e in reg.snapshot()["gauges"])

    def test_empty_registry_is_a_no_op(self):
        reg = MetricsRegistry()
        derive_rates(reg)
        assert len(reg) == 0

    def test_loss_probability_recomputed_from_summed_cells(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, lost in ((a, 1), (b, 3)):
            reg.counter("repro_fleet_trials_total", geometry="m2",
                        policy="base", outcome="detected-loss").inc(lost)
            reg.counter("repro_fleet_trials_total", geometry="m2",
                        policy="base", outcome="survived").inc(10 - lost)
        a.merge(b)
        derive_rates(a)
        gauge = [e for e in a.snapshot()["gauges"]
                 if e["name"] == "repro_fleet_loss_probability"]
        assert gauge and gauge[0]["value"] == pytest.approx(0.2)


class TestMergeOrderProperty:
    """Hypothesis: merging per-worker registries in ANY order (and any
    grouping) yields byte-identical snapshots and Prometheus text —
    counters and histogram buckets sum, gauges max, time-series bins
    fold, all associative and commutative."""

    @staticmethod
    def _apply(registry, op):
        kind, name, label, value = op
        if kind == 0:
            registry.counter(name, cell=label).inc(value)
        elif kind == 1:
            registry.gauge(name, cell=label).set(value)
        elif kind == 2:
            registry.histogram(
                name, bounds=(1.0, 10.0), cell=label).observe(value)
        else:
            registry.timeseries(
                name, 100.0, 8, cell=label).observe(value * 7.0, value)

    @given(
        parts=st.lists(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=3),
                    st.sampled_from(["m_alpha", "m_beta"]),
                    st.sampled_from(["a", "b"]),
                    # Small integers: exactly representable, so float
                    # sums cannot depend on addition order.
                    st.integers(min_value=0, max_value=12).map(float),
                ),
                max_size=12,
            ),
            min_size=1, max_size=4,
        ),
        order=st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_order_and_grouping_invariant(self, parts, order):
        def build(ops):
            registry = MetricsRegistry()
            for op in ops:
                self._apply(registry, op)
            return registry

        def dump(registry):
            derive_rates(registry)
            snap = registry.snapshot()
            return json.dumps(snap, sort_keys=True), render_prometheus(snap)

        # Left-to-right merge in the given order.
        forward = MetricsRegistry()
        for ops in parts:
            forward.merge(build(ops))
        # A shuffled order...
        shuffled_parts = list(parts)
        order.shuffle(shuffled_parts)
        shuffled = MetricsRegistry()
        for ops in shuffled_parts:
            shuffled.merge(build(ops))
        # ...and a nested grouping (pairwise tree instead of a chain).
        grouped = [build(ops) for ops in parts]
        while len(grouped) > 1:
            grouped = [a.merge(b) for a, b in
                       zip(grouped[::2], grouped[1::2])] + \
                (grouped[-1:] if len(grouped) % 2 else [])
        tree = grouped[0]

        assert dump(forward) == dump(shuffled) == dump(tree)
