"""Power-cut torture: a write-back drive may lose an arbitrary subset
of the most recent writes when power dies (§2.2's phantom writes).

The journal's crash guarantee must hold at *every* cut point:

* if the commit block is absent, the transaction must not replay;
* if the commit block made it but earlier journal copies did not
  (write-back reordering), plain ext3 replays stale bytes silently —
  while ixt3's transactional checksum detects the tear and refuses.

The scenarios run on the crash-exploration engine (``repro.crash``):
recording, state reconstruction, and oracles all come from the same
implementation the ``python -m repro crash`` command uses, so every
claim here is phrased as "state key X violates / passes oracle Y".
"""

from __future__ import annotations

import pytest

from repro.crash import (
    CRASH_PROFILES,
    CRASH_WORKLOADS,
    apply_state,
    check_state,
    enumerate_states,
    record,
    state_by_key,
    state_digest,
)
from repro.fingerprint.adapters import EXT3_FINGERPRINT_CONFIG
from repro.fs.ext3.fsck import fsck_ext3
from repro.fs.ext3.journal import parse_commit, parse_desc
from repro.fs.ixt3 import ixt3_config

EXT3_CFG = EXT3_FINGERPRINT_CONFIG
IXT3_CFG = ixt3_config(EXT3_FINGERPRINT_CONFIG)

_RECORDINGS = {}


def recording(fs_key):
    """One creat-workload recording per FS, cached per module (the
    recording is deterministic, so sharing it between tests is safe —
    each test reconstructs its own states via apply_state)."""
    if fs_key not in _RECORDINGS:
        _RECORDINGS[fs_key] = record(
            CRASH_PROFILES[fs_key], CRASH_WORKLOADS["creat"]
        )
    return _RECORDINGS[fs_key]


def journal_write_indices(rec, cfg):
    """Classify recorded journal writes: (copy indices, commit indices)."""
    jstart, jlen = cfg.journal_start, cfg.journal_blocks
    copies, commits = [], []
    for i, (block, data) in enumerate(rec.writes):
        if not jstart <= block < jstart + jlen:
            continue
        if parse_commit(data):
            commits.append(i)
        elif not parse_desc(data) and block != jstart:
            copies.append(i)
    return copies, commits


def torn_states_dropping(rec, indices):
    """The enumerated torn states whose lost write is one of *indices*."""
    wanted = set(indices)
    return [
        s for s in enumerate_states(rec)
        if s.dropped is not None and s.dropped in wanted
    ]


class TestExt3CutPoints:
    def test_every_clean_suffix_cut_is_consistent(self):
        """Losing any *suffix* of the in-order write stream (no
        reordering) always yields a consistent volume: either the txn
        replays fully or not at all.  Engine phrasing: every prefix
        state passes every oracle."""
        rec = recording("ext3")
        for state in enumerate_states(rec):
            if not state.key.startswith("prefix:"):
                continue
            obs = check_state(rec, state)
            assert not obs.violations, f"{state.key}: {obs.violations}"

    def test_lost_commit_block_means_no_replay(self):
        """Cutting just before an epoch's commit block lands on the
        *previous* epoch's boundary: the half-written transaction must
        not replay."""
        rec = recording("ext3")
        _, commits = journal_write_indices(rec, EXT3_CFG)
        assert commits, "the creat workload must write commit blocks"
        first_commit = commits[0]
        assert first_commit + 1 in rec.boundaries  # commit ends the epoch
        apply_state(rec, state_by_key(rec, f"prefix:{first_commit}"))
        fs = rec.adapter.make_fs(rec.disk)
        fs.mount()
        digest = state_digest(fs, rec.profile.digest_counts)
        # The recovered state is the epoch-0 boundary (= golden state).
        assert rec.boundary_digests[digest] == 0
        assert not fs.exists("/f0")  # step-1 transaction did not replay
        assert fs.read_file("/base") == rec.protected["/base"]
        fs.unmount()

    def test_reordered_loss_corrupts_plain_ext3(self):
        """Commit survived, one journaled copy did not: ext3 replays the
        stale pre-image with no idea anything is wrong — the engine's
        oracles report it, the syslog stays silent."""
        rec = recording("ext3")
        copies, _ = journal_write_indices(rec, EXT3_CFG)
        assert copies
        torn = torn_states_dropping(rec, copies)
        assert torn, "every journal copy must have a torn state"
        flagged = []
        for state in torn:
            obs = check_state(rec, state)
            if obs.violations:
                flagged.append(state.key)
            # Blind replay: ext3 has no checksum to notice the tear.
            apply_state(rec, state)
            fs = rec.adapter.make_fs(rec.disk)
            try:
                fs.mount()
            except Exception:
                continue
            assert not fs.syslog.has_event("txn-checksum-mismatch")
        assert flagged, "some torn journal-copy state must violate an oracle"


class TestIxt3TcCutPoints:
    def test_reordered_loss_detected_by_tc(self):
        """The transactional checksum catches the torn transaction and
        refuses to replay it; recovery lands on a commit boundary."""
        rec = recording("ixt3")
        copies, _ = journal_write_indices(rec, IXT3_CFG)
        assert copies
        state = torn_states_dropping(rec, copies)[0]
        obs = check_state(rec, state)
        assert not obs.violations, f"{state.key}: {obs.violations}"
        apply_state(rec, state)
        fs = rec.adapter.make_fs(rec.disk)
        fs.mount()
        assert fs.syslog.has_event("txn-checksum-mismatch")
        assert fs.read_file("/base") == rec.protected["/base"]
        fs.unmount()
        assert fsck_ext3(rec.disk).clean

    def test_every_single_copy_loss_detected(self):
        """No torn journal write slips past Tc, whichever copy is lost."""
        rec = recording("ixt3")
        copies, _ = journal_write_indices(rec, IXT3_CFG)
        for state in torn_states_dropping(rec, copies):
            obs = check_state(rec, state)
            assert not obs.violations, f"{state.key}: {obs.violations}"
            apply_state(rec, state)
            fs = rec.adapter.make_fs(rec.disk)
            fs.mount()
            assert fs.syslog.has_event("txn-checksum-mismatch"), state.key
            fs.unmount()

    def test_complete_transaction_still_replays(self):
        """Tc must not cost anything when nothing tore: the full write
        stream recovers to the final boundary with all three steps."""
        rec = recording("ixt3")
        full = state_by_key(rec, f"prefix:{len(rec.writes)}")
        obs = check_state(rec, full)
        assert not obs.violations
        apply_state(rec, full)
        fs = rec.adapter.make_fs(rec.disk)
        fs.mount()
        assert rec.boundary_digests[
            state_digest(fs, rec.profile.digest_counts)
        ] == len(rec.writes)
        assert fs.read_file("/newdir/f") == b"committed payload\n" * 4
        fs.unmount()

    def test_differential_same_cut_ext3_fails_ixt3_passes(self):
        """The head-to-head §6.1 claim at matching cut points: a torn
        journal copy that breaks stock ext3 is harmless under Tc."""
        ext3_rec = recording("ext3")
        ixt3_rec = recording("ixt3")
        ext3_copies, _ = journal_write_indices(ext3_rec, EXT3_CFG)
        broken = [
            s.key for s in torn_states_dropping(ext3_rec, ext3_copies)
            if check_state(ext3_rec, s).violations
        ]
        assert broken
        ixt3_keys = {s.key for s in enumerate_states(ixt3_rec)}
        rescued = [
            key for key in broken
            if key in ixt3_keys
            and not check_state(ixt3_rec, state_by_key(ixt3_rec, key)).violations
        ]
        assert rescued, "ixt3+Tc must pass cut points that break ext3"
