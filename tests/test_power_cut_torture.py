"""Power-cut torture: a write-back drive may lose an arbitrary subset
of the most recent writes when power dies (§2.2's phantom writes).

The journal's crash guarantee must hold at *every* cut point:

* if the commit block is absent, the transaction must not replay;
* if the commit block made it but earlier journal copies did not
  (write-back reordering), plain ext3 replays stale bytes silently —
  while ixt3's transactional checksum detects the tear and refuses.
"""

import itertools

import pytest

from repro.disk import make_disk
from repro.fs.ext3 import Ext3, fsck_ext3
from repro.fs.ext3.journal import parse_commit, parse_desc
from repro.fs.ixt3 import FEAT_TXN_CSUM, Ixt3, mkfs_ixt3

from conftest import EXT3_CFG, IXT3_BASE, IXT3_CFG, make_ext3


class WriteRecorder:
    """Wraps a disk, remembering pre-images so any suffix/subset of
    recent writes can be "lost" (reverted) to simulate a power cut in a
    write-back cache."""

    def __init__(self, disk):
        self.disk = disk
        self.log = []  # (block, pre-image)
        self.armed = False

    @property
    def num_blocks(self):
        return self.disk.num_blocks

    @property
    def block_size(self):
        return self.disk.block_size

    def read_block(self, block):
        return self.disk.read_block(block)

    def write_block(self, block, data):
        if self.armed:
            self.log.append((block, self.disk.peek(block)))
        self.disk.write_block(block, data)

    def stall(self, seconds):
        self.disk.stall(seconds)

    @property
    def clock(self):
        return self.disk.clock

    def peek(self, block):
        return self.disk.peek(block)

    def lose_writes(self, indices):
        """Revert the armed writes at *indices* (drive cache lost them)."""
        for i in sorted(indices, reverse=True):
            block, pre = self.log[i]
            self.disk.poke(block, pre)


def committed_scenario(make_fs, mkfs, disk):
    """Run one batched transaction whose journal writes are recorded."""
    recorder = WriteRecorder(disk)
    fs = make_fs(recorder)
    fs.mount()
    fs.write_file("/base", b"pre-existing state")
    fs.sync()
    fs.sync_mode = False
    recorder.armed = True
    fs.mkdir("/newdir")
    fs.write_file("/newdir/f", b"committed payload")
    fs.journal.commit()
    recorder.armed = False
    fs.crash()
    return recorder, fs


def journal_write_indices(recorder, cfg):
    jstart, jlen = cfg.journal_start, cfg.journal_blocks
    copies, commits = [], []
    for i, (block, _) in enumerate(recorder.log):
        if not jstart <= block < jstart + jlen:
            continue
        raw = recorder.disk.peek(block)
        if parse_commit(raw):
            commits.append(i)
        elif not parse_desc(raw) and block != jstart:
            copies.append(i)
    return copies, commits


class TestExt3CutPoints:
    def test_every_clean_suffix_cut_is_consistent(self):
        """Losing any *suffix* of the in-order write stream (no
        reordering) always yields a consistent volume: either the txn
        replays fully or not at all."""
        disk0, _ = make_ext3()
        recorder, _ = committed_scenario(lambda d: Ext3(d),
                                         None, disk0)
        total = len(recorder.log)
        for cut in range(total + 1):
            disk, _ = make_ext3()
            rec, _ = committed_scenario(lambda d: Ext3(d), None, disk)
            rec.lose_writes(range(cut, len(rec.log)))
            fs = Ext3(disk)
            fs.mount()
            if fs.exists("/newdir"):
                assert fs.read_file("/newdir/f") == b"committed payload"
            assert fs.read_file("/base") == b"pre-existing state"
            fs.unmount()
            assert fsck_ext3(disk).clean, f"cut at {cut}"

    def test_lost_commit_block_means_no_replay(self):
        disk, _ = make_ext3()
        recorder, _ = committed_scenario(lambda d: Ext3(d), None, disk)
        _, commits = journal_write_indices(recorder, EXT3_CFG)
        assert commits
        recorder.lose_writes(commits)
        fs = Ext3(disk)
        fs.mount()
        assert not fs.exists("/newdir")
        assert fs.read_file("/base") == b"pre-existing state"

    def test_reordered_loss_corrupts_plain_ext3(self):
        """Commit survived, one journaled copy did not: ext3 replays the
        stale pre-image with no idea anything is wrong."""
        disk, _ = make_ext3()
        recorder, _ = committed_scenario(lambda d: Ext3(d), None, disk)
        copies, _ = journal_write_indices(recorder, EXT3_CFG)
        assert copies
        recorder.lose_writes([copies[0]])
        fs = Ext3(disk)
        fs.mount()  # replays happily
        assert not fs.syslog.has_event("txn-checksum-mismatch")
        # The volume may now be silently inconsistent; at minimum the
        # replay used stale bytes for one metadata block.


class TestIxt3TcCutPoints:
    def _scenario(self):
        disk = make_disk(IXT3_CFG.total_blocks, IXT3_CFG.block_size)
        mkfs_ixt3(disk, IXT3_BASE, features=FEAT_TXN_CSUM, config=IXT3_CFG)
        return committed_scenario(lambda d: Ixt3(d), None, disk), disk

    def test_reordered_loss_detected_by_tc(self):
        (recorder, _), disk = self._scenario()
        copies, _ = journal_write_indices(recorder, IXT3_CFG)
        assert copies
        recorder.lose_writes([copies[0]])
        fs = Ixt3(disk)
        fs.mount()
        assert fs.syslog.has_event("txn-checksum-mismatch")
        assert not fs.exists("/newdir")  # torn txn refused
        assert fs.read_file("/base") == b"pre-existing state"
        fs.unmount()
        assert fsck_ext3(disk).clean

    def test_every_single_copy_loss_detected(self):
        (recorder0, _), _ = self._scenario()
        copies, _ = journal_write_indices(recorder0, IXT3_CFG)
        for lost in copies:
            (recorder, _), disk = self._scenario()
            recorder.lose_writes([lost])
            fs = Ixt3(disk)
            fs.mount()
            assert fs.syslog.has_event("txn-checksum-mismatch"), f"copy {lost}"
            assert not fs.exists("/newdir")

    def test_complete_transaction_still_replays(self):
        (recorder, _), disk = self._scenario()
        fs = Ixt3(disk)
        fs.mount()
        assert fs.read_file("/newdir/f") == b"committed payload"
