"""Inference edge cases: empty, read-only, and armed-but-unfired streams.

The policy-inference layer runs on whatever a workload happened to
produce.  Degenerate observations — no events at all, a workload that
only read, a fault that was armed but never fired — are legitimate
inputs and must classify as zero-policy (D_zero / R_zero), never
raise.
"""

from __future__ import annotations

import pytest

from repro.disk.faults import Fault, FaultKind, FaultOp
from repro.fingerprint.inference import RunObservation, infer_policy
from repro.fingerprint.workloads import OpResult
from repro.obs.events import FaultArmedEvent, IOEvent
from repro.taxonomy.detection import Detection
from repro.taxonomy.recovery import Recovery

READ_FAIL = Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block=7)
READ_CORRUPT = Fault(op=FaultOp.READ, kind=FaultKind.CORRUPT, block=7)


def observation(**kwargs) -> RunObservation:
    kwargs.setdefault("results", [])
    kwargs.setdefault("events", [])
    return RunObservation(**kwargs)


class TestEmptyStream:
    """A run that produced nothing at all."""

    @pytest.mark.parametrize("fault", [READ_FAIL, READ_CORRUPT])
    def test_empty_baseline_and_observed_is_zero_policy(self, fault):
        policy = infer_policy(observation(), observation(), fault, [])
        assert policy.detection == {Detection.ZERO}
        assert policy.recovery == {Recovery.ZERO}

    def test_empty_observed_against_busy_baseline(self):
        baseline = observation(
            results=[OpResult("read", None, "payload")],
            events=[IOEvent(op="read", block=7, outcome="ok")],
        )
        policy = infer_policy(baseline, observation(), READ_FAIL, [])
        # Nothing observed means nothing detected — but also nothing
        # recovered; the comparison must not crash on missing ops.
        assert Recovery.ZERO in policy.recovery or Recovery.STOP in policy.recovery

    def test_empty_redundancy_type_list(self):
        policy = infer_policy(observation(), observation(), READ_CORRUPT, [])
        assert Recovery.REDUNDANCY not in policy.recovery


class TestReadOnlyWorkload:
    """A workload that only read and saw identical results both runs."""

    def _runs(self):
        results = [OpResult("read", None, "same-bytes")]
        events = [IOEvent(op="read", block=3, outcome="ok", block_type="data")]
        return (
            observation(results=list(results), events=list(events)),
            observation(results=list(results), events=list(events)),
        )

    def test_identical_read_only_runs_are_zero_policy(self):
        baseline, observed = self._runs()
        policy = infer_policy(baseline, observed, READ_FAIL, ["data"])
        assert policy.detection == {Detection.ZERO}
        assert policy.recovery == {Recovery.ZERO}

    def test_no_retry_inferred_without_extra_requests(self):
        baseline, observed = self._runs()
        observed.fault_block = 3
        policy = infer_policy(baseline, observed, READ_FAIL, [])
        assert Recovery.RETRY not in policy.recovery

    def test_no_redundancy_inferred_from_equal_read_counts(self):
        baseline, observed = self._runs()
        policy = infer_policy(baseline, observed, READ_CORRUPT, ["data"])
        assert Recovery.REDUNDANCY not in policy.recovery


class TestArmedButUnfired:
    """The injector armed a fault the workload never tripped: the only
    'new' event is the arming marker itself."""

    def _observed(self):
        return observation(
            events=[
                FaultArmedEvent(op="read", fault_kind="fail", block=7),
            ],
            fault_fired=0,
        )

    def test_armed_only_stream_is_zero_policy(self):
        policy = infer_policy(observation(), self._observed(), READ_FAIL, [])
        assert policy.detection == {Detection.ZERO}
        assert policy.recovery == {Recovery.ZERO}

    def test_armed_only_stream_under_corruption_fault(self):
        policy = infer_policy(observation(), self._observed(), READ_CORRUPT, [])
        assert policy.detection == {Detection.ZERO}
        assert policy.recovery == {Recovery.ZERO}

    def test_typed_accessors_ignore_armed_markers(self):
        obs = self._observed()
        assert obs.io_events() == []
        assert obs.log_tags() == []
        assert not obs.recovery_mechanisms()
        assert not obs.detection_mechanisms()
        assert not obs.policy_actions()
