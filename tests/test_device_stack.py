"""DeviceStack: declarative layer composition with one shared event
stream and a lifecycle (flush / snapshot / restore / stats) that
propagates correctly through every layer, under any stacking order."""

from __future__ import annotations

import pytest

from repro.disk import (
    BlockCache,
    DeviceStack,
    Fault,
    FaultInjector,
    FaultKind,
    FaultOp,
    SimulatedDisk,
    make_disk,
)
from repro.common.errors import ReadError
from repro.disk.recorder import WriteRecorder
from repro.fs.ext3 import Ext3, mkfs_ext3
from repro.obs.events import EventLog, FaultArmedEvent, IOEvent, WriteImageEvent

from tests.conftest import EXT3_CFG

BLOCKS = 64
BS = 512


def payload(tag: int) -> bytes:
    return bytes([tag]) * BS


def read_fail_at(block: int) -> Fault:
    return Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block=block)


class TestComposition:
    def test_bare_stack_is_passthrough(self):
        stack = DeviceStack.build(BLOCKS, BS)
        assert stack.injector is None and stack.cache is None
        assert stack.top is stack.disk
        assert stack.describe() == "SimulatedDisk"

    def test_injector_only(self):
        stack = DeviceStack.build(BLOCKS, BS, inject=True)
        assert isinstance(stack.top, FaultInjector)
        assert stack.describe() == "SimulatedDisk -> FaultInjector"

    def test_cache_only(self):
        stack = DeviceStack.build(BLOCKS, BS, cache_blocks=8)
        assert isinstance(stack.top, BlockCache)
        assert stack.describe() == "SimulatedDisk -> BlockCache"

    def test_full_stack_canonical_order(self):
        stack = DeviceStack.build(BLOCKS, BS, inject=True, cache_blocks=8)
        assert stack.describe() == "SimulatedDisk -> FaultInjector -> BlockCache"
        assert stack.layers() == [stack.disk, stack.injector, stack.cache]
        # The cache sits above the injector, which sits above the disk.
        assert stack.cache.lower is stack.injector
        assert stack.injector.lower is stack.disk

    def test_wraps_existing_disk(self):
        disk = make_disk(BLOCKS, BS)
        disk.write_block(3, payload(7))
        stack = DeviceStack(disk, inject=True)
        assert stack.disk is disk
        assert stack.read_block(3) == payload(7)

    def test_block_device_protocol_delegates_to_top(self):
        stack = DeviceStack.build(BLOCKS, BS, inject=True, cache_blocks=8)
        assert stack.num_blocks == BLOCKS
        assert stack.block_size == BS
        stack.write_block(5, payload(1))
        assert stack.read_block(5) == payload(1)
        assert stack.disk.peek(5) == payload(1)  # write-through reached the medium

    def test_gray_box_access_bypasses_upper_layers(self):
        stack = DeviceStack.build(BLOCKS, BS, inject=True, cache_blocks=8)
        stack.poke(9, payload(2))
        assert stack.peek(9) == payload(2)
        # poke went straight to the medium: no I/O event, no cache fill.
        assert stack.events.io_events() == []
        assert stack.cache.misses == 0


class TestEventSharing:
    def test_one_log_spans_all_layers(self):
        stack = DeviceStack.build(BLOCKS, BS, inject=True, cache_blocks=8)
        assert stack.injector.events is stack.events
        assert stack.cache.events is stack.events

    def test_empty_shared_log_is_still_adopted(self):
        """Regression: EventLog is sized, so an empty one is len()==0 —
        layer adoption must not treat it as absent and fork the stream."""
        shared = EventLog()
        assert len(shared) == 0 and bool(shared)
        stack = DeviceStack.build(BLOCKS, BS, inject=True, events=shared)
        assert stack.events is shared
        assert stack.injector.events is shared

    def test_mounted_fs_joins_the_stream(self):
        disk = make_disk(EXT3_CFG.total_blocks, EXT3_CFG.block_size)
        mkfs_ext3(disk, EXT3_CFG)
        stack = DeviceStack(disk, inject=True)
        fs = Ext3(stack)
        assert fs.events is stack.events
        assert fs.syslog.events_log is stack.events

    def test_injector_io_and_arming_are_typed_events(self):
        stack = DeviceStack.build(BLOCKS, BS, inject=True)
        stack.write_block(4, payload(3))
        stack.injector.arm(read_fail_at(4))
        with pytest.raises(ReadError):
            stack.read_block(4)
        kinds = [e.kind for e in stack.events]
        assert kinds == ["io", "fault-armed", "io"]
        armed = stack.events.of_type(FaultArmedEvent)[0]
        assert (armed.op, armed.fault_kind, armed.block) == ("read", "fail", 4)
        failed = stack.events.io_events()[-1]
        assert (failed.op, failed.block, failed.outcome) == ("read", 4, "error")


class TestLifecycle:
    @pytest.mark.parametrize("kwargs", [
        {},
        {"inject": True},
        {"cache_blocks": 8},
        {"inject": True, "cache_blocks": 8},
    ])
    def test_snapshot_restore_any_stacking_order(self, kwargs):
        stack = DeviceStack.build(BLOCKS, BS, **kwargs)
        stack.write_block(2, payload(1))
        snap = stack.snapshot()
        stack.write_block(2, payload(9))
        stack.restore(snap)
        assert stack.read_block(2) == payload(1)

    def test_cache_invalidated_on_restore(self):
        """Regression (the stale-read bug): a restore that rewinds the
        medium but leaves the LRU populated serves pre-restore data."""
        stack = DeviceStack.build(BLOCKS, BS, cache_blocks=8)
        stack.write_block(2, payload(1))
        snap = stack.snapshot()
        stack.write_block(2, payload(9))     # now hot in the LRU
        assert stack.cache.read_block(2) == payload(9)
        stack.restore(snap)
        assert stack.read_block(2) == payload(1)   # not the cached 9s
        assert stack.disk.peek(2) == payload(1)

    def test_restore_on_bare_cache_invalidates_too(self):
        """The fix lives in BlockCache.restore itself, not in the stack
        wrapper — hand-wired caches get it as well."""
        disk = make_disk(BLOCKS, BS)
        cache = BlockCache(disk, capacity_blocks=8)
        cache.write_block(2, payload(1))
        snap = cache.snapshot()
        cache.write_block(2, payload(9))
        cache.restore(snap)
        assert cache.read_block(2) == payload(1)
        assert cache.hits == 0 and cache.misses == 1  # stats reset, cold read

    def test_restore_drops_io_history_keeps_armed_faults(self):
        stack = DeviceStack.build(BLOCKS, BS, inject=True)
        snap = stack.snapshot()
        stack.write_block(1, payload(1))
        stack.injector.arm(read_fail_at(1))
        stack.restore(snap)
        assert len(stack.injector.trace) == 0
        assert len(stack.injector.faults) == 1  # configuration survives
        with pytest.raises(ReadError):
            stack.read_block(1)

    def test_flush_propagates_to_the_medium(self):
        stack = DeviceStack.build(BLOCKS, BS, inject=True, cache_blocks=8)
        stack.write_block(1, payload(1))
        stack.flush()  # must not raise through any layer

    def test_stats_and_clock_read_the_raw_disk(self):
        stack = DeviceStack.build(BLOCKS, BS, inject=True, cache_blocks=8)
        assert stack.stats is stack.disk.stats
        stack.write_block(1, payload(1))
        assert stack.stats.writes == 1
        assert stack.clock == stack.disk.clock

    def test_cache_absorbs_repeat_reads(self):
        stack = DeviceStack.build(BLOCKS, BS, cache_blocks=8)
        stack.write_block(1, payload(1))
        before = stack.stats.reads
        for _ in range(5):
            stack.read_block(1)
        assert stack.stats.reads == before  # write-through filled the LRU


class TestRecorderAndHighWater:
    def test_recorder_composes_uppermost(self):
        stack = DeviceStack.build(BLOCKS, BS, inject=True, cache_blocks=8,
                                  record=True)
        assert isinstance(stack.top, WriteRecorder)
        assert stack.describe() == (
            "SimulatedDisk -> FaultInjector -> BlockCache -> WriteRecorder"
        )

    def test_recorder_captures_write_images(self):
        stack = DeviceStack.build(BLOCKS, BS, record=True)
        stack.write_block(3, payload(7))
        images = stack.events.of_type(WriteImageEvent)
        assert [(e.block, e.data) for e in images] == [(3, payload(7))]

    def test_consume_new_advances_the_mark(self):
        stack = DeviceStack.build(BLOCKS, BS, record=True)
        stack.write_block(1, payload(1))
        first = stack.events.consume_new()
        assert [e.block for e in first if isinstance(e, WriteImageEvent)] == [1]
        assert stack.events.consume_new() == []
        stack.write_block(2, payload(2))
        second = stack.events.consume_new()
        assert [e.block for e in second if isinstance(e, WriteImageEvent)] == [2]

    def test_restore_resets_the_high_water_mark(self):
        """Regression: restore() rewinds the medium and drops the event
        history, but a stale high-water mark pointing past the (now
        shorter) log would make the next consume_new() miss everything
        a replayed workload writes."""
        stack = DeviceStack.build(BLOCKS, BS, record=True)
        snap = stack.snapshot()
        stack.write_block(1, payload(1))
        stack.write_block(2, payload(2))
        stack.events.consume_new()               # mark now at the log's end
        stack.restore(snap)
        assert stack.events.high_water == 0
        stack.write_block(3, payload(3))
        replayed = [
            e.block for e in stack.events.consume_new()
            if isinstance(e, WriteImageEvent)
        ]
        assert 3 in replayed

    def test_restore_never_replays_stale_events_as_new(self):
        """After restore + consume_new, the only events handed out are
        the ones emitted after the restore — pre-restore writes must
        not leak into the next recording window."""
        stack = DeviceStack.build(BLOCKS, BS, record=True)
        stack.write_block(9, payload(9))         # pre-snapshot history
        snap = stack.snapshot()
        stack.events.consume_new()
        stack.restore(snap)
        stack.write_block(4, payload(4))
        blocks = [
            e.block for e in stack.events.consume_new()
            if isinstance(e, WriteImageEvent)
        ]
        assert 9 not in blocks

    def test_remove_where_clamps_the_mark(self):
        log = EventLog()
        log.emit(IOEvent(op="write", block=1, outcome="ok"))
        log.emit(IOEvent(op="write", block=2, outcome="ok"))
        log.consume_new()
        log.remove_where(lambda e: True)
        assert log.high_water == 0
        log.emit(IOEvent(op="write", block=3, outcome="ok"))
        assert [e.block for e in log.consume_new()] == [3]


class TestIntrospection:
    def test_repr_mentions_composition(self):
        stack = DeviceStack.build(BLOCKS, BS, inject=True)
        assert "SimulatedDisk -> FaultInjector" in repr(stack)

    def test_geometry_exposed(self):
        stack = DeviceStack.build(BLOCKS, BS)
        assert stack.geometry is stack.disk.geometry

    def test_disk_type(self):
        stack = DeviceStack.build(BLOCKS, BS)
        assert isinstance(stack.disk, SimulatedDisk)
