"""Redundancy arrays: geometry math, typed events, scrub, rebuild,
snapshot/restore, and DeviceStack integration."""

from __future__ import annotations

import pytest

from repro.common.errors import OutOfRangeError, ReadError, WriteError
from repro.disk import DeviceStack
from repro.disk.faults import Fault, FaultKind, FaultOp
from repro.disk.injector import FaultInjector
from repro.disk.stack import walk_devices
from repro.obs.events import (
    ArrayDetectionEvent,
    ArrayPolicyEvent,
    ArrayRecoveryEvent,
    EventLog,
)
from repro.obs.metrics import MetricsRegistry
from repro.redundancy import (
    ArraySnapshot,
    GEOMETRIES,
    MirrorDevice,
    RDPDevice,
    ScrubSchedule,
    StripeParityDevice,
    make_array,
)

NUM_BLOCKS = 48
BS = 512


def _payload(b: int, salt: int = 0) -> bytes:
    return bytes([(b * 31 + salt + 7) % 256]) * BS


def _fill(array):
    for b in range(array.num_blocks):
        array.write_block(b, _payload(b))


def _assert_contents(array, salt: int = 0):
    for b in range(array.num_blocks):
        assert array.read_block(b) == _payload(b, salt), b


DEFAULT_MEMBERS = {"mirror": 2, "parity": 4, "rdp": 5}


@pytest.fixture(params=list(GEOMETRIES))
def any_array(request):
    array = make_array(request.param, NUM_BLOCKS, BS,
                       members=DEFAULT_MEMBERS[request.param])
    array.events = EventLog()
    return array


class TestGeometry:
    @pytest.mark.parametrize("geometry", GEOMETRIES)
    def test_locate_is_injective(self, geometry):
        array = make_array(geometry, NUM_BLOCKS, BS,
                           members=DEFAULT_MEMBERS[geometry])
        seen = set()
        for b in range(NUM_BLOCKS):
            m, mb = array._locate(b)
            assert 0 <= m < len(array.members)
            assert 0 <= mb < array.members[m].disk.num_blocks
            assert (m, mb) not in seen
            seen.add((m, mb))

    def test_mirror_members_hold_full_copies(self):
        array = MirrorDevice(NUM_BLOCKS, BS, copies=3)
        assert len(array.members) == 3
        for member in array.members:
            assert member.disk.num_blocks >= NUM_BLOCKS

    def test_parity_rotates_across_members(self):
        array = StripeParityDevice(NUM_BLOCKS, BS, members=4)
        parity_members = {array._parity_member(s) for s in range(array.stripes)}
        assert len(parity_members) > 1  # RAID-5, not RAID-4

    def test_rdp_member_count_is_p_plus_one(self):
        array = RDPDevice(NUM_BLOCKS, BS, p=5)
        assert len(array.members) == 6

    def test_rdp_rejects_composite_p(self):
        with pytest.raises(ValueError):
            RDPDevice(NUM_BLOCKS, BS, p=6)

    def test_make_array_rejects_unknown_geometry(self):
        with pytest.raises(ValueError):
            make_array("raid0", NUM_BLOCKS, BS)


class TestIO:
    def test_roundtrip(self, any_array):
        _fill(any_array)
        _assert_contents(any_array)

    def test_out_of_range(self, any_array):
        with pytest.raises(OutOfRangeError):
            any_array.read_block(NUM_BLOCKS)
        with pytest.raises(OutOfRangeError):
            any_array.write_block(-1, b"\0" * BS)

    def test_wrong_block_size_rejected(self, any_array):
        with pytest.raises(ValueError):
            any_array.write_block(0, b"short")

    def test_peek_poke_bypass_faults_but_keep_parity(self, any_array):
        _fill(any_array)
        any_array.poke(5, _payload(5, salt=9))
        assert any_array.peek(5) == _payload(5, salt=9)
        # Parity/replicas were maintained: the poked value survives the
        # loss of the member holding it.
        m, _ = any_array._locate(5)
        any_array.fail_member(m)
        assert any_array.read_block(5) == _payload(5, salt=9)

    def test_stats_accumulate(self, any_array):
        _fill(any_array)
        _assert_contents(any_array)
        assert any_array.stats.reads == NUM_BLOCKS
        assert any_array.stats.writes == NUM_BLOCKS
        assert any_array.stats.bytes_read == NUM_BLOCKS * BS


class TestDegradedPaths:
    def test_survives_single_member_loss(self, any_array):
        _fill(any_array)
        for victim in range(len(any_array.members)):
            any_array.fail_member(victim)
            _assert_contents(any_array)
            any_array.revive_member(victim)

    def test_rdp_survives_any_two_member_losses(self):
        array = RDPDevice(NUM_BLOCKS, BS, p=5)
        _fill(array)
        n = len(array.members)
        for a in range(n):
            for b in range(a + 1, n):
                array.fail_member(a)
                array.fail_member(b)
                _assert_contents(array)
                array.revive_member(a)
                array.revive_member(b)

    def test_mirror2_double_loss_fails(self):
        array = MirrorDevice(NUM_BLOCKS, BS, copies=2)
        _fill(array)
        array.fail_member(0)
        array.fail_member(1)
        with pytest.raises(ReadError):
            array.read_block(0)

    def test_latent_error_triggers_read_repair(self, any_array):
        _fill(any_array)
        m, mb = any_array._locate(7)
        any_array.members[m].injector.arm(
            Fault(FaultOp.READ, FaultKind.FAIL, block=mb))
        assert any_array.read_block(7) == _payload(7)
        tags = [e.tag for e in any_array.events]
        assert "member-read-error" in tags
        assert "degraded-read" in tags
        assert "read-repair" in tags
        detections = [e for e in any_array.events
                      if isinstance(e, ArrayDetectionEvent)]
        assert detections and detections[0].member == m
        repairs = [e for e in any_array.events
                   if isinstance(e, ArrayRecoveryEvent)
                   and e.tag == "read-repair"]
        assert repairs and repairs[0].mechanism == "redundancy"

    def test_degraded_write_lands_and_rebuild_heals(self, any_array):
        _fill(any_array)
        victim, _ = any_array._locate(3)
        any_array.fail_member(victim)
        any_array.write_block(3, _payload(3, salt=1))
        assert any_array.read_block(3) == _payload(3, salt=1)
        assert any_array.degraded_writes >= 1
        any_array.revive_member(victim)
        any_array.replace_member(victim)
        rebuilt = any_array.rebuild_member(victim)
        assert rebuilt > 0
        assert any_array.rebuilt_blocks == rebuilt
        tags = [e.tag for e in any_array.events]
        assert "member-replaced" in tags
        assert "rebuild" in tags
        assert "rebuild-loss" not in tags
        # After rebuild the member serves reads again, fault-free.
        for other in range(len(any_array.members)):
            if other != victim:
                any_array.fail_member(other)
        assert any_array.read_block(3) == _payload(3, salt=1)

    def test_total_write_failure_raises(self):
        array = MirrorDevice(NUM_BLOCKS, BS, copies=2)
        _fill(array)
        for member in array.members:
            member.injector.arm(
                Fault(FaultOp.WRITE, FaultKind.FAIL, block=0))
        with pytest.raises(WriteError):
            array.write_block(0, _payload(0, salt=2))


class TestScrub:
    def test_clean_array_scrubs_clean(self, any_array):
        _fill(any_array)
        report = any_array.scrub()
        assert report.problems == 0
        assert report.units_scanned == any_array.scrub_units
        assert any_array.scrub_passes == 1

    def test_mirror3_majority_vote_repairs_corruption(self):
        array = MirrorDevice(NUM_BLOCKS, BS, copies=3)
        array.events = EventLog()
        _fill(array)
        m, mb = array._locate(11)
        array.members[m].disk.poke(mb, b"\xa5" * BS)
        report = array.scrub()
        assert (m, mb) in report.corruptions
        assert (m, mb) in report.repaired
        assert not report.unrepairable
        assert array.members[m].disk.peek(mb) == _payload(11)
        mismatches = [e for e in array.events if e.tag == "member-mismatch"]
        assert mismatches and mismatches[0].mechanism == "redundancy"

    def test_mirror2_tie_is_unrepairable(self):
        array = MirrorDevice(NUM_BLOCKS, BS, copies=2)
        array.events = EventLog()
        _fill(array)
        m, mb = array._locate(11)
        array.members[m].disk.poke(mb, b"\xa5" * BS)
        report = array.scrub()
        assert report.unrepairable
        assert "scrub-loss" in [e.tag for e in array.events]

    def test_parity_scrub_heals_latent_error(self):
        array = StripeParityDevice(NUM_BLOCKS, BS, members=4)
        _fill(array)
        m, mb = array._locate(11)
        array.members[m].injector.arm(
            Fault(FaultOp.READ, FaultKind.FAIL, block=mb))
        report = array.scrub()
        assert (m, mb) in report.latent_errors
        assert (m, mb) in report.repaired
        assert array.scrub_repairs >= 1
        _assert_contents(array)

    def test_rdp_syndromes_locate_silent_corruption(self):
        array = RDPDevice(NUM_BLOCKS, BS, p=5)
        _fill(array)
        m, mb = array._locate(11)
        array.members[m].disk.poke(mb, b"\xa5" * BS)
        report = array.scrub()
        assert (m, mb) in report.repaired
        assert array.members[m].disk.peek(mb) == _payload(11)
        _assert_contents(array)

    def test_scheduled_scrub_fires_incrementally(self, any_array):
        _fill(any_array)
        seen = []
        any_array.set_scrub_schedule(
            every_ops=4, units_per_step=2, hook=seen.append)
        for _ in range(4 * any_array.scrub_units):
            any_array.read_block(0)
        assert seen
        assert any_array.scrub_passes >= 1
        any_array.set_scrub_schedule(None)
        before = len(seen)
        for _ in range(16):
            any_array.read_block(0)
        assert len(seen) == before


class TestSnapshotRestore:
    def test_roundtrip_restores_contents_and_sets(self, any_array):
        _fill(any_array)
        m, mb = any_array._locate(4)
        any_array.members[m].injector.arm(
            Fault(FaultOp.WRITE, FaultKind.FAIL, block=mb))
        any_array.write_block(4, _payload(4, salt=3))  # leaves a suspect
        snap = any_array.snapshot()
        assert isinstance(snap, ArraySnapshot)
        for b in range(NUM_BLOCKS):
            any_array.poke(b, _payload(b, salt=5))
        any_array.restore(snap)
        assert any_array.read_block(4) == _payload(4, salt=3)
        assert (m, mb) in any_array._suspect
        assert any_array.dirty_count == 0

    def test_restore_rejects_foreign_snapshot(self, any_array):
        other = make_array("mirror", NUM_BLOCKS * 2, BS, members=2)
        with pytest.raises(ValueError):
            any_array.restore(other.snapshot())

    def test_snapshot_equality_and_reduce(self, any_array):
        _fill(any_array)
        a = any_array.snapshot()
        b = any_array.snapshot()
        assert a == b
        cls, args = a.__reduce__()
        assert cls(*args) == a
        any_array.write_block(0, _payload(0, salt=1))
        assert any_array.snapshot() != a

    def test_base_image_serves_golden_contents(self, any_array):
        _fill(any_array)
        any_array.restore(any_array.snapshot())
        view = any_array.base_image
        assert view is not None
        assert view.block(9) == _payload(9)
        view.meta["k"] = "v"
        assert any_array.base_image.meta["k"] == "v"


class TestStackIntegration:
    def test_device_stack_builds_on_array(self):
        stack = DeviceStack.build(NUM_BLOCKS, BS, array="mirror",
                                  members=2, cache_blocks=8)
        stack.write_block(1, _payload(1))
        stack.flush()
        assert stack.read_block(1) == _payload(1)
        assert "MirrorDevice" in stack.describe()
        assert "BlockCache" in stack.describe()

    def test_walk_devices_descends_into_members(self):
        stack = DeviceStack.build(NUM_BLOCKS, BS, array="rdp", members=5)
        devices = walk_devices(stack)
        injectors = [d for d in devices if isinstance(d, FaultInjector)]
        assert len(injectors) >= 6  # stack injector + one per member
        assert devices == stack.walk_devices()

    def test_array_events_flow_into_stack_log(self):
        stack = DeviceStack.build(NUM_BLOCKS, BS, array="mirror", members=2)
        stack.write_block(2, _payload(2))
        array = stack.disk
        m, mb = array._locate(2)
        array.members[m].injector.arm(
            Fault(FaultOp.READ, FaultKind.FAIL, block=mb))
        assert stack.read_block(2) == _payload(2)
        tags = [e.tag for e in stack.events]
        assert "degraded-read" in tags

    def test_collect_metrics_exports_member_series(self):
        array = make_array("parity", NUM_BLOCKS, BS, members=4)
        _fill(array)
        array.fail_member(0)
        _assert_contents(array)
        registry = MetricsRegistry()
        array.collect_metrics(registry)
        snapshot = registry.snapshot()
        names = {c["name"] for c in snapshot["counters"]}
        assert "repro_array_member_reads_total" in names
        assert "repro_array_degraded_reads_total" in names
        member_rows = [c for c in snapshot["counters"]
                       if c["name"] == "repro_array_member_reads_total"]
        assert len(member_rows) == 4

    def test_rebuild_emits_span(self):
        from repro.obs.trace import enable_tracing

        array = make_array("mirror", NUM_BLOCKS, BS, members=2)
        array.events = EventLog()
        enable_tracing(array.events)
        _fill(array)
        array.replace_member(0)
        array.rebuild_member(0)
        spans = [e for e in array.events
                 if getattr(e, "name", None) == "rebuild"]
        assert spans

    def test_degraded_read_span_nests_under_open_parent(self):
        from repro.obs.trace import SpanStartEvent, enable_tracing

        array = make_array("mirror", NUM_BLOCKS, BS, members=2)
        array.events = EventLog()
        tracer = enable_tracing(array.events)
        _fill(array)
        m, mb = array._locate(6)
        array.members[m].injector.arm(
            Fault(FaultOp.READ, FaultKind.FAIL, block=mb))
        outer = tracer.start("read-op", "vfs-op")
        assert array.read_block(6) == _payload(6)
        tracer.end(outer)
        starts = [e for e in array.events if isinstance(e, SpanStartEvent)]
        degraded = [e for e in starts if e.name == "degraded-read"]
        assert degraded and degraded[0].parent_id == outer
