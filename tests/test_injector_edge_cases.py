"""Fault-injector edge cases: stacking, passthrough, multi-fault
interactions, and oracle dynamics."""

import pytest

from repro.common.errors import ReadError, WriteError
from repro.disk import (
    BlockCache,
    CorruptionMode,
    Fault,
    FaultInjector,
    FaultKind,
    FaultOp,
    Persistence,
    make_disk,
)


def build():
    disk = make_disk(32, 512)
    for i in range(32):
        disk.write_block(i, bytes([i]) * 512)
    return disk, FaultInjector(disk, type_oracle=lambda b: f"t{b % 3}")


class TestStacking:
    def test_injector_under_cache(self):
        disk, inj = build()
        cache = BlockCache(inj, 8)
        inj.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block=4))
        with pytest.raises(ReadError):
            cache.read_block(4)
        # A cached block shields later reads from a new fault.
        cache.read_block(5)
        inj.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block=5))
        assert cache.read_block(5) == bytes([5]) * 512

    def test_clock_and_stall_passthrough(self):
        disk, inj = build()
        t = inj.clock
        inj.stall(0.25)
        assert inj.clock == pytest.approx(t + 0.25)
        cache = BlockCache(inj, 4)
        cache.stall(0.25)
        assert cache.clock == pytest.approx(t + 0.5)

    def test_double_injector_stack(self):
        disk, inj = build()
        outer = FaultInjector(inj, type_oracle=lambda b: "outer")
        outer.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block=3))
        inj.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block=7))
        with pytest.raises(ReadError):
            outer.read_block(3)  # outer layer fault
        with pytest.raises(ReadError):
            outer.read_block(7)  # inner layer fault
        assert outer.read_block(9) == bytes([9]) * 512


class TestMultipleFaults:
    def test_first_matching_fault_wins(self):
        disk, inj = build()
        inj.arm(Fault(op=FaultOp.READ, kind=FaultKind.CORRUPT, block=5,
                      corruption=CorruptionMode.ZERO))
        inj.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block=5))
        assert inj.read_block(5) == b"\x00" * 512  # corruption armed first

    def test_read_and_write_faults_coexist(self):
        disk, inj = build()
        inj.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block=5))
        inj.arm(Fault(op=FaultOp.WRITE, kind=FaultKind.FAIL, block=6))
        with pytest.raises(ReadError):
            inj.read_block(5)
        with pytest.raises(WriteError):
            inj.write_block(6, b"\x00" * 512)
        inj.write_block(5, b"\x01" * 512)  # write to 5 unaffected
        assert inj.read_block(6) == bytes([6]) * 512

    def test_type_faults_bind_independently(self):
        disk, inj = build()
        f1 = inj.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block_type="t0"))
        f2 = inj.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block_type="t1"))
        with pytest.raises(ReadError):
            inj.read_block(0)   # t0
        with pytest.raises(ReadError):
            inj.read_block(1)   # t1
        assert f1._locked_block == 0
        assert f2._locked_block == 1
        assert inj.read_block(3) == bytes([3]) * 512  # different t0 block: free


class TestOracleDynamics:
    def test_type_changes_are_seen_at_access_time(self):
        disk = make_disk(8, 512)
        types = {3: "before"}
        inj = FaultInjector(disk, type_oracle=types.get)
        inj.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block_type="after"))
        inj.read_block(3)  # no match yet
        types[3] = "after"
        with pytest.raises(ReadError):
            inj.read_block(3)

    def test_trace_records_types(self):
        disk, inj = build()
        inj.read_block(0)
        inj.write_block(1, b"\x00" * 512)
        assert inj.trace.entries[0].block_type == "t0"
        assert inj.trace.entries[1].block_type == "t1"


class TestTransientSemantics:
    def test_transient_type_fault_releases_binding(self):
        disk, inj = build()
        inj.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block_type="t0",
                      persistence=Persistence.TRANSIENT, transient_count=2))
        with pytest.raises(ReadError):
            inj.read_block(0)
        with pytest.raises(ReadError):
            inj.read_block(0)
        assert inj.read_block(0) == bytes([0]) * 512  # exhausted
        assert inj.read_block(3) == bytes([3]) * 512  # never rebinds

    def test_corrupt_transient(self):
        disk, inj = build()
        inj.arm(Fault(op=FaultOp.READ, kind=FaultKind.CORRUPT, block=4,
                      corruption=CorruptionMode.ZERO,
                      persistence=Persistence.TRANSIENT, transient_count=1))
        assert inj.read_block(4) == b"\x00" * 512
        assert inj.read_block(4) == bytes([4]) * 512


class TestLocalityWithTypes:
    def test_type_fault_with_locality_covers_neighbours(self):
        disk, inj = build()
        inj.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block_type="t1",
                      locality_run=2))
        with pytest.raises(ReadError):
            inj.read_block(1)  # binds at 1
        for b in (2, 3):
            with pytest.raises(ReadError):
                inj.read_block(b)
        assert inj.read_block(4) == bytes([4]) * 512
