"""ReiserFS failure-policy tests: §5.2's behaviors and bugs."""

import pytest

from repro.common.errors import Errno, FSError, KernelPanic
from repro.disk import (
    CorruptionMode,
    Fault,
    FaultKind,
    FaultOp,
    Persistence,
    corruption,
    read_failure,
    write_failure,
)

from conftest import faulty_remount, make_reiserfs


@pytest.fixture
def prepared():
    disk, fs = make_reiserfs()
    fs.mount()
    fs.mkdir("/d")
    bs = fs.statfs().block_size
    fs.write_file("/d/big", bytes((i * 5) % 256 for i in range(20 * bs)))
    fs.write_file("/plain", b"small file in a direct item")
    fs.unmount()
    injector, fs2 = faulty_remount("reiserfs", disk)
    return disk, injector, fs2


class TestWritePanics:
    @pytest.mark.parametrize("btype", ["super", "bitmap", "j-desc", "j-commit"])
    def test_metadata_write_failure_panics(self, prepared, btype):
        """ReiserFS panics on virtually any write failure (§5.2)."""
        _, injector, fs = prepared
        injector.arm(write_failure(btype))
        with pytest.raises(KernelPanic):
            # write_file allocates blocks, touching bitmap + super +
            # journal blocks in one transaction.
            fs.write_file("/will-panic", b"P" * 4096)
        assert fs.syslog.has_event("write-error")

    def test_tree_node_write_failure_panics(self, prepared):
        _, injector, fs = prepared
        injector.arm(Fault(op=FaultOp.WRITE, kind=FaultKind.FAIL,
                           block_type="dir item"))
        with pytest.raises(KernelPanic):
            fs.mkdir("/will-panic")

    def test_ordered_data_write_failure_ignored(self, prepared):
        """The exception (the paper's bug): a failed ordered data write
        is ignored and the transaction commits anyway."""
        _, injector, fs = prepared
        injector.arm(write_failure("data"))
        bs = fs.statfs().block_size
        fs.write_file("/victim", b"Q" * (3 * bs))  # no panic, no error
        assert not fs.syslog.has_event("write-error")
        write_errors = [e for e in injector.trace.errors() if e.op == "write"]
        assert write_errors
        # The commit completed despite the lost data write.
        jtypes = [e.block_type for e in injector.trace
                  if e.op == "write" and e.outcome == "ok"]
        assert "j-commit" in jtypes


class TestReadPolicy:
    def test_tree_read_failure_propagates(self, prepared):
        _, injector, fs = prepared
        injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL,
                           block_type="dir item"))
        with pytest.raises(FSError) as e:
            fs.stat("/plain")
        assert e.value.errno is Errno.EIO
        assert fs.syslog.has_event("read-error")

    def test_data_read_retried_once(self, prepared):
        """A transient data fault is absorbed by the single retry."""
        _, injector, fs = prepared
        injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block_type="data",
                           persistence=Persistence.TRANSIENT, transient_count=1))
        data = fs.read_file("/d/big")
        assert len(data) == 20 * fs.statfs().block_size

    def test_sticky_data_read_fails_after_retry(self, prepared):
        _, injector, fs = prepared
        fault = injector.arm(read_failure("data"))
        with pytest.raises(FSError):
            fs.read_file("/d/big")
        assert fault._fired >= 2  # original + one retry

    def test_writes_never_retried(self, prepared):
        _, injector, fs = prepared
        fault = injector.arm(Fault(op=FaultOp.WRITE, kind=FaultKind.FAIL,
                                   block_type="bitmap"))
        with pytest.raises(KernelPanic):
            fs.write_file("/x", b"y" * 2048)
        assert fault._fired == 1


class TestSpaceLeakBug:
    def test_truncate_leaks_on_indirect_read_failure(self, prepared):
        """Detected but ignored: statfs shows less free space afterwards
        than a clean truncate would give (§5.2)."""
        _, injector, fs = prepared
        free_before = fs.statfs().free_blocks
        # Skip the reads of the indirect-item leaf made during lookup
        # and the stat fetch; fail the body-item scan itself (a latent
        # error appearing at exactly that moment).
        injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL,
                           block_type="indirect", match_index=2))
        fs.truncate("/d/big", 0)  # returns success
        assert fs.syslog.has_event("ignored-error")
        # The ~20 data blocks were never freed: leaked.
        assert fs.statfs().free_blocks < free_before + 10


class TestSanityChecks:
    def test_corrupt_super_is_unmountable(self):
        disk, fs = make_reiserfs()
        disk.poke(0, b"\xff" * disk.block_size)
        with pytest.raises(FSError) as e:
            fs.mount()
        assert e.value.errno is Errno.EUCLEAN
        assert fs.syslog.has_event("unmountable")

    def test_corrupt_leaf_detected_and_propagated(self, prepared):
        _, injector, fs = prepared
        injector.arm(corruption("dir item"))
        with pytest.raises(FSError) as e:
            fs.stat("/plain")
        assert e.value.errno is Errno.EUCLEAN
        assert fs.syslog.has_event("sanity-fail")

    def test_corrupt_internal_node_panics(self, prepared):
        """The paper's bug: sanity failure on an internal node panics
        instead of returning an error."""
        disk, injector, fs = prepared
        assert fs.tree.height >= 2, "setup must produce an internal node"
        injector.arm(corruption("root"))
        with pytest.raises(KernelPanic):
            fs.stat("/plain")
        # (syslog still shows the sanity check fired first)

    def test_bitmap_corruption_not_detected(self, prepared):
        """Bitmaps carry no type information (§5.2)."""
        _, injector, fs = prepared
        injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.CORRUPT,
                           block_type="bitmap", corruption=CorruptionMode.ZERO))
        fs.write_file("/innocent", b"z" * 2048)  # allocates from garbage bitmap
        assert not fs.syslog.has_event("sanity-fail")


class TestJournalReplayBlindness:
    def test_corrupt_journal_data_replayed_anywhere(self):
        """No sanity check protects j-data: a corrupted copy can land on
        the superblock and render the volume unusable (§5.2)."""
        import struct
        disk, fs = make_reiserfs()
        fs.mount()
        fs.write_file("/seed", b"seed")
        fs.crash_after(lambda f: f.write_file("/crashy", b"logged"))

        # Find a journal descriptor and redirect its first home block to
        # the superblock (block 0).
        from repro.fs.ext3.journal import parse_desc, pack_desc
        jstart = 1
        for pos in range(1, 64):
            raw = disk.peek(jstart + pos)
            parsed = parse_desc(raw)
            if parsed is None:
                continue
            seq, homes = parsed
            # Redirect a journaled tree/bitmap copy onto the superblock.
            victims = [i for i, h in enumerate(homes) if h != 0]
            assert victims, "transaction journals only the superblock"
            homes[victims[-1]] = 0
            disk.poke(jstart + pos, pack_desc(disk.block_size, seq, homes))
            break
        else:
            pytest.fail("no descriptor block found in the journal")

        fs2 = type(fs)(disk)
        try:
            fs2.mount()
            # If the mount survived, the superblock was overwritten by a
            # tree/stat block and the volume is now nonsense; a remount
            # must fail its sanity check.
            fs2.unmount()
            fs3 = type(fs)(disk)
            with pytest.raises(FSError):
                fs3.mount()
        except (FSError, KernelPanic):
            pass  # immediate casualty is equally acceptable
