"""ext3 internals: on-disk structure round-trips, layout math, block
mapping through all indirection levels, and the journal."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import Errno, FSError
from repro.disk import make_disk
from repro.fs.ext3 import Ext3, Ext3Config, mkfs_ext3
from repro.fs.ext3.config import INODE_SIZE, NUM_DIRECT, ROOT_INO
from repro.fs.ext3.journal import (
    desc_capacity,
    pack_commit,
    pack_desc,
    pack_journal_super,
    pack_revoke,
    parse_commit,
    parse_desc,
    parse_journal_super,
    parse_revoke,
)
from repro.fs.ext3.structures import (
    DirEntry,
    GroupDescriptor,
    Inode,
    Superblock,
    pack_dir_block,
    pack_gdt,
    pack_pointer_block,
    unpack_dir_block,
    unpack_gdt,
    unpack_pointer_block,
)
from repro.vfs import O_RDONLY, O_RDWR


class TestConfigLayout:
    def test_regions_do_not_overlap(self):
        cfg = Ext3Config(ptrs_per_block=8, checksum_blocks=10, replica_blocks=20)
        assert cfg.gdt_block < cfg.journal_start
        assert cfg.journal_start + cfg.journal_blocks == cfg.checksum_start
        assert cfg.checksum_start + cfg.checksum_blocks == cfg.replica_start
        assert cfg.replica_start + cfg.replica_blocks == cfg.groups_start

    def test_group_geometry(self):
        cfg = Ext3Config()
        for g in range(cfg.num_groups):
            base = cfg.group_base(g)
            assert cfg.block_bitmap_block(g) == base + 1
            assert cfg.inode_bitmap_block(g) == base + 2
            assert cfg.data_start(g) == base + cfg.group_overhead_blocks
            assert cfg.group_of_block(cfg.data_start(g)) == g
        assert cfg.group_of_block(0) is None
        assert cfg.group_of_block(cfg.total_blocks + 5) is None

    def test_inode_location_roundtrip(self):
        cfg = Ext3Config()
        seen = set()
        for ino in range(1, cfg.total_inodes + 1):
            block, off = cfg.inode_location(ino)
            assert off % INODE_SIZE == 0
            assert (block, off) not in seen
            seen.add((block, off))
        with pytest.raises(ValueError):
            cfg.inode_location(0)
        with pytest.raises(ValueError):
            cfg.inode_location(cfg.total_inodes + 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            Ext3Config(block_size=100)
        with pytest.raises(ValueError):
            Ext3Config(journal_blocks=2)
        with pytest.raises(ValueError):
            Ext3Config(inodes_per_group=7)  # does not fill whole blocks

    def test_max_file_blocks(self):
        cfg = Ext3Config(ptrs_per_block=4)
        assert cfg.max_file_blocks == 12 + 4 + 16 + 64


class TestStructureRoundtrips:
    def test_superblock(self):
        cfg = Ext3Config()
        sb = Superblock.for_config(cfg, features=0b10101)
        again = Superblock.unpack(sb.pack(1024))
        assert again == sb
        assert again.is_valid()

    def test_superblock_sanity(self):
        sb = Superblock.unpack(b"\x00" * 1024)
        assert not sb.is_valid()

    def test_group_descriptor(self):
        gd = GroupDescriptor(10, 11, 12, 100, 50, 20, 200)
        table = pack_gdt([gd, gd], 1024)
        assert unpack_gdt(table, 2) == [gd, gd]

    @given(st.builds(
        Inode,
        mode=st.integers(0, 0xFFFF),
        links=st.integers(0, 0xFFFF),
        size=st.integers(0, 2**40),
        nblocks=st.integers(0, 2**20),
        direct=st.lists(st.integers(0, 2**31), min_size=NUM_DIRECT,
                        max_size=NUM_DIRECT),
        indirect=st.integers(0, 2**31),
        parity_block=st.integers(0, 2**31),
    ))
    def test_property_inode_roundtrip(self, inode):
        assert Inode.unpack(inode.pack()) == inode

    @given(st.lists(
        st.tuples(st.integers(1, 1000),
                  st.sampled_from([1, 2, 7]),
                  st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=126),
                          min_size=1, max_size=24)),
        max_size=12, unique_by=lambda t: t[2],
    ))
    def test_property_dir_block_roundtrip(self, raw_entries):
        entries = [DirEntry(ino, ft, name) for ino, ft, name in raw_entries]
        block = pack_dir_block(entries, 1024)
        assert unpack_dir_block(block) == entries

    def test_dir_block_tolerates_garbage(self):
        # No exception, whatever comes back (blind parsing, §5.1).
        unpack_dir_block(bytes(range(256)) * 4)
        unpack_dir_block(b"\xff" * 1024)

    @given(st.lists(st.integers(0, 2**32 - 1), min_size=8, max_size=8))
    def test_property_pointer_block_roundtrip(self, ptrs):
        assert unpack_pointer_block(pack_pointer_block(ptrs, 1024, 8), 8) == ptrs


class TestJournalBlockFormats:
    def test_super_roundtrip(self):
        raw = pack_journal_super(1024, next_seq=42, clean=True)
        assert parse_journal_super(raw) == (42, True)
        assert parse_journal_super(b"\x00" * 1024) is None

    def test_desc_roundtrip(self):
        raw = pack_desc(1024, 7, [1, 2, 300])
        assert parse_desc(raw) == (7, [1, 2, 300])
        assert parse_desc(pack_commit(1024, 7, 3)) is None

    def test_commit_roundtrip(self):
        csum = b"\x42" * 20
        raw = pack_commit(1024, 9, 5, csum)
        seq, nblocks, got = parse_commit(raw)
        assert (seq, nblocks, got) == (9, 5, csum)

    def test_revoke_roundtrip(self):
        raw = pack_revoke(1024, 3, [10, 20])
        assert parse_revoke(raw) == (3, [10, 20])

    def test_desc_capacity_bounds(self):
        cap = desc_capacity(1024)
        raw = pack_desc(1024, 1, list(range(cap)))
        assert parse_desc(raw) == (1, list(range(cap)))

    def test_corrupt_count_rejected(self):
        raw = bytearray(pack_desc(1024, 1, [5]))
        import struct
        struct.pack_into("<I", raw, 12, 0xFFFFFF)  # absurd count
        assert parse_desc(bytes(raw)) is None


@pytest.fixture
def small_fs():
    cfg = Ext3Config(ptrs_per_block=4)  # triple indirect within 97 blocks
    disk = make_disk(cfg.total_blocks, cfg.block_size)
    mkfs_ext3(disk, cfg)
    fs = Ext3(disk)
    fs.mount()
    return cfg, disk, fs


class TestBlockMapping:
    def test_file_spanning_all_levels(self, small_fs):
        cfg, disk, fs = small_fs
        bs = cfg.block_size
        # 12 direct + 4 indirect + 16 double + some triple
        nblocks = 12 + 4 + 16 + 9
        payload = bytes((i * 31) % 256 for i in range(nblocks * bs))
        fs.write_file("/deep", payload)
        assert fs.read_file("/deep") == payload
        # The inode actually uses the triple-indirect pointer.
        ino = fs.stat("/deep").ino
        inode = fs._iget(ino)
        assert inode.tindirect != 0
        assert inode.dindirect != 0
        assert inode.indirect != 0

    def test_file_too_large_rejected(self, small_fs):
        cfg, disk, fs = small_fs
        fd = fs.creat("/f")
        with pytest.raises(FSError) as e:
            fs.write(fd, b"x", offset=cfg.max_file_blocks * cfg.block_size + 1)
        assert e.value.errno is Errno.EFBIG

    def test_sparse_read_returns_zeros(self, small_fs):
        cfg, disk, fs = small_fs
        bs = cfg.block_size
        fd = fs.creat("/sparse")
        fs.write(fd, b"END", offset=20 * bs)
        fs.close(fd)
        data = fs.read_file("/sparse")
        assert data[:bs] == b"\x00" * bs  # hole
        assert data.endswith(b"END")

    def test_partial_shrink_keeps_prefix(self, small_fs):
        cfg, disk, fs = small_fs
        bs = cfg.block_size
        nblocks = 12 + 4 + 10  # through double indirect
        payload = bytes((i * 3) % 256 for i in range(nblocks * bs))
        fs.write_file("/f", payload)
        keep = 14 * bs + 100
        fs.truncate("/f", keep)
        assert fs.read_file("/f") == payload[:keep]

    def test_shrink_then_regrow(self, small_fs):
        cfg, disk, fs = small_fs
        bs = cfg.block_size
        fs.write_file("/f", b"A" * (20 * bs))
        free_mid = fs.statfs().free_blocks
        fs.truncate("/f", 2 * bs)
        assert fs.statfs().free_blocks > free_mid
        fd = fs.open("/f", O_RDWR)
        fs.write(fd, b"B" * (10 * bs), offset=2 * bs)
        fs.close(fd)
        data = fs.read_file("/f")
        assert data[:2 * bs] == b"A" * (2 * bs)
        assert data[2 * bs:] == b"B" * (10 * bs)


class TestExt3Journal:
    def test_commit_then_checkpoint_persists(self, small_fs):
        cfg, disk, fs = small_fs
        fs.sync_mode = False
        fs.mkdir("/d")
        # Not yet durable: on-disk root dir has no entry...
        fs.journal.commit()
        fs.journal.checkpoint()
        fs.crash()
        fs2 = Ext3(disk)
        fs2.mount()
        assert "d" in fs2.getdirentries("/")

    def test_uncommitted_txn_lost(self, small_fs):
        cfg, disk, fs = small_fs
        fs.sync_mode = False
        fs.mkdir("/ghost")
        fs.crash()  # nothing committed
        fs2 = Ext3(disk)
        fs2.mount()
        assert not fs2.exists("/ghost")

    def test_journal_wraps_under_pressure(self, small_fs):
        cfg, disk, fs = small_fs
        # Many ops in sync mode: far more journal traffic than the
        # 64-block journal holds; checkpointing must recycle it.
        for i in range(40):
            fs.write_file(f"/f{i}", bytes([i]) * 600)
        for i in range(40):
            assert fs.read_file(f"/f{i}") == bytes([i]) * 600
        assert fs.journal.checkpoints >= 1

    def test_replay_is_idempotent(self, small_fs):
        cfg, disk, fs = small_fs
        fs.crash_after(lambda f: f.write_file("/x", b"once"))
        fs2 = Ext3(disk)
        fs2.mount()
        assert fs2.read_file("/x") == b"once"
        fs2.crash()  # crash again without new commits
        fs3 = Ext3(disk)
        fs3.mount()
        assert fs3.read_file("/x") == b"once"

    def test_revoked_blocks_not_replayed(self, small_fs):
        cfg, disk, fs = small_fs

        def ops(f):
            f.mkdir("/dir")          # allocates a dir block, journals it
            f.write_file("/dir/a", b"a")
            f.unlink("/dir/a")
            f.rmdir("/dir")          # frees + revokes the dir block
            f.write_file("/reuse", b"R" * 2048)  # likely reuses the block

        fs.crash_after(ops)
        fs2 = Ext3(disk)
        fs2.mount()
        assert not fs2.exists("/dir")
        assert fs2.read_file("/reuse") == b"R" * 2048
