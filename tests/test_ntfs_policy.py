"""NTFS failure-policy tests: §5.4's persistence-is-a-virtue profile."""

import pytest

from repro.common.errors import Errno, FSError
from repro.disk import (
    CorruptionMode,
    Fault,
    FaultInjector,
    FaultKind,
    FaultOp,
    Persistence,
    corruption,
    read_failure,
    write_failure,
)
from repro.fs.ntfs import NTFS

from conftest import faulty_remount, make_ntfs


@pytest.fixture
def prepared():
    disk, fs = make_ntfs()
    fs.mount()
    fs.mkdir("/d")
    bs = fs.statfs().block_size
    fs.write_file("/d/big", bytes((i * 11) % 256 for i in range(20 * bs)))
    fs.write_file("/plain", b"ntfs plain file")
    fs.unmount()
    injector, fs2 = faulty_remount("ntfs", disk)
    return disk, injector, fs2


class TestAggressiveRetry:
    def test_reads_attempted_up_to_seven_times(self, prepared):
        _, injector, fs = prepared
        fault = injector.arm(read_failure("MFT"))
        with pytest.raises(FSError):
            fs.stat("/plain")
        assert fault._fired == 7  # 1 + 6 retries (§5.4)

    def test_six_transient_failures_survived(self, prepared):
        """NTFS's persistence handles even long transient outages."""
        _, injector, fs = prepared
        injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block_type="MFT",
                           persistence=Persistence.TRANSIENT, transient_count=6))
        assert fs.stat("/plain").size == 15

    def test_metadata_writes_attempted_twice(self, prepared):
        _, injector, fs = prepared
        fault = injector.arm(Fault(op=FaultOp.WRITE, kind=FaultKind.FAIL,
                                   block_type="MFT"))
        fs.write_file("/newfile", b"x")  # write failure logged, op completes
        assert fault._fired >= 2
        assert fs.syslog.has_event("write-error")

    def test_data_writes_attempted_three_times_then_dropped(self, prepared):
        """Data write errors are recorded but not used (D_zero, §5.4)."""
        _, injector, fs = prepared
        fault = injector.arm(write_failure("data"))
        fd = fs.creat("/f")
        fs.write(fd, b"d" * 2048, offset=0)
        fs.close(fd)
        assert fault._fired >= 3
        assert not fs.read_only

    def test_transient_write_survived_by_retry(self, prepared):
        _, injector, fs = prepared
        injector.arm(Fault(op=FaultOp.WRITE, kind=FaultKind.FAIL, block_type="data",
                           persistence=Persistence.TRANSIENT, transient_count=1))
        fd = fs.creat("/f")
        fs.write(fd, b"payload!" * 256, offset=0)
        fs.close(fd)
        fs.sync()
        assert fs.read_file("/f") == b"payload!" * 256


class TestStrongSanity:
    def test_corrupt_boot_file_unmountable(self):
        disk, fs = make_ntfs()
        disk.poke(0, b"\x99" * disk.block_size)
        with pytest.raises(FSError) as e:
            fs.mount()
        assert e.value.errno is Errno.EUCLEAN
        assert fs.syslog.has_event("unmountable")

    def test_corrupt_mft_record_detected(self, prepared):
        _, injector, fs = prepared
        injector.arm(corruption("MFT"))
        with pytest.raises(FSError) as e:
            fs.stat("/plain")
        assert e.value.errno is Errno.EUCLEAN
        assert fs.syslog.has_event("sanity-fail")
        assert fs.syslog.has_event("unmountable")

    def test_corrupt_index_block_detected(self, prepared):
        _, injector, fs = prepared
        injector.arm(corruption("directory"))
        with pytest.raises(FSError) as e:
            fs.getdirentries("/")
        assert e.value.errno is Errno.EUCLEAN

    def test_corrupt_logfile_only_resets_log(self):
        """The journal is the exception: its corruption does not make
        the volume unmountable (§5.4)."""
        disk, fs = make_ntfs()
        fs.mount()
        fs.write_file("/keep", b"kept")
        fs.unmount()
        disk.poke(1, b"\x55" * disk.block_size)  # logfile superblock
        fs2 = NTFS(disk)
        fs2.mount()
        assert fs2.syslog.has_event("log-reset")
        assert fs2.read_file("/keep") == b"kept"

    def test_run_pointers_not_validated(self, prepared):
        """A corrupted block pointer silently reads the wrong block
        (§5.4): no sanity event, wrong data."""
        disk, injector, fs = prepared
        import struct
        ino = fs.stat("/plain").ino
        target_block = fs.boot.mft_start + ino

        def redirect_run(payload, btype):
            raw = bytearray(payload)
            hdr = struct.calcsize("<4sHHHHIIQddd")
            # Redirect the first run at the boot block, plausibly.
            struct.pack_into("<I", raw, hdr, 0)
            return bytes(raw)

        injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.CORRUPT,
                           block=target_block,
                           corruption=CorruptionMode.FIELD,
                           corruptor=redirect_run))
        data = fs.read_file("/plain")
        assert data != b"ntfs plain file"  # wrong data, no error
        assert not fs.syslog.has_event("sanity-fail")
