"""Tests for the fail-partial fault model and the fault injector."""

import pytest

from repro.common.errors import ReadError, WriteError
from repro.disk import (
    CorruptionMode,
    Fault,
    FaultInjector,
    FaultKind,
    FaultOp,
    Persistence,
    corruption,
    make_disk,
    read_failure,
    write_failure,
)


def build(num=32, bs=512):
    disk = make_disk(num, bs)
    for i in range(num):
        disk.write_block(i, bytes([i]) * bs)
    return disk, FaultInjector(disk, type_oracle=lambda b: "even" if b % 2 == 0 else "odd")


class TestFaultSpec:
    def test_must_target_something(self):
        with pytest.raises(ValueError):
            Fault(op=FaultOp.READ, kind=FaultKind.FAIL)
        with pytest.raises(ValueError):
            Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block=1, block_type="x")

    def test_transient_needs_positive_count(self):
        with pytest.raises(ValueError):
            Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block=1, transient_count=0)

    def test_describe(self):
        f = read_failure("inode")
        assert "inode" in f.describe()
        assert "sticky" in f.describe()


class TestBlockTargetedFaults:
    def test_sticky_read_failure(self):
        disk, inj = build()
        inj.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block=3))
        with pytest.raises(ReadError):
            inj.read_block(3)
        with pytest.raises(ReadError):
            inj.read_block(3)  # sticky: fails forever
        assert inj.read_block(4) == bytes([4]) * 512

    def test_transient_read_failure_clears(self):
        disk, inj = build()
        inj.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block=3,
                      persistence=Persistence.TRANSIENT, transient_count=2))
        with pytest.raises(ReadError):
            inj.read_block(3)
        with pytest.raises(ReadError):
            inj.read_block(3)
        assert inj.read_block(3) == bytes([3]) * 512

    def test_write_failure_never_reaches_medium(self):
        disk, inj = build()
        inj.arm(Fault(op=FaultOp.WRITE, kind=FaultKind.FAIL, block=7))
        with pytest.raises(WriteError):
            inj.write_block(7, b"\xff" * 512)
        assert disk.peek(7) == bytes([7]) * 512

    def test_locality_run(self):
        disk, inj = build()
        inj.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block=10, locality_run=3))
        for b in (10, 11, 12, 13):
            with pytest.raises(ReadError):
                inj.read_block(b)
        assert inj.read_block(14) == bytes([14]) * 512


class TestTypeTargetedFaults:
    def test_binds_to_first_matching_access(self):
        disk, inj = build()
        fault = inj.arm(read_failure("odd"))
        assert inj.read_block(2) == bytes([2]) * 512  # even: unaffected
        with pytest.raises(ReadError):
            inj.read_block(5)
        # Sticky type faults lock onto the concrete block they first hit.
        with pytest.raises(ReadError):
            inj.read_block(5)
        assert inj.read_block(7) == bytes([7]) * 512
        assert fault._locked_block == 5

    def test_match_index_skips_accesses(self):
        disk, inj = build()
        inj.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block_type="even",
                      match_index=2))
        assert inj.read_block(0) == bytes([0]) * 512
        assert inj.read_block(2) == bytes([2]) * 512
        with pytest.raises(ReadError):
            inj.read_block(4)

    def test_no_oracle_means_no_type_match(self):
        disk = make_disk(8, 512)
        inj = FaultInjector(disk)  # no oracle
        inj.arm(read_failure("anything"))
        assert inj.read_block(0) == b"\x00" * 512


class TestCorruption:
    def test_noise_differs_and_is_silent(self):
        disk, inj = build()
        inj.arm(corruption("even"))
        data = inj.read_block(0)
        assert data != bytes([0]) * 512
        assert len(data) == 512
        assert disk.peek(0) == bytes([0]) * 512  # medium untouched

    def test_zero_mode(self):
        disk, inj = build()
        inj.arm(corruption("even", mode=CorruptionMode.ZERO))
        assert inj.read_block(0) == b"\x00" * 512

    def test_shift_mode_is_circular_byte_shift(self):
        disk, inj = build()
        disk.poke(0, bytes(range(256)) * 2)
        inj.arm(corruption("even", mode=CorruptionMode.SHIFT))
        data = inj.read_block(0)
        assert data == bytes([255]) + (bytes(range(256)) * 2)[:-1]

    def test_field_mode_uses_corruptor(self):
        def corruptor(payload, btype):
            out = bytearray(payload)
            out[0] = 0xEE
            return bytes(out)
        disk, inj = build()
        inj.arm(corruption("even", mode=CorruptionMode.FIELD, corruptor=corruptor))
        assert inj.read_block(0)[0] == 0xEE

    def test_field_mode_requires_corruptor(self):
        f = Fault(op=FaultOp.READ, kind=FaultKind.CORRUPT, block=0,
                  corruption=CorruptionMode.FIELD)
        with pytest.raises(ValueError):
            f.corrupt(b"\x00" * 16, "x")

    def test_corruptor_must_preserve_size(self):
        f = Fault(op=FaultOp.READ, kind=FaultKind.CORRUPT, block=0,
                  corruption=CorruptionMode.FIELD,
                  corruptor=lambda p, t: p + b"!")
        with pytest.raises(ValueError):
            f.corrupt(b"\x00" * 16, "x")

    def test_corrupt_on_write_stores_bad_data(self):
        disk, inj = build()
        inj.arm(Fault(op=FaultOp.WRITE, kind=FaultKind.CORRUPT, block=5,
                      corruption=CorruptionMode.ZERO))
        inj.write_block(5, b"\xaa" * 512)
        assert disk.peek(5) == b"\x00" * 512


class TestTraceRecording:
    def test_outcomes_recorded(self):
        disk, inj = build()
        inj.arm(read_failure("odd"))
        inj.read_block(0)
        with pytest.raises(ReadError):
            inj.read_block(1)
        outcomes = [(e.op, e.block, e.outcome) for e in inj.trace]
        assert outcomes == [("read", 0, "ok"), ("read", 1, "error")]

    def test_retry_count(self):
        disk, inj = build()
        inj.read_block(4)
        inj.read_block(4)
        inj.read_block(4)
        assert inj.trace.retry_count(4, "read") == 2

    def test_disarm_and_clear(self):
        disk, inj = build()
        fault = inj.arm(read_failure("even"))
        inj.disarm(fault)
        assert inj.read_block(0) == bytes([0]) * 512
        inj.arm(read_failure("even"))
        inj.clear_faults()
        assert inj.read_block(2) == bytes([2]) * 512


def test_noise_matches_randrange_reference_stream():
    """The memoized noise generator must reproduce the historical
    ``random.Random(seed).randrange(256)``-per-byte stream exactly —
    corrupted payloads are folded into event digests, so any drift here
    breaks cross-version determinism witnesses."""
    import random

    from repro.disk.faults import _noise

    for seed in (0xC0FFEE, 1, 987654321):
        rng = random.Random(seed)
        reference = bytes(rng.randrange(256) for _ in range(4096))
        assert _noise(seed, 4096) == reference
        # Memoized: same object back on a repeat call.
        assert _noise(seed, 4096) is _noise(seed, 4096)
