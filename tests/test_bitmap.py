"""Unit and property tests for the shared Bitmap structure."""

import pytest
from hypothesis import given, strategies as st

from repro.common.bitmap import Bitmap


class TestBitmapBasics:
    def test_starts_empty(self):
        bmp = Bitmap(64)
        assert bmp.count_set() == 0
        assert bmp.count_free() == 64
        assert not bmp.test(0)

    def test_set_and_test(self):
        bmp = Bitmap(16)
        bmp.set(3)
        assert bmp.test(3)
        assert not bmp.test(2)
        assert not bmp.test(4)

    def test_clear(self):
        bmp = Bitmap(16)
        bmp.set(7)
        bmp.clear(7)
        assert not bmp.test(7)

    def test_set_is_idempotent(self):
        bmp = Bitmap(8)
        bmp.set(2)
        bmp.set(2)
        assert bmp.count_set() == 1

    def test_out_of_range_raises(self):
        bmp = Bitmap(8)
        with pytest.raises(IndexError):
            bmp.test(8)
        with pytest.raises(IndexError):
            bmp.set(-1)
        with pytest.raises(IndexError):
            bmp.clear(100)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Bitmap(0)

    def test_non_byte_aligned_sizes(self):
        bmp = Bitmap(13)
        for i in range(13):
            bmp.set(i)
        assert bmp.count_set() == 13
        assert bmp.count_free() == 0


class TestFindFree:
    def test_first_free(self):
        bmp = Bitmap(8)
        bmp.set(0)
        bmp.set(1)
        assert bmp.find_free() == 2

    def test_find_free_with_start(self):
        bmp = Bitmap(16)
        assert bmp.find_free(start=5) == 5

    def test_full_bitmap_returns_none(self):
        bmp = Bitmap(4)
        for i in range(4):
            bmp.set(i)
        assert bmp.find_free() is None

    def test_find_free_run(self):
        bmp = Bitmap(16)
        bmp.set(1)
        bmp.set(5)
        assert bmp.find_free_run(3) == 2
        assert bmp.find_free_run(10) == 6
        assert bmp.find_free_run(11) is None


class TestSerialization:
    def test_roundtrip(self):
        bmp = Bitmap(40)
        for i in (0, 13, 39):
            bmp.set(i)
        again = Bitmap.from_bytes(40, bmp.to_bytes())
        assert again == bmp
        assert list(again.iter_set()) == [0, 13, 39]

    def test_padding(self):
        bmp = Bitmap(8)
        raw = bmp.to_bytes(pad_to=1024)
        assert len(raw) == 1024

    def test_pad_too_small_rejected(self):
        bmp = Bitmap(1024)
        with pytest.raises(ValueError):
            bmp.to_bytes(pad_to=4)

    def test_short_raw_rejected(self):
        with pytest.raises(ValueError):
            Bitmap(64, raw=b"\x00")


@given(st.sets(st.integers(min_value=0, max_value=255)))
def test_property_set_bits_roundtrip(bits):
    """Any set of bits survives serialization exactly."""
    bmp = Bitmap(256)
    for b in bits:
        bmp.set(b)
    again = Bitmap.from_bytes(256, bmp.to_bytes(pad_to=64))
    assert set(again.iter_set()) == bits
    assert again.count_set() == len(bits)


@given(
    st.sets(st.integers(min_value=0, max_value=127)),
    st.sets(st.integers(min_value=0, max_value=127)),
)
def test_property_set_then_clear(to_set, to_clear):
    """count_set always equals the size of the surviving set."""
    bmp = Bitmap(128)
    for b in to_set:
        bmp.set(b)
    for b in to_clear:
        bmp.clear(b)
    survivors = to_set - to_clear
    assert set(bmp.iter_set()) == survivors
    assert bmp.count_free() == 128 - len(survivors)


@given(st.sets(st.integers(min_value=0, max_value=63)), st.integers(0, 63))
def test_property_find_free_is_really_free(bits, start):
    bmp = Bitmap(64)
    for b in bits:
        bmp.set(b)
    free = bmp.find_free(start)
    if free is None:
        assert all(bmp.test(i) for i in range(start, 64))
    else:
        assert free >= start
        assert not bmp.test(free)
        assert all(bmp.test(i) for i in range(start, free))
