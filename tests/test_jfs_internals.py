"""JFS internals: structures, sanity checks, and the record journal."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.bitmap import Bitmap
from repro.common.errors import CorruptionDetected
from repro.common.syslog import SysLog
from repro.fs.jfs.config import JFSConfig
from repro.fs.jfs.journal import (
    LogRecord,
    RecordJournal,
    diff_records,
    pack_log_super,
    parse_log_super,
)
from repro.fs.jfs.structures import (
    AggregateInode,
    AGGR_MAGIC,
    JFSInode,
    JFSSuper,
    JFS_MAGIC,
    JFS_VERSION,
    check_inode_block,
    pack_dir_block,
    pack_inode_block,
    pack_map_block,
    pack_tree_block,
    unpack_dir_block,
    unpack_map_block,
    unpack_tree_block,
)


class TestConfigLayout:
    def test_regions_in_order(self):
        cfg = JFSConfig()
        order = [cfg.journal_super, cfg.journal_data_start,
                 cfg.aggr_inode_block, cfg.aggr_inode_secondary,
                 cfg.bmap_desc_block, cfg.bmap_start,
                 cfg.imap_control_block, cfg.imap_start,
                 cfg.inode_table_start, cfg.data_start]
        assert order == sorted(order)
        assert cfg.data_start < cfg.total_blocks

    def test_secondary_aggr_is_adjacent(self):
        cfg = JFSConfig()
        assert cfg.aggr_inode_secondary == cfg.aggr_inode_block + 1

    def test_inode_location(self):
        cfg = JFSConfig()
        seen = set()
        for ino in range(1, cfg.num_inodes + 1):
            loc = cfg.inode_location(ino)
            assert loc not in seen
            seen.add(loc)
        with pytest.raises(ValueError):
            cfg.inode_location(cfg.num_inodes + 1)


class TestStructures:
    def test_super_roundtrip_and_sanity(self):
        sb = JFSSuper(magic=JFS_MAGIC, version=JFS_VERSION, block_size=1024,
                      total_blocks=768, free_blocks=700, free_inodes=90,
                      num_inodes=98, journal_blocks=48, num_direct=8,
                      tree_fanout=16)
        assert JFSSuper.unpack(sb.pack(1024)) == sb
        assert sb.is_valid()
        bad = JFSSuper.unpack(b"\x00" * 1024)
        assert not bad.is_valid()

    @given(st.builds(JFSInode,
                     mode=st.integers(0, 0xFFFF),
                     links=st.integers(0, 100),
                     size=st.integers(0, 2**40),
                     direct=st.lists(st.integers(0, 2**31), min_size=8, max_size=8),
                     tree_root=st.integers(0, 2**31),
                     tree_levels=st.integers(0, 2)))
    def test_property_inode_roundtrip(self, inode):
        assert JFSInode.unpack(inode.pack(128)) == inode

    def test_inode_block_count_checked(self):
        inodes = [JFSInode(mode=1, links=1)] * 3 + [None] * 4
        block = pack_inode_block(inodes, 1024, 128)
        check_inode_block(block, 0, 7)  # fine
        import struct
        bad = bytearray(block)
        struct.pack_into("<I", bad, 0, 5000)
        with pytest.raises(CorruptionDetected):
            check_inode_block(bytes(bad), 0, 7)

    def test_dir_block_roundtrip_and_sanity(self):
        entries = [(2, 2, "."), (2, 2, ".."), (17, 1, "mail")]
        block = pack_dir_block(entries, 1024)
        assert unpack_dir_block(block, 0, 1024) == entries
        import struct
        bad = bytearray(block)
        struct.pack_into("<I", bad, 0, 100000)
        with pytest.raises(CorruptionDetected):
            unpack_dir_block(bytes(bad), 0, 1024)

    def test_tree_block_roundtrip_and_sanity(self):
        block = pack_tree_block(2, [5, 6, 7], 1024, 16)
        assert unpack_tree_block(block, 0, 16) == (2, [5, 6, 7])
        with pytest.raises(CorruptionDetected):
            unpack_tree_block(b"\x00" * 1024, 0, 16)  # level 0 invalid
        with pytest.raises(ValueError):
            pack_tree_block(1, list(range(99)), 1024, 16)

    def test_map_block_equality_check(self):
        bmp = Bitmap(100)
        bmp.set(3)
        block = pack_map_block(bmp, 1024)
        again = unpack_map_block(block, 0, 100)
        assert again.test(3) and not again.test(4)
        import struct
        bad = bytearray(block)
        struct.pack_into("<I", bad, 0, 999)  # free-count fields now disagree
        with pytest.raises(CorruptionDetected):
            unpack_map_block(bytes(bad), 0, 100)

    def test_map_block_bits_vs_count_check(self):
        bmp = Bitmap(100)
        block = bytearray(pack_map_block(bmp, 1024))
        block[8] |= 1  # flip a bit without touching the counts
        with pytest.raises(CorruptionDetected):
            unpack_map_block(bytes(block), 0, 100)

    def test_aggregate_inode(self):
        aggr = AggregateInode(magic=AGGR_MAGIC, bmap_desc=5, imap_cntl=9,
                              log_start=2)
        assert AggregateInode.unpack(aggr.pack(1024)).is_valid()
        assert not AggregateInode.unpack(b"\x00" * 1024).is_valid()


class TestDiffRecords:
    def test_no_prior_image_logs_whole_block(self):
        recs = diff_records(7, None, b"abc")
        assert len(recs) == 1 and recs[0].offset == 0 and recs[0].data == b"abc"

    def test_identical_logs_nothing(self):
        assert diff_records(7, b"same", b"same") == []

    def test_single_span(self):
        old = b"aaaaaaaaaa"
        new = b"aaaXXXaaaa"
        recs = diff_records(7, old, new)
        assert len(recs) == 1
        assert recs[0].offset == 3 and recs[0].data == b"XXX"

    def test_distant_spans_split(self):
        old = bytearray(200)
        new = bytearray(200)
        new[5] = 1
        new[150] = 2
        recs = diff_records(7, bytes(old), bytes(new), max_span_gap=16)
        assert len(recs) == 2

    @settings(max_examples=50)
    @given(st.binary(min_size=32, max_size=256),
           st.lists(st.tuples(st.integers(0, 255), st.integers(0, 255)), max_size=10))
    def test_property_patches_reconstruct(self, old, edits):
        new = bytearray(old)
        for pos, val in edits:
            new[pos % len(new)] = val
        new = bytes(new)
        image = bytearray(old)
        for rec in diff_records(7, old, new):
            image[rec.offset:rec.offset + len(rec.data)] = rec.data
        assert bytes(image) == new


class TestRecordJournal:
    def _journal(self):
        store = {}

        def write(block, data):
            store[block] = data

        def read(block):
            return store.get(block, b"\x00" * 1024)

        j = RecordJournal(
            super_block=0, data_start=1, nblocks=16, block_size=1024,
            syslog=SysLog(), super_write=write, record_write=write,
            home_write=write, read_block=read, set_type=lambda b, t: None,
            stall=lambda s: None, commit_stall_s=0.0,
        )
        store[0] = pack_log_super(1024, 1, clean=True)
        return j, store

    def test_commit_and_recover(self):
        j, store = self._journal()
        j.begin()
        j.log(100, b"A" * 1024, b"\x00" * 1024)
        j.log(101, b"B" * 1024, None)
        j.commit()
        # Homes are not yet written (no checkpoint)...
        assert 100 not in store or store.get(100) != b"A" * 1024
        # ...but recovery replays the committed records.
        j2, _ = self._journal()
        j2._read_block = lambda b: store.get(b, b"\x00" * 1024)
        j2._home_write = lambda b, d: store.__setitem__(b, d)
        j2._super_write = lambda b, d: store.__setitem__(b, d)
        replayed = j2.recover()
        assert replayed == 1
        assert store[100] == b"A" * 1024
        assert store[101] == b"B" * 1024

    def test_cached_view(self):
        j, _ = self._journal()
        j.begin()
        j.log(50, b"X" * 1024, None)
        assert j.cached(50) == b"X" * 1024
        j.commit()
        assert j.cached(50) == b"X" * 1024  # now from checkpoint set
        j.checkpoint()
        assert j.cached(50) is None

    def test_empty_commit_is_noop(self):
        j, store = self._journal()
        j.begin()
        before = dict(store)
        j.commit()
        assert store == before

    def test_corrupt_record_block_aborts_replay(self):
        j, store = self._journal()
        j.begin()
        j.log(100, b"A" * 1024, None)
        j.commit()
        # Corrupt the record block's header fields beyond the magic.
        import struct
        raw = bytearray(store[1])
        struct.pack_into("<H", raw, 8, 60000)  # absurd record count
        store[1] = bytes(raw)
        j2, _ = self._journal()
        j2._read_block = lambda b: store.get(b, b"\x00" * 1024)
        with pytest.raises(CorruptionDetected):
            j2.recover()

    def test_log_super_roundtrip(self):
        raw = pack_log_super(1024, 17, clean=False)
        assert parse_log_super(raw) == (17, False)
        assert parse_log_super(b"\xff" * 1024) is None

    def test_abort_stops_commits(self):
        j, store = self._journal()
        j.begin()
        j.log(100, b"A" * 1024, None)
        j.abort()
        j.commit()
        assert j.aborted
        assert 1 not in store or parse_log_super(store.get(1, b"\x00" * 16)) is None
