"""The fingerprinting harness end to end: golden images, applicability,
determinism, and the workload suite."""

import pytest

from repro.disk import CorruptionMode
from repro.fingerprint import Fingerprinter, WORKLOADS, WORKLOAD_BY_KEY, Recorder
from repro.fingerprint.adapters import make_ext3_adapter, make_ixt3_adapter
from repro.fingerprint.workloads import render_workload_table, standard_setup
from repro.taxonomy import FAULT_CLASSES

from conftest import make_ext3


class TestWorkloadSuite:
    def test_twenty_workloads_in_figure_order(self):
        assert len(WORKLOADS) == 20
        assert [w.key for w in WORKLOADS] == [chr(ord("a") + i) for i in range(20)]

    def test_table3_render(self):
        table = render_workload_table()
        for name in ("creat", "rename", "fsync,sync", "FS recovery", "log writes"):
            assert name in table

    def test_standard_setup_builds_namespace(self):
        disk, fs = make_ext3()
        fs.mount()
        standard_setup(fs)
        for path in ("/dir1/file_big", "/dir1/subdir/leaf", "/link_to_small",
                     "/dir2/victim", "/empty_dir", "/file_trunc"):
            assert fs.exists(path), path
        # The big file must be big enough to need indirection.
        bs = fs.statfs().block_size
        assert fs.stat("/dir1/file_big").size >= 40 * bs

    def test_every_body_runs_clean(self):
        """All twenty bodies execute fault-free on every setup."""
        for workload in WORKLOADS:
            disk, fs = make_ext3()
            fs.mount()
            workload.setup(fs)
            if workload.crash_ops is not None:
                fs.crash_after(workload.crash_ops)
            elif workload.body_mounts:
                fs.unmount()
            recorder = Recorder()
            workload.body(fs, recorder)
            errors = [r for r in recorder.results if r.errno is not None]
            assert not errors, (workload.key, errors)


class TestHarness:
    @pytest.fixture(scope="class")
    def mini_run(self):
        subset = [WORKLOAD_BY_KEY[k] for k in "adops"]
        fp = Fingerprinter(make_ext3_adapter(), workloads=subset)
        return fp, fp.run()

    def test_matrix_dimensions(self, mini_run):
        fp, matrix = mini_run
        assert matrix.fs_name == "ext3"
        assert len(matrix.workloads) == 5
        assert "inode" in matrix.block_types

    def test_every_cell_is_classified_or_na(self, mini_run):
        fp, matrix = mini_run
        for fault_class in FAULT_CLASSES:
            for btype in matrix.block_types:
                for workload in matrix.workloads:
                    key = (fault_class, btype, workload)
                    assert key in matrix.cells or key in matrix.not_applicable

    def test_applicability_reflects_access(self, mini_run):
        """stat-only traversal never writes: all write-failure cells N/A."""
        fp, matrix = mini_run
        traversal = matrix.workloads[0]  # 'path traversal'
        for btype in matrix.block_types:
            assert ("write-failure", btype, traversal) in matrix.not_applicable

    def test_mount_workload_reaches_super(self, mini_run):
        fp, matrix = mini_run
        mount_wl = next(w for w in matrix.workloads if w == "mount")
        assert matrix.get("read-failure", "super", mount_wl) is not None

    def test_recovery_workload_reaches_journal(self, mini_run):
        fp, matrix = mini_run
        rec_wl = next(w for w in matrix.workloads if w == "FS recovery")
        assert matrix.get("read-failure", "j-data", rec_wl) is not None

    def test_counts_match_paper_scale(self):
        """The paper: 'roughly 400 relevant tests' per FS; our full run
        is in the hundreds too."""
        fp = Fingerprinter(make_ext3_adapter())
        fp.run()
        assert 200 <= fp.tests_run <= 600

    def test_deterministic(self):
        subset = [WORKLOAD_BY_KEY["g"]]
        m1 = Fingerprinter(make_ext3_adapter(), workloads=subset).run()
        m2 = Fingerprinter(make_ext3_adapter(), workloads=subset).run()
        assert m1.cells.keys() == m2.cells.keys()
        for key in m1.cells:
            assert m1.cells[key].detection == m2.cells[key].detection
            assert m1.cells[key].recovery == m2.cells[key].recovery

    def test_field_corruption_mode(self):
        subset = [WORKLOAD_BY_KEY["b"]]
        fp = Fingerprinter(make_ext3_adapter(), workloads=subset,
                           corruption_mode=CorruptionMode.FIELD)
        matrix = fp.run()
        assert matrix.cells  # runs end to end with FS-aware corruptors

    def test_ixt3_matrix_shows_redundancy(self):
        subset = [WORKLOAD_BY_KEY[k] for k in "bd"]
        matrix = Fingerprinter(make_ixt3_adapter(), workloads=subset).run()
        from repro.taxonomy import Recovery
        counts = matrix.technique_counts()
        assert counts.get(Recovery.REDUNDANCY, 0) > 0
