"""The fail-partial model end to end (§2.3): each manifestation the
paper enumerates — entire-disk failure, block failure, block corruption
— with its transience and locality dimensions, observed through a real
file system."""

import pytest

from repro.common.errors import Errno, FSError
from repro.disk import (
    CorruptionMode,
    Fault,
    FaultInjector,
    FaultKind,
    FaultOp,
    Persistence,
    make_disk,
)
from repro.fs.ext3 import Ext3

from conftest import make_ext3


@pytest.fixture
def volume():
    disk, fs = make_ext3()
    fs.mount()
    fs.mkdir("/d")
    bs = fs.statfs().block_size
    fs.write_file("/d/a", bytes((i * 3) % 256 for i in range(6 * bs)))
    fs.write_file("/d/b", b"small")
    fs.unmount()
    injector = FaultInjector(disk)
    fs2 = Ext3(injector)
    fs2.mount()
    injector.set_type_oracle(fs2.block_type)
    return disk, injector, fs2


class TestEntireDiskFailure:
    def test_classic_fail_stop(self, volume):
        disk, injector, fs = volume
        disk.fail_whole_disk()
        with pytest.raises(FSError):
            fs.read_file("/d/a")
        with pytest.raises(FSError):
            fs.stat("/d/b")

    def test_mount_impossible_when_disk_dead(self):
        disk, fs = make_ext3()
        disk.fail_whole_disk()
        with pytest.raises(FSError) as e:
            fs.mount()
        assert e.value.errno is Errno.EIO


class TestBlockFailure:
    def test_latent_sector_error_is_local(self, volume):
        """One bad block; the rest of the volume keeps working (§2.3:
        'pieces of the storage subsystem can fail')."""
        disk, injector, fs = volume
        injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block_type="data"))
        with pytest.raises(FSError):
            fs.read_file("/d/a")  # the damaged file
        assert fs.read_file("/d/b") == b"small"  # neighbours unharmed
        assert fs.getdirentries("/d") == [".", "..", "a", "b"]

    def test_sticky_failure_persists(self, volume):
        disk, injector, fs = volume
        injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block_type="data"))
        for _ in range(3):
            with pytest.raises(FSError):
                fs.read_file("/d/a")

    def test_transient_failure_clears(self, volume):
        """A transport glitch fails once; the operation succeeds when
        retried by the caller (§2.3.1).  /d/b is a single-block file, so
        ext3's multi-block readahead retry cannot mask the fault."""
        disk, injector, fs = volume
        fault = injector.arm(Fault(
            op=FaultOp.READ, kind=FaultKind.FAIL, block_type="data",
            persistence=Persistence.TRANSIENT, transient_count=1))
        fault.match_index = 6  # skip /d/a's six data blocks; bind to /d/b
        fs.read_file("/d/a")
        with pytest.raises(FSError):
            fs.read_file("/d/b")
        assert fs.read_file("/d/b") == b"small"  # caller's retry succeeds

    def test_spatial_locality_takes_out_a_file(self, volume):
        """A scratch across neighbouring blocks (§2.3.2)."""
        disk, injector, fs = volume
        injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL,
                           block_type="data", locality_run=5))
        with pytest.raises(FSError):
            fs.read_file("/d/a")

    def test_write_failure_without_remap_loses_data(self, volume):
        """Writes can fail too (§2.3.3), and with no free-block remap in
        ext3 the data is silently gone."""
        disk, injector, fs = volume
        injector.arm(Fault(op=FaultOp.WRITE, kind=FaultKind.FAIL,
                           block_type="data"))
        fs.write_file("/d/c", b"C" * 2048)  # "succeeds"
        data = fs.read_file("/d/c")
        assert data != b"C" * 2048  # one block never reached the medium


class TestBlockCorruption:
    def test_corruption_is_silent(self, volume):
        """'The storage subsystem simply returns bad data upon a read'
        (§2.3) — no error surfaces anywhere in ext3."""
        disk, injector, fs = volume
        injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.CORRUPT,
                           block_type="data", corruption=CorruptionMode.NOISE))
        data = fs.read_file("/d/a")
        bs = fs.statfs().block_size
        assert data != bytes((i * 3) % 256 for i in range(6 * bs))
        assert not fs.syslog.has_event("sanity-fail")

    def test_shift_corruption_models_firmware_bug(self, volume):
        """'Disks have been known to return correct data but circularly
        shifted by a byte' (§2.2)."""
        disk, injector, fs = volume
        injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.CORRUPT,
                           block_type="data", corruption=CorruptionMode.SHIFT))
        bs = fs.statfs().block_size
        expected = bytes((i * 3) % 256 for i in range(6 * bs))
        data = fs.read_file("/d/a")
        assert data != expected
        # Exactly one block worth of bytes is shifted, the rest intact.
        diff_blocks = sum(1 for k in range(6)
                          if data[k * bs:(k + 1) * bs] != expected[k * bs:(k + 1) * bs])
        assert diff_blocks == 1

    def test_corrupt_on_write_sticks_to_the_medium(self, volume):
        """A misdirected/phantom-style write stores bad data while
        reporting success (§2.2)."""
        disk, injector, fs = volume
        injector.arm(Fault(op=FaultOp.WRITE, kind=FaultKind.CORRUPT,
                           block_type="data", corruption=CorruptionMode.ZERO))
        fs.write_file("/d/c", b"Z" * 1024)
        injector.clear_faults()
        assert fs.read_file("/d/c") != b"Z" * 1024
