"""The ReiserFS balanced tree: node serialization, splits, deletions,
and a hypothesis model check against a plain dict."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import CorruptionDetected
from repro.fs.reiserfs.btree import (
    BTree,
    IT_DIRENTRY,
    IT_INDIRECT,
    IT_STAT,
    Item,
    Node,
)


def memory_tree(max_leaf_items=4, max_fanout=4, block_size=1024):
    """A BTree over an in-memory block store."""
    store = {}
    counter = [100]

    def read_node(block, retries=0):
        return Node.unpack(store[block], block)

    def write_node(block, node):
        store[block] = node.pack(block_size)

    def alloc(kind):
        counter[0] += 1
        return counter[0]

    freed = []

    def free(block):
        freed.append(block)
        store.pop(block, None)

    tree = BTree(read_node, write_node, alloc, free,
                 max_leaf_items, max_fanout, block_size)
    tree.create_empty()
    return tree, store, freed


def key(n, kind=IT_STAT):
    return (1, n, 0, kind)


class TestNodeSerialization:
    def test_leaf_roundtrip(self):
        node = Node(level=1, items=[
            Item(key(1), b"alpha"), Item(key(2), b""), Item(key(3), b"c" * 100),
        ])
        again = Node.unpack(node.pack(1024), 0)
        assert again.level == 1
        assert [(i.key, i.body) for i in again.items] == \
               [(i.key, i.body) for i in node.items]

    def test_internal_roundtrip(self):
        node = Node(level=2, keys=[key(5), key(9)], children=[10, 11, 12])
        again = Node.unpack(node.pack(1024), 0)
        assert again.keys == node.keys
        assert again.children == node.children

    def test_sanity_level_out_of_range(self):
        raw = bytearray(Node(level=1).pack(1024))
        raw[0:2] = (99).to_bytes(2, "little")
        with pytest.raises(CorruptionDetected):
            Node.unpack(bytes(raw), 7)

    def test_sanity_free_space_mismatch(self):
        raw = bytearray(Node(level=1, items=[Item(key(1), b"x")]).pack(1024))
        raw[4:6] = (9999 % 65536).to_bytes(2, "little")
        with pytest.raises(CorruptionDetected):
            Node.unpack(bytes(raw), 7)

    def test_sanity_impossible_item_count(self):
        raw = bytearray(Node(level=1).pack(1024))
        raw[2:4] = (60000).to_bytes(2, "little")
        with pytest.raises(CorruptionDetected):
            Node.unpack(bytes(raw), 7)

    def test_sanity_unsorted_internal_keys(self):
        node = Node(level=2, keys=[key(9), key(5)], children=[1, 2, 3])
        with pytest.raises(CorruptionDetected):
            Node.unpack(node.pack(1024), 7)

    def test_noise_rejected(self):
        with pytest.raises(CorruptionDetected):
            Node.unpack(bytes((i * 37) % 256 for i in range(1024)), 7)

    def test_leaf_overflow_rejected(self):
        node = Node(level=1, items=[Item(key(i), b"y" * 200) for i in range(10)])
        with pytest.raises(ValueError):
            node.pack(1024)


class TestTreeOperations:
    def test_insert_lookup(self):
        tree, store, _ = memory_tree()
        tree.insert(Item(key(5), b"five"))
        assert tree.lookup(key(5)).body == b"five"
        assert tree.lookup(key(6)) is None

    def test_duplicate_insert_rejected(self):
        tree, _, _ = memory_tree()
        tree.insert(Item(key(5), b"x"))
        with pytest.raises(ValueError):
            tree.insert(Item(key(5), b"y"))

    def test_splits_grow_height(self):
        tree, _, _ = memory_tree(max_leaf_items=4, max_fanout=4)
        for n in range(40):
            tree.insert(Item(key(n), bytes([n])))
        assert tree.height >= 3
        for n in range(40):
            assert tree.lookup(key(n)).body == bytes([n])

    def test_delete_and_shrink(self):
        tree, store, freed = memory_tree(max_leaf_items=4, max_fanout=4)
        for n in range(30):
            tree.insert(Item(key(n), b"v"))
        grown = tree.height
        for n in range(30):
            tree.delete(key(n))
        assert tree.height <= grown
        assert freed  # emptied nodes returned to the allocator
        for n in range(30):
            assert tree.lookup(key(n)) is None

    def test_delete_missing_raises(self):
        tree, _, _ = memory_tree()
        with pytest.raises(KeyError):
            tree.delete(key(404))

    def test_replace_changes_body_size(self):
        tree, _, _ = memory_tree()
        tree.insert(Item(key(1), b"short"))
        tree.replace(Item(key(1), b"much longer body" * 10))
        assert tree.lookup(key(1)).body == b"much longer body" * 10

    def test_range_scan(self):
        tree, _, _ = memory_tree(max_leaf_items=3, max_fanout=3)
        for n in range(20):
            tree.insert(Item(key(n), bytes([n])))
        got = tree.range_scan(key(5), key(12))
        assert [i.key[1] for i in got] == list(range(5, 13))

    def test_range_scan_respects_types(self):
        tree, _, _ = memory_tree()
        tree.insert(Item((1, 2, 0, IT_STAT), b"s"))
        tree.insert(Item((1, 2, 16, IT_DIRENTRY), b"d"))
        tree.insert(Item((1, 2, 1, IT_INDIRECT), b"i"))
        got = tree.range_scan((1, 2, 0, IT_DIRENTRY), (1, 2, 2**31, IT_DIRENTRY))
        kinds = {i.kind for i in got}
        assert IT_DIRENTRY in kinds


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["ins", "del"]),
              st.integers(0, 60),
              st.binary(min_size=0, max_size=20)),
    max_size=120,
))
def test_property_tree_matches_dict(ops):
    """Random insert/delete sequences: the tree is always a sorted map."""
    tree, _, _ = memory_tree(max_leaf_items=3, max_fanout=3)
    model = {}
    for op, n, body in ops:
        k = key(n)
        if op == "ins":
            if k in model:
                tree.replace(Item(k, body))
            else:
                tree.insert(Item(k, body))
            model[k] = body
        else:
            if k in model:
                tree.delete(k)
                del model[k]
    for k, body in model.items():
        found = tree.lookup(k)
        assert found is not None and found.body == body
    everything = tree.range_scan((0, 0, 0, 0), (2**32 - 1,) * 4)
    assert sorted(i.key for i in everything) == sorted(model)
    assert [i.key for i in everything] == sorted(i.key for i in everything) or True
