"""Parallel fingerprinting: the jobs=N fan-out must be byte-identical
to the serial run, and unparallelizable configurations must fail loudly
instead of silently diverging."""

import dataclasses

import pytest

from repro.fingerprint import Fingerprinter, WORKLOAD_BY_KEY
from repro.fingerprint.adapters import make_ext3_adapter, make_ixt3_adapter
from repro.fingerprint.parallel import check_parallelizable
from repro.fingerprint.workloads import Workload
from repro.taxonomy import render_full_figure

SUBSET = [WORKLOAD_BY_KEY[k] for k in "abd"]


class TestParallelDeterminism:
    @pytest.fixture(scope="class")
    def serial_and_parallel(self):
        fp1 = Fingerprinter(make_ext3_adapter(), workloads=SUBSET)
        fp4 = Fingerprinter(make_ext3_adapter(), workloads=SUBSET, jobs=4)
        return fp1.run(), fp4.run(), fp1, fp4

    def test_rendered_panels_byte_identical(self, serial_and_parallel):
        m1, m2, _, _ = serial_and_parallel
        assert render_full_figure(m1) == render_full_figure(m2)

    def test_cells_and_na_sets_identical(self, serial_and_parallel):
        m1, m2, _, _ = serial_and_parallel
        assert list(m1.cells.keys()) == list(m2.cells.keys())
        assert m1.not_applicable == m2.not_applicable
        for key in m1.cells:
            assert m1.cells[key].detection == m2.cells[key].detection
            assert m1.cells[key].recovery == m2.cells[key].recovery

    def test_event_stream_deterministic_across_jobs(self, serial_and_parallel):
        """The typed event stream, not just the rendered figure, must be
        identical run to run: per-workload digests fold every ordered
        event key from the baseline and each fault run."""
        _, _, fp1, fp4 = serial_and_parallel
        assert set(fp4.workload_digest) == {w.key for w in SUBSET}
        assert fp4.workload_digest == fp1.workload_digest
        assert fp4.workload_events == fp1.workload_events
        # A digest of zero events would be vacuous determinism.
        assert all(count > 0 for count in fp1.workload_events.values())

    def test_bookkeeping_matches_serial(self):
        fp1 = Fingerprinter(make_ext3_adapter(), workloads=SUBSET)
        fp1.run()
        fp4 = Fingerprinter(make_ext3_adapter(), workloads=SUBSET, jobs=4)
        fp4.run()
        assert fp4.tests_run == fp1.tests_run
        assert fp4.cells == fp1.cells
        assert set(fp4.workload_wall) == {w.key for w in SUBSET}
        for key, io in fp4.workload_io.items():
            assert io == fp1.workload_io[key], key

    def test_ixt3_parallel_roundtrip(self):
        subset = [WORKLOAD_BY_KEY["b"], WORKLOAD_BY_KEY["d"]]
        m1 = Fingerprinter(make_ixt3_adapter(), workloads=subset).run()
        m2 = Fingerprinter(make_ixt3_adapter(), workloads=subset, jobs=2).run()
        assert render_full_figure(m1) == render_full_figure(m2)


class TestParallelGuards:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            Fingerprinter(make_ext3_adapter(), jobs=0)

    def test_unregistered_adapter_rejected(self):
        adapter = dataclasses.replace(make_ext3_adapter(), registry_key=None)
        fp = Fingerprinter(adapter, workloads=SUBSET, jobs=2)
        with pytest.raises(ValueError, match="registry"):
            check_parallelizable(fp)

    def test_custom_workload_rejected(self):
        rogue = dataclasses.replace(WORKLOAD_BY_KEY["a"], name="rogue")
        fp = Fingerprinter(make_ext3_adapter(), workloads=[rogue, SUBSET[1]],
                           jobs=2)
        with pytest.raises(ValueError, match="jobs=1"):
            check_parallelizable(fp)

    def test_single_workload_stays_serial(self):
        """jobs>1 with one workload short-circuits to the serial path —
        no pool spin-up for nothing."""
        fp = Fingerprinter(make_ext3_adapter(), workloads=[WORKLOAD_BY_KEY["a"]],
                           jobs=8)
        matrix = fp.run()
        assert matrix.cells
