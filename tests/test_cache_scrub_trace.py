"""Units for the block cache, the scrubber, and the I/O trace."""

import pytest

from repro.common.errors import ReadError, WriteError
from repro.disk import (
    BlockCache,
    Fault,
    FaultInjector,
    FaultKind,
    FaultOp,
    IOTrace,
    Scrubber,
    make_disk,
)


class TestBlockCache:
    def test_read_hits_skip_the_disk(self):
        disk = make_disk(16, 512)
        disk.write_block(3, b"\x11" * 512)
        cache = BlockCache(disk, 8)
        cache.read_block(3)
        reads_before = disk.stats.reads
        for _ in range(5):
            assert cache.read_block(3) == b"\x11" * 512
        assert disk.stats.reads == reads_before
        assert cache.hits == 5

    def test_write_through(self):
        disk = make_disk(16, 512)
        cache = BlockCache(disk, 8)
        cache.write_block(2, b"\x22" * 512)
        assert disk.peek(2) == b"\x22" * 512
        assert cache.read_block(2) == b"\x22" * 512
        assert disk.stats.reads == 0  # served from cache

    def test_lru_eviction(self):
        disk = make_disk(16, 512)
        cache = BlockCache(disk, 2)
        cache.read_block(0)
        cache.read_block(1)
        cache.read_block(2)  # evicts 0
        r = disk.stats.reads
        cache.read_block(1)  # still cached
        assert disk.stats.reads == r
        cache.read_block(0)  # miss again
        assert disk.stats.reads == r + 1

    def test_failed_write_does_not_cache(self):
        disk = make_disk(16, 512)
        disk.write_block(4, b"\x44" * 512)
        injector = FaultInjector(disk)
        cache = BlockCache(injector, 8)
        injector.arm(Fault(op=FaultOp.WRITE, kind=FaultKind.FAIL, block=4))
        with pytest.raises(WriteError):
            cache.write_block(4, b"\x55" * 512)
        injector.clear_faults()
        assert cache.read_block(4) == b"\x44" * 512  # old contents, not stale new

    def test_write_error_never_leaves_failed_block_cached(self):
        """The write-through invariant claimed in write_block: a device
        WriteError propagates before the cache is touched, so the failed
        payload is never insertable as a hit."""
        disk = make_disk(16, 512)
        injector = FaultInjector(disk)
        cache = BlockCache(injector, 8)
        injector.arm(Fault(op=FaultOp.WRITE, kind=FaultKind.FAIL, block=7))
        with pytest.raises(WriteError):
            cache.write_block(7, b"\x77" * 512)
        assert 7 not in cache._lru
        injector.clear_faults()
        # Device truth (never written), not the failed payload.
        assert cache.read_block(7) == b"\x00" * 512

    def test_hit_rate_and_reset_stats(self):
        disk = make_disk(16, 512)
        cache = BlockCache(disk, 8)
        assert cache.hit_rate() == 0.0  # idle: no division by zero
        cache.read_block(1)  # miss
        cache.read_block(1)  # hit
        cache.read_block(1)  # hit
        cache.read_block(2)  # miss
        assert (cache.hits, cache.misses) == (2, 2)
        assert cache.hit_rate() == pytest.approx(0.5)
        cache.reset_stats()
        assert (cache.hits, cache.misses) == (0, 0)
        assert cache.hit_rate() == 0.0
        reads = disk.stats.reads
        cache.read_block(1)  # resetting counters must not drop cached data
        assert disk.stats.reads == reads

    def test_stats_passthrough_reaches_raw_disk(self):
        disk = make_disk(16, 512)
        cache = BlockCache(FaultInjector(disk), 8)
        cache.read_block(0)
        assert cache.stats is disk.stats
        assert cache.stats.reads == 1

    def test_invalidate(self):
        disk = make_disk(16, 512)
        cache = BlockCache(disk, 8)
        cache.read_block(0)
        cache.invalidate(0)
        r = disk.stats.reads
        cache.read_block(0)
        assert disk.stats.reads == r + 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BlockCache(make_disk(4, 512), 0)


class TestScrubber:
    def _decayed_disk(self):
        disk = make_disk(32, 512)
        for i in range(32):
            disk.write_block(i, bytes([i]) * 512)
        injector = FaultInjector(disk)
        for b in (5, 17, 30):
            injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block=b))
        return disk, injector

    def test_finds_latent_errors(self):
        _, injector = self._decayed_disk()
        report = Scrubber(injector).scrub()
        assert report.latent_errors == [5, 17, 30]
        assert report.blocks_scanned == 32
        assert report.unrepairable == [5, 17, 30]  # no repairer given
        assert report.problems == 3

    def test_finds_corruption_with_verifier(self):
        disk = make_disk(8, 512)
        good = {i: bytes([i]) * 512 for i in range(8)}
        for i, payload in good.items():
            disk.write_block(i, payload)
        disk.poke(3, b"\xee" * 512)  # silent at-rest corruption

        report = Scrubber(disk, verifier=lambda b, data: data == good[b]).scrub()
        assert report.corruptions == [3]
        assert report.latent_errors == []

    def test_repairer_invoked(self):
        _, injector = self._decayed_disk()
        repaired = []
        report = Scrubber(injector, repairer=lambda b: repaired.append(b) or True).scrub()
        assert repaired == [5, 17, 30]
        assert report.repaired == [5, 17, 30]
        assert not report.unrepairable

    def test_partial_range(self):
        _, injector = self._decayed_disk()
        report = Scrubber(injector).scrub(start=0, end=10)
        assert report.latent_errors == [5]
        with pytest.raises(ValueError):
            Scrubber(injector).scrub(start=5, end=100)

    def test_render(self):
        _, injector = self._decayed_disk()
        text = Scrubber(injector).scrub().render()
        assert "3 latent errors" in text


class TestIOTrace:
    def test_queries(self):
        t = IOTrace()
        t.record("read", 5, "ok", "inode")
        t.record("read", 5, "ok", "inode")
        t.record("write", 6, "error", "data")
        assert t.reads_of(5) == 2
        assert t.writes_of(6) == 1
        assert t.retry_count(5, "read") == 1
        assert t.retry_count(6, "write") == 0
        assert [e.block for e in t.errors()] == [6]
        assert t.blocks_read() == [5, 5]
        assert t.blocks_written() == [6]

    def test_render_limit(self):
        t = IOTrace()
        for i in range(10):
            t.record("read", i, "ok")
        text = t.render(limit=3)
        assert "7 more" in text

    def test_clear(self):
        t = IOTrace()
        t.record("read", 1, "ok")
        t.clear()
        assert len(t) == 0
