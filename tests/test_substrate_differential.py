"""Differential test: the zero-copy slab substrate vs the pre-slab
reference disk, under the full ext3 fingerprinting matrix.

The slab substrate (CoW images, O(1) snapshot/restore, shared base
slabs) exists purely for speed; it must not change a single observable.
This suite runs the complete ext3 fault-injection matrix on both
substrates and asserts identical policy observations, identical
per-workload event digests, and identical raw-device accounting.
"""

from __future__ import annotations

import pytest

import repro.fingerprint.adapters as adapters_mod
from repro.disk.legacy import make_legacy_disk
from repro.fingerprint import Fingerprinter
from repro.fingerprint.adapters import ADAPTERS
from repro.taxonomy import render_full_figure


def _run_matrix():
    fp = Fingerprinter(ADAPTERS["ext3"]())
    matrix = fp.run()
    return fp, matrix


@pytest.fixture(scope="module")
def both_runs(request):
    slab_fp, slab_matrix = _run_matrix()
    # Redirect the adapter's device factory at the legacy reference
    # implementation and run the identical matrix again.
    original = adapters_mod.make_disk
    adapters_mod.make_disk = (
        lambda num_blocks, block_size=4096, **t:
            make_legacy_disk(num_blocks, block_size, **t)
    )
    try:
        legacy_fp, legacy_matrix = _run_matrix()
    finally:
        adapters_mod.make_disk = original
    return slab_fp, slab_matrix, legacy_fp, legacy_matrix


def test_policy_observations_identical(both_runs):
    slab_fp, slab_matrix, legacy_fp, legacy_matrix = both_runs
    assert render_full_figure(slab_matrix) == render_full_figure(legacy_matrix)
    assert slab_matrix.cells == legacy_matrix.cells
    assert slab_fp.tests_run == legacy_fp.tests_run
    assert slab_fp.cells == legacy_fp.cells


def test_event_digests_identical(both_runs):
    slab_fp, _, legacy_fp, _ = both_runs
    assert slab_fp.workload_digest  # non-empty: digests were recorded
    assert slab_fp.workload_digest == legacy_fp.workload_digest


def test_device_accounting_identical(both_runs):
    slab_fp, _, legacy_fp, _ = both_runs
    assert set(slab_fp.workload_io) == set(legacy_fp.workload_io)
    for key, io in slab_fp.workload_io.items():
        assert io == legacy_fp.workload_io[key], key
