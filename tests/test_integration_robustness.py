"""Integration: cross-cutting robustness scenarios combining crash
recovery, fault injection, scrubbing and fsck."""

import pytest

from repro.common.errors import FSError
from repro.disk import (
    CorruptionMode,
    Fault,
    FaultInjector,
    FaultKind,
    FaultOp,
    Persistence,
    Scrubber,
    corruption,
    make_disk,
    read_failure,
)
from repro.fs.ext3 import Ext3, fsck_ext3
from repro.fs.ixt3 import Ixt3

from conftest import FS_FACTORIES, IXT3_BASE, IXT3_CFG, make_ext3, make_ixt3
from repro.fs.ixt3 import mkfs_ixt3


class TestCrashDuringFaults:
    @pytest.mark.parametrize("name", sorted(FS_FACTORIES))
    def test_double_crash_recovery(self, name):
        """Crash, recover, crash again mid-work, recover again."""
        disk, fs = FS_FACTORIES[name]()
        fs.mount()
        fs.write_file("/gen0", b"generation zero")
        fs.crash_after(lambda f: f.write_file("/gen1", b"generation one"))
        fs2 = type(fs)(disk)
        fs2.mount()
        assert fs2.read_file("/gen1") == b"generation one"
        fs2.crash_after(lambda f: f.write_file("/gen2", b"generation two"))
        fs3 = type(fs)(disk)
        fs3.mount()
        for gen, body in ((0, b"generation zero"), (1, b"generation one"),
                          (2, b"generation two")):
            assert fs3.read_file(f"/gen{gen}") == body

    def test_ext3_blindly_replays_corrupt_journal_data(self):
        """The ext3 blind-replay hazard end to end: a journaled copy is
        corrupted at rest, and recovery writes the garbage straight to
        its home location without any sanity check (§5.1)."""
        from repro.fs.ext3.journal import parse_desc
        disk, fs = make_ext3()
        fs.mount()
        fs.write_file("/seed", b"seed")
        cfg = fs.config
        fs.crash_after(lambda f: f.mkdir("/newdir"))
        # Corrupt the first journaled copy at rest.
        for pos in range(1, cfg.journal_blocks):
            if parse_desc(disk.peek(cfg.journal_start + pos)):
                victim = cfg.journal_start + pos + 1
                disk.poke(victim, b"\x5a" * cfg.block_size)
                break
        fs2 = Ext3(disk)
        fs2.mount()  # replay happens; ext3 notices nothing
        assert not fs2.syslog.has_event("sanity-fail")
        # The volume is now structurally damaged: fsck confirms.
        fs2.unmount()
        assert not fsck_ext3(disk).clean

    def test_ixt3_transactional_checksum_blocks_garbage_replay(self):
        """ixt3 + Tc: the same corrupted-journal crash cannot commit."""
        disk = make_disk(IXT3_CFG.total_blocks, IXT3_CFG.block_size)
        mkfs_ixt3(disk, IXT3_BASE, config=IXT3_CFG)
        fs = Ixt3(disk)
        fs.mount()
        fs.write_file("/seed", b"seed")
        fs.crash_after(lambda f: f.mkdir("/newdir"))
        # Corrupt one journal data block at rest.
        from repro.fs.ext3.journal import parse_desc
        for pos in range(1, IXT3_CFG.journal_blocks):
            if parse_desc(disk.peek(IXT3_CFG.journal_start + pos)):
                disk.poke(IXT3_CFG.journal_start + pos + 1,
                          b"\x66" * IXT3_CFG.block_size)
                break
        fs2 = Ixt3(disk)
        fs2.mount()
        assert fs2.syslog.has_event("txn-checksum-mismatch")
        assert fs2.read_file("/seed") == b"seed"       # old state intact
        assert not fs2.exists("/newdir")               # torn txn discarded
        # And the volume is structurally sound.
        fs2.unmount()
        assert fsck_ext3(disk).clean


class TestScrubRepairLoop:
    def test_scrub_plus_fs_reads_heal_ixt3(self):
        disk, fs = make_ixt3()
        fs.mount()
        for i in range(4):
            fs.write_file(f"/f{i}", bytes([i + 1]) * 3000)
        fs.unmount()

        injector = FaultInjector(disk)
        fs2 = Ixt3(injector)
        fs2.mount()
        injector.set_type_oracle(fs2.block_type)
        injector.arm(read_failure("data"))
        injector.arm(corruption("inode"))

        # Every file still reads back despite both faults.
        for i in range(4):
            assert fs2.read_file(f"/f{i}") == bytes([i + 1]) * 3000
        assert fs2.syslog.has_event("redundancy-used")

    def test_whole_disk_failure_is_fail_stop(self):
        disk, fs = make_ixt3()
        fs.mount()
        fs.write_file("/f", b"x")
        raw = fs._raw_disk()
        raw.fail_whole_disk()
        with pytest.raises(FSError):
            fs.read_file("/f")
        raw.revive()
        assert fs.read_file("/f") == b"x"


class TestFsckAfterBugDamage:
    def test_fsck_cleans_up_after_reiserfs_style_leak_in_ext3(self):
        """Leaked blocks (bitmap says used, nothing references them)
        are reclaimed by fsck."""
        disk, fs = make_ext3()
        fs.mount()
        fs.write_file("/f", b"d" * 5000)
        cfg = fs.config
        fs.unlink("/f")
        free_true = fs.statfs().free_blocks
        fs.unmount()
        # Fake a leak: mark ten data blocks allocated behind the FS's back.
        from repro.common.bitmap import Bitmap
        raw = disk.peek(cfg.block_bitmap_block(0))
        bmp = Bitmap(cfg.data_blocks_per_group, raw)
        for bit in range(40, 50):
            bmp.set(bit)
        disk.poke(cfg.block_bitmap_block(0), bmp.to_bytes(pad_to=cfg.block_size))

        report = fsck_ext3(disk, repair=True)
        assert report.bitmap_fixes >= 1
        fs2 = Ext3(disk)
        fs2.mount()
        assert fs2.statfs().free_blocks == free_true
