"""Crash-state exploration over array-backed storage.

The array must be invisible to the crash engine: the same workload on
the same file system produces the same write stream, the same
enumerated states, and the same oracle verdicts whether the blocks
land on one disk or are spread across a redundancy array — at any
``--jobs`` width (the composite snapshot crosses process boundaries
through shared memory)."""

from __future__ import annotations

import pytest

from repro.common.pool import SharedSnapshot, attach_snapshot
from repro.crash import CRASH_PROFILES, CRASH_WORKLOADS, explore
from repro.crash.engine import record
from repro.redundancy import ArraySnapshot, make_array

_REPORTS = {}


def _report(key):
    if key not in _REPORTS:
        _REPORTS[key] = explore(key, "creat")
    return _REPORTS[key]


@pytest.mark.parametrize("profile", ["ext3@mirror2", "ext3@rdp5"])
def test_array_profiles_registered(profile):
    assert profile in CRASH_PROFILES


@pytest.mark.parametrize("profile", ["ext3@mirror2", "ext3@rdp5"])
def test_array_backed_exploration_matches_single_disk(profile):
    base = _report("ext3")
    arrayed = _report(profile)
    assert arrayed.states_explored == base.states_explored
    assert arrayed.violation_digest() == base.violation_digest()


def test_array_exploration_is_jobs_invariant():
    serial = _report("ext3@mirror2")
    fanned = explore("ext3@mirror2", "creat", jobs=2)
    assert fanned.violation_digest() == serial.violation_digest()
    assert fanned.states_explored == serial.states_explored


def test_recording_golden_is_composite_snapshot():
    rec = record(CRASH_PROFILES["ext3@mirror2"], CRASH_WORKLOADS["creat"])
    assert isinstance(rec.golden, ArraySnapshot)


def test_shared_snapshot_round_trips_composite():
    array = make_array("rdp", 24, 512, members=5)
    for b in range(24):
        array.write_block(b, bytes([b + 1]) * 512)
    # Raw member-level damage must survive the shared-memory round
    # trip too: the snapshot is per-member, not logical.
    m, mb = array._locate(3)
    array.members[m].disk.poke(mb, b"\xa5" * 512)
    snap = array.snapshot()
    shared = SharedSnapshot(snap)
    try:
        clone = attach_snapshot(shared.descriptor)
        assert clone == snap
        other = make_array("rdp", 24, 512, members=5)
        other.restore(clone)
        for b in range(24):
            if b != 3:
                assert other.read_block(b) == bytes([b + 1]) * 512
    finally:
        shared.close()


def test_shared_snapshot_passes_plain_slab_through():
    from repro.disk import make_disk

    disk = make_disk(16, 512)
    disk.write_block(0, b"\x42" * 512)
    snap = disk.snapshot()
    shared = SharedSnapshot(snap)
    try:
        clone = attach_snapshot(shared.descriptor)
        fresh = make_disk(16, 512)
        fresh.restore(clone)
        assert fresh.read_block(0) == b"\x42" * 512
    finally:
        shared.close()
