"""Shared fixtures: freshly formatted volumes for every file system."""

from __future__ import annotations

import pytest

from repro.disk import DeviceStack, make_disk
from repro.fs.ext3 import Ext3, Ext3Config, mkfs_ext3
from repro.fs.ixt3 import Ixt3, ixt3_config, mkfs_ixt3
from repro.fs.jfs import JFS, JFSConfig, mkfs_jfs
from repro.fs.ntfs import NTFS, NTFSConfig, mkfs_ntfs
from repro.fs.reiserfs import ReiserConfig, ReiserFS, mkfs_reiserfs

EXT3_CFG = Ext3Config(block_size=1024, blocks_per_group=256, inodes_per_group=64,
                      num_groups=2, journal_blocks=64, ptrs_per_block=8)
REISER_CFG = ReiserConfig(block_size=1024, total_blocks=768, journal_blocks=64)
JFS_CFG = JFSConfig()
NTFS_CFG = NTFSConfig()
IXT3_BASE = EXT3_CFG
IXT3_CFG = ixt3_config(IXT3_BASE)


def make_ext3():
    disk = make_disk(EXT3_CFG.total_blocks, EXT3_CFG.block_size)
    mkfs_ext3(disk, EXT3_CFG)
    return disk, Ext3(disk)


def make_reiserfs():
    disk = make_disk(REISER_CFG.total_blocks, REISER_CFG.block_size)
    mkfs_reiserfs(disk, REISER_CFG)
    return disk, ReiserFS(disk)


def make_jfs():
    disk = make_disk(JFS_CFG.total_blocks, JFS_CFG.block_size)
    mkfs_jfs(disk, JFS_CFG)
    return disk, JFS(disk)


def make_ntfs():
    disk = make_disk(NTFS_CFG.total_blocks, NTFS_CFG.block_size)
    mkfs_ntfs(disk, NTFS_CFG)
    return disk, NTFS(disk)


def make_ixt3():
    disk = make_disk(IXT3_CFG.total_blocks, IXT3_CFG.block_size)
    mkfs_ixt3(disk, IXT3_BASE, config=IXT3_CFG)
    return disk, Ixt3(disk)


FS_FACTORIES = {
    "ext3": make_ext3,
    "reiserfs": make_reiserfs,
    "jfs": make_jfs,
    "ntfs": make_ntfs,
    "ixt3": make_ixt3,
}

FS_CLASSES = {
    "ext3": Ext3,
    "reiserfs": ReiserFS,
    "jfs": JFS,
    "ntfs": NTFS,
    "ixt3": Ixt3,
}


@pytest.fixture(params=sorted(FS_FACTORIES))
def any_fs(request):
    """A mounted, freshly formatted file system of each kind."""
    disk, fs = FS_FACTORIES[request.param]()
    fs.mount()
    yield fs
    if fs.mounted and not fs.read_only:
        fs.unmount()


@pytest.fixture(params=sorted(FS_FACTORIES))
def fs_with_disk(request):
    """(name, disk, mounted fs) for tests that remount or inject faults."""
    disk, fs = FS_FACTORIES[request.param]()
    fs.mount()
    return request.param, disk, fs


@pytest.fixture
def ext3_fs():
    disk, fs = make_ext3()
    fs.mount()
    return disk, fs


@pytest.fixture
def reiser_fs():
    disk, fs = make_reiserfs()
    fs.mount()
    return disk, fs


@pytest.fixture
def jfs_fs():
    disk, fs = make_jfs()
    fs.mount()
    return disk, fs


@pytest.fixture
def ntfs_fs():
    disk, fs = make_ntfs()
    fs.mount()
    return disk, fs


@pytest.fixture
def ixt3_fs():
    disk, fs = make_ixt3()
    fs.mount()
    return disk, fs


def faulty_remount(name: str, disk):
    """Remount *disk* behind a fault injector with the oracle wired up."""
    stack = DeviceStack(disk, inject=True)
    fs = FS_CLASSES[name](stack)
    fs.mount()
    stack.injector.set_type_oracle(fs.block_type)
    return stack.injector, fs
