"""NTFS internals: structures, MFT mechanics, layout."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import CorruptionDetected
from repro.fs.ntfs import NTFS, NTFSConfig, mkfs_ntfs
from repro.fs.ntfs.structures import (
    BOOT_MAGIC,
    BootFile,
    FLAG_IN_USE,
    FLAG_IS_DIR,
    FIRST_USER_MFT,
    MFTRecord,
    NUM_RUNS,
    ROOT_MFT,
    pack_index_block,
    unpack_index_block,
)

from conftest import make_ntfs


class TestStructures:
    def test_boot_roundtrip(self):
        boot = BootFile(magic=BOOT_MAGIC, block_size=1024, total_blocks=768,
                        mft_start=51, mft_records=112, logfile_start=1,
                        logfile_blocks=48, vol_bitmap_start=49,
                        mft_bitmap_block=50)
        assert BootFile.unpack(boot.pack(1024)) == boot
        assert boot.is_valid()
        assert not BootFile.unpack(b"\x00" * 1024).is_valid()

    @given(st.builds(MFTRecord,
                     flags=st.integers(0, 3),
                     links=st.integers(0, 100),
                     mode=st.integers(0, 0xFFFF),
                     size=st.integers(0, 2**40),
                     runs=st.lists(st.integers(0, 2**31),
                                   min_size=NUM_RUNS, max_size=NUM_RUNS)))
    def test_property_mft_record_roundtrip(self, rec):
        assert MFTRecord.unpack(rec.pack(1024), 0) == rec

    def test_mft_magic_checked(self):
        with pytest.raises(CorruptionDetected):
            MFTRecord.unpack(b"\x00" * 1024, 5)

    def test_index_block_roundtrip(self):
        entries = [(ROOT_MFT, 2, "."), (ROOT_MFT, 2, ".."), (20, 1, "a.txt")]
        block = pack_index_block(entries, 1024)
        assert unpack_index_block(block, 0, 1024) == entries

    def test_index_magic_and_count_checked(self):
        with pytest.raises(CorruptionDetected):
            unpack_index_block(b"\xab" * 1024, 0, 1024)
        import struct
        raw = bytearray(pack_index_block([(5, 1, "x")], 1024))
        struct.pack_into("<I", raw, 4, 50000)
        with pytest.raises(CorruptionDetected):
            unpack_index_block(bytes(raw), 0, 1024)

    def test_flags(self):
        rec = MFTRecord(flags=FLAG_IN_USE | FLAG_IS_DIR)
        assert rec.in_use and rec.is_dir
        assert not MFTRecord(flags=0).in_use


class TestMFTMechanics:
    def test_system_records_reserved(self):
        disk, fs = make_ntfs()
        fs.mount()
        fd = fs.creat("/first")
        fs.close(fd)
        assert fs.stat("/first").ino >= FIRST_USER_MFT

    def test_one_record_per_block(self):
        disk, fs = make_ntfs()
        fs.mount()
        a = fs.stat("/").ino
        assert fs.block_type(fs.boot.mft_start + a) == "MFT"

    def test_run_capacity_limit(self):
        disk, fs = make_ntfs()
        fs.mount()
        from repro.common.errors import Errno, FSError
        fd = fs.creat("/big")
        with pytest.raises(FSError) as e:
            fs.write(fd, b"x", offset=NUM_RUNS * fs.statfs().block_size + 1)
        assert e.value.errno is Errno.EFBIG

    def test_mft_reuse_after_unlink(self):
        disk, fs = make_ntfs()
        fs.mount()
        fd = fs.creat("/a")
        fs.close(fd)
        ino_a = fs.stat("/a").ino
        fs.unlink("/a")
        fd = fs.creat("/b")
        fs.close(fd)
        assert fs.stat("/b").ino == ino_a  # lowest free record reused

    def test_statfs_counts_move(self):
        disk, fs = make_ntfs()
        fs.mount()
        before = fs.statfs()
        fs.write_file("/f", b"q" * 4096)
        after = fs.statfs()
        assert after.free_blocks < before.free_blocks
        assert after.free_inodes == before.free_inodes - 1

    def test_layout_regions_disjoint(self):
        cfg = NTFSConfig()
        order = [0, cfg.logfile_start, cfg.vol_bitmap_start,
                 cfg.mft_bitmap_block, cfg.mft_start, cfg.data_start]
        assert order == sorted(order)
        assert cfg.data_start < cfg.total_blocks
