"""ixt3 with partial feature sets: each mechanism carries its own
protection, and only its own (§6.2 activates features independently)."""

import pytest

from repro.common.errors import FSError
from repro.disk import FaultInjector, corruption, make_disk, read_failure
from repro.fs.ixt3 import (
    FEAT_DATA_CSUM,
    FEAT_DATA_PARITY,
    FEAT_META_CSUM,
    FEAT_META_REPLICA,
    FEAT_TXN_CSUM,
    Ixt3,
    mkfs_ixt3,
)

from conftest import IXT3_BASE, IXT3_CFG


def build(features):
    disk = make_disk(IXT3_CFG.total_blocks, IXT3_CFG.block_size)
    mkfs_ixt3(disk, IXT3_BASE, features=features, config=IXT3_CFG)
    fs = Ixt3(disk)
    fs.mount()
    fs.mkdir("/d")
    bs = fs.statfs().block_size
    fs.write_file("/d/big", bytes((i * 13) % 256 for i in range(16 * bs)))
    fs.write_file("/small", b"tiny payload")
    fs.unmount()
    injector = FaultInjector(disk)
    fs2 = Ixt3(injector)
    fs2.mount()
    injector.set_type_oracle(fs2.block_type)
    return injector, fs2


class TestMrAlone:
    def test_metadata_read_failure_recovered(self):
        injector, fs = build(FEAT_META_REPLICA)
        injector.arm(read_failure("inode"))
        assert fs.stat("/small").size == 12
        assert fs.syslog.has_event("redundancy-used")

    def test_data_read_failure_not_recovered(self):
        injector, fs = build(FEAT_META_REPLICA)
        injector.arm(read_failure("data"))
        with pytest.raises(FSError):
            fs.read_file("/d/big")

    def test_metadata_corruption_not_detected(self):
        """Replication without checksums cannot *detect* corruption."""
        injector, fs = build(FEAT_META_REPLICA)
        injector.arm(corruption("bitmap"))
        fs.write_file("/new", b"x" * 2048)  # garbage bitmap used blindly
        assert not fs.syslog.has_event("checksum-mismatch")


class TestDpAlone:
    def test_data_read_failure_recovered(self):
        injector, fs = build(FEAT_DATA_PARITY)
        injector.arm(read_failure("data"))
        bs = fs.statfs().block_size
        assert fs.read_file("/d/big") == bytes((i * 13) % 256 for i in range(16 * bs))

    def test_metadata_read_failure_not_recovered(self):
        injector, fs = build(FEAT_DATA_PARITY)
        injector.arm(read_failure("inode"))
        with pytest.raises(FSError):
            fs.stat("/small")

    def test_data_corruption_not_detected(self):
        """Parity without data checksums cannot detect silent corruption."""
        injector, fs = build(FEAT_DATA_PARITY)
        injector.arm(corruption("data"))
        bs = fs.statfs().block_size
        data = fs.read_file("/d/big")
        assert data != bytes((i * 13) % 256 for i in range(16 * bs))
        assert not fs.syslog.has_event("checksum-mismatch")


class TestMcAlone:
    def test_metadata_corruption_detected_but_unrecoverable(self):
        injector, fs = build(FEAT_META_CSUM)
        injector.arm(corruption("inode"))
        with pytest.raises(FSError) as e:
            fs.stat("/small")
        assert fs.syslog.has_event("checksum-mismatch")
        assert e.value.errno.name == "EIO"

    def test_data_corruption_passes(self):
        injector, fs = build(FEAT_META_CSUM)
        injector.arm(corruption("data"))
        fs.read_file("/d/big")  # silently wrong, but no crash
        assert not fs.syslog.has_event("checksum-mismatch")


class TestDcAlone:
    def test_data_corruption_detected_but_unrecoverable(self):
        injector, fs = build(FEAT_DATA_CSUM)
        injector.arm(corruption("data"))
        with pytest.raises(FSError):
            fs.read_file("/d/big")
        assert fs.syslog.has_event("checksum-mismatch")


class TestComposition:
    def test_mc_plus_mr_detects_and_recovers_metadata(self):
        injector, fs = build(FEAT_META_CSUM | FEAT_META_REPLICA)
        injector.arm(corruption("inode"))
        assert fs.stat("/small").size == 12
        assert fs.syslog.has_event("checksum-mismatch")
        assert fs.syslog.has_event("redundancy-used")

    def test_dc_plus_dp_detects_and_recovers_data(self):
        injector, fs = build(FEAT_DATA_CSUM | FEAT_DATA_PARITY)
        injector.arm(corruption("data"))
        bs = fs.statfs().block_size
        assert fs.read_file("/d/big") == bytes((i * 13) % 256 for i in range(16 * bs))

    def test_tc_alone_changes_no_read_policy(self):
        injector, fs = build(FEAT_TXN_CSUM)
        injector.arm(read_failure("inode"))
        with pytest.raises(FSError):
            fs.stat("/small")
        assert not fs.syslog.has_event("redundancy-used")
