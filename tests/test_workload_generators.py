"""The Table-6 benchmark workload generators: determinism, shape, and
correct behaviour on a live file system."""

import pytest

from repro.bench.workloads import (
    BENCHMARKS,
    BenchScale,
    postmark,
    ssh_build,
    tpcb,
    web_server,
    web_server_setup,
)
from repro.disk.cache import BlockCache
from repro.disk.disk import make_disk
from repro.fs.ixt3 import Ixt3, ixt3_config, mkfs_ixt3
from repro.fs.ext3 import Ext3Config

TINY = BenchScale(
    ssh_sources=6, ssh_objects=4, ssh_dirs=2,
    web_files=5, web_requests=10,
    post_files=8, post_txns=10,
    tpcb_accounts_blocks=6, tpcb_txns=5,
)

BASE = Ext3Config(block_size=1024, blocks_per_group=1024,
                  inodes_per_group=128, num_groups=2, journal_blocks=128)


def live_fs():
    cfg = ixt3_config(BASE, dynamic_replica_slots=128)
    disk = make_disk(cfg.total_blocks, cfg.block_size)
    mkfs_ixt3(disk, BASE, features=0, config=cfg)
    fs = Ixt3(BlockCache(disk, 4096), sync_mode=False, commit_every=64)
    fs.mount()
    return disk, fs


class TestSSHBuild:
    def test_builds_the_tree(self):
        disk, fs = live_fs()
        ssh_build(fs, TINY)
        names = fs.getdirentries("/ssh")
        assert "config.h" in names
        assert "sshd" in names
        assert fs.stat("/ssh/sshd").size > 0
        # Conftest probes were cleaned up.
        assert not any(n.startswith("conftest") for n in names)

    def test_deterministic(self):
        d1, f1 = live_fs()
        ssh_build(f1, TINY)
        d2, f2 = live_fs()
        ssh_build(f2, TINY)
        assert f1.read_file("/ssh/sshd") == f2.read_file("/ssh/sshd")

    def test_charges_cpu_time(self):
        disk, fs = live_fs()
        t0 = disk.clock
        ssh_build(fs, TINY)
        cpu = TINY.ssh_objects * TINY.ssh_compile_cpu_s
        assert disk.clock - t0 > cpu  # at least the compile time passed


class TestWebServer:
    def test_read_only_measured_phase(self):
        disk, fs = live_fs()
        web_server_setup(fs, TINY)
        fs.sync()
        w0 = disk.stats.writes
        web_server(fs, TINY)
        assert disk.stats.writes == w0  # requests never write

    def test_serves_every_requested_page_fully(self):
        disk, fs = live_fs()
        web_server_setup(fs, TINY)
        web_server(fs, TINY)  # any short read would crash inside


class TestPostMark:
    def test_cleans_up_after_itself(self):
        disk, fs = live_fs()
        free0 = fs.statfs().free_blocks
        postmark(fs, TINY)
        # All files deleted at the end; only the pm directories remain.
        leftovers = [n for d in range(TINY.post_dirs)
                     for n in fs.getdirentries(f"/pm{d}") if n not in (".", "..")]
        assert leftovers == []
        assert fs.statfs().free_blocks >= free0 - 2 * TINY.post_dirs

    def test_deterministic_io_volume(self):
        d1, f1 = live_fs()
        postmark(f1, TINY)
        d2, f2 = live_fs()
        postmark(f2, TINY)
        assert d1.stats.writes == d2.stats.writes
        assert d1.stats.reads == d2.stats.reads


class TestTPCB:
    def test_database_grows_history(self):
        disk, fs = live_fs()
        tpcb(fs, TINY)
        assert fs.stat("/accounts.db").size == TINY.tpcb_accounts_blocks * 1024
        hist = fs.read_file("/history.log")
        assert hist.count(b"commit") == TINY.tpcb_txns

    def test_commits_once_per_transaction(self):
        disk, fs = live_fs()
        tpcb(fs, TINY)
        # fsync per txn + setup/final syncs.
        assert fs.journal.commits >= TINY.tpcb_txns

    def test_account_records_mutated(self):
        disk, fs = live_fs()
        tpcb(fs, TINY)
        db = fs.read_file("/accounts.db")
        assert any(b != 0 for b in db)


class TestRegistry:
    def test_four_benchmarks_registered(self):
        assert set(BENCHMARKS) == {"SSH", "Web", "Post", "TPCB"}
        for name, spec in BENCHMARKS.items():
            assert callable(spec["run"])
