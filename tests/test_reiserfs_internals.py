"""ReiserFS internals: structures, tails vs. indirect items, hashing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fs.reiserfs import ReiserConfig, ReiserFS, ReiserSuper, StatBody, mkfs_reiserfs
from repro.fs.reiserfs.structures import (
    REISER_MAGIC,
    name_hash,
    pack_dirent_body,
    pack_indirect_body,
    unpack_dirent_body,
    unpack_indirect_body,
)
from repro.disk import make_disk

from conftest import make_reiserfs


class TestStructures:
    def test_super_roundtrip(self):
        sb = ReiserSuper(magic=REISER_MAGIC, block_size=1024, total_blocks=640,
                         free_blocks=500, root_block=66, height=2, next_objid=9,
                         journal_start=1, journal_blocks=64, bitmap_start=65,
                         bitmap_blocks=1, data_start=66, nobjects=4)
        again = ReiserSuper.unpack(sb.pack(1024))
        assert again == sb
        assert again.is_valid()

    def test_super_sanity(self):
        assert not ReiserSuper.unpack(b"\x00" * 1024).is_valid()
        sb = ReiserSuper(magic=b"WrOnGmAg", block_size=1024, total_blocks=640,
                         free_blocks=0, root_block=66, height=1, next_objid=3,
                         journal_start=1, journal_blocks=64, bitmap_start=65,
                         bitmap_blocks=1, data_start=66)
        assert not sb.is_valid()

    @given(st.builds(StatBody,
                     mode=st.integers(0, 0xFFFF), links=st.integers(0, 1000),
                     size=st.integers(0, 2**40),
                     atime=st.floats(0, 1e9), mtime=st.floats(0, 1e9)))
    def test_property_stat_roundtrip(self, stat):
        assert StatBody.unpack(stat.pack()) == stat

    @given(st.tuples(st.integers(0, 2**31), st.integers(0, 2**31)),
           st.integers(0, 255),
           st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=126),
                   min_size=1, max_size=40))
    def test_property_dirent_roundtrip(self, child, ftype, name):
        body = pack_dirent_body(child, ftype, name)
        assert unpack_dirent_body(body) == (child, ftype, name)

    @given(st.lists(st.integers(0, 2**32 - 1), max_size=32))
    def test_property_indirect_roundtrip(self, ptrs):
        assert unpack_indirect_body(pack_indirect_body(ptrs)) == ptrs

    def test_name_hash_reserved_offsets(self):
        assert name_hash(".") == 2
        assert name_hash("..") == 3
        assert name_hash("anything") >= 16

    @given(st.text(min_size=1, max_size=30))
    def test_property_name_hash_deterministic(self, name):
        assert name_hash(name) == name_hash(name)
        assert name_hash(name) < 2**31


class TestTailsAndConversion:
    def test_small_file_lives_in_direct_item(self):
        disk, fs = make_reiserfs()
        fs.mount()
        free0 = fs.statfs().free_blocks
        fs.write_file("/tail", b"tiny")
        # No unformatted data block allocated: file lives in the tree.
        assert fs.statfs().free_blocks >= free0 - 1  # at most a leaf split
        assert fs.read_file("/tail") == b"tiny"

    def test_growth_converts_tail_to_indirect(self):
        disk, fs = make_reiserfs()
        fs.mount()
        fs.write_file("/f", b"starts small")
        big = bytes((i * 3) % 256 for i in range(5000))
        fs.write_file("/f", big)
        assert fs.read_file("/f") == big
        # Unformatted blocks appear only after conversion.
        assert any(fs.block_type(b) == "data" for b in range(disk.num_blocks))

    def test_shrink_converts_back_to_tail(self):
        disk, fs = make_reiserfs()
        fs.mount()
        big = bytes((i * 3) % 256 for i in range(5000))
        fs.write_file("/f", big)
        free_mid = fs.statfs().free_blocks
        fs.truncate("/f", 10)
        assert fs.read_file("/f") == big[:10]
        assert fs.statfs().free_blocks > free_mid  # blocks freed

    def test_threshold_boundary(self):
        disk, fs = make_reiserfs()
        fs.mount()
        cfg = fs.config
        at = b"x" * cfg.tail_threshold
        over = b"y" * (cfg.tail_threshold + 1)
        fs.write_file("/at", at)
        fs.write_file("/over", over)
        assert fs.read_file("/at") == at
        assert fs.read_file("/over") == over


class TestTreeGrowthThroughAPI:
    def test_many_objects_force_multilevel_tree(self):
        disk, fs = make_reiserfs()
        fs.mount()
        for i in range(40):
            fs.write_file(f"/obj{i:03d}", bytes([i]) * 100)
        assert fs.tree.height >= 3
        for i in range(40):
            assert fs.read_file(f"/obj{i:03d}") == bytes([i]) * 100
        # And the tree shrinks as objects disappear.
        for i in range(40):
            fs.unlink(f"/obj{i:03d}")
        assert fs.tree.height <= 2

    def test_root_label_follows_the_root(self):
        disk, fs = make_reiserfs()
        fs.mount()
        assert fs.block_type(fs.tree.root_block) == "root"
        for i in range(30):
            fs.write_file(f"/o{i}", b"z" * 50)
        assert fs.block_type(fs.tree.root_block) == "root"

    def test_persistence_of_deep_tree(self):
        disk, fs = make_reiserfs()
        fs.mount()
        for i in range(35):
            fs.write_file(f"/p{i:02d}", bytes([i]) * 300)
        fs.unmount()
        fs2 = ReiserFS(disk)
        fs2.mount()
        for i in range(35):
            assert fs2.read_file(f"/p{i:02d}") == bytes([i]) * 300
        assert fs2.tree.height >= 2
