"""Every file system in the study must run unchanged on array-backed
storage: mount, do real namespace + file I/O, persist across remount,
and keep working (degraded) through a member fail-stop."""

from __future__ import annotations

import pytest

from repro.redundancy import make_array

from conftest import (
    EXT3_CFG,
    FS_CLASSES,
    IXT3_BASE,
    IXT3_CFG,
    JFS_CFG,
    NTFS_CFG,
    REISER_CFG,
)

ARRAYS = [("mirror", 2), ("rdp", 5)]


def _make_array_fs(fs_name, geometry, members):
    from repro.fs.ext3 import mkfs_ext3
    from repro.fs.ixt3 import mkfs_ixt3
    from repro.fs.jfs import mkfs_jfs
    from repro.fs.ntfs import mkfs_ntfs
    from repro.fs.reiserfs import mkfs_reiserfs

    if fs_name == "ext3":
        cfg = EXT3_CFG
        array = make_array(geometry, cfg.total_blocks, cfg.block_size,
                           members=members)
        mkfs_ext3(array, cfg)
    elif fs_name == "reiserfs":
        cfg = REISER_CFG
        array = make_array(geometry, cfg.total_blocks, cfg.block_size,
                           members=members)
        mkfs_reiserfs(array, cfg)
    elif fs_name == "jfs":
        cfg = JFS_CFG
        array = make_array(geometry, cfg.total_blocks, cfg.block_size,
                           members=members)
        mkfs_jfs(array, cfg)
    elif fs_name == "ntfs":
        cfg = NTFS_CFG
        array = make_array(geometry, cfg.total_blocks, cfg.block_size,
                           members=members)
        mkfs_ntfs(array, cfg)
    else:
        cfg = IXT3_CFG
        array = make_array(geometry, cfg.total_blocks, cfg.block_size,
                           members=members)
        mkfs_ixt3(array, IXT3_BASE, config=cfg)
    return array, FS_CLASSES[fs_name](array)


@pytest.fixture(params=[
    f"{fs}:{geometry}{members}"
    for fs in sorted(FS_CLASSES)
    for geometry, members in ARRAYS
])
def array_fs(request):
    fs_name, spec = request.param.split(":")
    geometry = spec.rstrip("0123456789")
    members = int(spec[len(geometry):])
    array, fs = _make_array_fs(fs_name, geometry, members)
    fs.mount()
    yield fs_name, array, fs
    if fs.mounted and not fs.read_only:
        fs.unmount()


def _workout(fs):
    fs.mkdir("/d")
    fs.mkdir("/d/sub")
    fs.write_file("/d/sub/deep", b"nested " * 40)
    fs.write_file("/top", b"hello array")
    fs.write_file("/top", b"hello array, rewritten")
    assert fs.read_file("/top") == b"hello array, rewritten"
    assert fs.read_file("/d/sub/deep") == b"nested " * 40
    assert "sub" in fs.getdirentries("/d")
    fs.unlink("/top")
    assert not fs.exists("/top")
    fs.write_file("/top2", b"x" * 3000)


def test_vfs_workout_on_array(array_fs):
    _, _, fs = array_fs
    _workout(fs)


def test_persistence_across_remount(array_fs):
    fs_name, array, fs = array_fs
    _workout(fs)
    fs.unmount()
    fs2 = FS_CLASSES[fs_name](array)
    fs2.mount()
    assert fs2.read_file("/d/sub/deep") == b"nested " * 40
    assert fs2.read_file("/top2") == b"x" * 3000
    fs2.unmount()


def test_degraded_mode_after_member_failstop(array_fs):
    fs_name, array, fs = array_fs
    _workout(fs)
    fs.unmount()
    array.fail_member(0)
    fs2 = FS_CLASSES[fs_name](array)
    fs2.mount()
    assert fs2.read_file("/d/sub/deep") == b"nested " * 40
    assert fs2.read_file("/top2") == b"x" * 3000
    assert array.degraded_reads > 0
    if fs2.mounted and not fs2.read_only:
        fs2.unmount()


def test_rdp_double_loss_is_transparent_to_fs():
    fs_name = "ext3"
    array, fs = _make_array_fs(fs_name, "rdp", 5)
    fs.mount()
    _workout(fs)
    fs.unmount()
    array.fail_member(1)
    array.fail_member(3)
    fs2 = FS_CLASSES[fs_name](array)
    fs2.mount()
    assert fs2.read_file("/d/sub/deep") == b"nested " * 40
    assert fs2.read_file("/top2") == b"x" * 3000
    if fs2.mounted and not fs2.read_only:
        fs2.unmount()
