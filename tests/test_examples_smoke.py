"""The example scripts are part of the public surface: each must run
to completion and print its headline result."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, timeout=240):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "garbage served without any error" in out
        assert "recovered from the metadata replica" in out
        assert "checksum caught it" in out

    def test_compare_failure_policies(self):
        out = run_example("compare_failure_policies.py")
        assert "KERNEL PANIC" in out          # ReiserFS write failure
        assert out.count("succeeded") >= 4    # retries absorb transients
        assert "read-retry" in out

    def test_crash_consistency_tour(self):
        out = run_example("crash_consistency_tour.py")
        assert "gone (correct)" in out
        assert "torn transaction detected: no" in out    # plain ext3
        assert "torn transaction detected: yes" in out   # ixt3 + Tc
        assert out.rstrip().endswith("fsck: clean")

    def test_fingerprint_example(self):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / "fingerprint_a_filesystem.py"), "ext3"],
            capture_output=True, text=True, timeout=240,
        )
        assert proc.returncode == 0, proc.stderr
        assert "fault-injection tests run" in proc.stdout
        assert "noteworthy cells:" in proc.stdout

    def test_mail_server_survival(self):
        out = run_example("mail_server_survival.py")
        assert "0 messages lost or corrupted" in out
