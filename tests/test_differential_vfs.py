"""Property-based differential testing: five file systems, one oracle.

Hypothesis generates short operation sequences over a small path
alphabet and applies each sequence to all five file systems in
lockstep.  With no faults injected, every implementation must agree
with every other on the *observable* outcome: which operations succeed,
which errno a failing operation raises, and the final namespace
(types, sizes, contents, link targets).

Runs are **seeded and derandomized** so CI is reproducible; on failure
Hypothesis shrinks to (and prints) a minimal operation sequence — the
ops are plain tuples precisely so the falsifying example reads as a
recipe.
"""

from __future__ import annotations

import pytest
from hypothesis import given, seed, settings
from hypothesis import strategies as st

from conftest import FS_FACTORIES

from repro.common.errors import FSError

# A small, collision-rich alphabet: shallow paths that ops can create,
# destroy, and recreate so sequences exercise entry reuse.
NAMES = ["a", "b", "sub", "sub/x", "sub/y"]
PATHS = ["/" + n for n in NAMES]
PAYLOADS = [b"", b"tiny\n", b"payload " * 40]

paths = st.sampled_from(PATHS)
payloads = st.sampled_from(range(len(PAYLOADS)))

operations = st.one_of(
    st.tuples(st.just("mkdir"), paths),
    st.tuples(st.just("write"), paths, payloads),
    st.tuples(st.just("unlink"), paths),
    st.tuples(st.just("rmdir"), paths),
    st.tuples(st.just("rename"), paths, paths),
    st.tuples(st.just("symlink"), paths, paths),
    st.tuples(st.just("truncate"), paths, st.sampled_from([0, 3, 64])),
)


def apply_op(fs, op):
    """Run one op; return a comparable outcome ('ok' or the errno name)."""
    kind, args = op[0], op[1:]
    try:
        if kind == "mkdir":
            fs.mkdir(args[0])
        elif kind == "write":
            fs.write_file(args[0], PAYLOADS[args[1]])
        elif kind == "unlink":
            fs.unlink(args[0])
        elif kind == "rmdir":
            fs.rmdir(args[0])
        elif kind == "rename":
            fs.rename(args[0], args[1])
        elif kind == "symlink":
            fs.symlink(args[0], args[1])
        elif kind == "truncate":
            fs.truncate(args[0], args[1])
        else:  # pragma: no cover - strategy and dispatch must stay in sync
            raise AssertionError(f"unknown op {kind!r}")
        return "ok"
    except FSError as exc:
        return exc.errno.name


def observable_state(fs):
    """Everything a workload can see: the full namespace with contents."""
    entries = []
    pending = ["/"]
    while pending:
        directory = pending.pop()
        for name in fs.getdirentries(directory):
            if name in (".", ".."):
                continue
            path = directory.rstrip("/") + "/" + name
            st_ = fs.lstat(path)
            if st_.is_dir:
                entries.append(("d", path))
                pending.append(path)
            elif st_.is_symlink:
                entries.append(("l", path, fs.readlink(path)))
            else:
                entries.append(("f", path, st_.size, fs.read_file(path)))
    return sorted(entries)


@seed(20260806)
@settings(max_examples=60, derandomize=True, deadline=None)
@given(ops=st.lists(operations, min_size=1, max_size=10))
def test_five_file_systems_agree(ops):
    mounted = {}
    for key, factory in sorted(FS_FACTORIES.items()):
        _, fs = factory()
        fs.mount()
        mounted[key] = fs
    try:
        for i, op in enumerate(ops):
            outcomes = {key: apply_op(fs, op) for key, fs in mounted.items()}
            assert len(set(outcomes.values())) == 1, (
                f"op {i} {op!r} diverged: {outcomes}"
            )
        states = {key: observable_state(fs) for key, fs in mounted.items()}
        reference_key = min(states)
        reference = states[reference_key]
        for key, state in states.items():
            assert state == reference, (
                f"{key} namespace diverged from {reference_key} "
                f"after {ops!r}:\n{state}\nvs\n{reference}"
            )
    finally:
        for fs in mounted.values():
            if fs.mounted and not fs.read_only:
                fs.unmount()


@seed(20260806)
@settings(max_examples=25, derandomize=True, deadline=None)
@given(ops=st.lists(operations, min_size=1, max_size=6))
def test_remount_preserves_agreement(ops):
    """After a clean unmount/mount cycle the five still agree — the
    on-disk formats all round-trip the same observable state."""
    volumes = {}
    for key, factory in sorted(FS_FACTORIES.items()):
        disk, fs = factory()
        fs.mount()
        volumes[key] = (disk, fs)
    for op in ops:
        outcomes = {key: apply_op(fs, op) for key, (_, fs) in volumes.items()}
        assert len(set(outcomes.values())) == 1, f"{op!r} diverged: {outcomes}"
    states = {}
    for key, (disk, fs) in sorted(volumes.items()):
        fs.unmount()
        fs2 = type(fs)(disk)
        fs2.mount()
        states[key] = observable_state(fs2)
        fs2.unmount()
    reference = states[min(states)]
    for key, state in states.items():
        assert state == reference, f"{key} diverged after remount: {ops!r}"


def test_shrunk_examples_are_readable():
    """The op tuples double as a reproduction recipe: applying one by
    hand must be possible through the public VFS surface alone."""
    _, fs = FS_FACTORIES["ext3"]()
    fs.mount()
    for op in [("mkdir", "/sub"), ("write", "/sub/x", 1), ("rename", "/sub/x", "/a")]:
        assert apply_op(fs, op) == "ok"
    assert fs.read_file("/a") == PAYLOADS[1]
    fs.unmount()


@pytest.mark.parametrize("op,errno", [
    (("unlink", "/missing"), "ENOENT"),
    (("mkdir", "/"), "EINVAL"),
    (("rmdir", "/a"), "ENOENT"),
])
def test_error_outcomes_are_comparable(op, errno):
    """apply_op folds failures to errno names so the differential
    assertion compares behavior, not exception identity."""
    _, fs = FS_FACTORIES["ext3"]()
    fs.mount()
    assert apply_op(fs, op) == errno
    fs.unmount()
