"""The benchmark timing layer: record building, merge-on-write JSON,
and path resolution."""

import json

import pytest

import time

from repro.bench.timing import (
    SCHEMA,
    bench_json_path,
    failure_record,
    fingerprint_record,
    record_entry,
    table6_record,
    timed,
)
from repro.fingerprint import Fingerprinter, WORKLOAD_BY_KEY
from repro.fingerprint.adapters import make_ext3_adapter


class TestTimed:
    def test_returns_value_and_duration(self):
        value, wall = timed(lambda: 42)
        assert value == 42
        assert wall >= 0.0

    def test_exception_keeps_the_measurement(self):
        def boom():
            time.sleep(0.01)
            raise RuntimeError("mid-run failure")

        with pytest.raises(RuntimeError) as excinfo:
            timed(boom)
        # The elapsed time up to the failure rides on the exception, so
        # drivers can still record the run instead of dropping it.
        assert excinfo.value.timed_wall_s >= 0.01

    def test_failure_record_shape(self):
        try:
            timed(lambda: (_ for _ in ()).throw(ValueError("x" * 500)))
        except ValueError as exc:
            record = failure_record(exc, jobs=4, fs="ext3")
        assert record["status"] == "failed"
        assert record["error"] == "ValueError"
        assert len(record["error_detail"]) <= 200
        assert record["wall_s"] >= 0.0
        assert (record["jobs"], record["fs"]) == (4, "ext3")

    def test_failure_record_outside_timed_defaults_to_zero(self):
        record = failure_record(RuntimeError("never timed"))
        assert record["wall_s"] == 0.0


class TestBenchJsonPath:
    def test_env_override(self, tmp_path, monkeypatch):
        target = tmp_path / "custom.json"
        monkeypatch.setenv("REPRO_BENCH_JSON", str(target))
        assert bench_json_path() == target

    def test_default_is_root_file(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_JSON", raising=False)
        assert bench_json_path(tmp_path) == tmp_path / "BENCH_fingerprint.json"


class TestRecordEntry:
    def test_creates_and_merges(self, tmp_path):
        path = tmp_path / "BENCH_fingerprint.json"
        record_entry("first", {"wall_s": 1.0}, path=path)
        record_entry("second", {"wall_s": 2.0}, path=path)
        data = json.loads(path.read_text())
        assert data["schema"] == SCHEMA
        assert set(data["entries"]) == {"first", "second"}
        assert "generated_at" in data

    def test_rerun_updates_in_place(self, tmp_path):
        path = tmp_path / "BENCH_fingerprint.json"
        record_entry("run", {"wall_s": 1.0}, path=path)
        record_entry("run", {"wall_s": 0.5}, path=path)
        data = json.loads(path.read_text())
        assert data["entries"]["run"]["wall_s"] == 0.5

    def test_corrupt_file_starts_fresh(self, tmp_path):
        path = tmp_path / "BENCH_fingerprint.json"
        path.write_text("{not json")
        record_entry("run", {"wall_s": 1.0}, path=path)
        data = json.loads(path.read_text())
        assert data["entries"] == {"run": {"wall_s": 1.0}}


class TestFingerprintRecord:
    @pytest.fixture(scope="class")
    def run(self):
        fp = Fingerprinter(make_ext3_adapter(),
                           workloads=[WORKLOAD_BY_KEY["a"], WORKLOAD_BY_KEY["b"]])
        matrix, wall_s = timed(fp.run)
        return fp, matrix, wall_s

    def test_record_shape(self, run):
        fp, matrix, wall_s = run
        record = fingerprint_record(fp, matrix, wall_s)
        assert record["jobs"] == 1
        assert record["tests_run"] == fp.tests_run
        assert record["total_cells"] == len(fp.cells)
        assert record["applicable_cells"] == len(matrix.cells)
        assert set(record["workloads"]) == {"a", "b"}
        for entry in record["workloads"].values():
            assert entry["wall_s"] > 0
            assert entry["reads"] > 0
            assert entry["busy_time_s"] > 0

    def test_record_is_json_serializable(self, run, tmp_path):
        fp, matrix, wall_s = run
        path = record_entry("fingerprint_ext3",
                            fingerprint_record(fp, matrix, wall_s),
                            path=tmp_path / "BENCH_fingerprint.json")
        data = json.loads(path.read_text())
        assert data["entries"]["fingerprint_ext3"]["total_cells"] > 0


class TestTable6Record:
    def test_record_shape(self):
        class FakeRow:
            label = "Baseline"
            seconds = 1.25
            reads = 10
            writes = 5

        class FakeRun:
            results = {"Web": [FakeRow()]}

            def normalized(self, bench):
                return [1.0]

        record = table6_record(FakeRun(), 3.0)
        assert record["wall_s"] == 3.0
        assert record["benches"]["Web"]["variants"][0]["label"] == "Baseline"
        assert record["benches"]["Web"]["normalized"] == [1.0]
