"""Property-based checks for the copy-on-write slab substrate.

Hypothesis drives random op sequences against :class:`SimulatedDisk`
and cross-checks every observable against a plain dict model and the
pre-slab :class:`LegacyListDisk` reference implementation.  The slab's
aliasing tricks (O(1) snapshot/restore, shared base images, privatizing
deltas) must be invisible at the block-device surface.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk.disk import SlabImage, make_disk
from repro.disk.legacy import make_legacy_disk

NUM_BLOCKS = 16
BS = 512


def _payload(seed: int) -> bytes:
    return bytes((seed + i) & 0xFF for i in range(BS))


# One op: (kind, block, payload-seed).
_ops = st.lists(
    st.tuples(
        st.sampled_from(["write", "poke", "read", "snapshot", "restore"]),
        st.integers(min_value=0, max_value=NUM_BLOCKS - 1),
        st.integers(min_value=0, max_value=255),
    ),
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(_ops)
def test_slab_matches_dict_model(ops):
    """Reads always reflect the most recent write/poke/restore."""
    disk = make_disk(NUM_BLOCKS, BS)
    model = {}
    snapshots = []  # (image, model-copy)
    for kind, block, seed in ops:
        if kind == "write":
            disk.write_block(block, _payload(seed))
            model[block] = _payload(seed)
        elif kind == "poke":
            disk.poke(block, _payload(seed))
            model[block] = _payload(seed)
        elif kind == "read":
            expected = model.get(block, b"\x00" * BS)
            assert disk.read_block(block) == expected
            assert disk.peek(block) == expected
            assert bytes(disk.peek_view(block)) == expected
        elif kind == "snapshot":
            snapshots.append((disk.snapshot(), dict(model)))
        elif kind == "restore" and snapshots:
            image, saved = snapshots[seed % len(snapshots)]
            disk.restore(image)
            model = dict(saved)
    for block in range(NUM_BLOCKS):
        assert disk.peek(block) == model.get(block, b"\x00" * BS)


@settings(max_examples=60, deadline=None)
@given(_ops)
def test_snapshot_immune_to_later_writes(ops):
    """A snapshot never changes, no matter what the device does next."""
    disk = make_disk(NUM_BLOCKS, BS)
    for kind, block, seed in ops:
        if kind in ("write", "poke"):
            disk.write_block(block, _payload(seed))
    image = disk.snapshot()
    frozen = [image.block(i) for i in range(NUM_BLOCKS)]
    for kind, block, seed in reversed(ops):
        if kind in ("write", "poke"):
            disk.write_block(block, _payload(seed ^ 0xFF))
    assert [image.block(i) for i in range(NUM_BLOCKS)] == frozen
    disk.restore(image)
    for i in range(NUM_BLOCKS):
        assert disk.peek(i) == (frozen[i] or b"\x00" * BS)


@settings(max_examples=40, deadline=None)
@given(_ops)
def test_slab_agrees_with_legacy_reference(ops):
    """The slab disk and the pre-slab list disk are observationally
    identical: same data, same virtual clock, same stats, same
    snapshot contents."""
    slab = make_disk(NUM_BLOCKS, BS)
    legacy = make_legacy_disk(NUM_BLOCKS, BS)
    slab_snaps, legacy_snaps = [], []
    for kind, block, seed in ops:
        if kind == "write":
            slab.write_block(block, _payload(seed))
            legacy.write_block(block, _payload(seed))
        elif kind == "poke":
            slab.poke(block, _payload(seed))
            legacy.poke(block, _payload(seed))
        elif kind == "read":
            assert slab.read_block(block) == legacy.read_block(block)
        elif kind == "snapshot":
            slab_snaps.append(slab.snapshot())
            legacy_snaps.append(legacy.snapshot())
        elif kind == "restore" and slab_snaps:
            i = seed % len(slab_snaps)
            slab.restore(slab_snaps[i])
            legacy.restore(legacy_snaps[i])
        assert slab.clock == legacy.clock
        assert slab.stats == legacy.stats
    for i in range(NUM_BLOCKS):
        assert slab.peek(i) == legacy.peek(i)
    # Snapshots quack alike: SlabImage == list-of-Optional[bytes].
    for s_img, l_img in zip(slab_snaps, legacy_snaps):
        assert s_img == l_img


def test_clean_snapshot_is_o1_aliasing():
    """Snapshotting a clean (just-restored) device returns the base
    image itself: no per-block copying, no new allocation."""
    disk = make_disk(NUM_BLOCKS, BS)
    disk.write_block(3, _payload(7))
    image = disk.snapshot()
    disk.restore(image)
    again = disk.snapshot()
    assert again is image  # identity, not just equality
    # Repeated clean snapshots stay O(1) and allocate nothing new.
    assert disk.snapshot() is image
    assert disk.dirty_count == 0
    # The materialization cache did not grow: snapshot() touched no
    # per-block state.
    assert set(image._blocks) <= {3}


def test_restore_is_o1_aliasing():
    """Restore installs the image as the shared base without copying;
    only subsequently-written blocks are privatized."""
    disk = make_disk(NUM_BLOCKS, BS)
    for b in range(NUM_BLOCKS):
        disk.write_block(b, _payload(b))
    image = disk.snapshot()
    disk.restore(image)
    assert disk.base_image is image
    assert disk.dirty_count == 0
    disk.write_block(5, _payload(99))
    assert disk.dirty_count == 1
    assert disk.any_dirty_in([5])
    assert not disk.any_dirty_in([0, 1, 2])
    # The image is untouched by the post-restore write.
    assert image.block(5) == _payload(5)


def test_slab_image_pickles_by_value():
    import pickle

    disk = make_disk(NUM_BLOCKS, BS)
    disk.write_block(0, _payload(1))
    image = disk.snapshot()
    clone = pickle.loads(pickle.dumps(image))
    assert isinstance(clone, SlabImage)
    assert clone == image
    assert clone.block(0) == _payload(1)
