"""Journal-capacity behaviour across all journaled file systems: logs
must recycle cleanly under sustained load, and recovery must handle a
log that wrapped many times."""

import pytest

from repro.fs.ext3 import Ext3
from repro.fs.jfs import JFS
from repro.fs.ntfs import NTFS
from repro.fs.reiserfs import ReiserFS

from conftest import FS_FACTORIES


class TestSustainedLoad:
    @pytest.mark.parametrize("name", sorted(FS_FACTORIES))
    def test_hundreds_of_ops_in_sync_mode(self, name):
        """Each op commits + checkpoints: the log recycles constantly."""
        disk, fs = FS_FACTORIES[name]()
        fs.mount()
        for i in range(60):
            fs.write_file(f"/f{i % 12}", bytes([i % 256]) * 700)
        for i in range(12):
            assert len(fs.read_file(f"/f{i}")) == 700
        fs.unmount()
        fs2 = type(fs)(disk)
        fs2.mount()
        for i in range(12):
            assert len(fs2.read_file(f"/f{i}")) == 700

    @pytest.mark.parametrize("name", ["ext3", "ixt3", "reiserfs", "ntfs"])
    def test_batched_mode_overflows_into_checkpoint(self, name):
        """One giant batch larger than the journal forces a mid-commit
        checkpoint; nothing is lost."""
        disk, fs = FS_FACTORIES[name]()
        fs.sync_mode = False
        fs.commit_every = 10 ** 6
        fs.mount()
        for i in range(50):
            fs.mkdir(f"/dir{i:03d}")
        fs.sync()
        fs.unmount()
        fs2 = type(fs)(disk)
        fs2.mount()
        listing = set(fs2.getdirentries("/"))
        assert {f"dir{i:03d}" for i in range(50)} <= listing

    @pytest.mark.parametrize("name", sorted(FS_FACTORIES))
    def test_crash_after_many_wraps(self, name):
        """The log wrapped repeatedly before the crash: recovery replays
        only the last, real transactions — not stale ones."""
        disk, fs = FS_FACTORIES[name]()
        fs.mount()
        for i in range(40):
            fs.write_file(f"/warm{i % 8}", bytes([i % 256]) * 600)
        fs.crash_after(lambda f: f.write_file("/last", b"final transaction"))
        fs2 = type(fs)(disk)
        fs2.mount()
        assert fs2.read_file("/last") == b"final transaction"
        for i in range(32, 40):
            assert len(fs2.read_file(f"/warm{i % 8}")) == 600


class TestJournalCounters:
    def test_checkpoint_count_grows_under_pressure(self):
        from conftest import make_ext3
        disk, fs = make_ext3()
        fs.mount()
        before = fs.journal.checkpoints
        for i in range(30):
            fs.write_file(f"/f{i}", b"p" * 1500)
        assert fs.journal.checkpoints > before

    def test_commit_counter_matches_sync_mode(self):
        from conftest import make_jfs
        disk, fs = make_jfs()
        fs.mount()
        n0 = fs.journal.commits
        fs.mkdir("/a")
        fs.mkdir("/b")
        assert fs.journal.commits >= n0 + 2  # one commit per op
