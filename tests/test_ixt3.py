"""ixt3 tests: every IRON mechanism of §6, plus the fixed ext3 bugs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.checksum import sha1
from repro.common.errors import Errno, FSError
from repro.disk import (
    CorruptionMode,
    Fault,
    FaultInjector,
    FaultKind,
    FaultOp,
    corruption,
    make_disk,
    read_failure,
    write_failure,
)
from repro.fs.ext3 import Ext3Config
from repro.fs.ixt3 import (
    ALL_FEATURES,
    FEAT_DATA_CSUM,
    FEAT_DATA_PARITY,
    FEAT_META_CSUM,
    FEAT_META_REPLICA,
    FEAT_TXN_CSUM,
    Ixt3,
    ixt3_config,
    mkfs_ixt3,
)

from conftest import IXT3_BASE, IXT3_CFG, make_ixt3


def fresh(features=ALL_FEATURES, populate=True):
    disk = make_disk(IXT3_CFG.total_blocks, IXT3_CFG.block_size)
    mkfs_ixt3(disk, IXT3_BASE, features=features, config=IXT3_CFG)
    fs = Ixt3(disk)
    fs.mount()
    if populate:
        fs.mkdir("/d")
        bs = fs.statfs().block_size
        fs.write_file("/d/big", bytes((i * 7) % 256 for i in range(24 * bs)))
        fs.write_file("/plain", b"iron file contents")
    fs.unmount()
    injector = FaultInjector(disk)
    fs2 = Ixt3(injector)
    fs2.mount()
    injector.set_type_oracle(fs2.block_type)
    return disk, injector, fs2


class TestFeatureFlags:
    def test_features_persist_in_superblock(self):
        _, _, fs = fresh(FEAT_META_CSUM | FEAT_TXN_CSUM)
        assert fs.meta_csum and not fs.data_csum
        assert fs._txn_checksum_enabled()
        assert not fs.meta_replica and not fs.data_parity

    def test_no_features_behaves_like_checked_ext3(self):
        _, injector, fs = fresh(0)
        injector.arm(read_failure("inode"))
        with pytest.raises(FSError):
            fs.stat("/plain")


class TestMetadataReplication:
    def test_read_failure_recovered_from_replica(self):
        _, injector, fs = fresh()
        injector.arm(read_failure("inode"))
        assert fs.stat("/plain").size == 18
        assert fs.syslog.has_event("redundancy-used")
        replica_reads = [e for e in injector.trace
                        if e.is_read() and e.block_type == "replica"]
        assert replica_reads

    @pytest.mark.parametrize("btype", ["inode", "dir", "indirect"])
    def test_read_path_metadata_recovered(self, btype):
        _, injector, fs = fresh()
        injector.arm(read_failure(btype))
        data = fs.read_file("/d/big")  # walks inode, dir, indirect blocks
        assert len(data) == 24 * fs.statfs().block_size
        assert fs.syslog.has_event("redundancy-used")

    @pytest.mark.parametrize("btype", ["bitmap", "i-bitmap"])
    def test_allocation_metadata_recovered(self, btype):
        _, injector, fs = fresh()
        injector.arm(read_failure(btype))
        fs.mkdir("/newdir")  # allocation reads both bitmaps
        assert fs.syslog.has_event("redundancy-used")
        assert fs.exists("/newdir")

    def test_both_copies_lost_propagates(self):
        _, injector, fs = fresh()
        injector.arm(read_failure("inode"))
        injector.arm(read_failure("replica"))
        with pytest.raises(FSError) as e:
            fs.stat("/plain")
        assert e.value.errno is Errno.EIO

    def test_replicas_updated_with_home(self):
        """Unlike ext3's stale superblock copies, ixt3 replicas track
        their home blocks transactionally."""
        disk, injector, fs = fresh()
        fs.write_file("/fresh", b"new data to move the inode table")
        fs.sync()
        # Every replicated home block's copy matches its home.
        replicas = fs.replicas
        for home, slot in replicas.slots.items():
            assert disk.peek(home) == disk.peek(replicas.slot_block(slot)), home


class TestChecksums:
    def test_metadata_corruption_detected_and_repaired(self):
        _, injector, fs = fresh()
        injector.arm(corruption("inode"))
        assert fs.stat("/plain").size == 18
        assert fs.syslog.has_event("checksum-mismatch")
        assert fs.syslog.has_event("redundancy-used")

    def test_data_corruption_detected_and_reconstructed(self):
        _, injector, fs = fresh()
        injector.arm(corruption("data"))
        bs = fs.statfs().block_size
        expected = bytes((i * 7) % 256 for i in range(24 * bs))
        assert fs.read_file("/d/big") == expected

    def test_plausible_field_corruption_caught(self):
        """Misdirected-write-style damage passes type checks but not
        checksums (§5.6 → §6)."""
        from repro.fingerprint.adapters import ext3_field_corruptor
        _, injector, fs = fresh()
        injector.arm(corruption("inode", mode=CorruptionMode.FIELD,
                                corruptor=ext3_field_corruptor))
        st = fs.stat("/plain")
        assert st.size == 18  # repaired, not fooled
        assert fs.syslog.has_event("checksum-mismatch")

    def test_without_dc_data_corruption_undetected(self):
        _, injector, fs = fresh(FEAT_META_CSUM | FEAT_META_REPLICA)
        injector.arm(corruption("data"))
        bs = fs.statfs().block_size
        expected = bytes((i * 7) % 256 for i in range(24 * bs))
        assert fs.read_file("/d/big") != expected  # silently wrong
        assert not fs.syslog.has_event("checksum-mismatch")


class TestParity:
    def test_single_data_block_loss_recovered(self):
        _, injector, fs = fresh()
        injector.arm(read_failure("data"))
        bs = fs.statfs().block_size
        expected = bytes((i * 7) % 256 for i in range(24 * bs))
        assert fs.read_file("/d/big") == expected
        assert fs.syslog.has_event("redundancy-used")

    def test_parity_survives_overwrites(self):
        disk, injector, fs = fresh()
        bs = fs.statfs().block_size
        fd = fs.open("/d/big", 2)
        fs.write(fd, b"OVERWRITE" * 100, offset=5 * bs + 37)
        fs.close(fd)
        fs.sync()
        expected = fs.read_file("/d/big")
        injector.arm(read_failure("data"))
        assert fs.read_file("/d/big") == expected

    def test_parity_survives_truncate(self):
        disk, injector, fs = fresh()
        bs = fs.statfs().block_size
        fs.truncate("/d/big", 7 * bs + 3)
        fs.sync()
        expected = fs.read_file("/d/big")
        injector.arm(read_failure("data"))
        assert fs.read_file("/d/big") == expected

    def test_two_lost_blocks_not_recoverable(self):
        _, injector, fs = fresh()
        injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL,
                           block_type="data", locality_run=1))
        with pytest.raises(FSError):
            fs.read_file("/d/big")

    def test_parity_block_freed_with_file(self):
        _, _, fs = fresh(populate=False)
        free0 = fs.statfs().free_blocks
        fs.write_file("/p", b"x" * 3000)
        fs.unlink("/p")
        assert fs.statfs().free_blocks == free0


class TestTransactionalChecksum:
    def test_commit_carries_checksum_and_skips_stall(self):
        disk_tc, _, fs_tc = fresh(FEAT_TXN_CSUM, populate=False)
        disk_plain, _, fs_plain = fresh(0, populate=False)
        raw_tc = fs_tc._raw_disk()
        raw_plain = fs_plain._raw_disk()
        for fs in (fs_tc, fs_plain):
            for i in range(10):
                fs.write_file(f"/f{i}", b"z" * 2048)
                fs.sync()
        assert raw_tc.clock < raw_plain.clock  # no pre-commit rotational waits

    def test_torn_commit_not_replayed(self):
        """A crash that corrupts part of a transaction is caught by the
        transactional checksum; the torn transaction is not replayed."""
        from repro.fs.ext3.journal import parse_desc
        disk = make_disk(IXT3_CFG.total_blocks, IXT3_CFG.block_size)
        mkfs_ixt3(disk, IXT3_BASE, features=FEAT_TXN_CSUM, config=IXT3_CFG)
        fs = Ixt3(disk)
        fs.mount()
        fs.write_file("/safe", b"committed and checkpointed")
        fs.crash_after(lambda f: f.write_file("/torn", b"never made it"))
        # Corrupt one journaled copy, simulating a torn concurrent write.
        jstart = IXT3_CFG.journal_start
        for pos in range(1, IXT3_CFG.journal_blocks):
            if parse_desc(disk.peek(jstart + pos)) is not None:
                disk.poke(jstart + pos + 1, b"\xde" * IXT3_CFG.block_size)
                break
        fs2 = Ixt3(disk)
        fs2.mount()
        assert fs2.syslog.has_event("txn-checksum-mismatch")
        assert fs2.read_file("/safe") == b"committed and checkpointed"
        assert not fs2.exists("/torn")


class TestWriteFailurePolicy:
    @pytest.mark.parametrize("btype", ["inode", "bitmap", "j-data", "j-commit"])
    def test_write_failure_aborts_and_remounts_ro(self, btype):
        _, injector, fs = fresh()
        injector.arm(write_failure(btype))
        try:
            fs.write_file("/victim", b"v" * 4096)
        except FSError:
            pass
        assert fs.read_only
        assert fs.syslog.has_event("write-error")
        assert fs.syslog.has_event("remount-ro")

    def test_failed_journal_write_squelches_commit(self):
        """The fixed ext3 bug: after a journal write failure, the commit
        block is never written."""
        _, injector, fs = fresh()
        injector.arm(write_failure("j-data"))
        try:
            fs.write_file("/victim", b"v" * 4096)
        except FSError:
            pass
        committed = [e for e in injector.trace
                     if e.op == "write" and e.outcome == "ok"
                     and e.block_type == "j-commit"]
        assert not committed


class TestFixedBugs:
    def test_truncate_propagates_errors(self):
        """The fixed ext3 bug: with both copies gone, truncate reports
        the error instead of failing silently."""
        _, injector, fs = fresh()
        injector.arm(read_failure("indirect"))
        injector.arm(read_failure("replica"))
        with pytest.raises(FSError):
            fs.truncate("/d/big", 10)
        assert not fs.syslog.has_event("silent-failure")

    def test_unlink_rejects_zero_link_count_without_crashing(self):
        from repro.fs.ext3.structures import Inode
        from repro.fs.ext3.config import INODE_SIZE
        _, injector, fs = fresh(FEAT_META_REPLICA)  # no checksums: corruption reaches code

        def zero_links(payload, btype):
            raw = bytearray(payload)
            for off in range(0, len(raw) - INODE_SIZE + 1, INODE_SIZE):
                inode = Inode.unpack(bytes(raw[off:off + INODE_SIZE]))
                if inode.is_allocated:
                    inode.links = 0
                    raw[off:off + INODE_SIZE] = inode.pack()
            return bytes(raw)

        injector.arm(corruption("inode", mode=CorruptionMode.FIELD,
                                corruptor=zero_links))
        with pytest.raises(FSError) as e:
            fs.unlink("/plain")
        assert e.value.errno is Errno.EUCLEAN  # error, not a kernel panic


class TestChecksumStoreUnit:
    def test_update_then_verify(self):
        from repro.fs.ixt3.features import ChecksumStore
        store_blocks = {}

        def read(b):
            return store_blocks.get(b, b"\x00" * 1024)

        def journal(b, d):
            store_blocks[b] = d

        store = ChecksumStore(100, 4, 1024, read, journal)
        store.update(7, b"payload")
        assert store.verify(7, b"payload")
        assert not store.verify(7, b"tampered")
        store.forget(7)
        assert store.verify(7, b"anything")  # no digest stored

    @settings(max_examples=30)
    @given(st.dictionaries(st.integers(0, 150), st.binary(min_size=1, max_size=64),
                           max_size=20))
    def test_property_store_tracks_latest(self, contents):
        from repro.fs.ixt3.features import ChecksumStore
        store_blocks = {}
        store = ChecksumStore(
            0, 4, 1024,
            lambda b: store_blocks.get(b, b"\x00" * 1024),
            store_blocks.__setitem__,
        )
        for block, payload in contents.items():
            store.update(block, payload)
        for block, payload in contents.items():
            if store.covers(block):
                assert store.verify(block, payload)
                assert not store.verify(block, payload + b"x")


class TestReplicaMapUnit:
    def test_assign_release_persist(self):
        from repro.fs.ixt3.features import ReplicaMap
        blocks = {}
        rm = ReplicaMap(200, 20, 2, 1024,
                        lambda b: blocks.get(b, b"\x00" * 1024),
                        lambda b, d: blocks.__setitem__(b, d))
        r1 = rm.assign(5)
        r2 = rm.assign(9)
        assert r1 != r2
        assert rm.assign(5) == r1  # stable
        # Reload from the persisted map blocks.
        rm2 = ReplicaMap(200, 20, 2, 1024,
                         lambda b: blocks.get(b, b"\x00" * 1024),
                         lambda b, d: blocks.__setitem__(b, d))
        assert rm2.replica_block_of(5) == r1
        assert rm2.replica_block_of(9) == r2
        rm2.release(5)
        assert rm2.replica_block_of(5) is None

    def test_capacity_exhaustion(self):
        from repro.fs.ixt3.features import ReplicaMap
        blocks = {}
        rm = ReplicaMap(0, 4, 2, 1024,
                        lambda b: blocks.get(b, b"\x00" * 1024),
                        lambda b, d: blocks.__setitem__(b, d))
        assert rm.slot_capacity == 2
        assert rm.assign(1) is not None
        assert rm.assign(2) is not None
        assert rm.assign(3) is None
