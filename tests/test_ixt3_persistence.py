"""ixt3 redundancy state across remounts and crashes: the checksum
store, the replica map and parity must all be as durable as the data
they protect."""

import pytest

from repro.common.errors import FSError
from repro.disk import FaultInjector, corruption, make_disk, read_failure
from repro.fs.ixt3 import Ixt3, mkfs_ixt3

from conftest import IXT3_BASE, IXT3_CFG


def fresh_disk():
    disk = make_disk(IXT3_CFG.total_blocks, IXT3_CFG.block_size)
    mkfs_ixt3(disk, IXT3_BASE, config=IXT3_CFG)
    return disk


def remount_with_faults(disk):
    injector = FaultInjector(disk)
    fs = Ixt3(injector)
    fs.mount()
    injector.set_type_oracle(fs.block_type)
    return injector, fs


class TestAcrossRemount:
    def test_checksums_valid_after_remount(self):
        disk = fresh_disk()
        fs = Ixt3(disk)
        fs.mount()
        fs.write_file("/f", b"checksummed payload " * 40)
        fs.unmount()
        injector, fs2 = remount_with_faults(disk)
        injector.arm(corruption("data"))
        assert fs2.read_file("/f") == b"checksummed payload " * 40
        assert fs2.syslog.has_event("checksum-mismatch")

    def test_replica_map_survives_remount(self):
        disk = fresh_disk()
        fs = Ixt3(disk)
        fs.mount()
        fs.mkdir("/deep")
        fs.write_file("/deep/f", b"x" * 3000)
        slots_before = dict(fs.replicas.slots)
        fs.unmount()
        fs2 = Ixt3(disk)
        fs2.mount()
        fs2.replicas._ensure_loaded()
        assert fs2.replicas.slots == slots_before

    def test_parity_pointer_survives_remount(self):
        disk = fresh_disk()
        fs = Ixt3(disk)
        fs.mount()
        fs.write_file("/f", b"p" * 5000)
        ino = fs.stat("/f").ino
        parity_before = fs._iget(ino).parity_block
        assert parity_before != 0
        fs.unmount()
        injector, fs2 = remount_with_faults(disk)
        assert fs2._iget(ino).parity_block == parity_before
        injector.arm(read_failure("data"))
        assert fs2.read_file("/f") == b"p" * 5000


class TestAcrossCrash:
    def test_redundancy_consistent_after_replay(self):
        """Committed-but-uncheckpointed state: after replay, checksums,
        replicas and parity must still agree with the data."""
        disk = fresh_disk()
        fs = Ixt3(disk)
        fs.mount()
        fs.crash_after(lambda f: (f.mkdir("/cd"),
                                  f.write_file("/cd/f", b"crashy " * 200)))
        injector, fs2 = remount_with_faults(disk)
        # Recovery replayed everything; now break the disk and verify the
        # redundancy machinery still recovers post-crash state.
        injector.arm(read_failure("data"))
        assert fs2.read_file("/cd/f") == b"crashy " * 200
        injector.clear_faults()
        fs2.syslog.clear()
        injector.arm(corruption("inode"))
        assert fs2.stat("/cd/f").size == 1400
        assert fs2.syslog.has_event("checksum-mismatch")

    def test_repaired_home_copy_is_persisted(self):
        """After a replica-based recovery in a modifying operation, the
        repaired home block reaches disk with the transaction."""
        disk = fresh_disk()
        fs = Ixt3(disk)
        fs.mount()
        fs.write_file("/f", b"to be repaired")
        fs.unmount()
        injector, fs2 = remount_with_faults(disk)
        from repro.disk.faults import Fault, FaultKind, FaultOp, Persistence
        injector.arm(Fault(op=FaultOp.READ, kind=FaultKind.FAIL,
                           block_type="inode",
                           persistence=Persistence.TRANSIENT, transient_count=1))
        fs2.chmod("/f", 0o600)  # modifying op triggers repair + commit
        fs2.unmount()
        fs3 = Ixt3(disk)
        fs3.mount()
        st = fs3.stat("/f")
        assert st.perm_bits == 0o600
        assert st.size == 14


class TestDegradedModes:
    def test_unverifiable_read_when_checksum_block_lost(self):
        disk = fresh_disk()
        fs = Ixt3(disk)
        fs.mount()
        fs.write_file("/f", b"still served")
        fs.unmount()
        injector, fs2 = remount_with_faults(disk)
        injector.arm(read_failure("cksum"))
        # Checksum block unreadable: the data read succeeds unverified.
        assert fs2.read_file("/f") == b"still served"

    def test_replica_region_full_logs_warning(self):
        from repro.fs.ixt3 import ixt3_config
        base = IXT3_BASE
        tiny = ixt3_config(base, dynamic_replica_slots=1)
        disk = make_disk(tiny.total_blocks, tiny.block_size)
        mkfs_ixt3(disk, base, config=tiny)
        fs = Ixt3(disk)
        fs.mount()
        for i in range(4):
            fs.mkdir(f"/d{i}")  # each new dir block wants a replica slot
        assert fs.syslog.has_event("replica-full")
