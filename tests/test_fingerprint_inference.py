"""Unit tests for the failure-policy inference layer: synthetic
observations must classify into the IRON levels the paper would assign."""

from repro.disk.faults import Fault, FaultKind, FaultOp
from repro.disk.trace import IOTrace
from repro.fingerprint.inference import RunObservation, infer_policy
from repro.fingerprint.workloads import OpResult
from repro.taxonomy import Detection, Recovery


def obs(results=(), events=(), trace_entries=(), panic=None, fired=1,
        fault_block=50, final_ro=False, free=None):
    trace = IOTrace()
    for op, block, outcome in trace_entries:
        trace.record(op, block, outcome)
    return RunObservation(
        results=list(results), events=list(events), trace=trace, panic=panic,
        fault_fired=fired, fault_block=fault_block, final_read_only=final_ro,
        free_blocks=free,
    )


def read_fault():
    return Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block=50)


def write_fault():
    return Fault(op=FaultOp.WRITE, kind=FaultKind.FAIL, block=50)


def corrupt_fault():
    return Fault(op=FaultOp.READ, kind=FaultKind.CORRUPT, block=50)


BASE = obs(results=[OpResult("stat", None, "aaaa")], fired=0,
           trace_entries=[("read", 50, "ok")], free=100)


class TestDetectionInference:
    def test_silent_write_is_dzero(self):
        observed = obs(results=[OpResult("stat", None, "aaaa")],
                       trace_entries=[("write", 50, "error")], free=100)
        p = infer_policy(BASE, observed, write_fault(), [])
        assert p.detection == frozenset({Detection.ZERO})
        assert p.recovery == frozenset({Recovery.ZERO})

    def test_logged_error_is_derrorcode(self):
        observed = obs(results=[OpResult("stat", "EIO")],
                       events=["read-error"], free=100)
        p = infer_policy(BASE, observed, read_fault(), [])
        assert Detection.ERROR_CODE in p.detection
        assert Recovery.PROPAGATE in p.recovery

    def test_sanity_event_is_dsanity(self):
        observed = obs(results=[OpResult("stat", "EUCLEAN")],
                       events=["sanity-fail"], free=100)
        p = infer_policy(BASE, observed, corrupt_fault(), [])
        assert Detection.SANITY in p.detection

    def test_checksum_event_is_dredundancy(self):
        observed = obs(results=[OpResult("stat", None, "aaaa")],
                       events=["checksum-mismatch", "redundancy-used"], free=100)
        p = infer_policy(BASE, observed, corrupt_fault(), [])
        assert Detection.REDUNDANCY in p.detection

    def test_undetected_corruption_is_dzero_with_note(self):
        observed = obs(results=[OpResult("stat", None, "bbbb")], free=100)
        p = infer_policy(BASE, observed, corrupt_fault(), [])
        assert p.detection == frozenset({Detection.ZERO})
        assert any("corrupt data" in n for n in p.notes)

    def test_consequence_errors_are_not_detection(self):
        """An ENOENT later is damage, not detection (the paper's
        'failure hidden')."""
        observed = obs(results=[OpResult("stat", "ENOENT")],
                       trace_entries=[("write", 50, "error")], free=100)
        p = infer_policy(BASE, observed, write_fault(), [])
        assert Detection.ZERO in p.detection
        assert Recovery.PROPAGATE not in p.recovery
        assert any("consequence" in n for n in p.notes)


class TestRecoveryInference:
    def test_panic_is_rstop(self):
        observed = obs(results=[], panic="kernel panic - x", events=["write-error"])
        p = infer_policy(BASE, observed, write_fault(), [])
        assert Recovery.STOP in p.recovery

    def test_remount_ro_is_rstop(self):
        observed = obs(results=[OpResult("stat", "EIO")],
                       events=["read-error", "remount-ro"], final_ro=True, free=100)
        p = infer_policy(BASE, observed, read_fault(), [])
        assert Recovery.STOP in p.recovery
        assert Recovery.PROPAGATE in p.recovery

    def test_retries_counted_from_trace(self):
        observed = obs(results=[OpResult("stat", "EIO")],
                       events=["read-error"],
                       trace_entries=[("read", 50, "error")] * 4, free=100)
        p = infer_policy(BASE, observed, read_fault(), [])
        assert Recovery.RETRY in p.recovery

    def test_single_attempt_is_not_retry(self):
        observed = obs(results=[OpResult("stat", "EIO")],
                       events=["read-error"],
                       trace_entries=[("read", 50, "error")], free=100)
        p = infer_policy(BASE, observed, read_fault(), [])
        assert Recovery.RETRY not in p.recovery

    def test_redundant_reads_are_rredundancy(self):
        trace = IOTrace()
        trace.record("read", 50, "error", "inode")
        trace.record("read", 900, "ok", "replica")
        observed = RunObservation(
            results=[OpResult("stat", None, "aaaa")],
            events=["read-error", "redundancy-used"], trace=trace,
            fault_fired=1, fault_block=50, free_blocks=100)
        p = infer_policy(BASE, observed, read_fault(), ["replica", "parity"])
        assert Recovery.REDUNDANCY in p.recovery

    def test_fabricated_data_is_rguess(self):
        observed = obs(results=[OpResult("stat", None, "zzzz")],
                       events=["sanity-fail"],
                       trace_entries=[("read", 50, "error")], free=100)
        p = infer_policy(BASE, observed, read_fault(), [])
        assert Recovery.GUESS in p.recovery

    def test_space_leak_noted(self):
        observed = obs(results=[OpResult("stat", None, "aaaa")],
                       events=["ignored-error"], free=80)
        p = infer_policy(BASE, observed, read_fault(), [])
        assert any("leaked" in n for n in p.notes)

    def test_silent_failure_noted(self):
        observed = obs(results=[OpResult("stat", None, "aaaa")],
                       events=["silent-failure"], free=100)
        p = infer_policy(BASE, observed, read_fault(), [])
        assert any("silently" in n for n in p.notes)
        assert Detection.ERROR_CODE in p.detection  # the log proves it saw it
        assert Recovery.ZERO in p.recovery
