"""Span tracing: emission, tree reconstruction, structural digests,
deterministic merging, Chrome export, and provenance references."""

import json

import pytest

from repro.obs.events import (
    DetectionEvent,
    EventLog,
    IOEvent,
    JournalCommitEvent,
    Severity,
)
from repro.obs.trace import (
    SpanEndEvent,
    SpanStartEvent,
    Tracer,
    chrome_trace,
    enable_tracing,
    event_ref,
    merge_streams,
    resolve_ref,
    span_ref,
    span_tree,
    span_tree_digest,
    tracer_for,
    write_chrome_trace,
)


class TestTracer:
    def test_disabled_tracer_emits_nothing(self):
        log = EventLog()
        tracer = tracer_for(log)
        assert not tracer.enabled
        span = tracer.start("op", "op")
        assert span == 0
        tracer.end(span)
        with tracer.span("x", "phase"):
            pass
        assert len(log) == 0

    def test_tracer_for_is_cached_per_log(self):
        log = EventLog()
        assert tracer_for(log) is tracer_for(log)
        assert tracer_for(log) is log.tracer

    def test_enable_tracing_flips_the_cached_tracer(self):
        log = EventLog()
        t = enable_tracing(log)
        assert t is tracer_for(log) and t.enabled

    def test_nesting_records_parent_ids(self):
        log = EventLog()
        t = enable_tracing(log)
        outer = t.start("outer", "op")
        inner = t.start("inner", "phase")
        t.end(inner)
        t.end(outer)
        starts = [e for e in log if isinstance(e, SpanStartEvent)]
        assert starts[0].parent_id is None
        assert starts[1].parent_id == outer
        assert t.current is None

    def test_floating_span_does_not_become_parent(self):
        log = EventLog()
        t = enable_tracing(log)
        op = t.start("op", "op")
        txn = t.start("txn", "txn", floating=True)
        child = t.start("child", "phase")
        starts = {e.span_id: e for e in log if isinstance(e, SpanStartEvent)}
        assert starts[txn].parent_id == op
        # The floating txn never joined the stack: the next span nests
        # under the op, not the transaction.
        assert starts[child].parent_id == op
        t.end(child), t.end(txn), t.end(op)

    def test_span_ids_are_sequential_and_deterministic(self):
        def run():
            log = EventLog()
            t = enable_tracing(log)
            a = t.start("a", "op")
            b = t.start("b", "op")
            t.end(b), t.end(a)
            return [e.span_id for e in log if isinstance(e, SpanStartEvent)]

        assert run() == run() == [1, 2]

    def test_context_manager_marks_errors(self):
        log = EventLog()
        t = enable_tracing(log)
        with pytest.raises(RuntimeError):
            with t.span("boom", "op"):
                raise RuntimeError("x")
        (end,) = [e for e in log if isinstance(e, SpanEndEvent)]
        assert end.status == "error"

    def test_end_pops_unclosed_children(self):
        log = EventLog()
        t = enable_tracing(log)
        outer = t.start("outer", "op")
        t.start("leaked", "phase")
        t.end(outer)  # error-path shortcut: child never explicitly ended
        assert t.current is None


class TestSpanTree:
    def _traced_log(self):
        log = EventLog()
        t = enable_tracing(log)
        run = t.start("run", "run")
        op = t.start("creat", "op")
        log.emit(IOEvent("write", 7, "ok", "journal"))
        log.emit(IOEvent("write", 8, "error", "inode"))
        t.end(op)
        log.emit(JournalCommitEvent(source="journal", ops=2))
        t.end(run)
        return log

    def test_tree_structure_and_event_counts(self):
        roots = span_tree(self._traced_log())
        assert len(roots) == 1
        (run,) = roots
        assert (run.name, run.status) == ("run", "ok")
        (op,) = run.children
        assert op.event_counts == {"io": 2}
        # The commit happened after the op closed: it belongs to run.
        assert run.event_counts == {"journal-commit": 1}

    def test_truncated_stream_leaves_span_open(self):
        log = EventLog()
        t = enable_tracing(log)
        t.start("never-ends", "op")
        (node,) = span_tree(log)
        assert node.status == "open"

    def test_orphan_end_is_ignored(self):
        assert span_tree([SpanEndEvent(span_id=99)]) == []

    def test_digest_ignores_span_ids_but_not_structure(self):
        base = self._traced_log()
        # Same structure, shifted ids (as a merge remap would produce).
        shifted = []
        for e in base:
            if isinstance(e, SpanStartEvent):
                parent = e.parent_id + 10 if e.parent_id else None
                shifted.append(SpanStartEvent(e.span_id + 10, parent,
                                              e.name, e.category,
                                              e.detail, e.source))
            elif isinstance(e, SpanEndEvent):
                shifted.append(SpanEndEvent(e.span_id + 10, e.status))
            else:
                shifted.append(e)
        assert span_tree_digest(base) == span_tree_digest(shifted)
        renamed = [
            SpanStartEvent(e.span_id, e.parent_id, "other", e.category)
            if isinstance(e, SpanStartEvent) and e.name == "creat" else e
            for e in base
        ]
        assert span_tree_digest(base) != span_tree_digest(renamed)


class TestMergeStreams:
    def _stream(self, name):
        log = EventLog()
        t = enable_tracing(log)
        s = t.start(name, "op")
        log.emit(IOEvent("read", 1, "ok"))
        t.end(s)
        return list(log)

    def test_merge_wraps_streams_in_containers(self):
        merged = merge_streams(
            [("w1", self._stream("a")), ("w2", self._stream("b"))],
            root="all", root_category="run",
        )
        (root,) = span_tree(merged)
        assert (root.name, root.category) == ("all", "run")
        assert [c.name for c in root.children] == ["w1", "w2"]
        assert [c.children[0].name for c in root.children] == ["a", "b"]

    def test_merge_remaps_ids_uniquely(self):
        merged = merge_streams(
            [("w1", self._stream("a")), ("w2", self._stream("a"))]
        )
        ids = [e.span_id for e in merged if isinstance(e, SpanStartEvent)]
        assert len(ids) == len(set(ids))

    def test_merge_digest_independent_of_duplicate_input_ids(self):
        # Both inputs use span id 1 internally; the merged tree must
        # still be well-formed and digest deterministically.
        one = merge_streams([("x", self._stream("a")), ("y", self._stream("b"))])
        two = merge_streams([("x", self._stream("a")), ("y", self._stream("b"))])
        assert span_tree_digest(one) == span_tree_digest(two)


class TestChromeTrace:
    def test_export_shape(self, tmp_path):
        log = EventLog()
        t = enable_tracing(log)
        op = t.start("creat", "op")
        log.emit(IOEvent("write", 3, "error", "inode"))
        log.emit(DetectionEvent(Severity.WARNING, "fs", "sanity-fail",
                                "bad inode", mechanism="sanity"))
        t.end(op, "error")
        doc = chrome_trace(log)
        phases = [e["ph"] for e in doc["traceEvents"]]
        assert "B" in phases and "E" in phases  # span duration events
        assert "X" in phases                    # block I/O
        assert "i" in phases                    # detection instant
        assert doc["otherData"]["span_tree_digest"] == span_tree_digest(log)

        path = write_chrome_trace(log, tmp_path / "t.json")
        assert json.loads(path.read_text())["traceEvents"]

    def test_track_metadata_names_layers(self):
        doc = chrome_trace([])
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e.get("name") == "thread_name"}
        assert {"fs ops", "journal", "device I/O", "policy events"} <= names


class TestProvenanceRefs:
    def _labeled(self):
        log = EventLog()
        t = enable_tracing(log)
        s = t.start("run", "run")
        log.emit(IOEvent("write", 5, "error", "inode"))
        t.end(s)
        return {"w:read-failure:inode": list(log)}, s

    def test_event_ref_round_trip(self):
        streams, _ = self._labeled()
        label, events = next(iter(streams.items()))
        ref = event_ref(label, 1, events[1])
        assert resolve_ref(ref, streams) is events[1]

    def test_span_ref_round_trip(self):
        streams, span_id = self._labeled()
        label = next(iter(streams))
        start = resolve_ref(span_ref(label, span_id), streams)
        assert isinstance(start, SpanStartEvent) and start.span_id == span_id

    def test_resolution_is_strict(self):
        streams, _ = self._labeled()
        label = next(iter(streams))
        with pytest.raises(ValueError):
            resolve_ref(f"{label}#e1:span-start", streams)  # wrong kind
        with pytest.raises(ValueError):
            resolve_ref(f"{label}#e99:io", streams)  # past the end
        with pytest.raises(ValueError):
            resolve_ref(f"{label}#s42", streams)  # no such span
        with pytest.raises(KeyError):
            resolve_ref("nope#e0:io", streams)  # unknown stream
        with pytest.raises(ValueError):
            resolve_ref("malformed", streams)
