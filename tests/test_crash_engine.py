"""Differential crash-recovery harness across all five file systems.

One full exploration per file system (cached per module) drives every
assertion: engine invariants, per-FS recovery quality, the ixt3
transactional-checksum claim (§6.1), parallel determinism, and
violation reproducibility from reported state keys.
"""

from __future__ import annotations

import pytest

from repro.crash import (
    CRASH_PROFILES,
    CRASH_WORKLOADS,
    apply_state,
    check_state,
    enumerate_states,
    explore,
    record,
    state_by_key,
)

ALL_FS = sorted(CRASH_PROFILES)
ORACLES = {"mountability", "atomicity", "lost-data", "idempotence", "consistency"}
OUTCOMES = {"recovered", "degraded-ro", "panic", "unmountable"}

_REPORTS = {}


def creat_report(fs_key):
    """One full creat-workload exploration per FS, cached per module."""
    if fs_key not in _REPORTS:
        _REPORTS[fs_key] = explore(fs_key, "creat")
    return _REPORTS[fs_key]


# -- engine invariants --------------------------------------------------------


def test_recording_is_deterministic():
    a = record(CRASH_PROFILES["ext3"], CRASH_WORKLOADS["creat"])
    b = record(CRASH_PROFILES["ext3"], CRASH_WORKLOADS["creat"])
    assert a.writes == b.writes
    assert a.boundaries == b.boundaries
    assert a.boundary_digests == b.boundary_digests


def test_recording_shape():
    rec = record(CRASH_PROFILES["ext3"], CRASH_WORKLOADS["creat"])
    assert rec.writes, "workload produced no recorded writes"
    # One commit barrier per workload step, strictly increasing, and
    # every barrier indexes into the write sequence.
    assert len(rec.boundaries) == len(CRASH_WORKLOADS["creat"].steps)
    assert rec.boundaries == sorted(set(rec.boundaries))
    assert all(0 < b <= len(rec.writes) for b in rec.boundaries)
    assert set(rec.protected) == set(CRASH_WORKLOADS["creat"].protected)


def test_enumeration_covers_prefixes_and_torn_states():
    rec = record(CRASH_PROFILES["ext3"], CRASH_WORKLOADS["creat"])
    states = enumerate_states(rec)
    keys = [s.key for s in states]
    assert len(keys) == len(set(keys)), "state keys must be unique"
    prefixes = [s for s in states if s.key.startswith("prefix:")]
    torn = [s for s in states if s.key.startswith("torn:")]
    assert len(prefixes) == len(rec.writes) + 1
    assert torn, "a journaled workload must yield torn states"
    for s in torn:
        assert s.dropped is not None and s.dropped < s.end
        assert s.end in rec.boundaries


def test_max_torn_caps_enumeration():
    rec = record(CRASH_PROFILES["ext3"], CRASH_WORKLOADS["creat"])
    capped = enumerate_states(rec, max_torn_per_epoch=1)
    torn = [s for s in capped if s.key.startswith("torn:")]
    assert len(torn) == len(rec.boundaries)


@pytest.mark.parametrize("fs_key", ALL_FS)
def test_exploration_completes_with_sane_observations(fs_key):
    rep = creat_report(fs_key)
    assert rep.states_explored > 0
    for obs in rep.observations:
        assert obs.outcome in OUTCOMES
        for v in obs.violations:
            assert v.oracle in ORACLES
            assert v.state_key == obs.key


def test_ext3_explores_at_least_fifty_states():
    assert creat_report("ext3").states_explored >= 50


# -- recovery quality ---------------------------------------------------------


@pytest.mark.parametrize("fs_key", ALL_FS)
def test_ordered_power_cuts_recover_cleanly(fs_key):
    """An in-order prefix cut hands recovery only complete transactions
    (or a cleanly truncated log); every FS must come back violation-free."""
    rep = creat_report(fs_key)
    bad = [
        v for obs in rep.observations if obs.key.startswith("prefix:")
        for v in obs.violations
    ]
    assert not bad, f"prefix states must be clean, got: {bad[:3]}"


def test_ext3_torn_journal_writes_violate_atomicity():
    """Figure 3's blind journal replay: a torn journal write makes stock
    ext3 replay stale bytes, landing between commit boundaries."""
    rep = creat_report("ext3")
    atom = [v for v in rep.violations if v.oracle == "atomicity"]
    assert atom, "stock ext3 should show torn-write atomicity violations"
    assert all(v.state_key.startswith("torn:") for v in rep.violations)


# -- the §6.1 differential claim ----------------------------------------------


def test_ixt3_txn_checksums_close_the_torn_window():
    """ixt3 with transactional checksums must pass the atomicity oracle
    on states where stock ext3 fails it: the checksum detects the torn
    transaction and refuses to replay it."""
    ext3 = creat_report("ext3")
    ixt3 = creat_report("ixt3")
    # Same workload, same journal layout: state keys line up.
    assert {o.key for o in ext3.observations} == {o.key for o in ixt3.observations}
    ext3_atomicity = {
        v.state_key for v in ext3.violations if v.oracle == "atomicity"
    }
    assert ext3_atomicity, "differential needs ext3 atomicity failures"
    ixt3_by_key = {o.key: o for o in ixt3.observations}
    rescued = [
        key for key in ext3_atomicity if not ixt3_by_key[key].violations
    ]
    assert rescued, (
        "ixt3+Tc must fully pass at least one state where ext3 "
        "violates journal atomicity"
    )


def test_ixt3_residual_violations_are_ordered_data_only():
    """Tc protects the journal, not ordered data blocks; any residual
    ixt3 violation must be a torn *data* write (the paper's scope)."""
    rep = creat_report("ixt3")
    for v in rep.violations:
        assert v.state_key.startswith("torn:")
        assert v.oracle == "atomicity"
    # Far fewer than stock ext3 — the checksum closes the journal window.
    assert len(rep.violations) < len(creat_report("ext3").violations)


# -- determinism and reproducibility ------------------------------------------


def test_parallel_exploration_is_deterministic():
    serial = explore("ext3", "creat", jobs=1)
    fanned = explore("ext3", "creat", jobs=2)
    assert serial.violation_digest() == fanned.violation_digest()
    assert serial.states_explored == fanned.states_explored
    assert [o.key for o in serial.observations] == [
        o.key for o in fanned.observations
    ]


def test_state_key_reproduces_violation():
    """A reported state key must rebuild the exact failing disk image."""
    rep = creat_report("ext3")
    first = rep.violations[0]
    rec = record(CRASH_PROFILES["ext3"], CRASH_WORKLOADS["creat"])
    obs = check_state(rec, state_by_key(rec, first.state_key))
    assert first in obs.violations


def test_state_by_key_rejects_unknown_keys():
    rec = record(CRASH_PROFILES["jfs"], CRASH_WORKLOADS["creat"])
    with pytest.raises(KeyError):
        state_by_key(rec, "torn:99:99")


def test_apply_state_is_repeatable():
    """Replaying the same key twice lands on the identical disk image —
    the golden snapshot is never mutated by earlier replays."""
    rec = record(CRASH_PROFILES["ext3"], CRASH_WORKLOADS["creat"])
    state = state_by_key(rec, "prefix:5")
    apply_state(rec, state)
    before = [bytes(rec.disk.peek(b)) for b in range(32)]
    apply_state(rec, state_by_key(rec, f"prefix:{len(rec.writes)}"))
    apply_state(rec, state)
    after = [bytes(rec.disk.peek(b)) for b in range(32)]
    assert before == after


# -- report plumbing ----------------------------------------------------------


def test_report_render_mentions_each_violation_key():
    rep = creat_report("ext3")
    text = rep.render()
    assert f"{rep.states_explored} crash states explored" in text
    for v in rep.violations:
        assert v.state_key in text


def test_violation_digest_tracks_content():
    rep_a = creat_report("ext3")
    rep_b = creat_report("ixt3")
    assert rep_a.violation_digest() != rep_b.violation_digest()
