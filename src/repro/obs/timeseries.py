"""Virtual-clock time series: the fleet flight recorder's substrate.

The metrics registry (:mod:`repro.obs.metrics`) answers "how much":
counters, gauges, histograms — totals with no time axis.  The fleet
simulator needs "when": how many members were degraded *while* the
latent-error population peaked, where the scrub cursor was when the
rebuild window opened.  This module records gauges **over the virtual
fleet clock** (hours, never wall time) with the same discipline the
rest of the observability layer obeys:

* **Deterministic** — sampling decisions depend only on the offered
  sample sequence (a stride-doubling ring bound), never on wall time or
  memory pressure, so two runs of the same trial record byte-identical
  series.
* **Bounded** — a :class:`Track` holds at most ``cap`` raw samples; at
  capacity it thins to every second sample and doubles its acceptance
  stride, so a mission of any length costs O(cap) memory while keeping
  samples spread across the whole timeline.
* **Associative cross-worker merge** — the aggregate shipped between
  pool workers is the *binned* :class:`TimeSeries` (fixed bins over
  ``[0, t_max]``, per-bin count/sum/min/max).  Bin-wise combination is
  associative and commutative, so campaign aggregation is byte-identical
  at any ``--jobs`` width — exactly like counter/histogram merging in
  the registry, which hosts these series as a fourth instrument type.

Two representations, two jobs: raw :class:`Track` samples feed a single
trial's post-mortem timeline (``repro report --trace-trial``); binned
:class:`TimeSeries` feed the campaign report and the Prometheus
exposition.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

#: Default raw-sample capacity of one flight-recorder track.
TRACK_CAP = 256

#: Default bin count for the mergeable, campaign-level series.
SERIES_BINS = 48

LabelsKey = Tuple[Tuple[str, str], ...]


def labels_key(labels: Mapping[str, str]) -> LabelsKey:
    """Canonical sorted label tuple (the registry's instrument key)."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Track:
    """Ring-bounded raw ``(t, value)`` samples for one gauge.

    Decimation is deterministic in the *offered* sample sequence: the
    track accepts every ``stride``-th offer; when the buffer reaches
    ``cap`` it drops every second retained sample and doubles the
    stride.  Retained samples are always the offers at indices that are
    multiples of the current stride, so identical offer sequences yield
    identical tracks regardless of when the caller looks.
    """

    __slots__ = ("name", "cap", "stride", "offered", "samples")

    def __init__(self, name: str, cap: int = TRACK_CAP):
        if cap < 2:
            raise ValueError("track cap must be >= 2")
        self.name = name
        self.cap = cap
        self.stride = 1
        self.offered = 0
        self.samples: List[Tuple[float, float]] = []

    def sample(self, t: float, value: float) -> None:
        index = self.offered
        self.offered += 1
        if index % self.stride:
            return
        self.samples.append((float(t), float(value)))
        if len(self.samples) >= self.cap:
            del self.samples[1::2]
            self.stride *= 2

    @property
    def last(self) -> Optional[Tuple[float, float]]:
        return self.samples[-1] if self.samples else None

    def to_entry(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "cap": self.cap,
            "stride": self.stride,
            "offered": self.offered,
            "samples": [[t, v] for t, v in self.samples],
        }


class TimeSeries:
    """Fixed-bin gauge-over-virtual-clock series with associative merge.

    The clock range ``[0, t_max]`` is split into ``bins`` equal bins;
    each observation lands in one bin as (count, sum, min, max).  Like
    fixed-bound histograms, fixed bins are what make merging
    associative *and* bounded: combining per-trial series never grows
    the representation, and any grouping of merges yields the same
    state.  Samples past ``t_max`` clamp into the last bin (a trial can
    establish loss exactly at mission end).
    """

    __slots__ = ("name", "labels", "t_max", "counts", "sums", "mins", "maxs")

    def __init__(self, name: str, labels: LabelsKey, t_max: float,
                 bins: int = SERIES_BINS):
        if t_max <= 0:
            raise ValueError("t_max must be > 0")
        if bins < 1:
            raise ValueError("bins must be >= 1")
        self.name = name
        self.labels = labels
        self.t_max = float(t_max)
        self.counts = [0] * bins
        self.sums = [0.0] * bins
        self.mins: List[Optional[float]] = [None] * bins
        self.maxs: List[Optional[float]] = [None] * bins

    @property
    def bins(self) -> int:
        return len(self.counts)

    @property
    def count(self) -> int:
        return sum(self.counts)

    def bin_index(self, t: float) -> int:
        if t <= 0:
            return 0
        return min(self.bins - 1, int(t / self.t_max * self.bins))

    def bin_mid(self, index: int) -> float:
        return (index + 0.5) * self.t_max / self.bins

    def observe(self, t: float, value: float) -> None:
        i = self.bin_index(t)
        value = float(value)
        self.counts[i] += 1
        self.sums[i] += value
        self.mins[i] = value if self.mins[i] is None else min(self.mins[i], value)
        self.maxs[i] = value if self.maxs[i] is None else max(self.maxs[i], value)

    def observe_track(self, track: Track) -> None:
        """Fold a raw track's retained samples into the bins."""
        for t, value in track.samples:
            self.observe(t, value)

    def merge(self, other: "TimeSeries") -> "TimeSeries":
        """Bin-wise combination (in place; returns self).

        Counts and sums add, mins/maxs fold — all associative and
        commutative, so cross-worker aggregation is order-free.  The
        two series must agree on the bin layout, like histograms must
        agree on bucket bounds.
        """
        if (other.t_max, other.bins) != (self.t_max, self.bins):
            raise ValueError(
                f"timeseries {self.name!r} merged with different bin layout"
            )
        for i in range(self.bins):
            self.counts[i] += other.counts[i]
            self.sums[i] += other.sums[i]
            for mine, theirs, pick in (
                (self.mins, other.mins, min),
                (self.maxs, other.maxs, max),
            ):
                if theirs[i] is not None:
                    mine[i] = (theirs[i] if mine[i] is None
                               else pick(mine[i], theirs[i]))
        return self

    def to_entry(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "t_max": self.t_max,
            "bins": self.bins,
            "counts": list(self.counts),
            "sums": list(self.sums),
            "mins": list(self.mins),
            "maxs": list(self.maxs),
        }

    @classmethod
    def from_entry(cls, entry: Mapping[str, Any]) -> "TimeSeries":
        series = cls(entry["name"], labels_key(entry.get("labels", {})),
                     entry["t_max"], int(entry["bins"]))
        series.counts = [int(n) for n in entry["counts"]]
        series.sums = [float(s) for s in entry["sums"]]
        series.mins = [None if m is None else float(m) for m in entry["mins"]]
        series.maxs = [None if m is None else float(m) for m in entry["maxs"]]
        if len(series.counts) != series.bins:
            raise ValueError("timeseries entry bins/counts length mismatch")
        return series


class FlightRecorder:
    """Per-trial sampler: named gauge tracks over one virtual clock.

    The fleet simulator owns one per trial and calls :meth:`sample` at
    every discrete event and tick.  At trial end, :meth:`binned`
    projects the raw tracks onto mergeable :class:`TimeSeries` entries
    (the picklable aggregate the campaign folds across workers), and
    :meth:`to_snapshot` exports the raw samples for single-trial
    post-mortems and the ``--trace-trial`` timeline.
    """

    __slots__ = ("cap", "_tracks")

    def __init__(self, cap: int = TRACK_CAP):
        self.cap = cap
        self._tracks: Dict[str, Track] = {}

    def track(self, name: str) -> Track:
        track = self._tracks.get(name)
        if track is None:
            track = self._tracks[name] = Track(name, self.cap)
        return track

    def sample(self, name: str, t: float, value: float) -> None:
        self.track(name).sample(t, value)

    def tracks(self) -> List[Track]:
        return [self._tracks[name] for name in sorted(self._tracks)]

    def __len__(self) -> int:
        return len(self._tracks)

    def binned(self, t_max: float, bins: int = SERIES_BINS,
               **labels: str) -> List[Dict[str, Any]]:
        """The tracks as mergeable binned-series entries (sorted)."""
        entries = []
        for track in self.tracks():
            series = TimeSeries(track.name, labels_key(labels), t_max, bins)
            series.observe_track(track)
            entries.append(series.to_entry())
        return entries

    def to_snapshot(self) -> Dict[str, Any]:
        """Raw per-track samples (``repro-timeseries/1``)."""
        return {
            "schema": "repro-timeseries/1",
            "tracks": [track.to_entry() for track in self.tracks()],
        }


__all__ = [
    "SERIES_BINS",
    "TRACK_CAP",
    "FlightRecorder",
    "TimeSeries",
    "Track",
    "labels_key",
]
