"""The typed storage-event pipeline: one schema for every observable.

Every layer of the storage stack — the fault injector at the device
boundary, the VFS buffer layer, the journal framing, and each file
system's policy code — reports through :class:`StorageEvent` records
appended to a shared :class:`EventLog`.  ``SysLog`` and ``IOTrace``
are rendering views over this stream; policy inference matches the
structured events directly.

:mod:`repro.obs.trace` layers hierarchical spans over the same stream
(run → workload → VFS op → journal transaction → block I/O) and exports
Chrome trace-event JSON for Perfetto; :mod:`repro.obs.metrics` folds
the stream and the device stack's counters into a mergeable metrics
registry with Prometheus-text and JSON-snapshot exporters.

The fleet flight recorder builds on all three:
:mod:`repro.obs.timeseries` records gauges over the *virtual* fleet
clock (ring-bounded raw tracks, associatively-mergeable binned
series), and :mod:`repro.obs.postmortem` walks recorded event streams
to classify every lost trial into a typed :class:`Incident` with
``resolve_ref``-able provenance.
"""

from repro.obs.events import (
    DETECTION_MECHANISMS,
    POLICY_ACTION_TAGS,
    RECOVERY_MECHANISMS,
    DetectionEvent,
    EventLog,
    FaultArmedEvent,
    FleetClockEvent,
    IOEvent,
    JournalCommitEvent,
    LogEvent,
    PolicyActionEvent,
    RecoveryEvent,
    Severity,
    StorageEvent,
    WriteImageEvent,
    classify_log,
    fold_digest,
)
from repro.obs.capture import TraceCapture, trace_workloads
from repro.obs.metrics import (
    MetricsRegistry,
    metrics_from_events,
    render_prometheus,
    validate_json,
    validate_snapshot,
)
from repro.obs.postmortem import (
    INCIDENT_MODES,
    Incident,
    IncidentCause,
    build_incident,
    classify,
    fold_incidents,
    mode_counts,
)
from repro.obs.timeseries import (
    FlightRecorder,
    TimeSeries,
    Track,
)
from repro.obs.trace import (
    SelfTimeProfiler,
    SpanEndEvent,
    SpanStartEvent,
    Tracer,
    chrome_trace,
    enable_tracing,
    event_ref,
    merge_profiles,
    merge_streams,
    render_profile,
    resolve_ref,
    span_ref,
    span_tree,
    span_tree_digest,
    tracer_for,
    write_chrome_trace,
)

__all__ = [
    "DETECTION_MECHANISMS",
    "POLICY_ACTION_TAGS",
    "RECOVERY_MECHANISMS",
    "DetectionEvent",
    "EventLog",
    "FaultArmedEvent",
    "FleetClockEvent",
    "IOEvent",
    "JournalCommitEvent",
    "LogEvent",
    "PolicyActionEvent",
    "RecoveryEvent",
    "Severity",
    "StorageEvent",
    "WriteImageEvent",
    "classify_log",
    "fold_digest",
    "TraceCapture",
    "trace_workloads",
    "MetricsRegistry",
    "metrics_from_events",
    "render_prometheus",
    "validate_json",
    "validate_snapshot",
    "INCIDENT_MODES",
    "Incident",
    "IncidentCause",
    "build_incident",
    "classify",
    "fold_incidents",
    "mode_counts",
    "FlightRecorder",
    "TimeSeries",
    "Track",
    "SelfTimeProfiler",
    "SpanEndEvent",
    "SpanStartEvent",
    "Tracer",
    "chrome_trace",
    "enable_tracing",
    "event_ref",
    "merge_profiles",
    "merge_streams",
    "render_profile",
    "resolve_ref",
    "span_ref",
    "span_tree",
    "span_tree_digest",
    "tracer_for",
    "write_chrome_trace",
]
