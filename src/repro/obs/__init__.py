"""The typed storage-event pipeline: one schema for every observable.

Every layer of the storage stack — the fault injector at the device
boundary, the VFS buffer layer, the journal framing, and each file
system's policy code — reports through :class:`StorageEvent` records
appended to a shared :class:`EventLog`.  ``SysLog`` and ``IOTrace``
are rendering views over this stream; policy inference matches the
structured events directly.
"""

from repro.obs.events import (
    DETECTION_MECHANISMS,
    POLICY_ACTION_TAGS,
    RECOVERY_MECHANISMS,
    DetectionEvent,
    EventLog,
    FaultArmedEvent,
    IOEvent,
    JournalCommitEvent,
    LogEvent,
    PolicyActionEvent,
    RecoveryEvent,
    Severity,
    StorageEvent,
    WriteImageEvent,
    classify_log,
    fold_digest,
)

__all__ = [
    "DETECTION_MECHANISMS",
    "POLICY_ACTION_TAGS",
    "RECOVERY_MECHANISMS",
    "DetectionEvent",
    "EventLog",
    "FaultArmedEvent",
    "IOEvent",
    "JournalCommitEvent",
    "LogEvent",
    "PolicyActionEvent",
    "RecoveryEvent",
    "Severity",
    "StorageEvent",
    "WriteImageEvent",
    "classify_log",
    "fold_digest",
]
