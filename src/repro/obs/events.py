"""Typed storage events: the one schema every layer reports through.

The fingerprinting methodology (§4.3) infers failure policy from three
observables — API results, the system log, and the I/O trace at the
device boundary.  Historically each lived in its own shape (free-text
``SysLog`` strings, ``IOTrace`` entries, ad-hoc state checks); this
module unifies them as one ordered stream of :class:`StorageEvent`
records that the fault injector, the VFS buffer layer, the journal
framing, and every file system's policy code emit into a shared
:class:`EventLog`.

Design constraints:

* **Replayable** — events are frozen dataclasses of primitives, so a
  stream pickles across process-pool workers and hashes to a stable
  digest (``jobs=N`` determinism checks compare these digests).
* **View-compatible** — ``SysLog`` and ``IOTrace`` are re-implemented
  as rendering views over an ``EventLog``, so string-based consumers
  keep working while inference matches structured events.

Event kinds:

========================  ====================================================
``io``                    one request at the device boundary (injector)
``fault-armed``           a fault was armed beneath the file system
``detection``             the FS detected a failure (mechanism-tagged)
``recovery``              the FS attempted recovery (mechanism-tagged)
``policy-action``         the FS took a policy action (remount-ro, panic, …)
``journal-commit``        a transaction commit barrier (``fs/base`` framing)
``log``                   any other kernel-log line
========================  ====================================================
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, fields
from typing import Callable, ClassVar, Iterator, List, Optional, Tuple, Type


class Severity(enum.IntEnum):
    """Kernel-log severity (shared by events and the SysLog view)."""

    DEBUG = 0
    INFO = 1
    WARNING = 2
    ERROR = 3
    CRITICAL = 4


#: Per-class field-name tuples: ``dataclasses.fields`` resolves the
#: class metadata on every call, which dominates digesting when a run
#: keys tens of thousands of events.
_FIELD_NAMES: dict = {}


@dataclass(frozen=True)
class StorageEvent:
    """Base class for everything observable in the storage stack."""

    kind: ClassVar[str] = "event"

    def key(self) -> Tuple:
        """Stable content tuple (used for digests and determinism checks)."""
        cls = type(self)
        names = _FIELD_NAMES.get(cls)
        if names is None:
            names = _FIELD_NAMES[cls] = tuple(f.name for f in fields(self))
        return (self.kind,) + tuple(getattr(self, name) for name in names)


@dataclass(frozen=True)
class IOEvent(StorageEvent):
    """One request observed at the device boundary."""

    kind: ClassVar[str] = "io"

    op: str  # "read" | "write"
    block: int
    outcome: str  # "ok" | "error" | "corrupted" | "dropped"
    block_type: Optional[str] = None

    def is_read(self) -> bool:
        return self.op == "read"

    def is_write(self) -> bool:
        return self.op == "write"


@dataclass(frozen=True)
class FaultArmedEvent(StorageEvent):
    """A fault was armed beneath the file system."""

    kind: ClassVar[str] = "fault-armed"

    op: str  # "read" | "write"
    fault_kind: str  # "fail" | "corrupt"
    block: Optional[int] = None
    block_type: Optional[str] = None


@dataclass(frozen=True)
class WriteImageEvent(StorageEvent):
    """One write at the top of the device stack, *with its payload*.

    Emitted by the :class:`~repro.disk.recorder.WriteRecorder` layer so
    the crash-state exploration engine (:mod:`repro.crash`) can replay
    any prefix of a workload's write sequence onto a snapshot.  Unlike
    :class:`IOEvent` (the injector's boundary observation), this event
    carries the full block image — it is the record side of the
    record/enumerate/replay/check loop.
    """

    kind: ClassVar[str] = "write-image"

    block: int
    data: bytes


@dataclass(frozen=True)
class JournalCommitEvent(StorageEvent):
    """A transaction commit barrier issued by the journaling framing."""

    kind: ClassVar[str] = "journal-commit"

    source: str
    ops: int = 0  # operations folded into this commit (0 = explicit sync)


@dataclass(frozen=True)
class LogEvent(StorageEvent):
    """A kernel-log line: the renderable subset of the event stream.

    Everything the old free-text ``SysLog`` carried survives here
    (severity, source subsystem, machine tag, message, block), so the
    ``SysLog`` view renders these — and only these — as log records.
    """

    kind: ClassVar[str] = "log"

    severity: Severity
    source: str
    tag: str
    message: str
    block: Optional[int] = None


@dataclass(frozen=True)
class DetectionEvent(LogEvent):
    """The file system *detected* a failure.

    ``mechanism`` names the IRON detection technique that fired:
    ``"error-code"`` (a lower level reported an error), ``"sanity"``
    (a structural check failed), ``"redundancy"`` (a checksum or
    replica comparison mismatched).
    """

    kind: ClassVar[str] = "detection"

    mechanism: str = "error-code"


@dataclass(frozen=True)
class RecoveryEvent(LogEvent):
    """The file system *attempted recovery* from a failure.

    ``mechanism`` names the IRON recovery technique: ``"retry"``,
    ``"redundancy"`` (read a replica / reconstructed from parity),
    ``"remap"`` (redirected the block elsewhere), ``"journal-replay"``.
    """

    kind: ClassVar[str] = "recovery"

    mechanism: str = "retry"


@dataclass(frozen=True)
class PolicyActionEvent(LogEvent):
    """The file system took a failure-policy action (R_stop flavours,
    silent drops, scrub outcomes…).  ``tag`` names the action."""

    kind: ClassVar[str] = "policy-action"

    @property
    def action(self) -> str:
        return self.tag


# -- redundancy-array events --------------------------------------------------
#
# Multi-disk arrays (:mod:`repro.redundancy.array`) report through the
# same detection / recovery / policy-action vocabulary the file systems
# use — same mechanisms, same IRON levels — with one extra coordinate:
# which *member* of the array the observation concerns.  Inference and
# the metrics layer match these by their base classes (isinstance), so
# R_redundancy classification is structural, not string-matched.


@dataclass(frozen=True)
class ArrayDetectionEvent(DetectionEvent):
    """The array detected a member failure (D_errorcode: the member's
    error code surfaced at the array boundary) or a redundancy
    mismatch between members (D_redundancy, during scrub)."""

    member: Optional[int] = None


@dataclass(frozen=True)
class ArrayRecoveryEvent(RecoveryEvent):
    """The array recovered through redundancy (R_redundancy): a
    degraded read reconstructed from surviving members, a read-repair
    wrote the reconstruction back, or a rebuild repopulated a
    replaced member."""

    member: Optional[int] = None
    mechanism: str = "redundancy"


@dataclass(frozen=True)
class ArrayPolicyEvent(PolicyActionEvent):
    """An array-level policy action: a scrub pass completed, or a
    scrub found damage it could not attribute/repair (scrub-loss)."""

    member: Optional[int] = None


# -- fleet events --------------------------------------------------------------


@dataclass(frozen=True)
class FleetClockEvent(LogEvent):
    """A fleet-simulator lifecycle observation stamped with the virtual
    clock.

    The flight recorder's causal vocabulary: arrival events
    (``failstop-arrival`` / ``lse-arrival`` / ``corrupt-arrival``),
    repair lifecycle (``spare-seated`` / ``rebuild-complete`` /
    ``scrub-pass``), and terminal verdicts (``loss-established`` /
    ``rstop-freeze``), each carrying the fleet clock in hours and the
    member concerned.  Being a :class:`LogEvent` subclass, these render
    in the SysLog view and as Perfetto instants for free; post-mortems
    (:mod:`repro.obs.postmortem`) walk them to reconstruct the
    root-cause arrival sequence of every lost trial.
    """

    kind: ClassVar[str] = "fleet-clock"

    t_hours: float = 0.0
    member: Optional[int] = None


@dataclass(frozen=True)
class FleetTrialEvent(StorageEvent):
    """One Monte Carlo trial's verdict from the fleet simulator.

    A campaign emits exactly one of these per (geometry, policy, trial)
    in enumeration order; the fold over their keys is the campaign's
    determinism digest, byte-identical at any ``--jobs`` width.
    ``outcome`` is one of ``"survived"``, ``"detected-loss"``,
    ``"silent-loss"`` (a mission-end verify read returned wrong bytes
    no mechanism ever flagged), or ``"stopped"`` (an R_stop policy
    froze the array at first trouble).  ``ttdl_hours`` is the fleet
    clock at data loss (None when the trial survived or stopped).
    """

    kind: ClassVar[str] = "fleet-trial"

    geometry: str = ""
    policy: str = ""
    trial: int = 0
    outcome: str = "survived"
    ttdl_hours: Optional[float] = None
    device_hours: float = 0.0


# -- tag classification -------------------------------------------------------
#
# The central mapping from the historical free-text syslog tags to typed
# events.  FS policy code that still calls ``syslog.error(...)`` gets a
# correctly-typed event through this table; converted call sites emit
# the typed event directly.

DETECTION_MECHANISMS = {
    "sanity-fail": "sanity",
    "checksum-mismatch": "redundancy",
    "read-error": "error-code",
    "write-error": "error-code",
}

RECOVERY_MECHANISMS = {
    "read-retry": "retry",
    "write-retry": "retry",
    "redundancy-used": "redundancy",
    "remap": "remap",
    "recovery": "journal-replay",
}

POLICY_ACTION_TAGS = {
    "remount-ro",
    "journal-abort",
    "unmountable",
    "mount-failed",
    "panic",
    "silent-failure",
    "ignored-error",
    "log-reset",
    "scrub-loss",
    "scrub-complete",
    "cksum-unavailable",
    "replica-unavailable",
    "replica-full",
}


def classify_log(
    severity: Severity,
    source: str,
    tag: str,
    message: str,
    block: Optional[int] = None,
) -> LogEvent:
    """Type a kernel-log line by its machine tag.

    Unknown tags become plain :class:`LogEvent`\\ s — still rendered,
    still diffed, just not structurally matched by inference.
    """
    if tag in DETECTION_MECHANISMS:
        return DetectionEvent(
            severity, source, tag, message, block,
            mechanism=DETECTION_MECHANISMS[tag],
        )
    if tag in RECOVERY_MECHANISMS:
        return RecoveryEvent(
            severity, source, tag, message, block,
            mechanism=RECOVERY_MECHANISMS[tag],
        )
    if tag in POLICY_ACTION_TAGS:
        return PolicyActionEvent(severity, source, tag, message, block)
    return LogEvent(severity, source, tag, message, block)


class EventLog:
    """An append-only, ordered stream of :class:`StorageEvent`\\ s.

    One log is shared by every layer of a device stack and the file
    system mounted on it (see :class:`repro.disk.stack.DeviceStack`),
    so cross-layer ordering — an injected error followed by the FS's
    detection followed by its policy action — is preserved exactly.
    """

    __slots__ = ("_events", "high_water", "max_events", "dropped", "released", "tracer")

    def __init__(
        self,
        events: Optional[List[StorageEvent]] = None,
        max_events: Optional[int] = None,
    ):
        if max_events is not None and max_events < 1:
            raise ValueError("max_events must be >= 1")
        self._events: List[StorageEvent] = list(events) if events else []
        #: Index of the first event *not yet consumed* by an incremental
        #: reader (the crash recorder).  ``consume_new()`` advances it;
        #: ``clear()`` and ``reset_high_water()`` rewind it.
        self.high_water: int = 0
        #: Ring-mode capacity: when set, :meth:`emit` evicts the oldest
        #: events past this bound (long crash sweeps opt in to cap
        #: memory).  ``None`` keeps the log unbounded.
        self.max_events = max_events
        #: Events evicted by ring mode since the last clear().
        self.dropped: int = 0
        #: Events released by :meth:`drain` since the last clear().
        self.released: int = 0
        #: The span tracer bound to this stream, when tracing is in use
        #: (set by :func:`repro.obs.trace.tracer_for`; None otherwise).
        self.tracer = None

    # -- emission ------------------------------------------------------------

    def emit(self, event: StorageEvent) -> StorageEvent:
        self._events.append(event)
        if self.max_events is not None and len(self._events) > self.max_events:
            excess = len(self._events) - self.max_events
            del self._events[:excess]
            self.dropped += excess
            self.high_water = max(0, self.high_water - excess)
        return event

    # -- access --------------------------------------------------------------

    def __iter__(self) -> Iterator[StorageEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        # An empty log is still a log: sharing checks must not mistake
        # "no events yet" for "no stream to join".
        return True

    def __getitem__(self, index):
        return self._events[index]

    def of_type(self, cls: Type[StorageEvent]) -> List[StorageEvent]:
        return [e for e in self._events if isinstance(e, cls)]

    def io_events(self) -> List[IOEvent]:
        return [e for e in self._events if isinstance(e, IOEvent)]

    def log_events(self) -> List[LogEvent]:
        return [e for e in self._events if isinstance(e, LogEvent)]

    # -- incremental consumption ---------------------------------------------

    def since(self, mark: int) -> List[StorageEvent]:
        """Events appended at or after index *mark* (no state change)."""
        return self._events[mark:]

    def consume_new(self) -> List[StorageEvent]:
        """Return events appended since the last call and advance the
        high-water mark past them."""
        new = self._events[self.high_water:]
        self.high_water = len(self._events)
        return new

    def drain(self) -> List[StorageEvent]:
        """Like :meth:`consume_new`, but also *release* the consumed
        prefix so a long-running producer (the crash recorder during a
        multi-step workload) never holds the whole stream in memory.

        Everything before the high-water mark was handed out by an
        earlier ``consume_new()``/``drain()`` call; this returns the new
        tail and then empties the log, so the interleaved consumption
        ``drain() + drain() + ...`` yields exactly the same stream as a
        single trailing ``consume_new()`` would have.
        """
        new = self._events[self.high_water:]
        self.released += len(self._events)
        self._events.clear()
        self.high_water = 0
        return new

    def reset_high_water(self, mark: int = 0) -> None:
        """Rewind the incremental-consumption mark (clamped to the log).

        :meth:`repro.disk.stack.DeviceStack.restore` calls this so a
        restored stack does not hand stale pre-snapshot events to the
        crash recorder as if they were new.
        """
        self.high_water = max(0, min(mark, len(self._events)))

    # -- mutation ------------------------------------------------------------

    def clear(self) -> None:
        self._events.clear()
        self.high_water = 0
        self.dropped = 0
        self.released = 0

    def remove_where(self, predicate: Callable[[StorageEvent], bool]) -> None:
        self._events[:] = [e for e in self._events if not predicate(e)]
        self.high_water = min(self.high_water, len(self._events))

    # -- digests -------------------------------------------------------------

    def key_sequence(self) -> List[Tuple]:
        return [e.key() for e in self._events]

    def digest(self) -> str:
        """SHA-256 over the ordered event keys (determinism checks)."""
        h = hashlib.sha256()
        for e in self._events:
            h.update(repr(e.key()).encode())
        return h.hexdigest()


def fold_digest(hasher: "hashlib._Hash", label: str, events) -> None:
    """Fold one run's ordered events into an accumulating digest."""
    hasher.update(("\x00run:" + label + "\x00").encode())
    for e in events:
        hasher.update(repr(e.key()).encode())
