"""Causal loss post-mortems: from event streams to typed incidents.

A fleet campaign ends with *counts* — so many trials lost per cell —
but counts do not explain anything.  This module turns each lost or
stopped trial's recorded event stream (the :class:`FleetClockEvent`
lifecycle vocabulary plus detections and recoveries) into a typed
:class:`Incident`: the **loss mode** it exemplifies, the root-cause
arrival sequence with fleet-clock timestamps, and a provenance
reference per cause that :func:`repro.obs.trace.resolve_ref` resolves
back to the recorded evidence.

The taxonomy mirrors the failure scenarios the IRON paper's analysis
distinguishes (§3.3 compound failures, latent sector errors surfaced
by reconstruction, silent corruption that outlives scrub):

``double-fault-in-rebuild-window``
    Reconstruction of a failed member came up short because a second
    fault sat inside the rebuild window — the classic compound-failure
    scenario.
``latent-error-exposed-by-reconstruction``
    A latent sector error (not a whole-disk failure) was the straw: a
    degraded or foreground read pushed an unreadable block through
    every recovery level.
``scrub-unrepairable-damage``
    The scrub itself established the loss: damage on intact members
    exceeded the redundancy's repair reach.
``silent-corruption-past-scrub``
    Wrong bytes survived to the mission-end verify with no mechanism
    ever flagging them — the definition of silent data loss.
``whole-disk-fail-stop``
    An unprotected (R_zero) device fail-stopped; no spare pool, no
    redundancy, immediate loss.
``unrecovered-media-error``
    An unprotected device returned an unrecovered read error to the
    application.
``rstop-freeze``
    An R_stop policy froze the array at first trouble; data is
    intact-but-unavailable, scored separately from loss.

Layering: this module sits in ``repro.obs`` and must not import
``repro.fleet`` — it duck-types the trial verdict (anything with
``geometry`` / ``policy`` / ``trial`` / ``outcome`` / ``site`` /
``ttdl_hours`` / ``end_hours`` / ``stream`` / ``dropped_events``
attributes), so the classifier is testable with hand-built outcomes
and the fleet layer stays free to evolve its dataclass.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.events import FleetClockEvent, StorageEvent
from repro.obs.trace import event_ref

#: Arrival tags that count as root causes in the causal chain.
ARRIVAL_TAGS = ("failstop-arrival", "lse-arrival", "corrupt-arrival")

#: Terminal tags that close the chain.
TERMINAL_TAGS = ("loss-established", "rstop-freeze")

#: The closed loss-mode vocabulary (kept in sync with
#: ``schemas/campaign_report.schema.json`` by a unit test).
INCIDENT_MODES = (
    "double-fault-in-rebuild-window",
    "latent-error-exposed-by-reconstruction",
    "scrub-unrepairable-damage",
    "silent-corruption-past-scrub",
    "whole-disk-fail-stop",
    "unrecovered-media-error",
    "rstop-freeze",
)

#: Keep at most this many causes per incident: the first few arrivals
#: (how the trial got into trouble) and the last stretch before the
#: verdict (what finished it).  Everything dropped is counted.
CAUSE_CAP = 16
_CAUSE_HEAD = 4


@dataclass(frozen=True)
class IncidentCause:
    """One arrival (or verdict) in an incident's causal chain."""

    t_hours: float
    tag: str
    member: Optional[int] = None
    block: Optional[int] = None
    #: Provenance reference (``resolve_ref``-able against the trial's
    #: retained stream).
    ref: str = ""

    def to_record(self) -> Dict[str, Any]:
        return {
            "t_hours": self.t_hours,
            "tag": self.tag,
            "member": self.member,
            "block": self.block,
            "ref": self.ref,
        }


@dataclass(frozen=True)
class Incident:
    """One lost/stopped trial, explained."""

    geometry: str
    policy: str
    trial: int
    #: "detected-loss" | "silent-loss" | "stopped"
    outcome: str
    #: One of :data:`INCIDENT_MODES`.
    mode: str
    #: Where the verdict was established ("rebuild", "scrub", ...).
    site: str
    ttdl_hours: Optional[float]
    end_hours: float
    causes: Tuple[IncidentCause, ...] = ()
    #: Label of the retained stream the cause refs resolve against.
    stream_label: str = ""
    #: Length of the retained stream and how many events the trial's
    #: ring evicted before the end (the causal prefix may be truncated).
    events: int = 0
    dropped_events: int = 0
    #: Causes elided by :data:`CAUSE_CAP` (middle of long chains).
    dropped_causes: int = 0

    def key(self) -> Tuple:
        """Stable content tuple — the digest fold input."""
        return (
            self.geometry, self.policy, self.trial, self.outcome,
            self.mode, self.site, self.ttdl_hours, self.end_hours,
            self.events, self.dropped_events, self.dropped_causes,
            tuple((c.t_hours, c.tag, c.member, c.block, c.ref)
                  for c in self.causes),
        )

    def to_record(self) -> Dict[str, Any]:
        return {
            "geometry": self.geometry,
            "policy": self.policy,
            "trial": self.trial,
            "outcome": self.outcome,
            "mode": self.mode,
            "site": self.site,
            "ttdl_hours": self.ttdl_hours,
            "end_hours": self.end_hours,
            "stream_label": self.stream_label,
            "events": self.events,
            "dropped_events": self.dropped_events,
            "dropped_causes": self.dropped_causes,
            "causes": [cause.to_record() for cause in self.causes],
        }


def classify(outcome: Any, members: int) -> str:
    """Name the loss mode of a terminal trial verdict.

    *outcome* duck-types the fleet trial verdict; *members* is the
    geometry's member count (1 for the unprotected baseline).  The
    decision tree keys on the verdict kind and the site that
    established it — both recorded by the simulator, not re-derived.
    """
    if outcome.outcome == "stopped":
        return "rstop-freeze"
    if outcome.outcome == "silent-loss":
        return "silent-corruption-past-scrub"
    site = getattr(outcome, "site", "")
    if site == "rebuild":
        return "double-fault-in-rebuild-window"
    if members <= 1:
        if site == "failstop":
            return "whole-disk-fail-stop"
        return "unrecovered-media-error"
    if site == "scrub":
        return "scrub-unrepairable-damage"
    return "latent-error-exposed-by-reconstruction"


def stream_label(outcome: Any) -> str:
    """The canonical retained-stream label for a trial verdict (the
    same label the simulator folds into the trial digest)."""
    return f"fleet:{outcome.geometry}:{outcome.policy}:{outcome.trial}"


def _causes_from_stream(
    label: str, stream: Sequence[StorageEvent],
) -> Tuple[List[IncidentCause], int]:
    """Extract the causal chain (arrivals + terminal verdict) from a
    retained stream; returns (kept causes, elided count)."""
    chain: List[Tuple[int, FleetClockEvent]] = []
    for index, event in enumerate(stream):
        if isinstance(event, FleetClockEvent) and (
                event.tag in ARRIVAL_TAGS or event.tag in TERMINAL_TAGS):
            chain.append((index, event))
    dropped = 0
    if len(chain) > CAUSE_CAP:
        dropped = len(chain) - CAUSE_CAP
        chain = chain[:_CAUSE_HEAD] + chain[-(CAUSE_CAP - _CAUSE_HEAD):]
    causes = [
        IncidentCause(
            t_hours=event.t_hours,
            tag=event.tag,
            member=event.member,
            block=event.block,
            ref=event_ref(label, index, event),
        )
        for index, event in chain
    ]
    return causes, dropped


def build_incident(outcome: Any, members: int) -> Incident:
    """Post-mortem one terminal trial verdict into an :class:`Incident`.

    ``outcome.stream`` is the trial's retained logical event stream;
    cause refs index into exactly that sequence, so resolving them
    against a ``{stream_label: outcome.stream}`` mapping always works.
    """
    label = stream_label(outcome)
    stream = outcome.stream or ()
    causes, dropped_causes = _causes_from_stream(label, stream)
    return Incident(
        geometry=outcome.geometry,
        policy=outcome.policy,
        trial=outcome.trial,
        outcome=outcome.outcome,
        mode=classify(outcome, members),
        site=getattr(outcome, "site", ""),
        ttdl_hours=outcome.ttdl_hours,
        end_hours=outcome.end_hours,
        causes=tuple(causes),
        stream_label=label,
        events=len(stream),
        dropped_events=getattr(outcome, "dropped_events", 0),
        dropped_causes=dropped_causes,
    )


def fold_incidents(incidents: Sequence[Incident]) -> str:
    """SHA-256 over incident keys in the given (enumeration) order —
    the campaign's incident digest, byte-identical at any ``--jobs``
    width because classification happens in the main process over
    outcomes delivered in submission order."""
    hasher = hashlib.sha256()
    for incident in incidents:
        hasher.update(repr(incident.key()).encode())
        hasher.update(b"\x00")
    return hasher.hexdigest()


def mode_counts(incidents: Sequence[Incident]) -> Dict[str, int]:
    """Loss-mode histogram (sorted by mode name)."""
    counts: Dict[str, int] = {}
    for incident in incidents:
        counts[incident.mode] = counts.get(incident.mode, 0) + 1
    return dict(sorted(counts.items()))


def digest_incidents(
    incidents: Sequence[Incident],
) -> List[Dict[str, Any]]:
    """The campaign-level incident digest list (records, enumeration
    order preserved)."""
    return [incident.to_record() for incident in incidents]


__all__ = [
    "ARRIVAL_TAGS",
    "CAUSE_CAP",
    "INCIDENT_MODES",
    "TERMINAL_TAGS",
    "Incident",
    "IncidentCause",
    "build_incident",
    "classify",
    "digest_incidents",
    "fold_incidents",
    "mode_counts",
    "stream_label",
]
