"""Process-local metrics over the storage-event stream.

A :class:`MetricsRegistry` holds counters, gauges, and fixed-bucket
histograms keyed by ``(name, sorted labels)``.  The registry is the one
source of truth the BENCH JSON records and the Prometheus text export
both read, so the two never disagree (satellite: ``BlockCache.hit_rate``
and ``DeviceStack`` per-layer stats feed the same registry the exporter
renders).

Design constraints:

* **Deterministic** — metric state is pure accumulation over the event
  stream and device counters; snapshots of the same run are identical
  however many workers produced them.
* **Associative merge** — :meth:`MetricsRegistry.merge` sums counters
  and histogram buckets (gauges take the max, see the method docstring),
  so per-worker registries combine in any grouping to the same totals:
  ``(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)``.  Parallel fan-outs rely on this.
* **Schema-stable** — :meth:`MetricsRegistry.snapshot` emits the
  committed ``repro-metrics/1`` JSON shape
  (``schemas/metrics_snapshot.schema.json``); CI validates exporter
  output against that schema with :func:`validate_snapshot`, a
  dependency-free subset validator.

:func:`metrics_from_events` is the bridge from the typed event stream to
IRON-taxonomy metrics: detections and recoveries are bucketed by the
paper's D_*/R_* levels, faults armed vs. fired are counted separately,
and journal commits and spans get their own families.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.obs.events import (
    DetectionEvent,
    FaultArmedEvent,
    IOEvent,
    JournalCommitEvent,
    PolicyActionEvent,
    RecoveryEvent,
    StorageEvent,
    WriteImageEvent,
)
from repro.obs.timeseries import SERIES_BINS, TimeSeries
from repro.obs.trace import SpanStartEvent

SNAPSHOT_SCHEMA = "repro-metrics/1"

#: Default histogram bounds for virtual-disk latencies (seconds).  The
#: simulator's per-request times are sub-millisecond to tens of ms, so
#: the buckets concentrate there; ``inf`` is always implied last.
LATENCY_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
                   0.01, 0.025, 0.05, 0.1, 0.5, 1.0)

LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Mapping[str, str]) -> LabelsKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelsKey, value: float = 0):
        self.name = name
        self.labels = labels
        self.value = value

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time value (cache hit rate, open span depth...)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelsKey, value: float = 0.0):
        self.name = name
        self.labels = labels
        self.value = value

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bound cumulative-bucket histogram (Prometheus semantics).

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``; a final
    implicit ``+Inf`` bucket equals :attr:`count`.  Fixed bounds are
    what make merging associative: same-name histograms always share a
    bucket layout.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "sum")

    def __init__(self, name: str, labels: LabelsKey,
                 bounds: Tuple[float, ...] = LATENCY_BUCKETS):
        self.name = name
        self.labels = labels
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * len(self.bounds)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1


class MetricsRegistry:
    """Counters, gauges, and histograms for one process (or worker)."""

    def __init__(self):
        self._counters: Dict[Tuple[str, LabelsKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelsKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelsKey], Histogram] = {}
        self._timeseries: Dict[Tuple[str, LabelsKey], TimeSeries] = {}

    # -- instrument access ---------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _labels_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, key[1])
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _labels_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, key[1])
        return instrument

    def histogram(
        self,
        name: str,
        bounds: Tuple[float, ...] = LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        key = (name, _labels_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(name, key[1], bounds)
        elif instrument.bounds != tuple(bounds):
            raise ValueError(
                f"histogram {name!r} re-registered with different bounds"
            )
        return instrument

    def timeseries(
        self,
        name: str,
        t_max: float,
        bins: int = SERIES_BINS,
        **labels: str,
    ) -> TimeSeries:
        """A binned virtual-clock series (the fourth instrument type).

        Like histograms, a series' bin layout is fixed at registration;
        re-registering with a different layout is an error because it
        would break associative merging.
        """
        key = (name, _labels_key(labels))
        instrument = self._timeseries.get(key)
        if instrument is None:
            instrument = self._timeseries[key] = TimeSeries(
                name, key[1], t_max, bins)
        elif (instrument.t_max, instrument.bins) != (float(t_max), bins):
            raise ValueError(
                f"timeseries {name!r} re-registered with different bin layout"
            )
        return instrument

    def timeseries_from_entry(self, entry: Mapping[str, Any]) -> TimeSeries:
        """Get-or-create from a serialized entry and merge it in."""
        series = self.timeseries(
            entry["name"], entry["t_max"], int(entry["bins"]),
            **entry.get("labels", {}))
        series.merge(TimeSeries.from_entry(entry))
        return series

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms) + len(self._timeseries))

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Serialize to the committed ``repro-metrics/1`` JSON shape.

        Series are sorted by (name, labels) so equal registries always
        serialize byte-identically — the determinism tests compare the
        JSON dumps directly.
        """

        def sort_key(instrument):
            return (instrument.name, instrument.labels)

        return {
            "schema": SNAPSHOT_SCHEMA,
            "counters": [
                {"name": c.name, "labels": dict(c.labels), "value": c.value}
                for c in sorted(self._counters.values(), key=sort_key)
            ],
            "gauges": [
                {"name": g.name, "labels": dict(g.labels), "value": g.value}
                for g in sorted(self._gauges.values(), key=sort_key)
            ],
            "histograms": [
                {
                    "name": h.name,
                    "labels": dict(h.labels),
                    "bounds": list(h.bounds),
                    "bucket_counts": list(h.bucket_counts),
                    "count": h.count,
                    "sum": h.sum,
                }
                for h in sorted(self._histograms.values(), key=sort_key)
            ],
            "timeseries": [
                ts.to_entry()
                for ts in sorted(self._timeseries.values(), key=sort_key)
            ],
        }

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Any]) -> "MetricsRegistry":
        if snapshot.get("schema") != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"unsupported metrics snapshot schema: {snapshot.get('schema')!r}"
            )
        registry = cls()
        for entry in snapshot.get("counters", ()):
            registry.counter(entry["name"], **entry["labels"]).value = entry["value"]
        for entry in snapshot.get("gauges", ()):
            registry.gauge(entry["name"], **entry["labels"]).value = entry["value"]
        for entry in snapshot.get("histograms", ()):
            hist = registry.histogram(
                entry["name"], tuple(entry["bounds"]), **entry["labels"]
            )
            hist.bucket_counts = list(entry["bucket_counts"])
            hist.count = entry["count"]
            hist.sum = entry["sum"]
        for entry in snapshot.get("timeseries", ()):
            registry.timeseries_from_entry(entry)
        return registry

    # -- merging -------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold *other* into this registry (in place; returns self).

        Counters and histogram buckets sum — the natural combination for
        accumulated totals, and trivially associative + commutative.
        Gauges take the **max**: a gauge is a point-in-time reading with
        no meaningful sum across workers, and max is the only
        associative-commutative choice that keeps "worst observed"
        semantics (deepest span nesting, fullest cache).  Rate-style
        gauges (hit rates) should instead be derived from the summed
        hit/miss counters after merging — :func:`derive_rates` does.
        """
        for key, counter in other._counters.items():
            mine = self.counter(counter.name, **dict(counter.labels))
            mine.value += counter.value
        for key, gauge in other._gauges.items():
            mine = self.gauge(gauge.name, **dict(gauge.labels))
            mine.value = max(mine.value, gauge.value)
        for key, hist in other._histograms.items():
            mine = self.histogram(hist.name, hist.bounds, **dict(hist.labels))
            mine.count += hist.count
            mine.sum += hist.sum
            for i, n in enumerate(hist.bucket_counts):
                mine.bucket_counts[i] += n
        for key, series in other._timeseries.items():
            mine = self.timeseries(series.name, series.t_max, series.bins,
                                   **dict(series.labels))
            mine.merge(series)
        return self

    @classmethod
    def merge_snapshots(cls, snapshots: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
        """Merge serialized snapshots; returns a merged snapshot."""
        merged = cls()
        for snap in snapshots:
            merged.merge(cls.from_snapshot(snap))
        derive_rates(merged)
        return merged.snapshot()


def derive_rates(registry: MetricsRegistry) -> None:
    """Recompute rate gauges from their underlying counters.

    Called after a merge so ``repro_cache_hit_rate`` reflects the summed
    hit/miss totals rather than a max over per-worker rates, and
    ``repro_fleet_loss_probability`` reflects the summed per-cell trial
    outcomes.  Every derivation guards its denominator: empty or merged
    snapshots with zero reads (or zero trials in a cell) simply derive
    nothing, so report generation never divides by zero.
    """
    hits = {dict(c.labels).get("layer", ""): c.value
            for c in registry._counters.values()
            if c.name == "repro_cache_hits_total"}
    misses = {dict(c.labels).get("layer", ""): c.value
              for c in registry._counters.values()
              if c.name == "repro_cache_misses_total"}
    for layer in sorted(set(hits) | set(misses)):
        total = hits.get(layer, 0) + misses.get(layer, 0)
        if total:
            registry.gauge("repro_cache_hit_rate", layer=layer).set(
                hits.get(layer, 0) / total
            )
    # Fleet loss probability: losses / trials per (geometry, policy)
    # cell, recomputed from the summed outcome counters.
    trials: Dict[Tuple[str, str], float] = {}
    losses: Dict[Tuple[str, str], float] = {}
    for c in registry._counters.values():
        if c.name != "repro_fleet_trials_total":
            continue
        labels = dict(c.labels)
        cell = (labels.get("geometry", ""), labels.get("policy", ""))
        trials[cell] = trials.get(cell, 0) + c.value
        if labels.get("outcome") in ("detected-loss", "silent-loss"):
            losses[cell] = losses.get(cell, 0) + c.value
    for cell in sorted(trials):
        total = trials[cell]
        if total:
            registry.gauge(
                "repro_fleet_loss_probability",
                geometry=cell[0], policy=cell[1],
            ).set(losses.get(cell, 0) / total)


# -- Prometheus text exposition ----------------------------------------------

_HELP = {
    "repro_io_total": "Block I/O requests observed at the device boundary",
    "repro_io_latency_seconds": "Virtual per-request service time at the raw disk",
    "repro_faults_armed_total": "Faults armed beneath the file system",
    "repro_faults_fired_total": "Armed faults that actually fired (error/corrupted I/O)",
    "repro_detections_total": "Failure detections bucketed by IRON level (D_*)",
    "repro_recoveries_total": "Recovery attempts bucketed by IRON level (R_*)",
    "repro_policy_actions_total": "Failure-policy actions taken by the file system",
    "repro_journal_commits_total": "Journal transaction commit barriers",
    "repro_array_member_reads_total": "Raw reads issued to one array member",
    "repro_array_member_writes_total": "Raw writes issued to one array member",
    "repro_array_member_busy_seconds_total": "Virtual busy time of one array member",
    "repro_array_degraded_reads_total": "Logical reads served by reconstruction",
    "repro_array_degraded_writes_total": "Logical writes landed with a member missing",
    "repro_array_read_repairs_total": "Reconstructed blocks written back to the erring member",
    "repro_array_rebuilt_blocks_total": "Member blocks repopulated by rebuild",
    "repro_array_scrub_repairs_total": "Member blocks repaired during scrub passes",
    "repro_array_suspect_blocks": "Member blocks currently known stale or unwritten",
    "repro_spans_total": "Trace spans opened, by category",
    "repro_cache_hits_total": "Buffer-cache read hits",
    "repro_cache_misses_total": "Buffer-cache read misses",
    "repro_cache_hit_rate": "Fraction of reads served from the buffer cache",
    "repro_device_reads_total": "Reads served by the raw device",
    "repro_device_writes_total": "Writes absorbed by the raw device",
    "repro_device_bytes_read_total": "Bytes read from the raw device",
    "repro_device_bytes_written_total": "Bytes written to the raw device",
    "repro_device_seeks_total": "Head seeks performed by the raw device",
    "repro_device_busy_seconds_total": "Virtual seconds the device was busy",
    "repro_recorded_writes_total": "Write images captured by the crash recorder",
    "repro_faults_currently_armed": "Faults currently armed in the injector",
    "repro_fleet_trials_total": "Monte Carlo trials simulated, by cell and outcome",
    "repro_fleet_device_hours_total": "Device-hours of fleet time simulated",
    "repro_fleet_failstops_total": "Whole-disk fail-stop arrivals injected",
    "repro_fleet_lse_total": "Latent-sector-error arrivals armed on members",
    "repro_fleet_corruptions_total": "Silent-corruption arrivals poked into members",
    "repro_fleet_rebuild_windows_total": "Replacement+rebuild vulnerability windows opened",
    "repro_fleet_scrub_units_total": "Scrub units scanned by the interval scheduler",
    "repro_fleet_scrub_repairs_total": "Member blocks repaired by fleet scrub passes",
    "repro_fleet_retry_recoveries_total": "Member reads recovered by policy retries (R_retry)",
    "repro_fleet_member_reads_total": "Raw member reads issued across the fleet",
    "repro_fleet_member_writes_total": "Raw member writes issued across the fleet",
    "repro_fleet_loss_probability": "Fraction of a cell's trials that lost data",
    "repro_fleet_ttdl_hours": "Time to data loss in fleet hours, per cell",
    "repro_fleet_degraded_members": "Members failed or awaiting rebuild, over the fleet clock",
    "repro_fleet_latent_blocks": "Sticky latent sector errors armed, over the fleet clock",
    "repro_fleet_corrupt_blocks": "Silently corrupted blocks not yet known-repaired, over the fleet clock",
    "repro_fleet_rebuild_progress": "Progress through the open rebuild window (0 = none open)",
    "repro_fleet_scrub_cursor": "Incremental scrub cursor position, as a fraction of a pass",
    "repro_fleet_foreground_reads": "Cumulative foreground logical reads, over the fleet clock",
    "repro_fleet_scrub_member_reads": "Cumulative scrub units scanned, over the fleet clock",
    "repro_fleet_incidents_total": "Classified loss/stop incidents, by cell and mode",
}

#: Bucket bounds (fleet hours) for time-to-data-loss histograms —
#: mission timescales, not the I/O-latency defaults.
TTDL_BUCKETS = (10.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
                5000.0, 10000.0, 25000.0, 50000.0, 100000.0)


def _fmt_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text-format spec:
    backslash, double-quote, and line-feed must be escaped inside the
    quoted value (in that order — backslash first, or it would re-escape
    the escapes)."""
    return (str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def _fmt_labels(labels: Mapping[str, str], extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = sorted(labels.items())
    if extra is not None:
        pairs = sorted(pairs + [extra])
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


def render_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Render a ``repro-metrics/1`` snapshot as Prometheus text format."""
    lines: List[str] = []
    seen_help = set()

    def header(name: str, mtype: str) -> None:
        if name in seen_help:
            return
        seen_help.add(name)
        if name in _HELP:
            lines.append(f"# HELP {name} {_HELP[name]}")
        lines.append(f"# TYPE {name} {mtype}")

    for entry in snapshot.get("counters", ()):
        header(entry["name"], "counter")
        lines.append(
            f"{entry['name']}{_fmt_labels(entry['labels'])} {_fmt_value(entry['value'])}"
        )
    for entry in snapshot.get("gauges", ()):
        header(entry["name"], "gauge")
        lines.append(
            f"{entry['name']}{_fmt_labels(entry['labels'])} {_fmt_value(entry['value'])}"
        )
    for entry in snapshot.get("histograms", ()):
        name = entry["name"]
        header(name, "histogram")
        labels = entry["labels"]
        # bucket_counts are already cumulative (observe() increments
        # every bucket whose bound covers the value).
        for bound, n in zip(entry["bounds"], entry["bucket_counts"]):
            lines.append(
                f"{name}_bucket{_fmt_labels(labels, ('le', _fmt_value(float(bound))))} {n}"
            )
        lines.append(
            f"{name}_bucket{_fmt_labels(labels, ('le', '+Inf'))} {entry['count']}"
        )
        lines.append(f"{name}_sum{_fmt_labels(labels)} {_fmt_value(entry['sum'])}")
        lines.append(f"{name}_count{_fmt_labels(labels)} {entry['count']}")
    for entry in snapshot.get("timeseries", ()):
        name = entry["name"]
        header(name, "gauge")
        labels = entry["labels"]
        bins = int(entry["bins"])
        t_max = float(entry["t_max"])
        # One gauge sample per non-empty bin: the bin mean, stamped with
        # the bin midpoint on the *virtual* clock (hours rendered as the
        # exposition's millisecond timestamps — the simulator has no
        # wall clock, and the virtual axis is the one worth plotting).
        for i, count in enumerate(entry["counts"]):
            if not count:
                continue
            mean = entry["sums"][i] / count
            ts_ms = int(round((i + 0.5) * t_max / bins * 3_600_000))
            lines.append(
                f"{name}{_fmt_labels(labels)} {_fmt_value(mean)} {ts_ms}"
            )
    return "\n".join(lines) + "\n"


# -- event stream → IRON-taxonomy metrics -------------------------------------

#: Detection mechanism (event field) → IRON detection level (Table 1).
DETECTION_LEVELS = {
    "error-code": "D_errorcode",
    "sanity": "D_sanity",
    "redundancy": "D_redundancy",
}

#: Recovery mechanism (event field) → IRON recovery level (Table 2).
#: Journal replay rebuilds damaged structures, hence R_repair.
RECOVERY_LEVELS = {
    "retry": "R_retry",
    "redundancy": "R_redundancy",
    "remap": "R_remap",
    "journal-replay": "R_repair",
}

#: Policy-action tags that stop activity (must mirror
#: ``repro.fingerprint.inference.STOP_ACTIONS``; kept local because
#: obs must not import the fingerprint package).
STOP_ACTION_TAGS = {"remount-ro", "journal-abort", "unmountable", "mount-failed"}


def metrics_from_events(
    events: Iterable[StorageEvent],
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Accumulate one event stream into IRON-taxonomy metric families."""
    if registry is None:
        registry = MetricsRegistry()
    for event in events:
        if isinstance(event, IOEvent):
            registry.counter(
                "repro_io_total", op=event.op, outcome=event.outcome
            ).inc()
            if event.outcome in ("error", "corrupted"):
                registry.counter("repro_faults_fired_total", op=event.op).inc()
        elif isinstance(event, WriteImageEvent):
            registry.counter("repro_recorded_writes_total").inc()
        elif isinstance(event, FaultArmedEvent):
            registry.counter(
                "repro_faults_armed_total",
                op=event.op, fault_kind=event.fault_kind,
            ).inc()
        elif isinstance(event, DetectionEvent):
            level = DETECTION_LEVELS.get(event.mechanism, "D_zero")
            registry.counter(
                "repro_detections_total", level=level, source=event.source
            ).inc()
        elif isinstance(event, RecoveryEvent):
            level = RECOVERY_LEVELS.get(event.mechanism, "R_zero")
            registry.counter(
                "repro_recoveries_total", level=level, source=event.source
            ).inc()
        elif isinstance(event, PolicyActionEvent):
            registry.counter(
                "repro_policy_actions_total", action=event.tag
            ).inc()
            if event.tag in STOP_ACTION_TAGS:
                registry.counter(
                    "repro_recoveries_total", level="R_stop", source=event.source
                ).inc()
        elif isinstance(event, JournalCommitEvent):
            registry.counter(
                "repro_journal_commits_total", source=event.source
            ).inc()
        elif isinstance(event, SpanStartEvent):
            registry.counter(
                "repro_spans_total", category=event.category
            ).inc()
    return registry


# -- minimal JSON-schema validation (CI metrics-schema check) -----------------
#
# The container has no ``jsonschema``; this validates the subset the
# committed schema actually uses: type, properties, required,
# additionalProperties (bool), items, enum, const, minimum.


def _type_ok(value: Any, expected: str) -> bool:
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == "string":
        return isinstance(value, str)
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "boolean":
        return isinstance(value, bool)
    if expected == "null":
        return value is None
    return True


def _validate(value: Any, schema: Mapping[str, Any], path: str, errors: List[str]) -> None:
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected const {schema['const']!r}, got {value!r}")
        return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in enum {schema['enum']!r}")
        return
    expected = schema.get("type")
    if expected is not None:
        allowed = expected if isinstance(expected, list) else [expected]
        if not any(_type_ok(value, t) for t in allowed):
            errors.append(f"{path}: expected type {expected}, got {type(value).__name__}")
            return
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        minimum = schema.get("minimum")
        if minimum is not None and value < minimum:
            errors.append(f"{path}: {value!r} below minimum {minimum!r}")
        if not math.isfinite(value):
            errors.append(f"{path}: non-finite number")
    if isinstance(value, dict):
        for name in schema.get("required", ()):
            if name not in value:
                errors.append(f"{path}: missing required property {name!r}")
        props = schema.get("properties", {})
        for name, sub in props.items():
            if name in value:
                _validate(value[name], sub, f"{path}.{name}", errors)
        extra = schema.get("additionalProperties")
        if extra is False:
            for name in value:
                if name not in props:
                    errors.append(f"{path}: unexpected property {name!r}")
        elif isinstance(extra, dict):
            for name, item in value.items():
                if name not in props:
                    _validate(item, extra, f"{path}.{name}", errors)
    if isinstance(value, list):
        items = schema.get("items")
        if isinstance(items, dict):
            for i, item in enumerate(value):
                _validate(item, items, f"{path}[{i}]", errors)


def schema_root() -> Path:
    """The repository's committed ``schemas/`` directory."""
    return Path(__file__).resolve().parents[3] / "schemas"


def validate_json(value: Any, schema_path: Path) -> List[str]:
    """Validate any JSON value against a committed schema file.

    Returns a list of violation messages (empty = valid).  Uses the
    same dependency-free subset validator as :func:`validate_snapshot`;
    the campaign report (``schemas/campaign_report.schema.json``) and
    the metrics snapshot share it.
    """
    schema = json.loads(Path(schema_path).read_text())
    errors: List[str] = []
    _validate(value, schema, "$", errors)
    return errors


def validate_snapshot(
    snapshot: Mapping[str, Any],
    schema_path: Optional[Path] = None,
) -> List[str]:
    """Validate a snapshot against the committed JSON schema.

    Returns a list of violation messages (empty = valid).  With no
    *schema_path*, uses ``schemas/metrics_snapshot.schema.json`` at the
    repository root.
    """
    if schema_path is None:
        schema_path = schema_root() / "metrics_snapshot.schema.json"
    return validate_json(snapshot, schema_path)
