"""One-shot trace capture: run a workload with tracing and metrics on.

This is the engine behind ``python -m repro trace FS --workload W``.
It builds a fresh device stack for the requested file system (via the
crash-exploration profiles, so the recipe matches what the crash and
fingerprint harnesses run), enables span tracing on the shared event
log, drives one of the portable crash workloads end to end, and hands
back the labeled event stream plus a metrics snapshot.

Multiple workloads fan out over :func:`repro.fingerprint.parallel.pool_map`
with the usual submission-order merge, so the merged trace — and its
structural :func:`~repro.obs.trace.span_tree_digest` — is byte-identical
at any ``--jobs`` width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.events import EventLog, StorageEvent
from repro.obs.metrics import MetricsRegistry, metrics_from_events
from repro.obs.trace import enable_tracing, merge_streams, span_tree_digest


@dataclass
class TraceCapture:
    """Labeled per-workload streams plus the merged metrics snapshot."""

    fs: str
    streams: List[Tuple[str, List[StorageEvent]]]
    metrics: Dict[str, Any]

    def merged(self) -> List[StorageEvent]:
        """All workload streams spliced under one deterministic root."""
        return merge_streams(self.streams, root=f"trace:{self.fs}")

    def span_digest(self) -> str:
        """Structural digest of the merged span tree (jobs-invariant)."""
        return span_tree_digest(self.merged())


def _capture_one(
    fs_key: str, workload_key: str
) -> Tuple[str, List[StorageEvent], Dict[str, Any]]:
    """Pool entry point: trace one workload on a fresh stack."""
    from repro.crash.engine import CRASH_PROFILES
    from repro.crash.workloads import CRASH_WORKLOADS
    from repro.disk.stack import DeviceStack
    from repro.fingerprint.adapters import ADAPTERS

    profile = CRASH_PROFILES[fs_key]
    workload = CRASH_WORKLOADS[workload_key]
    adapter = ADAPTERS[profile.registry_key](**profile.registry_kwargs)
    disk = adapter.build_device()
    adapter.mkfs(disk)
    # inject=True adds the fault-injection layer even though no faults
    # are armed: it is what records device-boundary IOEvents, which the
    # Chrome trace renders on the device track.
    stack = DeviceStack(disk, inject=True, events=EventLog())
    fs = adapter.make_fs(stack)

    registry = MetricsRegistry()
    stack.observe_latencies(registry)
    tracer = enable_tracing(stack.events)
    span = tracer.start(workload.key, "workload",
                        detail=workload.name, source=adapter.name)
    try:
        fs.mount()
        workload.setup(fs)
        fs.sync()
        for step in workload.steps:
            step(fs)
        fs.sync()
        fs.unmount()
    except BaseException:
        tracer.end(span, "error")
        raise
    tracer.end(span)

    events = list(stack.events)
    metrics_from_events(events, registry)
    stack.collect_metrics(registry)
    return workload.key, events, registry.snapshot()


def trace_workloads(
    fs_key: str,
    workload_keys: Optional[Sequence[str]] = None,
    jobs: int = 1,
) -> TraceCapture:
    """Trace *workload_keys* (default: all crash workloads) on *fs_key*."""
    from repro.crash.engine import CRASH_PROFILES
    from repro.crash.workloads import CRASH_WORKLOADS
    from repro.fingerprint.parallel import pool_map

    if fs_key not in CRASH_PROFILES:
        raise KeyError(
            f"unknown file system {fs_key!r}; choose from "
            f"{sorted(CRASH_PROFILES)}"
        )
    keys = list(workload_keys) if workload_keys else sorted(CRASH_WORKLOADS)
    for key in keys:
        if key not in CRASH_WORKLOADS:
            raise KeyError(
                f"unknown workload {key!r}; choose from "
                f"{sorted(CRASH_WORKLOADS)}"
            )
    results = pool_map(_capture_one, [(fs_key, key) for key in keys], jobs)
    return TraceCapture(
        fs=fs_key,
        streams=[(key, events) for key, events, _ in results],
        metrics=MetricsRegistry.merge_snapshots(
            snap for _, _, snap in results
        ),
    )
