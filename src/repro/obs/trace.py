"""Hierarchical spans over the typed storage-event stream.

The event pipeline (:mod:`repro.obs.events`) records *what* happened —
injected errors, detections, recoveries, journal commits — but not
*inside which operation*.  This module adds that structure: spans are
themselves :class:`~repro.obs.events.StorageEvent`\\ s
(:class:`SpanStartEvent` / :class:`SpanEndEvent`) emitted into the same
shared :class:`~repro.obs.events.EventLog`, so the hierarchy

    run → workload step → VFS op → journal transaction → block I/O

interleaves with the existing events in true order.  Any event between
a span's start and end is attributable to that span, which is what the
explainable-inference provenance annotations
(:mod:`repro.fingerprint.inference`, :mod:`repro.crash.engine`) point
back into.

Design constraints:

* **Deterministic** — span ids are sequence numbers, never wall-clock
  or randomness, so two runs of the same (deterministic) workload emit
  identical span streams and ``jobs=N`` fan-outs reproduce ``jobs=1``
  byte for byte.  :func:`span_tree_digest` is the witness.
* **Opt-in** — tracing is off by default; a disabled tracer emits
  nothing, so untraced runs keep their historical event digests and
  pay only a flag check per operation.
* **Exportable** — :func:`chrome_trace` renders any event stream as
  Chrome trace-event JSON loadable in Perfetto (``chrome://tracing``),
  with spans as duration events, block I/O as complete events, and log
  events as instants, each on a per-layer track.
* **Mergeable** — :func:`merge_streams` deterministically splices
  per-worker (or per-run) streams into one trace, remapping span ids
  so parallel runs export a single coherent tree.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Any,
    ClassVar,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.obs.events import EventLog, IOEvent, LogEvent, StorageEvent, WriteImageEvent


@dataclass(frozen=True)
class SpanStartEvent(StorageEvent):
    """A span opened.  ``parent_id`` is the enclosing span (None = root
    of its stream); ``category`` names the hierarchy level (``run`` /
    ``workload`` / ``op`` / ``txn`` / ``phase`` / ``stream``)."""

    kind: ClassVar[str] = "span-start"

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    detail: str = ""
    source: str = ""


@dataclass(frozen=True)
class SpanEndEvent(StorageEvent):
    """A span closed; ``status`` is ``"ok"`` or ``"error"``."""

    kind: ClassVar[str] = "span-end"

    span_id: int
    status: str = "ok"


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_category", "_detail", "_source",
                 "_floating", "span_id")

    def __init__(self, tracer, name, category, detail, source, floating):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._detail = detail
        self._source = source
        self._floating = floating
        self.span_id = 0

    def __enter__(self) -> int:
        self.span_id = self._tracer.start(
            self._name, self._category, self._detail, self._source,
            floating=self._floating,
        )
        return self.span_id

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer.end(self.span_id, "error" if exc_type is not None else "ok")


class Tracer:
    """Span-context state for one :class:`EventLog`.

    Maintains the stack of open (non-floating) spans; a new span's
    parent is the current stack top.  *Floating* spans — journal
    transactions, which outlive the VFS op that opened them — record
    their parent but do not join the stack, so strictly-nested callers
    are never confused by them.

    Disabled (the default), every call is a cheap no-op returning span
    id 0, and nothing is emitted.

    When a :class:`SelfTimeProfiler` is attached (:attr:`profiler`),
    every non-floating span also charges wall time to its
    ``category:name`` key — the ``--profile`` attribution table — with
    zero effect on the emitted event stream.
    """

    __slots__ = ("events", "enabled", "_next_id", "_stack", "profiler")

    def __init__(self, events: EventLog):
        self.events = events
        self.enabled = False
        self._next_id = 1
        self._stack: List[int] = []
        self.profiler: Optional["SelfTimeProfiler"] = None

    @property
    def current(self) -> Optional[int]:
        """The innermost open non-floating span id (None at top level)."""
        return self._stack[-1] if self._stack else None

    def start(
        self,
        name: str,
        category: str,
        detail: str = "",
        source: str = "",
        *,
        floating: bool = False,
    ) -> int:
        """Open a span and return its id (0 when tracing is disabled)."""
        if not self.enabled:
            return 0
        span_id = self._next_id
        self._next_id += 1
        self.events.emit(SpanStartEvent(
            span_id=span_id,
            parent_id=self.current,
            name=name,
            category=category,
            detail=detail,
            source=source,
        ))
        if not floating:
            self._stack.append(span_id)
            if self.profiler is not None:
                self.profiler.enter(f"{category}:{name}")
        return span_id

    def end(self, span_id: int, status: str = "ok") -> None:
        """Close a span by id.  Id 0 (disabled-tracer handle) is a no-op."""
        if span_id == 0 or not self.enabled:
            return
        popped = 0
        if span_id in self._stack:
            # Pop through any unclosed children (error paths that
            # skipped their end); the tree builder treats them as
            # implicitly closed at the parent's end.
            while self._stack and self._stack[-1] != span_id:
                self._stack.pop()
                popped += 1
            if self._stack:
                self._stack.pop()
                popped += 1
        if popped and self.profiler is not None:
            self.profiler.exit(popped)
        self.events.emit(SpanEndEvent(span_id=span_id, status=status))

    def span(
        self,
        name: str,
        category: str,
        detail: str = "",
        source: str = "",
        *,
        floating: bool = False,
    ) -> _SpanContext:
        """``with tracer.span(...) as span_id:`` convenience wrapper."""
        return _SpanContext(self, name, category, detail, source, floating)


def tracer_for(events: EventLog) -> Tracer:
    """The tracer bound to *events*, created (disabled) on first use."""
    tracer = events.tracer
    if tracer is None or tracer.events is not events:
        tracer = Tracer(events)
        events.tracer = tracer
    return tracer


def enable_tracing(events: EventLog) -> Tracer:
    """Bind-and-enable in one step; returns the (enabled) tracer."""
    tracer = tracer_for(events)
    tracer.enabled = True
    return tracer


# -- wall-time self-time profiling --------------------------------------------


class SelfTimeProfiler:
    """Wall-clock attribution over named sections (span self-time).

    A section's **self time** is its elapsed wall time minus the time
    spent in sections it opened — the quantity worth sorting by when
    hunting the hot path, since totals double-count parents.  The
    profiler is a side table only: it emits no events and draws no
    randomness, so profiled runs keep byte-identical digests.  Tables
    pickle across pool workers and merge by key (:func:`merge_profiles`)
    for the ``--profile`` campaign view.
    """

    __slots__ = ("frames", "_stack")

    def __init__(self):
        #: key -> {"calls", "total_s", "self_s"} accumulated so far.
        self.frames: Dict[str, Dict[str, float]] = {}
        self._stack: List[List[Any]] = []  # [key, start, child_seconds]

    def enter(self, key: str) -> None:
        self._stack.append([key, time.perf_counter(), 0.0])

    def exit(self, count: int = 1) -> None:
        """Close the innermost *count* open sections (tolerates
        underflow so a mirrored span stack can never wedge it)."""
        for _ in range(count):
            if not self._stack:
                return
            key, start, child = self._stack.pop()
            elapsed = time.perf_counter() - start
            frame = self.frames.setdefault(
                key, {"calls": 0, "total_s": 0.0, "self_s": 0.0})
            frame["calls"] += 1
            frame["total_s"] += elapsed
            frame["self_s"] += elapsed - child
            if self._stack:
                self._stack[-1][2] += elapsed

    def section(self, key: str):
        """``with profiler.section("scrub"):`` convenience wrapper."""
        return _ProfiledSection(self, key)

    def table(self) -> Dict[str, Dict[str, float]]:
        """The picklable attribution table (keys sorted, times rounded)."""
        return {
            key: {
                "calls": int(frame["calls"]),
                "total_s": round(frame["total_s"], 6),
                "self_s": round(frame["self_s"], 6),
            }
            for key, frame in sorted(self.frames.items())
        }


class _ProfiledSection:
    __slots__ = ("_profiler", "_key")

    def __init__(self, profiler: SelfTimeProfiler, key: str):
        self._profiler = profiler
        self._key = key

    def __enter__(self):
        self._profiler.enter(self._key)
        return self._profiler

    def __exit__(self, exc_type, exc, tb):
        self._profiler.exit()


def merge_profiles(
    tables: Iterable[Mapping[str, Mapping[str, float]]],
) -> Dict[str, Dict[str, float]]:
    """Sum attribution tables across workers/trials (associative)."""
    merged: Dict[str, Dict[str, float]] = {}
    for table in tables:
        if not table:
            continue
        for key, frame in table.items():
            mine = merged.setdefault(
                key, {"calls": 0, "total_s": 0.0, "self_s": 0.0})
            mine["calls"] += int(frame["calls"])
            mine["total_s"] += float(frame["total_s"])
            mine["self_s"] += float(frame["self_s"])
    return {key: {"calls": frame["calls"],
                  "total_s": round(frame["total_s"], 6),
                  "self_s": round(frame["self_s"], 6)}
            for key, frame in sorted(merged.items())}


def render_profile(table: Mapping[str, Mapping[str, float]]) -> str:
    """The attribution table as fixed-width text, hottest self-time
    first — the terminal face of ``repro report --profile``."""
    if not table:
        return "profile: no sections recorded"
    total_self = sum(frame["self_s"] for frame in table.values()) or 1.0
    width = max(12, max(len(key) for key in table))
    lines = [f"{'section'.ljust(width)} {'calls':>10} {'total_s':>10} "
             f"{'self_s':>10} {'self%':>6}"]
    for key, frame in sorted(table.items(),
                             key=lambda kv: (-kv[1]["self_s"], kv[0])):
        lines.append(
            f"{key.ljust(width)} {frame['calls']:>10} "
            f"{frame['total_s']:>10.3f} {frame['self_s']:>10.3f} "
            f"{100 * frame['self_s'] / total_self:>5.1f}%")
    return "\n".join(lines)


# -- span trees ---------------------------------------------------------------


@dataclass
class SpanNode:
    """One reconstructed span with its children and direct events."""

    span_id: int
    name: str
    category: str
    detail: str = ""
    source: str = ""
    status: str = "open"
    start_index: int = -1
    end_index: int = -1
    children: List["SpanNode"] = field(default_factory=list)
    #: Non-span events that occurred *directly* inside this span
    #: (not inside a child), counted by event kind.
    event_counts: Dict[str, int] = field(default_factory=dict)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


def span_tree(events: Iterable[StorageEvent]) -> List[SpanNode]:
    """Rebuild the span hierarchy from an ordered event stream.

    Tolerant of truncated streams: a start without an end stays
    ``status="open"``; an end without a start (its start was cleared or
    drained away) is ignored; non-span events outside any span are not
    counted.  Parentage follows the recorded ``parent_id`` when that
    span is known, else the innermost open span at that point.
    """
    roots: List[SpanNode] = []
    by_id: Dict[int, SpanNode] = {}
    open_stack: List[SpanNode] = []
    for index, event in enumerate(events):
        if isinstance(event, SpanStartEvent):
            node = SpanNode(
                span_id=event.span_id,
                name=event.name,
                category=event.category,
                detail=event.detail,
                source=event.source,
                start_index=index,
            )
            by_id[event.span_id] = node
            parent = by_id.get(event.parent_id) if event.parent_id else None
            if parent is None and open_stack:
                parent = open_stack[-1]
            (parent.children if parent is not None else roots).append(node)
            open_stack.append(node)
        elif isinstance(event, SpanEndEvent):
            node = by_id.get(event.span_id)
            if node is None:
                continue
            node.status = event.status
            node.end_index = index
            if node in open_stack:
                while open_stack and open_stack[-1] is not node:
                    open_stack.pop()
                if open_stack:
                    open_stack.pop()
        else:
            if open_stack:
                counts = open_stack[-1].event_counts
                counts[event.kind] = counts.get(event.kind, 0) + 1
    return roots


def span_tree_digest(events: Iterable[StorageEvent]) -> str:
    """SHA-256 over the structural rendering of the span tree.

    Covers names, categories, details, sources, statuses, nesting, and
    per-span direct event-kind counts — everything deterministic — and
    deliberately not raw span ids or stream indices, so two traces of
    the same run digest identically however they were merged.
    """
    h = hashlib.sha256()

    def fold(node: SpanNode, depth: int) -> None:
        h.update(repr((
            depth, node.name, node.category, node.detail, node.source,
            node.status, sorted(node.event_counts.items()),
            len(node.children),
        )).encode())
        for child in node.children:
            fold(child, depth + 1)

    for root in span_tree(events):
        fold(root, 0)
    return h.hexdigest()


# -- deterministic stream merging ---------------------------------------------


def merge_streams(
    streams: Sequence[Tuple[str, Sequence[StorageEvent]]],
    root: str = "merged",
    root_category: str = "run",
) -> List[StorageEvent]:
    """Splice labeled event streams into one stream under a fresh root.

    Each input stream gets a container span named after its label; the
    stream's own span ids are remapped by a running offset (parentless
    spans re-parent onto the container), so ids stay unique and the
    merged stream is a valid single trace.  Merging is deterministic in
    the input order — fan-out callers pass streams in submission order,
    making ``jobs=N`` merges identical to ``jobs=1``.
    """
    out: List[StorageEvent] = []
    next_id = 1
    root_id = next_id
    next_id += 1
    out.append(SpanStartEvent(root_id, None, root, root_category))
    for label, events in streams:
        container = next_id
        next_id += 1
        offset = next_id - 1
        max_seen = 0
        out.append(SpanStartEvent(container, root_id, label, "stream"))
        for event in events:
            if isinstance(event, SpanStartEvent):
                max_seen = max(max_seen, event.span_id)
                out.append(replace(
                    event,
                    span_id=event.span_id + offset,
                    parent_id=(event.parent_id + offset
                               if event.parent_id else container),
                ))
            elif isinstance(event, SpanEndEvent):
                max_seen = max(max_seen, event.span_id)
                out.append(replace(event, span_id=event.span_id + offset))
            else:
                out.append(event)
        next_id = offset + max_seen + 1
        out.append(SpanEndEvent(container))
    out.append(SpanEndEvent(root_id))
    return out


# -- Chrome trace-event export (Perfetto) -------------------------------------

#: Track (Chrome "thread") layout: one lane per storage layer.
TRACK_FS = 1
TRACK_JOURNAL = 2
TRACK_DEVICE = 3
TRACK_POLICY = 4

_TRACK_NAMES = {
    TRACK_FS: "fs ops",
    TRACK_JOURNAL: "journal",
    TRACK_DEVICE: "device I/O",
    TRACK_POLICY: "policy events",
}

_CATEGORY_TRACK = {
    "txn": TRACK_JOURNAL,
    "io": TRACK_DEVICE,
}


def chrome_trace(
    events: Iterable[StorageEvent],
    process_name: str = "repro",
) -> Dict[str, Any]:
    """Render an event stream as a Chrome trace-event JSON object.

    Timestamps are the event's stream ordinal in microseconds — the
    simulator's observable is *ordering*, not wall time, and ordinals
    keep the export deterministic.  Spans become ``B``/``E`` duration
    events (journal transactions on their own track, since they overlap
    VFS ops), block I/O becomes thin ``X`` complete events, and log /
    detection / recovery / policy events become instants, so a
    detection is visually attributable to the op and transaction above
    it in Perfetto.
    """
    trace: List[Dict[str, Any]] = [
        {"ph": "M", "pid": 1, "tid": tid, "name": "thread_name",
         "args": {"name": name}}
        for tid, name in sorted(_TRACK_NAMES.items())
    ]
    trace.insert(0, {"ph": "M", "pid": 1, "name": "process_name",
                     "args": {"name": process_name}})
    span_track: Dict[int, int] = {}
    for index, event in enumerate(events):
        ts = index
        if isinstance(event, SpanStartEvent):
            tid = _CATEGORY_TRACK.get(event.category, TRACK_FS)
            span_track[event.span_id] = tid
            args: Dict[str, Any] = {"span_id": event.span_id}
            if event.detail:
                args["detail"] = event.detail
            if event.source:
                args["source"] = event.source
            trace.append({"ph": "B", "pid": 1, "tid": tid, "ts": ts,
                          "name": event.name, "cat": event.category,
                          "args": args})
        elif isinstance(event, SpanEndEvent):
            tid = span_track.get(event.span_id, TRACK_FS)
            trace.append({"ph": "E", "pid": 1, "tid": tid, "ts": ts,
                          "args": {"span_id": event.span_id,
                                   "status": event.status}})
        elif isinstance(event, IOEvent):
            trace.append({
                "ph": "X", "pid": 1, "tid": TRACK_DEVICE, "ts": ts, "dur": 1,
                "name": f"{event.op} {event.block}", "cat": "io",
                "args": {"block": event.block, "outcome": event.outcome,
                         "block_type": event.block_type, "event_index": index},
            })
        elif isinstance(event, WriteImageEvent):
            trace.append({
                "ph": "X", "pid": 1, "tid": TRACK_DEVICE, "ts": ts, "dur": 1,
                "name": f"write-image {event.block}", "cat": "io",
                "args": {"block": event.block, "bytes": len(event.data),
                         "event_index": index},
            })
        elif isinstance(event, LogEvent):
            trace.append({
                "ph": "i", "s": "t", "pid": 1, "tid": TRACK_POLICY, "ts": ts,
                "name": f"{event.kind}:{event.tag}", "cat": event.kind,
                "args": {"source": event.source, "message": event.message,
                         "block": event.block, "severity": event.severity.name,
                         "event_index": index},
            })
        else:
            # journal-commit, fault-armed, and future event kinds.
            tid = TRACK_JOURNAL if event.kind == "journal-commit" else TRACK_DEVICE
            trace.append({
                "ph": "i", "s": "t", "pid": 1, "tid": tid, "ts": ts,
                "name": event.kind, "cat": event.kind,
                "args": {"event_index": index},
            })
    return {
        "traceEvents": trace,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs.trace",
            "span_tree_digest": span_tree_digest(events),
        },
    }


def write_chrome_trace(
    events: Iterable[StorageEvent],
    path,
    process_name: str = "repro",
) -> Path:
    """Serialize :func:`chrome_trace` to *path*; returns the path."""
    target = Path(path)
    events = list(events)
    target.write_text(json.dumps(chrome_trace(events, process_name)) + "\n")
    return target


# -- provenance references ----------------------------------------------------
#
# A provenance entry is a compact string pointing back into a recorded
# stream:  "<stream-label>#e<index>:<kind>" names the event at that
# ordinal, "<stream-label>#s<span-id>" names a span.  Fingerprint cells
# and crash-oracle violations carry these so every inferred conclusion
# is resolvable to the evidence that justified it.


def event_ref(label: str, index: int, event: StorageEvent) -> str:
    """Provenance reference for the event at *index* of stream *label*."""
    return f"{label}#e{index}:{event.kind}"


def span_ref(label: str, span_id: int) -> str:
    """Provenance reference for span *span_id* of stream *label*."""
    return f"{label}#s{span_id}"


def resolve_ref(ref: str, streams) -> StorageEvent:
    """Resolve a provenance reference against recorded streams.

    *streams* maps stream label -> ordered event sequence.  Event refs
    return the event at the ordinal (the kind must match); span refs
    return the span's :class:`SpanStartEvent`.  Raises ``KeyError`` /
    ``ValueError`` when the reference does not resolve — the provenance
    acceptance tests rely on that strictness.
    """
    label, _, anchor = ref.rpartition("#")
    if not label or not anchor:
        raise ValueError(f"malformed provenance ref: {ref!r}")
    events = streams[label]
    if anchor.startswith("e"):
        index_text, _, kind = anchor[1:].partition(":")
        index = int(index_text)
        if index >= len(events):
            raise ValueError(f"{ref!r}: index past end of stream ({len(events)})")
        event = events[index]
        if kind and event.kind != kind:
            raise ValueError(f"{ref!r}: stream has {event.kind!r} at {index}")
        return event
    if anchor.startswith("s"):
        span_id = int(anchor[1:])
        for event in events:
            if isinstance(event, SpanStartEvent) and event.span_id == span_id:
                return event
        raise ValueError(f"{ref!r}: no such span in stream")
    raise ValueError(f"malformed provenance ref: {ref!r}")
