"""Error codes and exception hierarchy shared across the storage stack.

The paper's fail-partial model surfaces to software as error codes from
lower layers (detection level ``D_errorcode``) or as silently-bad data
(requiring ``D_sanity`` / ``D_redundancy``).  This module defines the
errno-style codes the simulated stack uses and the exceptions each layer
raises.
"""

from __future__ import annotations

import enum


class Errno(enum.IntEnum):
    """POSIX-flavoured error codes returned by the file-system API."""

    EPERM = 1
    ENOENT = 2
    EIO = 5
    EBADF = 9
    EACCES = 13
    EEXIST = 17
    EXDEV = 18
    ENOTDIR = 20
    EISDIR = 21
    EINVAL = 22
    EFBIG = 27
    ENOSPC = 28
    EROFS = 30
    EMLINK = 31
    ENAMETOOLONG = 36
    ENOTEMPTY = 39
    ELOOP = 40
    EUCLEAN = 117  # "Structure needs cleaning" -- Linux FS corruption errno


class StorageError(Exception):
    """Base class for every error raised by the simulated storage stack."""


class DiskError(StorageError):
    """A block-level I/O failure reported by the device (latent sector
    error, transport fault, ...).  Carries the failing block and the
    operation that failed so traces and logs can attribute it."""

    def __init__(self, block: int, op: str, message: str = ""):
        self.block = block
        self.op = op
        super().__init__(message or f"I/O error: {op} of block {block}")


class ReadError(DiskError):
    """A read request failed; no data is returned."""

    def __init__(self, block: int, message: str = ""):
        super().__init__(block, "read", message)


class WriteError(DiskError):
    """A write request failed; the medium was not updated."""

    def __init__(self, block: int, message: str = ""):
        super().__init__(block, "write", message)


class OutOfRangeError(DiskError):
    """A request addressed a block beyond the end of the device."""

    def __init__(self, block: int, op: str, size: int):
        super().__init__(block, op, f"block {block} out of range (device has {size} blocks)")


class FSError(StorageError):
    """An error propagated through the file-system API (``R_propagate``).

    Mirrors a system call returning ``-errno``: carries an :class:`Errno`
    so callers (and the fingerprinting harness) can compare observed
    error codes against the fault-free run.
    """

    def __init__(self, errno: Errno, message: str = ""):
        self.errno = Errno(errno)
        super().__init__(message or f"[{self.errno.name}] {self.errno.value}")


class KernelPanic(StorageError):
    """The file system deliberately halted the machine (``R_stop`` at the
    coarsest granularity).  ReiserFS raises this on virtually any write
    failure; JFS raises it for journal-superblock write failures."""

    def __init__(self, source: str, reason: str):
        self.source = source
        self.reason = reason
        super().__init__(f"kernel panic - {source}: {reason}")


class ReadOnlyError(FSError):
    """The file system has been remounted read-only after aborting its
    journal (an intermediate-granularity ``R_stop``)."""

    def __init__(self, message: str = "file system is read-only"):
        super().__init__(Errno.EROFS, message)


class CorruptionDetected(StorageError):
    """An internal sanity or checksum verification failed (``D_sanity`` /
    ``D_redundancy``).  File systems convert this into their policy's
    recovery action; it should not escape the FS boundary."""

    def __init__(self, block: int, detail: str):
        self.block = block
        self.detail = detail
        super().__init__(f"corruption detected in block {block}: {detail}")
