"""Shared substrate: errors, units, bitmaps, checksums, and the syslog."""

from repro.common.bitmap import Bitmap
from repro.common.checksum import crc32, sha1, transaction_checksum
from repro.common.errors import (
    CorruptionDetected,
    DiskError,
    Errno,
    FSError,
    KernelPanic,
    OutOfRangeError,
    ReadError,
    ReadOnlyError,
    StorageError,
    WriteError,
)
from repro.common.syslog import LogRecord, Severity, SysLog
from repro.common.units import DEFAULT_BLOCK_SIZE, GB, KB, MB, blocks_for, human_bytes

__all__ = [
    "Bitmap",
    "CorruptionDetected",
    "DEFAULT_BLOCK_SIZE",
    "DiskError",
    "Errno",
    "FSError",
    "GB",
    "KB",
    "KernelPanic",
    "LogRecord",
    "MB",
    "OutOfRangeError",
    "ReadError",
    "ReadOnlyError",
    "Severity",
    "StorageError",
    "SysLog",
    "WriteError",
    "blocks_for",
    "crc32",
    "human_bytes",
    "sha1",
    "transaction_checksum",
]
