"""Size and time units used throughout the simulator."""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Default logical block size.  Real ext3 commonly uses 4 KB; tests use
#: smaller blocks to keep images tiny while exercising the same paths.
DEFAULT_BLOCK_SIZE = 4096

MS = 1e-3
US = 1e-6


def blocks_for(nbytes: int, block_size: int) -> int:
    """Number of blocks needed to hold *nbytes* (ceiling division)."""
    if nbytes < 0:
        raise ValueError("negative byte count")
    return (nbytes + block_size - 1) // block_size


def human_bytes(n: int) -> str:
    """Render a byte count for logs: ``human_bytes(1536) == '1.5 KB'``."""
    value = float(n)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024 or unit == "TB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024
    raise AssertionError("unreachable")
