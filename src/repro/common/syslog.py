"""The system log — a rendering view over the typed event stream.

The fingerprinting methodology (§4.3) compares *observable outputs*:
API error codes, the contents of the system log, and low-level I/O
traces.  Every simulated file system writes its kernel messages here;
since the typed-event refactor each message is actually a
:class:`~repro.obs.events.LogEvent` (or one of its detection /
recovery / policy-action subclasses) appended to a shared
:class:`~repro.obs.events.EventLog`, and ``SysLog`` merely *renders*
that stream as the familiar log lines.  String-based consumers keep
working; structured consumers (policy inference, the determinism
digests) read the events directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.obs.events import (
    DetectionEvent,
    EventLog,
    JournalCommitEvent,
    LogEvent,
    PolicyActionEvent,
    RecoveryEvent,
    Severity,
    classify_log,
)

__all__ = ["LogRecord", "Severity", "SysLog"]


@dataclass(frozen=True)
class LogRecord:
    """One kernel-log line.

    ``event`` is a machine-readable tag (e.g. ``"sanity-fail"``,
    ``"journal-abort"``, ``"remount-ro"``, ``"checksum-mismatch"``,
    ``"panic"``); ``source`` names the subsystem that emitted it.
    """

    severity: Severity
    source: str
    event: str
    message: str
    block: Optional[int] = None


class SysLog:
    """An append-only kernel message buffer, backed by an event log.

    Pass ``events`` to join an existing stream (a mounted file system
    joins its device stack's log, so injector I/O events and FS policy
    events interleave in true order); omit it for a standalone log.
    """

    def __init__(self, events: Optional[EventLog] = None):
        self.events_log = events if events is not None else EventLog()

    @property
    def records(self) -> List[LogRecord]:
        """The stream's log-renderable events, as classic log records."""
        return [
            LogRecord(e.severity, e.source, e.tag, e.message, e.block)
            for e in self.events_log.log_events()
        ]

    def log(
        self,
        severity: Severity,
        source: str,
        event: str,
        message: str,
        block: Optional[int] = None,
    ) -> None:
        self.events_log.emit(classify_log(severity, source, event, message, block))

    # Convenience wrappers -------------------------------------------------

    def info(self, source: str, event: str, message: str, block: Optional[int] = None) -> None:
        self.log(Severity.INFO, source, event, message, block)

    def warning(self, source: str, event: str, message: str, block: Optional[int] = None) -> None:
        self.log(Severity.WARNING, source, event, message, block)

    def error(self, source: str, event: str, message: str, block: Optional[int] = None) -> None:
        self.log(Severity.ERROR, source, event, message, block)

    def critical(self, source: str, event: str, message: str, block: Optional[int] = None) -> None:
        self.log(Severity.CRITICAL, source, event, message, block)

    # Typed emitters (used by FS policy code paths) -------------------------

    def detection(
        self,
        source: str,
        event: str,
        message: str,
        *,
        mechanism: str,
        severity: Severity = Severity.ERROR,
        block: Optional[int] = None,
    ) -> None:
        """The FS detected a failure via *mechanism* (error-code /
        sanity / redundancy)."""
        self.events_log.emit(
            DetectionEvent(severity, source, event, message, block, mechanism=mechanism)
        )

    def recovery(
        self,
        source: str,
        event: str,
        message: str,
        *,
        mechanism: str,
        severity: Severity = Severity.INFO,
        block: Optional[int] = None,
    ) -> None:
        """The FS attempted recovery via *mechanism* (retry /
        redundancy / remap / journal-replay)."""
        self.events_log.emit(
            RecoveryEvent(severity, source, event, message, block, mechanism=mechanism)
        )

    def action(
        self,
        source: str,
        event: str,
        message: str,
        *,
        severity: Severity = Severity.ERROR,
        block: Optional[int] = None,
    ) -> None:
        """The FS took a failure-policy action (remount-ro, panic, …)."""
        self.events_log.emit(PolicyActionEvent(severity, source, event, message, block))

    def journal_commit(self, source: str, ops: int = 0) -> None:
        """Record a commit barrier (not rendered as a log line)."""
        self.events_log.emit(JournalCommitEvent(source, ops))

    # Queries ----------------------------------------------------------------

    def events(self) -> List[str]:
        return [e.tag for e in self.events_log.log_events()]

    def has_event(self, event: str) -> bool:
        return any(e.tag == event for e in self.events_log.log_events())

    def find(self, event: str) -> Iterator[LogRecord]:
        return (r for r in self.records if r.event == event)

    def clear(self) -> None:
        """Drop the log-renderable events (other layers' events stay)."""
        self.events_log.remove_where(lambda e: isinstance(e, LogEvent))

    def __len__(self) -> int:
        return len(self.events_log.log_events())

    def render(self) -> str:
        lines = []
        for r in self.records:
            blk = f" block={r.block}" if r.block is not None else ""
            lines.append(f"[{r.severity.name:8}] {r.source}: {r.event}: {r.message}{blk}")
        return "\n".join(lines)
