"""The system log.

The fingerprinting methodology (§4.3) compares *observable outputs*:
API error codes, the contents of the system log, and low-level I/O
traces.  Every simulated file system writes its kernel messages here so
the harness can diff faulty against fault-free runs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional


class Severity(enum.IntEnum):
    DEBUG = 0
    INFO = 1
    WARNING = 2
    ERROR = 3
    CRITICAL = 4


@dataclass(frozen=True)
class LogRecord:
    """One kernel-log line.

    ``event`` is a machine-readable tag (e.g. ``"sanity-fail"``,
    ``"journal-abort"``, ``"remount-ro"``, ``"checksum-mismatch"``,
    ``"panic"``); ``source`` names the subsystem that emitted it.
    """

    severity: Severity
    source: str
    event: str
    message: str
    block: Optional[int] = None


@dataclass
class SysLog:
    """An append-only kernel message buffer."""

    records: List[LogRecord] = field(default_factory=list)

    def log(
        self,
        severity: Severity,
        source: str,
        event: str,
        message: str,
        block: Optional[int] = None,
    ) -> None:
        self.records.append(LogRecord(severity, source, event, message, block))

    # Convenience wrappers -------------------------------------------------

    def info(self, source: str, event: str, message: str, block: Optional[int] = None) -> None:
        self.log(Severity.INFO, source, event, message, block)

    def warning(self, source: str, event: str, message: str, block: Optional[int] = None) -> None:
        self.log(Severity.WARNING, source, event, message, block)

    def error(self, source: str, event: str, message: str, block: Optional[int] = None) -> None:
        self.log(Severity.ERROR, source, event, message, block)

    def critical(self, source: str, event: str, message: str, block: Optional[int] = None) -> None:
        self.log(Severity.CRITICAL, source, event, message, block)

    # Queries ----------------------------------------------------------------

    def events(self) -> List[str]:
        return [r.event for r in self.records]

    def has_event(self, event: str) -> bool:
        return any(r.event == event for r in self.records)

    def find(self, event: str) -> Iterator[LogRecord]:
        return (r for r in self.records if r.event == event)

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

    def render(self) -> str:
        lines = []
        for r in self.records:
            blk = f" block={r.block}" if r.block is not None else ""
            lines.append(f"[{r.severity.name:8}] {r.source}: {r.event}: {r.message}{blk}")
        return "\n".join(lines)
