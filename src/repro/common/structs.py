"""Shared precompiled :class:`struct.Struct` instances.

Every on-disk record in the tree serializes through module-level
precompiled ``Struct`` objects instead of inline format strings —
``struct.pack("<II", ...)`` re-parses the format on every call, which
dominates hot paths that touch thousands of records per mount.
``tools/lint_struct.py`` (wired into CI) rejects new inline call sites.

For variable-length runs of fixed-width integers (pointer blocks,
journal descriptor tables, directory name prefixes) use the cached
factories below; they compile each distinct length once per process.
"""

from __future__ import annotations

from functools import lru_cache
from struct import Struct

#: Single little-endian primitives, shared by all parsers.
U8 = Struct("<B")
U16 = Struct("<H")
U32 = Struct("<I")
U64 = Struct("<Q")
U16x2 = Struct("<HH")
U32x2 = Struct("<II")
U32x3 = Struct("<III")


@lru_cache(maxsize=None)
def u32_seq(count: int) -> Struct:
    """``Struct`` for *count* consecutive little-endian u32 values."""
    return Struct(f"<{count}I")


@lru_cache(maxsize=None)
def compiled(fmt: str) -> Struct:
    """Cached ``Struct`` for an arbitrary format built at runtime."""
    return Struct(fmt)
