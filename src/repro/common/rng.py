"""Named-stream deterministic RNG derivation.

Everywhere the repo needs randomness it needs *reproducible* randomness:
the fingerprint matrix, the crash-state explorer, and now the fleet
simulator all promise byte-identical output at any ``--jobs`` width,
which only holds if every worker derives its random stream from the
run's root seed and a stable name — never from worker identity, wall
clock, or iteration order.

This module is the one place that derivation lives.  It is a stdlib
re-implementation of the useful part of ``numpy.random.SeedSequence``:
a root seed plus a path of names (strings or integers) hashes — via
SHA-256, so streams for different names are statistically independent —
into a child seed, and :func:`stream` turns that into a
``random.Random``.

Two guarantees the rest of the repo relies on:

* ``stream(seed)`` with **no names** is exactly ``random.Random(seed)``.
  The legacy call sites (workload generators, fault noise) promised
  their byte streams in committed BENCH digests; routing them through
  here must not change a single byte.
* ``derive_seed`` depends only on the root and the name path — not on
  how many other streams exist, nor in which process or order they are
  created — so a fleet campaign can spawn one stream per
  (geometry, policy, trial, purpose) and fan trials across a process
  pool in any schedule while every trial sees the same draws.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Union

Name = Union[str, int]

#: Children are truncated to 64 bits: plenty of key space, and small
#: enough to embed in JSON records and event streams losslessly.
SEED_BITS = 64


def derive_seed(root: int, *names: Name) -> int:
    """Derive a child seed from *root* and a path of stream names.

    The derivation is a SHA-256 over the root and the NUL-separated
    names, truncated to :data:`SEED_BITS` bits.  Deterministic across
    processes, platforms, and Python versions; independent of creation
    order.
    """
    h = hashlib.sha256()
    h.update(repr(int(root)).encode("ascii"))
    for name in names:
        h.update(b"\x00")
        h.update(str(name).encode("utf-8"))
    return int.from_bytes(h.digest()[: SEED_BITS // 8], "big")


def stream(root: int, *names: Name) -> random.Random:
    """A ``random.Random`` for the named child stream of *root*.

    With no names this is **exactly** ``random.Random(root)`` — the
    legacy seeding convention — so converted call sites keep their
    historical byte streams.  With names, the generator is seeded from
    :func:`derive_seed` and is independent of every differently-named
    sibling.
    """
    if not names:
        return random.Random(root)
    return random.Random(derive_seed(root, *names))


def spawn_seeds(root: int, n: int, *names: Name) -> List[int]:
    """*n* independent child seeds under the given name path.

    ``spawn_seeds(root, n, "trial")[i] == derive_seed(root, "trial", i)``
    — i.e. the batch form of per-index derivation, for fan-out sites
    that hand one seed to each worker task.
    """
    return [derive_seed(root, *names, i) for i in range(n)]


__all__ = ["derive_seed", "spawn_seeds", "stream", "SEED_BITS"]
