"""Persistent worker pool and shared-memory slab transport.

Every parallel consumer in the tree (the fingerprinting matrix, the
crash-state explorer, the observation capture driver) fans out through
:func:`pool_map`.  Historically each call built a fresh
``ProcessPoolExecutor`` and tore it down again, so a benchmark sweep
paid worker spawn + interpreter warm-up once per run; the pool here is
**persistent** — created on first use, grown on demand, reused across
drivers and matrices in the same process, shut down atexit.  Warm
workers also keep their per-process caches (memoized adapters, golden
images, attached slabs), which is where most of the repeat-run win
comes from.

Large immutable inputs — golden :class:`~repro.disk.disk.SlabImage`
snapshots — do not travel through the task pickle stream.  The parent
publishes the slab once via :class:`SharedSlab`
(``multiprocessing.shared_memory``) and ships only a small descriptor;
workers :func:`attach_image` the same physical pages and build a
zero-copy ``SlabImage`` over them.  Attachments are cached per worker
and dropped when the parent moves on to a new run
(:func:`begin_run`).

Submission is **streaming and bounded**: ``pool_map`` keeps at most a
small window of tasks in flight instead of submitting the whole matrix
up front, so arbitrarily long task lists never pile up serialized
arguments in the executor queue, while results still merge in
submission order (``jobs=N`` output is byte-identical to ``jobs=1``).
"""

from __future__ import annotations

import atexit
import itertools
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.disk.disk import SlabImage

# -- the persistent pool ------------------------------------------------------

_pool: Optional[ProcessPoolExecutor] = None
_pool_workers = 0


def effective_jobs(jobs: int) -> int:
    """Worker processes that can actually run concurrently on this
    machine.  A pool wider than the CPU count adds IPC without adding
    concurrency; on a single-CPU host any pool is pure overhead, so
    consumers use this to fall back to their in-process serial path —
    output is identical either way (``jobs=N`` merges are defined to be
    byte-identical to ``jobs=1``), only the transport changes."""
    return max(1, min(jobs, os.cpu_count() or 1))


def get_pool(jobs: int) -> ProcessPoolExecutor:
    """The shared executor, sized for at least *jobs* workers.

    Grow-only: asking for fewer workers than the pool already has
    reuses it (``pool_map`` bounds in-flight tasks to the requested
    width, so a wider pool never over-parallelizes a narrower run).
    """
    global _pool, _pool_workers
    if _pool is not None and _pool_workers >= jobs:
        return _pool
    if _pool is not None:
        _pool.shutdown(wait=False, cancel_futures=True)
    # Start the resource tracker *before* forking workers: a worker
    # forked without one would lazily spawn its own on first shared-
    # memory attach, and that private tracker then warns about (and
    # tries to re-unlink) segments the parent already cleaned up.
    try:
        from multiprocessing import resource_tracker
        resource_tracker.ensure_running()
    except Exception:  # pragma: no cover - platform without tracker
        pass
    _pool = ProcessPoolExecutor(max_workers=jobs)
    _pool_workers = jobs
    return _pool


def _spawn_probe() -> bool:
    return True


def warm_pool(jobs: int) -> None:
    """Force-spawn *jobs* workers now, so the first real batch pays no
    fork cost inside its timed region (benchmark drivers call this
    before starting the clock)."""
    pool = get_pool(jobs)
    for future in [pool.submit(_spawn_probe) for _ in range(jobs)]:
        future.result()


def shutdown_pool() -> None:
    """Tear the persistent pool down (atexit, and test isolation)."""
    global _pool, _pool_workers
    if _pool is not None:
        _pool.shutdown(wait=False, cancel_futures=True)
        _pool = None
        _pool_workers = 0


atexit.register(shutdown_pool)


# -- ordered, bounded, chunked map -------------------------------------------


def _run_chunk(worker: Callable[..., Any], chunk: Sequence[Tuple]) -> List[Any]:
    return [worker(*args) for args in chunk]


def pool_map(
    worker: Callable[..., Any],
    arg_tuples: Sequence[Tuple],
    jobs: int,
    chunksize: int = 1,
) -> List[Any]:
    """Apply *worker* to each argument tuple, ``jobs`` at a time.

    Results come back in submission order regardless of completion
    order, so callers' merges are deterministic: ``jobs=N`` output is
    identical to ``jobs=1``.  With ``jobs <= 1`` (or one task) the work
    runs in-process — no pool, no pickling requirement.

    *chunksize* groups consecutive tasks into one pool submission to
    amortize IPC for large matrices of small tasks.  Submission is
    streaming: at most ``2 * jobs`` chunks are in flight at once, so a
    huge task list never serializes all its arguments up front.
    """
    tasks = list(arg_tuples)
    if effective_jobs(jobs) <= 1 or len(tasks) <= 1:
        return [worker(*args) for args in tasks]
    chunksize = max(1, chunksize)
    chunks = [tasks[i:i + chunksize] for i in range(0, len(tasks), chunksize)]
    for attempt in (0, 1):
        try:
            nested = _map_chunks(worker, chunks, jobs)
        except BrokenProcessPool:
            # A worker died (OOM kill, signal).  The persistent pool is
            # unusable after that; rebuild it once and retry — tasks are
            # pure functions of their arguments, so a retry is safe.
            shutdown_pool()
            if attempt:
                raise
            continue
        return [result for chunk in nested for result in chunk]
    raise AssertionError("unreachable")


def _map_chunks(
    worker: Callable[..., Any], chunks: List[List[Tuple]], jobs: int
) -> List[List[Any]]:
    pool = get_pool(jobs)
    window = max(2 * jobs, 4)
    results: List[Optional[List[Any]]] = [None] * len(chunks)
    in_flight: Dict[Any, int] = {}
    next_index = 0
    while next_index < len(chunks) or in_flight:
        while next_index < len(chunks) and len(in_flight) < window:
            future = pool.submit(_run_chunk, worker, chunks[next_index])
            in_flight[future] = next_index
            next_index += 1
        done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
        for future in done:
            results[in_flight.pop(future)] = future.result()
    return results  # type: ignore[return-value]


# -- shared-memory slab transport --------------------------------------------

#: Descriptor shipped to workers: (shm name, num_blocks, block_size,
#: written bitmap).  Everything but the slab itself — which stays in
#: the shared segment.
SlabDescriptor = Tuple[str, int, int, bytes]


class SharedSlab:
    """A :class:`SlabImage` published in POSIX shared memory.

    The parent owns the segment's lifetime: create one per golden
    image, ship :attr:`descriptor` inside task arguments, and
    :meth:`close` (which also unlinks) once the run's ``pool_map``
    returns — workers that still hold attachments keep the pages
    mapped until they drop them, per POSIX semantics.
    """

    def __init__(self, image: SlabImage):
        size = len(image.data)
        self._shm = shared_memory.SharedMemory(create=True, size=max(size, 1))
        self._shm.buf[:size] = image.data
        self.descriptor: SlabDescriptor = (
            self._shm.name, image.num_blocks, image.block_size,
            bytes(image.written),
        )

    def close(self) -> None:
        try:
            self._shm.close()
        finally:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


class SharedSnapshot:
    """A published golden *snapshot* — slab or composite.

    Generalizes :class:`SharedSlab` to the snapshot types a device
    stack can produce: a bare :class:`SlabImage` (single disk) or a
    composite carrying one slab per array member (anything exposing an
    ``images`` tuple plus positional extra state via ``__reduce__``,
    e.g. :class:`repro.redundancy.array.ArraySnapshot`).  Each member
    slab is published once; the descriptor ships the segment names plus
    the composite's class path and non-slab state, and
    :func:`attach_snapshot` rebuilds the same snapshot on the worker
    side over zero-copy attachments.
    """

    def __init__(self, snapshot):
        self._slabs: List[SharedSlab] = []
        if isinstance(snapshot, SlabImage):
            slab = SharedSlab(snapshot)
            self._slabs.append(slab)
            self.descriptor = ("slab", slab.descriptor)
            return
        images = getattr(snapshot, "images", None)
        if images is None:
            raise TypeError(
                f"cannot publish snapshot of type {type(snapshot).__name__}")
        cls, state = snapshot.__reduce__()
        if tuple(state[0]) != tuple(images):  # pragma: no cover - invariant
            raise TypeError("composite snapshot must lead with its images")
        self._slabs = [SharedSlab(image) for image in images]
        self.descriptor = (
            "composite",
            f"{cls.__module__}:{cls.__qualname__}",
            tuple(slab.descriptor for slab in self._slabs),
            tuple(state[1:]),
        )

    def close(self) -> None:
        for slab in self._slabs:
            slab.close()


def attach_snapshot(descriptor):
    """Rebuild a published snapshot on the worker side (zero-copy).

    The inverse of :class:`SharedSnapshot`: slab descriptors go through
    :func:`attach_image`; composite descriptors re-import the snapshot
    class by path and reconstruct it over the attached member images.
    """
    kind = descriptor[0]
    if kind == "slab":
        return attach_image(descriptor[1])
    if kind != "composite":
        raise ValueError(f"unknown snapshot descriptor kind {kind!r}")
    _, path, slab_descriptors, extra = descriptor
    import importlib

    module, _, qualname = path.partition(":")
    cls = getattr(importlib.import_module(module), qualname)
    images = tuple(attach_image(d) for d in slab_descriptors)
    return cls(images, *extra)


_run_counter = itertools.count(1)


def run_token() -> Tuple[int, int]:
    """A parent-side token identifying one fan-out run.  Workers use it
    (via :func:`begin_run`) to notice run boundaries and drop the prior
    run's shared-memory attachments."""
    return (os.getpid(), next(_run_counter))


#: Worker-side attachment cache: shm name -> (segment, image).  Keeping
#: the segment object alive keeps the mapping alive; entries drop when
#: the parent signals a new run via begin_run().
_attached: Dict[str, Tuple[shared_memory.SharedMemory, SlabImage]] = {}
_deferred: List[shared_memory.SharedMemory] = []
_run_token: Any = None
_run_callbacks: List[Callable[[], None]] = []


def attach_image(descriptor: SlabDescriptor) -> SlabImage:
    """Attach a published golden image (worker side), zero-copy.

    The returned ``SlabImage`` reads directly out of the shared
    segment; attachments are cached, so every task in a run that names
    the same descriptor shares one mapping and one image (and with it
    the image's per-process ``meta`` caches).
    """
    name, num_blocks, block_size, written = descriptor
    cached = _attached.get(name)
    if cached is not None:
        return cached[1]
    shm = shared_memory.SharedMemory(name=name)
    _untrack(shm)
    image = SlabImage(shm.buf[:num_blocks * block_size],
                      num_blocks, block_size, written)
    _attached[name] = (shm, image)
    return image


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Stop the attaching process's resource tracker from unlinking the
    parent-owned segment when this worker exits (CPython registers
    attachments as if they were creations; see bpo-39959).

    Forked workers share the parent's tracker process, where the
    attach-registration is a set re-add; unregistering there would
    steal the parent's own entry, so only spawn-started workers (own
    tracker, real duplicate registration) need the fixup."""
    import multiprocessing

    if multiprocessing.get_start_method(allow_none=True) == "fork":
        return
    try:
        from multiprocessing import resource_tracker
        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:  # pragma: no cover - tracker semantics vary
        pass


def on_run_change(callback: Callable[[], None]) -> None:
    """Register a worker-side cleanup hook invoked when the parent
    moves to a new run (used to drop caches that reference attached
    images, so their segments can actually unmap)."""
    _run_callbacks.append(callback)


def begin_run(token: Any) -> None:
    """Worker-side run barrier: when *token* differs from the previous
    task's, drop the prior run's attachments (the parent has already,
    or will shortly, unlink their segments)."""
    global _run_token
    if token == _run_token:
        return
    _run_token = token
    for callback in _run_callbacks:
        callback()
    stale = [shm for shm, _ in _attached.values()]
    _attached.clear()
    stale.extend(_deferred)
    _deferred.clear()
    for shm in stale:
        try:
            shm.close()
        except BufferError:
            # Something still exports a view over the mapping; keep the
            # handle and retry at the next run boundary.
            _deferred.append(shm)
