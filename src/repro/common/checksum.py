"""Checksums used for detection-level ``D_redundancy``.

ixt3 (§6.1) computes SHA-1 over block contents, stores checksums in the
journal first and checkpoints them to a location *distant* from the data
they cover, so that a misdirected or phantom write cannot silently update
both the data and its checksum.
"""

from __future__ import annotations

import hashlib
import zlib

from repro.common.structs import U32

#: Size in bytes of a stored SHA-1 checksum record.
SHA1_SIZE = 20


def sha1(data: bytes) -> bytes:
    """SHA-1 digest of *data* — ixt3's block checksum (§6.1)."""
    return hashlib.sha1(data).digest()


def crc32(data: bytes) -> int:
    """CRC-32 of *data* — used for compact in-header checks."""
    return zlib.crc32(data) & 0xFFFFFFFF


def crc32_bytes(data: bytes) -> bytes:
    return U32.pack(crc32(data))


def sha1_many(blocks) -> list:
    """SHA-1 digests for a sequence of block payloads.

    Bulk form of :func:`sha1` for mkfs-time seeding and scrub sweeps:
    one local lookup of the constructor instead of a global per block.
    """
    _sha1 = hashlib.sha1
    return [_sha1(b).digest() for b in blocks]


def verify_sha1(data: bytes, expected: bytes) -> bool:
    """Constant-form verification helper; ``True`` when *data* matches."""
    return sha1(data) == expected


def transaction_checksum(blocks) -> bytes:
    """Checksum over an ordered sequence of journal block payloads.

    This is the *transactional checksum* (Tc, §6.1): placed in the commit
    block so that all blocks of a transaction can be issued concurrently;
    on recovery a mismatch proves the commit did not fully reach disk and
    the transaction is not replayed.
    """
    h = hashlib.sha1()
    for payload in blocks:
        h.update(payload)
    return h.digest()
