"""A packed bitmap with on-disk serialization.

Every file system in the study tracks allocation with bitmaps (ext3's
block/inode bitmaps, ReiserFS's data bitmap, JFS's allocation maps,
NTFS's volume/MFT bitmaps), so the structure is shared substrate.
"""

from __future__ import annotations

from typing import Iterator, Optional


class Bitmap:
    """A fixed-size bitmap over ``nbits`` bits, serializable to block
    payloads.  Bit *i* set means "allocated"."""

    def __init__(self, nbits: int, raw: Optional[bytes] = None):
        if nbits <= 0:
            raise ValueError("bitmap must have at least one bit")
        self.nbits = nbits
        nbytes = (nbits + 7) // 8
        if raw is None:
            self._bytes = bytearray(nbytes)
        else:
            if len(raw) < nbytes:
                raise ValueError("raw bitmap too short")
            self._bytes = bytearray(raw[:nbytes])

    # -- single-bit operations -------------------------------------------

    def _check(self, i: int) -> None:
        if not 0 <= i < self.nbits:
            raise IndexError(f"bit {i} out of range [0, {self.nbits})")

    def test(self, i: int) -> bool:
        self._check(i)
        return bool(self._bytes[i >> 3] & (1 << (i & 7)))

    def set(self, i: int) -> None:
        self._check(i)
        self._bytes[i >> 3] |= 1 << (i & 7)

    def clear(self, i: int) -> None:
        self._check(i)
        self._bytes[i >> 3] &= ~(1 << (i & 7)) & 0xFF

    # -- bulk operations --------------------------------------------------

    def find_free(self, start: int = 0) -> Optional[int]:
        """First clear bit at or after *start*, or ``None`` if full."""
        for i in range(start, self.nbits):
            if not self.test(i):
                return i
        return None

    def find_free_run(self, length: int, start: int = 0) -> Optional[int]:
        """First run of *length* clear bits, or ``None``."""
        run = 0
        for i in range(start, self.nbits):
            run = run + 1 if not self.test(i) else 0
            if run == length:
                return i - length + 1
        return None

    def count_set(self) -> int:
        total = 0
        full_bytes, rem = divmod(self.nbits, 8)
        for b in self._bytes[:full_bytes]:
            total += bin(b).count("1")
        if rem:
            mask = (1 << rem) - 1
            total += bin(self._bytes[full_bytes] & mask).count("1")
        return total

    def count_free(self) -> int:
        return self.nbits - self.count_set()

    def iter_set(self) -> Iterator[int]:
        for i in range(self.nbits):
            if self.test(i):
                yield i

    # -- serialization -----------------------------------------------------

    def to_bytes(self, pad_to: Optional[int] = None) -> bytes:
        data = bytes(self._bytes)
        if pad_to is not None:
            if pad_to < len(data):
                raise ValueError("pad_to smaller than bitmap payload")
            data = data + b"\x00" * (pad_to - len(data))
        return data

    @classmethod
    def from_bytes(cls, nbits: int, raw: bytes) -> "Bitmap":
        return cls(nbits, raw=raw)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmap):
            return NotImplemented
        return self.nbits == other.nbits and self._bytes == other._bytes

    def __repr__(self) -> str:
        return f"Bitmap(nbits={self.nbits}, set={self.count_set()})"
