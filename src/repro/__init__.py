"""IRON File Systems (SOSP 2005) — a complete reproduction.

Public surface:

* :mod:`repro.disk` — the simulated drive, fail-partial fault model,
  and the type-aware fault injector.
* :mod:`repro.taxonomy` — the IRON detection/recovery taxonomy and
  failure-policy matrices.
* :mod:`repro.vfs` — the common file-system API.
* :mod:`repro.fs` — ext3, ReiserFS, JFS, NTFS, and ixt3.
* :mod:`repro.fingerprint` — the failure-policy fingerprinting harness.
* :mod:`repro.bench` — the Table-6 workloads and sweeps.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
