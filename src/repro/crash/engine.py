"""Bounded crash-state exploration: record, enumerate, replay, check.

The paper's fail-partial model (§2.2) and ixt3's transactional
checksums (§6.1) are claims about what survives an untimely crash.
This engine validates them systematically instead of by spot checks:

1. **Record** — run a :class:`~repro.crash.workloads.CrashWorkload`
   on a freshly formatted volume behind a recording
   :class:`~repro.disk.stack.DeviceStack`; the shared
   :class:`~repro.obs.events.EventLog` captures the ordered stream of
   :class:`~repro.obs.events.WriteImageEvent`\\ s interleaved with
   :class:`~repro.obs.events.JournalCommitEvent` barriers.  Setup is
   synced first and an O(1) CoW snapshot ("golden") taken, so every
   crash state is golden + some subset of recorded writes.

2. **Enumerate** — crash points are every *prefix* of the write
   sequence (an in-order power cut), plus bounded *torn* states: for
   each journal-commit epoch, the epoch completes but one of its
   writes is lost — the write-back-cache reordering of §2.2's phantom
   writes, the exact window transactional checksums exist to close.

3. **Replay** — each state is reconstructed by restoring the golden
   snapshot (O(1) — copy-on-write aliasing) and poking the selected
   write images back, then mounting a fresh file-system instance so
   its recovery path (journal replay) runs for real.

4. **Check** — per-state oracles:

   * **mountability** — recovery must neither panic nor refuse the
     volume;
   * **journal atomicity** — the recovered observable state must equal
     one of the *epoch boundary* states (transactions apply entirely
     or not at all);
   * **lost acknowledged data** — files synced before the recorded
     window must read back byte-identical;
   * **replay idempotence** — unmounting and mounting again must not
     change the state or replay the journal a second time;
   * **metadata consistency** — for the ext3 family, fsck must report
     the recovered volume clean.

Every violation carries the exact state key (``prefix:i`` or
``torn:e:j``) that reproduces it; :func:`apply_state` rebuilds the
disk image for any key.  Exploration fans out across the same
persistent process pool as fingerprinting
(:mod:`repro.common.pool`): the parent records **once**, publishes the
golden slab in shared memory, and ships workers the recorded write
stream plus the reference digests — each worker attaches the golden
image zero-copy, rebuilds a :class:`Recording` around it, and checks
its slice of the state space.  Results merge in enumeration order, so
``--jobs N`` reports are identical to ``--jobs 1``.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import KernelPanic, StorageError
from repro.common.pool import (
    SharedSnapshot,
    attach_snapshot,
    begin_run,
    effective_jobs,
    run_token,
)
from repro.crash.workloads import CRASH_WORKLOADS, CrashWorkload
from repro.disk.stack import DeviceStack
from repro.fingerprint.adapters import ADAPTERS
from repro.fingerprint.parallel import adapter_for, pool_map
from repro.fs.ext3.fsck import fsck_ext3
from repro.fs.ixt3 import FEAT_TXN_CSUM
from repro.obs.events import (
    DetectionEvent,
    EventLog,
    JournalCommitEvent,
    PolicyActionEvent,
    RecoveryEvent,
    StorageEvent,
    WriteImageEvent,
)
from repro.obs.trace import (
    SpanEndEvent,
    SpanStartEvent,
    enable_tracing,
    event_ref,
    merge_streams,
    span_ref,
    span_tree_digest,
)

#: Default cap on torn states per epoch (None = every single-write loss).
DEFAULT_MAX_TORN = None


@dataclass(frozen=True)
class CrashProfile:
    """How to build and judge one file system under crash exploration."""

    key: str
    #: Adapter recipe: ``ADAPTERS[registry_key](**registry_kwargs)``.
    registry_key: str
    registry_kwargs: Dict = field(default_factory=dict)
    #: Run the ext3-family fsck as a consistency oracle.
    fsck: bool = False
    #: Fold statfs free counts into the state digest (ext3 family: a
    #: half-applied transaction shows up as leaked blocks/inodes even
    #: when the namespace looks plausible).
    digest_counts: bool = False


CRASH_PROFILES: Dict[str, CrashProfile] = {
    "ext3": CrashProfile("ext3", "ext3", fsck=True, digest_counts=True),
    # "ixt3" here means ixt3 with *transactional checksums* (§6.1) —
    # the feature whose crash claim this engine exists to test.
    "ixt3": CrashProfile(
        "ixt3", "ixt3", {"features": FEAT_TXN_CSUM}, fsck=True, digest_counts=True
    ),
    "reiserfs": CrashProfile("reiserfs", "reiserfs"),
    "jfs": CrashProfile("jfs", "jfs"),
    "ntfs": CrashProfile("ntfs", "ntfs"),
    # Array-backed twins: the same file system with its single disk
    # swapped for a redundancy array.  Crash exploration is geometry-
    # agnostic — the composite array snapshot restores O(1) per state
    # and travels across workers like a slab image.
    "ext3@mirror2": CrashProfile(
        "ext3@mirror2", "ext3@mirror2", fsck=True, digest_counts=True
    ),
    "ext3@rdp5": CrashProfile(
        "ext3@rdp5", "ext3@rdp5", fsck=True, digest_counts=True
    ),
}


@dataclass(frozen=True)
class CrashState:
    """One enumerated crash point.

    ``prefix:i``  — writes ``[0, i)`` reached the platter, in order.
    ``torn:e:j``  — epoch *e* completed (prefix up to its commit
    barrier) but the epoch's *j*-th write was lost in the drive's
    write-back cache.
    """

    key: str
    end: int
    dropped: Optional[int] = None


@dataclass(frozen=True)
class Violation:
    """One oracle failure, addressable by its reproducing state key."""

    state_key: str
    oracle: str
    detail: str
    #: Explainability: references into the state's recovery-event
    #: stream — at minimum the per-state replay span, plus the first
    #: detection/recovery/policy event recovery emitted.  Resolve with
    #: :func:`repro.obs.trace.resolve_ref` against
    #: :meth:`CrashReport.streams`.
    provenance: Tuple[str, ...] = ()

    def as_tuple(self) -> Tuple[str, str, str]:
        # Provenance deliberately excluded: the violation digest is the
        # cross-jobs determinism witness and must stay comparable with
        # records produced before tracing existed.
        return (self.state_key, self.oracle, self.detail)


@dataclass(frozen=True)
class StateObservation:
    """What one crash state looked like after recovery."""

    key: str
    outcome: str  # "recovered" | "degraded-ro" | "panic" | "unmountable"
    digest: Optional[str]
    violations: Tuple[Violation, ...]
    #: The state's recovery event stream (replay span + everything the
    #: recovering FS emitted).  Kept only for violating states, or for
    #: every state when the exploration ran with ``trace=True`` —
    #: provenance references resolve against this.
    trace: Tuple[StorageEvent, ...] = ()


@dataclass
class Recording:
    """A workload's recorded write stream plus everything replay needs."""

    profile: CrashProfile
    workload: CrashWorkload
    disk: object
    adapter: object
    #: Golden slab image (snapshot after setup); restored O(1) per state
    #: and shareable across processes via :mod:`repro.common.pool`.
    golden: object
    writes: List[Tuple[int, bytes]]
    #: Prefix lengths at each journal-commit barrier, strictly increasing.
    boundaries: List[int]
    #: Digests of every legal post-recovery state (epoch boundaries).
    boundary_digests: Dict[str, int] = field(default_factory=dict)
    #: Acknowledged-before-recording file contents.
    protected: Dict[str, bytes] = field(default_factory=dict)
    #: Keep per-state recovery streams for *every* state (not just
    #: violating ones) — set by ``record(trace=True)``.
    trace: bool = False
    #: The recording phase's own event stream (op spans + write images
    #: + commit barriers), retained only when ``trace=True``.
    trace_events: List[StorageEvent] = field(default_factory=list)
    #: Content-keyed memos for the *untraced* pure-read checks — the
    #: second-mount digest walk and read-only fsck.  Distinct crash
    #: states routinely recover to identical on-disk contents, and
    #: neither check emits into the state's kept event stream, so equal
    #: contents (golden image + privatized delta) imply equal results.
    digest_memo: Dict[tuple, str] = field(default_factory=dict)
    fsck_memo: Dict[tuple, Tuple[bool, str]] = field(default_factory=dict)
    #: Memo for the *traced* first-mount walk (digest + protected-file
    #: checks).  Unlike the two above, this segment emits VFS-op spans
    #: into the state's kept stream (they are part of the span-tree
    #: digest), so a hit cannot simply skip it: the cached entry carries
    #: a structural template of everything the segment emitted, and
    #: :func:`_replay_segment` re-plays it through the state's own
    #: tracer so span ids / parents / ordering come out exactly as a
    #: live walk would have produced them.  ``None`` marks a segment
    #: that wrote to the disk (a repairing policy): never replayed.
    walk_memo: Dict[tuple, Optional[tuple]] = field(default_factory=dict)


# -- record -------------------------------------------------------------------


def record(
    profile: CrashProfile,
    workload: CrashWorkload,
    trace: bool = False,
    max_events: Optional[int] = None,
) -> Recording:
    """Run *workload* behind a recording stack and capture its stream.

    The recorder consumes incrementally — :meth:`EventLog.drain` after
    every step — so the shared log never holds more than one step's
    events, however long the workload (``drain() + drain() + ...``
    yields exactly the stream a single trailing ``consume_new()``
    would).  *max_events* additionally arms the log's ring mode as a
    hard backstop for steps that are themselves enormous.
    """
    adapter = ADAPTERS[profile.registry_key](**profile.registry_kwargs)
    disk = adapter.build_device()
    adapter.mkfs(disk)
    stack = DeviceStack(disk, record=True, events=EventLog(max_events=max_events))
    fs = adapter.make_fs(stack)
    if trace:
        enable_tracing(stack.events)
    fs.mount()
    workload.setup(fs)
    fs.sync()
    stack.events.drain()  # setup writes are below the golden line
    golden = disk.snapshot()

    writes: List[Tuple[int, bytes]] = []
    boundaries: List[int] = []
    trace_events: List[StorageEvent] = []

    def ingest(batch: List[StorageEvent]) -> None:
        for event in batch:
            if isinstance(event, WriteImageEvent):
                writes.append((event.block, event.data))
            elif isinstance(event, JournalCommitEvent):
                if not boundaries or boundaries[-1] != len(writes):
                    boundaries.append(len(writes))
        if trace:
            trace_events.extend(batch)

    # Batched journaling: one transaction per step, committed to the
    # log but never checkpointed — every epoch leaves recovery real
    # work to do, which is the window being explored.
    fs.sync_mode = False
    for step in workload.steps:
        step(fs)
        fs.commit_transaction()
        ingest(stack.events.drain())
    fs.crash()
    ingest(stack.events.drain())

    rec = Recording(
        profile=profile,
        workload=workload,
        disk=disk,
        adapter=adapter,
        golden=golden,
        writes=writes,
        boundaries=boundaries,
        trace=trace,
        trace_events=trace_events,
    )
    _prepare_reference(rec)
    return rec


def _boundary_marks(rec: Recording) -> List[int]:
    marks = [0] + [b for b in rec.boundaries]
    if len(rec.writes) not in marks:
        marks.append(len(rec.writes))
    seen, out = set(), []
    for m in marks:
        if m not in seen:
            seen.add(m)
            out.append(m)
    return out


def _prepare_reference(rec: Recording) -> None:
    """Compute the legal-state digest set and protected-file contents.

    A boundary prefix hands recovery only *complete* transactions, so
    mounting it must always succeed; a failure here is an engine (or
    file-system) defect, not a finding, and raises.
    """
    for mark in _boundary_marks(rec):
        apply_state(rec, CrashState(f"prefix:{mark}", mark))
        fs = rec.adapter.make_fs(rec.disk)
        fs.mount()
        digest = state_digest(fs, rec.profile.digest_counts)
        rec.boundary_digests.setdefault(digest, mark)
        if mark == 0:
            for path in rec.workload.protected:
                rec.protected[path] = fs.read_file(path)
        fs.unmount()


# -- enumerate ----------------------------------------------------------------


def enumerate_states(
    rec: Recording, max_torn_per_epoch: Optional[int] = DEFAULT_MAX_TORN
) -> List[CrashState]:
    """Every prefix cut, plus bounded torn states per commit epoch."""
    states = [CrashState(f"prefix:{i}", i) for i in range(len(rec.writes) + 1)]
    prev = 0
    for epoch, bound in enumerate(rec.boundaries):
        taken = 0
        # Dropping the epoch's final write is identical to the prefix
        # one short of the boundary; skip the duplicate.
        for j in range(prev, bound - 1):
            if max_torn_per_epoch is not None and taken >= max_torn_per_epoch:
                break
            states.append(CrashState(f"torn:{epoch}:{j - prev}", bound, j))
            taken += 1
        prev = bound
    return states


def state_by_key(rec: Recording, key: str) -> CrashState:
    """Resolve a reported state key back to its crash state (repro aid)."""
    for state in enumerate_states(rec, max_torn_per_epoch=None):
        if state.key == key:
            return state
    raise KeyError(f"no such crash state: {key!r}")


# -- replay -------------------------------------------------------------------


def apply_state(rec: Recording, state: CrashState) -> None:
    """Reconstruct *state* on the recording's disk: O(1) golden restore
    plus the selected write images poked back in order."""
    rec.disk.restore(rec.golden)
    for i in range(state.end):
        if i == state.dropped:
            continue
        block, data = rec.writes[i]
        rec.disk.poke(block, data)
    # Each reconstructed state gets its own event stream so recovery
    # observations never bleed between states (or into the recording).
    rec.disk.events = EventLog()


def _content_key(disk, exclude: Optional[Tuple[int, int]] = None) -> tuple:
    """Immutable key for the disk's current *logical* contents.  The
    golden base never changes within a :class:`Recording`, so the
    privatized delta identifies the state — canonicalized: entries
    whose payload equals the base image's (or all-zeroes over a
    never-written base block) are dropped, so crash states that
    recover to identical contents key equal even though they dirtied
    different block sets on the way there.  *exclude* elides a
    half-open block range the memoized computation provably never
    reads (the journal region: post-recovery it holds per-state replay
    residue that neither the namespace walk nor read-only fsck looks
    at)."""
    image = getattr(disk, "base_image", None)
    out = []
    for b, payload in disk.dirty_items():
        if exclude is not None and exclude[0] <= b < exclude[1]:
            continue
        if image is not None:
            base = image.block(b)
            if base is None:
                if payload.count(0) == len(payload):
                    continue
            elif payload == base:
                continue
        out.append((b, payload))
    return tuple(out)


def _segment_template(events) -> tuple:
    """Structural template of one traced segment's emissions: span
    starts/ends reduced to their content (donor span ids kept only to
    pair ends with starts at replay time), other events — detections a
    verifying read surfaced, policy actions — kept verbatim (they are
    frozen and content-pure, so sharing the objects is safe)."""
    ops = []
    for e in events:
        if isinstance(e, SpanStartEvent):
            ops.append(("s", e.span_id, e.name, e.category, e.detail, e.source))
        elif isinstance(e, SpanEndEvent):
            ops.append(("e", e.span_id, e.status))
        else:
            ops.append(("v", e))
    return tuple(ops)


def _replay_segment(stream: EventLog, template: tuple) -> None:
    """Re-emit a recorded segment through *stream*'s own (enabled)
    tracer.  Span ids are assigned fresh by the tracer — the donor ids
    in the template only pair each end with its start — so ids, parent
    links and ordering land exactly as a live walk over the same disk
    contents would have produced them."""
    tracer = stream.tracer
    id_map: Dict[int, int] = {}
    for op in template:
        tag = op[0]
        if tag == "s":
            id_map[op[1]] = tracer.start(op[2], op[3], op[4], op[5])
        elif tag == "e":
            tracer.end(id_map.get(op[1], 0), op[2])
        else:
            stream.emit(op[1])


def state_digest(fs, include_counts: bool) -> str:
    """Digest of the observable state: namespace, types, sizes, link
    targets — and, for the ext3 family, statfs free counts.

    File *contents* are deliberately excluded: ordered-mode data
    writes legitimately reach home locations mid-epoch, so contents
    are not atomic; acknowledged data is checked separately.
    """
    entries: List[tuple] = []
    pending = ["/"]
    # Torn recovery can leave a *cyclic* namespace (a stale index block
    # naming an ancestor); walk each directory inode once so the digest
    # terminates — the duplicate entry itself still lands in the digest.
    seen_dirs = {fs.lstat("/").ino}
    while pending:
        directory = pending.pop()
        names = sorted(
            n for n in fs.getdirentries(directory) if n not in (".", "..")
        )
        for name in names:
            path = directory.rstrip("/") + "/" + name
            st = fs.lstat(path)
            if st.is_dir:
                entries.append(("d", path))
                if st.ino not in seen_dirs:
                    seen_dirs.add(st.ino)
                    pending.append(path)
            elif st.is_symlink:
                entries.append(("l", path, fs.readlink(path)))
            else:
                entries.append(("f", path, st.size))
    entries.sort()
    if include_counts:
        vfs = fs.statfs()
        entries.append(("statfs", vfs.free_blocks, vfs.free_inodes))
    return hashlib.sha256(repr(entries).encode()).hexdigest()[:16]


# -- check --------------------------------------------------------------------


def _evidence(
    stream: EventLog, label: str, span_id: int
) -> Tuple[str, ...]:
    """Provenance for one violation: the state's replay span plus the
    first detection / recovery / policy event recovery emitted (when
    there is one) — both resolvable against the state's kept stream."""
    refs = [span_ref(label, span_id)]
    for index, event in enumerate(stream):
        if isinstance(event, (DetectionEvent, RecoveryEvent, PolicyActionEvent)):
            refs.append(event_ref(label, index, event))
            break
    return tuple(refs)


def check_state(rec: Recording, state: CrashState) -> StateObservation:
    """Replay one crash state and run every applicable oracle.

    Every state's recovery runs under a traced replay span, so each
    violation carries provenance into the stream that convicted it; the
    stream itself is kept on the observation for violating states (all
    states when the recording was made with ``trace=True``).
    """
    apply_state(rec, state)
    stream = rec.disk.events
    tracer = enable_tracing(stream)
    span_id = tracer.start(f"replay:{state.key}", "run", source=rec.profile.key)
    obs = _judge_state(rec, state, stream, span_id)
    tracer.end(span_id, "error" if obs.violations else "ok")
    if rec.trace or obs.violations:
        obs = dataclasses.replace(obs, trace=tuple(stream))
    return obs


def _judge_state(
    rec: Recording,
    state: CrashState,
    stream: EventLog,
    span_id: int,
) -> StateObservation:
    profile = rec.profile
    violations: List[Violation] = []

    fs = rec.adapter.make_fs(rec.disk)
    try:
        fs.mount()
    except KernelPanic as exc:
        return StateObservation(
            state.key, "panic", None,
            (Violation(state.key, "mountability", f"recovery panicked: {exc}",
                       _evidence(stream, state.key, span_id)),),
        )
    except StorageError as exc:
        return StateObservation(
            state.key, "unmountable", None,
            (Violation(
                state.key, "mountability",
                f"mount refused: {type(exc).__name__}: {exc}",
                _evidence(stream, state.key, span_id),
            ),),
        )

    # The traced walk (digest + protected-file reads) is a pure
    # function of the mounted state: post-recovery disk contents
    # outside the journal, the in-memory free counts, the fail-stop
    # flag, and any degraded-mode history (visible as detection /
    # policy events from recovery).  All of that is in the key, so a
    # hit replays the recorded segment — spans included — instead of
    # re-walking; see ``Recording.walk_memo``.
    region = getattr(fs, "journal_region", lambda: None)()
    sb = getattr(fs, "sb", None)
    # In-memory free counts come straight off the superblock object —
    # statfs() would work for any FS but is op-traced, and key
    # computation must not emit spans.  FSes without those fields
    # (reiserfs) just skip the memo and walk live.
    free_blocks = getattr(sb, "free_blocks", None)
    free_inodes = getattr(sb, "free_inodes", None)
    walk_key = None
    if (free_blocks is not None and free_inodes is not None
            and hasattr(rec.disk, "dirty_items")):
        walk_key = (
            _content_key(rec.disk, region),
            free_blocks, free_inodes, fs.read_only,
            sum(1 for e in stream
                if isinstance(e, (DetectionEvent, PolicyActionEvent))),
        )
    cached = rec.walk_memo.get(walk_key) if walk_key is not None else None
    if cached is not None:
        digest, exc_info, intact_flags, walk_ro = cached[:4]
        _replay_segment(stream, cached[4])
    else:
        pos = len(stream)
        stats = getattr(rec.disk, "stats", None)
        writes_before = stats.writes if stats is not None else None
        exc_info = None
        intact_flags: Tuple[bool, ...] = ()
        walk_ro = False
        try:
            digest = state_digest(fs, profile.digest_counts)
        except StorageError as exc:
            digest = None
            exc_info = (type(exc).__name__, str(exc))
        if digest is not None:
            flags = []
            for path, payload in rec.protected.items():
                try:
                    flags.append(
                        fs.exists(path) and fs.read_file(path) == payload
                    )
                except StorageError:
                    flags.append(False)
            intact_flags = tuple(flags)
            walk_ro = fs.read_only
        if walk_key is not None:
            if stats is not None and stats.writes == writes_before:
                rec.walk_memo[walk_key] = (
                    digest, exc_info, intact_flags, walk_ro,
                    _segment_template(stream[pos:]),
                )
            else:
                # The walk itself wrote (a repairing read policy);
                # replaying its emissions would skip those writes.
                rec.walk_memo[walk_key] = None

    if digest is None:
        return StateObservation(
            state.key, "recovered", None,
            (Violation(
                state.key, "consistency",
                f"namespace unreadable after recovery: "
                f"{exc_info[0]}: {exc_info[1]}",
                _evidence(stream, state.key, span_id),
            ),),
        )

    if digest not in rec.boundary_digests:
        violations.append(Violation(
            state.key, "atomicity",
            f"recovered state {digest} matches no journal-commit boundary",
            _evidence(stream, state.key, span_id),
        ))

    for (path, _payload), intact in zip(rec.protected.items(), intact_flags):
        if not intact:
            violations.append(Violation(
                state.key, "lost-data",
                f"acknowledged file {path} lost or changed",
                _evidence(stream, state.key, span_id),
            ))

    if walk_ro:
        # The FS detected damage and fail-stopped: consistent-but-
        # degraded is a legitimate recovery outcome, and the remaining
        # oracles need a writable remount cycle.
        return StateObservation(state.key, "degraded-ro", digest, tuple(violations))

    try:
        fs.unmount()
    except StorageError as exc:
        violations.append(Violation(
            state.key, "idempotence",
            f"unmount after recovery failed: {type(exc).__name__}: {exc}",
            _evidence(stream, state.key, span_id),
        ))
        return StateObservation(state.key, "recovered", digest, tuple(violations))

    rec.disk.events = EventLog()
    fs2 = rec.adapter.make_fs(rec.disk)
    try:
        fs2.mount()
        region = getattr(fs2, "journal_region", lambda: None)()
        # The walk reads non-journal blocks plus the mounted-in-memory
        # free counts; both are in the key, so equal keys imply equal
        # digests even when mount-time recovery diverged in the journal.
        vfs2 = fs2.statfs()
        key2 = (_content_key(rec.disk, region),
                vfs2.free_blocks, vfs2.free_inodes)
        digest2 = rec.digest_memo.get(key2)
        if digest2 is None:
            digest2 = rec.digest_memo[key2] = state_digest(
                fs2, profile.digest_counts
            )
        if digest2 != digest:
            violations.append(Violation(
                state.key, "idempotence",
                f"second mount changed state: {digest} -> {digest2}",
                _evidence(stream, state.key, span_id),
            ))
        if any(
            isinstance(e, RecoveryEvent) and e.mechanism == "journal-replay"
            for e in rec.disk.events
        ):
            violations.append(Violation(
                state.key, "idempotence",
                "second mount replayed the journal again",
                _evidence(stream, state.key, span_id),
            ))
        fs2.unmount()
    except StorageError as exc:
        violations.append(Violation(
            state.key, "idempotence",
            f"remount failed: {type(exc).__name__}: {exc}",
            _evidence(stream, state.key, span_id),
        ))

    if profile.fsck:
        key3 = _content_key(
            rec.disk, getattr(fs, "journal_region", lambda: None)()
        )
        fsck_result = rec.fsck_memo.get(key3)
        if fsck_result is None:
            report = fsck_ext3(rec.disk)
            fsck_result = rec.fsck_memo[key3] = (
                report.clean,
                "; ".join(report.messages[:3]) or "problems found",
            )
        if not fsck_result[0]:
            violations.append(Violation(
                state.key, "consistency", f"fsck unclean: {fsck_result[1]}",
                _evidence(stream, state.key, span_id),
            ))

    return StateObservation(state.key, "recovered", digest, tuple(violations))


# -- orchestration ------------------------------------------------------------


@dataclass
class CrashReport:
    """Everything one exploration run produced."""

    profile: str
    workload: str
    jobs: int
    writes: int
    epochs: int
    observations: List[StateObservation]
    #: Whether every state's stream was kept (``explore(trace=True)``),
    #: as opposed to only the violating states'.
    traced: bool = False

    @property
    def states_explored(self) -> int:
        return len(self.observations)

    @property
    def violations(self) -> List[Violation]:
        return [v for obs in self.observations for v in obs.violations]

    def violations_by_oracle(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for v in self.violations:
            counts[v.oracle] = counts.get(v.oracle, 0) + 1
        return counts

    def violation_digest(self) -> str:
        """SHA-256 over the ordered violation tuples: the determinism
        witness compared across ``--jobs`` widths."""
        h = hashlib.sha256()
        for v in self.violations:
            h.update(repr(v.as_tuple()).encode())
        return h.hexdigest()

    def streams(self) -> Dict[str, List[StorageEvent]]:
        """Kept per-state recovery streams, by state key — what the
        violations' provenance references resolve against."""
        return {
            obs.key: list(obs.trace) for obs in self.observations if obs.trace
        }

    def merged_trace(self) -> List[StorageEvent]:
        """All kept state streams spliced into one deterministic trace
        (enumeration order), exportable as Chrome trace-event JSON."""
        return merge_streams(
            [(obs.key, list(obs.trace)) for obs in self.observations if obs.trace],
            root=f"crash:{self.profile}:{self.workload}",
        )

    def span_digest(self) -> str:
        """Structural span-tree digest over :meth:`merged_trace` — the
        jobs-width determinism witness for traced crash runs."""
        return span_tree_digest(self.merged_trace())

    def render(self) -> str:
        lines = [
            f"crash exploration: {self.profile} / {self.workload}",
            f"  {self.writes} recorded writes in {self.epochs} commit epochs",
            f"  {self.states_explored} crash states explored "
            f"({sum(1 for o in self.observations if o.key.startswith('torn'))} torn)",
        ]
        by_oracle = self.violations_by_oracle()
        if not by_oracle:
            lines.append("  all oracles passed in every state")
        else:
            total = len(self.violations)
            lines.append(f"  {total} oracle violations:")
            for oracle in sorted(by_oracle):
                lines.append(f"    {oracle}: {by_oracle[oracle]}")
            for v in self.violations:
                lines.append(f"    [{v.state_key}] {v.oracle}: {v.detail}")
        lines.append(f"  violation digest: {self.violation_digest()}")
        return "\n".join(lines)


def _replay_chunk(
    profile_key: str,
    workload_key: str,
    golden_descriptor,
    writes: List[Tuple[int, bytes]],
    boundaries: List[int],
    boundary_digests: Dict[str, int],
    protected: Dict[str, bytes],
    max_torn_per_epoch: Optional[int],
    lo: int,
    hi: int,
    trace: bool = False,
    token=None,
) -> List[StateObservation]:
    """Pool entry point: attach the parent's golden image from shared
    memory, rebuild a :class:`Recording` around it, check one slice.

    The worker never re-runs the workload — the recorded write stream
    and reference digests travel in the task arguments, and the golden
    slab comes zero-copy out of the published segment.
    """
    if token is not None:
        begin_run(token)
    profile = CRASH_PROFILES[profile_key]
    workload = CRASH_WORKLOADS[workload_key]
    adapter = adapter_for(profile.registry_key, profile.registry_kwargs)
    rec = Recording(
        profile=profile,
        workload=workload,
        disk=adapter.build_device(),
        adapter=adapter,
        golden=attach_snapshot(golden_descriptor),
        writes=writes,
        boundaries=boundaries,
        boundary_digests=boundary_digests,
        protected=protected,
        trace=trace,
    )
    states = enumerate_states(rec, max_torn_per_epoch)
    return [check_state(rec, state) for state in states[lo:hi]]


def explore(
    profile_key: str,
    workload_key: str,
    jobs: int = 1,
    max_torn_per_epoch: Optional[int] = DEFAULT_MAX_TORN,
    progress: Optional[Callable[[str], None]] = None,
    trace: bool = False,
) -> CrashReport:
    """Record one workload and check every enumerated crash state.

    Output is deterministic and independent of *jobs*: workers re-run
    the (deterministic) recording and results merge in enumeration
    order.  With ``trace=True``, every state's recovery stream is kept
    (not just violating ones) for Chrome-trace export.
    """
    profile = CRASH_PROFILES[profile_key]
    workload = CRASH_WORKLOADS[workload_key]
    rec = record(profile, workload, trace=trace)
    states = enumerate_states(rec, max_torn_per_epoch)
    total = len(states)
    if progress:
        progress(
            f"{profile_key}/{workload_key}: {len(rec.writes)} writes, "
            f"{len(rec.boundaries)} epochs, {total} crash states"
        )

    jobs = max(1, jobs)
    if effective_jobs(jobs) == 1:
        observations = [check_state(rec, state) for state in states]
    else:
        width = min(jobs, total) or 1
        step = (total + width - 1) // width
        bounds = [(lo, min(lo + step, total)) for lo in range(0, total, step)]
        slab = SharedSnapshot(rec.golden)
        token = run_token()
        try:
            chunks = pool_map(
                _replay_chunk,
                [
                    (
                        profile_key, workload_key, slab.descriptor,
                        rec.writes, rec.boundaries, rec.boundary_digests,
                        rec.protected, max_torn_per_epoch, lo, hi, trace,
                        token,
                    )
                    for lo, hi in bounds
                ],
                jobs,
            )
        finally:
            slab.close()
        observations = [obs for chunk in chunks for obs in chunk]

    report = CrashReport(
        profile=profile_key,
        workload=workload_key,
        jobs=jobs,
        writes=len(rec.writes),
        epochs=len(rec.boundaries),
        observations=observations,
        traced=trace,
    )
    if progress:
        progress(
            f"{profile_key}/{workload_key}: {len(report.violations)} violations "
            f"across {report.states_explored} states"
        )
    return report
