"""Crash-exploration workloads: multi-transaction mutation sequences.

Each workload has three parts:

* ``setup`` runs first and is **synced to disk** — everything it
  creates is acknowledged durable before recording starts, so the
  engine's lost-acknowledged-data oracle protects it.
* ``steps`` run with the journal in batched mode; the engine commits
  one transaction per step (``commit_transaction``), so each step is
  one journal-commit *epoch* whose writes can be cut or torn.
* ``protected`` names setup files the body never touches: they must
  read back byte-identical in *every* enumerated crash state.

Workload bodies use only the portable VFS surface (creat/mkdir/write/
rename/unlink/symlink), so the same recording recipe runs unchanged on
all five file systems and their write sequences stay comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

from repro.vfs.api import FileSystem
from repro.vfs.fdtable import O_WRONLY

StepFn = Callable[[FileSystem], None]


@dataclass(frozen=True)
class CrashWorkload:
    """One recordable mutation sequence (see module docstring)."""

    key: str
    name: str
    setup: StepFn
    steps: Tuple[StepFn, ...]
    #: Setup files the body never touches; any crash state losing one
    #: violates the lost-acknowledged-data oracle.
    protected: Tuple[str, ...] = field(default_factory=tuple)


# -- shared setup -------------------------------------------------------------

ACK_PAYLOAD = b"acknowledged payload: synced before the recorded window\n" * 4
BASE_PAYLOAD = b"pre-existing state\n" * 8


def _setup_base(fs: FileSystem) -> None:
    fs.mkdir("/keep")
    fs.write_file("/keep/ack", ACK_PAYLOAD)
    fs.write_file("/base", BASE_PAYLOAD)


_PROTECTED = ("/keep/ack", "/base")


# -- creat: files and directories come into existence -------------------------

def _creat_step1(fs: FileSystem) -> None:
    for i in range(3):
        fs.write_file(f"/f{i}", f"file {i} payload\n".encode() * 6)


def _creat_step2(fs: FileSystem) -> None:
    fs.mkdir("/newdir")
    fs.write_file("/newdir/f", b"committed payload\n" * 4)


def _creat_step3(fs: FileSystem) -> None:
    fs.write_file("/f3", b"third transaction\n" * 5)
    fs.write_file("/newdir/g", b"nested third\n" * 3)
    fs.symlink("/newdir/f", "/link-to-f")


# -- mkdir: a deepening directory tree ----------------------------------------

def _mkdir_step1(fs: FileSystem) -> None:
    fs.mkdir("/d0")
    fs.write_file("/d0/a", b"level zero\n" * 3)


def _mkdir_step2(fs: FileSystem) -> None:
    fs.mkdir("/d0/d1")
    fs.mkdir("/d0/d1/d2")
    fs.write_file("/d0/d1/b", b"level one\n" * 3)


def _mkdir_step3(fs: FileSystem) -> None:
    fs.write_file("/d0/d1/d2/c", b"level two\n" * 3)
    fs.mkdir("/d0/d3")


# -- rename: entries move between directories ---------------------------------

def _rename_setup(fs: FileSystem) -> None:
    _setup_base(fs)
    fs.mkdir("/src")
    fs.write_file("/src/a", b"payload a\n" * 4)
    fs.write_file("/src/b", b"payload b\n" * 4)


def _rename_step1(fs: FileSystem) -> None:
    fs.mkdir("/dst")
    fs.rename("/src/a", "/dst/a")


def _rename_step2(fs: FileSystem) -> None:
    fs.rename("/src/b", "/dst/b-renamed")
    fs.write_file("/src/c", b"payload c\n" * 4)


def _rename_step3(fs: FileSystem) -> None:
    fs.rename("/src/c", "/dst/c")
    fs.rename("/dst/a", "/a-top")


# -- unlink: deletion and slot reuse (exercises revoke paths) -----------------

def _unlink_setup(fs: FileSystem) -> None:
    _setup_base(fs)
    fs.mkdir("/trash")
    for i in range(3):
        fs.write_file(f"/trash/t{i}", f"doomed {i}\n".encode() * 4)


def _unlink_step1(fs: FileSystem) -> None:
    fs.unlink("/trash/t0")
    fs.unlink("/trash/t1")


def _unlink_step2(fs: FileSystem) -> None:
    fs.write_file("/trash/u0", b"replacement zero\n" * 4)
    fs.unlink("/trash/t2")


def _unlink_step3(fs: FileSystem) -> None:
    fs.write_file("/trash/u1", b"replacement one\n" * 4)
    fs.write_file("/after", b"tail txn\n" * 3)


# -- append: ordered data growth on one file ----------------------------------

def _append_setup(fs: FileSystem) -> None:
    _setup_base(fs)
    fs.write_file("/log", b"log line 0\n" * 2)


def _append_chunk(fs: FileSystem, n: int) -> None:
    size = fs.stat("/log").size
    fd = fs.open("/log", O_WRONLY)
    try:
        fs.write(fd, f"log line {n}\n".encode() * 4, offset=size)
    finally:
        fs.close(fd)


def _append_step1(fs: FileSystem) -> None:
    _append_chunk(fs, 1)


def _append_step2(fs: FileSystem) -> None:
    _append_chunk(fs, 2)
    fs.write_file("/marker", b"appended twice\n")


def _append_step3(fs: FileSystem) -> None:
    _append_chunk(fs, 3)


CRASH_WORKLOADS: Dict[str, CrashWorkload] = {
    w.key: w
    for w in (
        CrashWorkload(
            key="creat",
            name="create files, a directory, and a symlink",
            setup=_setup_base,
            steps=(_creat_step1, _creat_step2, _creat_step3),
            protected=_PROTECTED,
        ),
        CrashWorkload(
            key="mkdir",
            name="grow a nested directory tree",
            setup=_setup_base,
            steps=(_mkdir_step1, _mkdir_step2, _mkdir_step3),
            protected=_PROTECTED,
        ),
        CrashWorkload(
            key="rename",
            name="move entries between directories",
            setup=_rename_setup,
            steps=(_rename_step1, _rename_step2, _rename_step3),
            protected=_PROTECTED,
        ),
        CrashWorkload(
            key="unlink",
            name="delete files and reuse their slots",
            setup=_unlink_setup,
            steps=(_unlink_step1, _unlink_step2, _unlink_step3),
            protected=_PROTECTED,
        ),
        CrashWorkload(
            key="append",
            name="append ordered data to a growing log",
            setup=_append_setup,
            steps=(_append_step1, _append_step2, _append_step3),
            protected=_PROTECTED,
        ),
    )
}
