"""Bounded crash-state exploration over recorded write streams.

Records a workload's ordered write/journal-commit events, enumerates
crash points (every prefix plus bounded torn states per commit epoch),
replays each onto an O(1) copy-on-write snapshot, runs the file
system's real recovery path, and checks per-FS oracles — reporting
every violation with the exact state key that reproduces it.  See
``docs/crash_testing.md``.
"""

from repro.crash.engine import (
    CRASH_PROFILES,
    CrashProfile,
    CrashReport,
    CrashState,
    Recording,
    StateObservation,
    Violation,
    apply_state,
    check_state,
    enumerate_states,
    explore,
    record,
    state_by_key,
    state_digest,
)
from repro.crash.workloads import CRASH_WORKLOADS, CrashWorkload

__all__ = [
    "CRASH_PROFILES",
    "CRASH_WORKLOADS",
    "CrashProfile",
    "CrashReport",
    "CrashState",
    "CrashWorkload",
    "Recording",
    "StateObservation",
    "Violation",
    "apply_state",
    "check_state",
    "enumerate_states",
    "explore",
    "record",
    "state_by_key",
    "state_digest",
]
