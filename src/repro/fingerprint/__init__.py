"""Failure-policy fingerprinting: workloads, type-aware fault injection,
and observable-driven policy inference (§4)."""

from repro.fingerprint.harness import (
    CellResult,
    FSAdapter,
    Fingerprinter,
    WorkloadOutcome,
)
from repro.fingerprint.inference import RunObservation, infer_policy
from repro.fingerprint.parallel import run_parallel
from repro.fingerprint.workloads import (
    WORKLOAD_BY_KEY,
    WORKLOADS,
    OpResult,
    Recorder,
    Workload,
    render_workload_table,
    standard_setup,
)

__all__ = [
    "CellResult",
    "FSAdapter",
    "Fingerprinter",
    "OpResult",
    "Recorder",
    "RunObservation",
    "WORKLOADS",
    "WORKLOAD_BY_KEY",
    "Workload",
    "WorkloadOutcome",
    "infer_policy",
    "render_workload_table",
    "run_parallel",
    "standard_setup",
]
