"""Process-pool fan-out for the fingerprinting harness.

The fault matrix is embarrassingly parallel at workload granularity:
each workload owns its golden image, baseline, and every (fault class ×
block type) cell derived from them, with no shared state between
workloads.  A pool worker therefore rebuilds the adapter from the
registry recipe (:attr:`FSAdapter.registry_key` — the adapter's
closures are not picklable), fingerprints one workload end to end, and
ships the resulting :class:`~repro.fingerprint.harness.WorkloadOutcome`
back.  The parent merges outcomes in submission (= workload) order, so
``jobs=N`` output is byte-identical to ``jobs=1``.

:func:`pool_map` is the reusable core of that pattern — submission-order
merge over a process pool with a serial fast path — shared with the
crash-state exploration engine (:mod:`repro.crash.engine`).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Sequence, Tuple

from repro.disk.faults import CorruptionMode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fingerprint.harness import Fingerprinter, WorkloadOutcome


def pool_map(
    worker: Callable[..., Any],
    arg_tuples: Sequence[Tuple],
    jobs: int,
) -> List[Any]:
    """Apply *worker* to each argument tuple, ``jobs`` at a time.

    Results come back in submission order regardless of completion
    order, so callers' merges are deterministic: ``jobs=N`` output is
    identical to ``jobs=1``.  With ``jobs <= 1`` (or one task) the work
    runs in-process — no pool, no pickling requirement.
    """
    tasks = list(arg_tuples)
    if jobs <= 1 or len(tasks) <= 1:
        return [worker(*args) for args in tasks]
    max_workers = min(jobs, len(tasks))
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = [pool.submit(worker, *args) for args in tasks]
        return [future.result() for future in futures]


def _worker(
    registry_key: str,
    registry_kwargs: Dict[str, Any],
    workload_key: str,
    corruption_mode: CorruptionMode,
    trace: bool = False,
    metrics: bool = False,
) -> "WorkloadOutcome":
    """Pool entry point: rebuild the adapter by name, run one workload."""
    from repro.fingerprint.adapters import ADAPTERS
    from repro.fingerprint.harness import Fingerprinter
    from repro.fingerprint.workloads import WORKLOAD_BY_KEY

    adapter = ADAPTERS[registry_key](**registry_kwargs)
    workload = WORKLOAD_BY_KEY[workload_key]
    fp = Fingerprinter(adapter, workloads=[workload],
                       corruption_mode=corruption_mode,
                       trace=trace, metrics=metrics)
    return fp._run_workload(workload)


def check_parallelizable(fp: "Fingerprinter") -> None:
    """Raise with an actionable message when this run cannot fan out."""
    from repro.fingerprint.adapters import ADAPTERS
    from repro.fingerprint.workloads import WORKLOAD_BY_KEY

    if fp.adapter.registry_key is None or fp.adapter.registry_key not in ADAPTERS:
        raise ValueError(
            f"adapter {fp.adapter.name!r} has no registry recipe; parallel "
            "workers rebuild adapters via ADAPTERS[registry_key](**kwargs) — "
            "register the adapter or run with jobs=1"
        )
    for workload in fp.workloads:
        if WORKLOAD_BY_KEY.get(workload.key) is not workload:
            raise ValueError(
                f"workload {workload.key!r} is not the registered Table-3 "
                "workload; custom workloads require jobs=1"
            )


def run_parallel(fp: "Fingerprinter") -> List["WorkloadOutcome"]:
    """Fan the fingerprinter's workloads out across a process pool.

    Returns outcomes in workload order regardless of completion order;
    the caller's merge is therefore deterministic.
    """
    check_parallelizable(fp)
    outcomes: List["WorkloadOutcome"] = pool_map(
        _worker,
        [
            (
                fp.adapter.registry_key,
                fp.adapter.registry_kwargs,
                workload.key,
                fp.corruption_mode,
                fp.trace,
                fp.metrics,
            )
            for workload in fp.workloads
        ],
        fp.jobs,
    )
    for workload, outcome in zip(fp.workloads, outcomes):
        fp.progress(
            f"{fp.adapter.name}: workload {workload.key} ({workload.name}) "
            f"[{outcome.wall_s:.2f}s]"
        )
    return outcomes
