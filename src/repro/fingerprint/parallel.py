"""Process-pool fan-out for the fingerprinting harness.

The fault matrix is embarrassingly parallel at workload granularity:
each workload owns its golden image, baseline, and every (fault class ×
block type) cell derived from them, with no shared state between
workloads.  A pool worker rebuilds the adapter from the registry recipe
(:attr:`FSAdapter.registry_key` — the adapter's closures are not
picklable), fingerprints one workload end to end, and ships the
resulting :class:`~repro.fingerprint.harness.WorkloadOutcome` back.
The parent merges outcomes in submission (= workload) order, so
``jobs=N`` output is byte-identical to ``jobs=1``.

Workers are **warm**: they come from the persistent pool in
:mod:`repro.common.pool` and memoize the rebuilt adapter per registry
recipe, so repeated matrices reuse one adapter (and its caches) per
worker instead of rebuilding per task.  Golden images do not travel
through the task pickle stream either — the parent builds each
distinct golden once, publishes its slab in shared memory, and workers
attach the same physical pages zero-copy
(:func:`repro.common.pool.attach_image`).

:func:`pool_map` — submission-order merge over the persistent pool,
with streaming bounded submission and optional chunking — lives in
:mod:`repro.common.pool` and is re-exported here for its existing
consumers (the crash engine, the capture driver).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.common.pool import (  # noqa: F401  (pool_map re-exported)
    SharedSnapshot,
    attach_snapshot,
    begin_run,
    on_run_change,
    pool_map,
    run_token,
)
from repro.disk.faults import CorruptionMode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fingerprint.harness import Fingerprinter, WorkloadOutcome


# -- worker-side adapter memoization -----------------------------------------

#: (registry_key, frozen kwargs) -> adapter.  Lives for the worker's
#: lifetime, so a warm worker reuses one adapter — and its golden-image
#: and oracle caches — across every task and matrix that names the same
#: recipe.
_adapter_cache: Dict[Any, Any] = {}


def adapter_for(registry_key: str, registry_kwargs: Dict[str, Any]):
    """Rebuild (or reuse) an adapter from its registry recipe."""
    from repro.fingerprint.adapters import ADAPTERS

    try:
        cache_key = (registry_key, tuple(sorted(registry_kwargs.items())))
    except TypeError:
        return ADAPTERS[registry_key](**registry_kwargs)
    adapter = _adapter_cache.get(cache_key)
    if adapter is None:
        adapter = ADAPTERS[registry_key](**registry_kwargs)
        _adapter_cache[cache_key] = adapter
    return adapter


def _drop_seeded_goldens() -> None:
    """Run-boundary cleanup: golden caches may hold images backed by the
    previous run's shared segments; drop them so the mappings release."""
    for adapter in _adapter_cache.values():
        adapter.golden_cache.clear()


on_run_change(_drop_seeded_goldens)


def _worker(
    registry_key: str,
    registry_kwargs: Dict[str, Any],
    workload_key: str,
    corruption_mode: CorruptionMode,
    trace: bool = False,
    metrics: bool = False,
    golden: Optional[Tuple[Any, Dict[int, str]]] = None,
    token: Any = None,
) -> "WorkloadOutcome":
    """Pool entry point: rebuild the adapter by name, run one workload.

    *golden* is the parent's pre-built image for this workload as a
    ``(slab descriptor, oracle)`` pair; the worker attaches the shared
    slab and seeds the adapter's golden cache so the harness never
    rebuilds it.
    """
    from repro.fingerprint.harness import Fingerprinter
    from repro.fingerprint.workloads import WORKLOAD_BY_KEY

    if token is not None:
        begin_run(token)
    adapter = adapter_for(registry_key, registry_kwargs)
    workload = WORKLOAD_BY_KEY[workload_key]
    if golden is not None:
        descriptor, oracle = golden
        cache_key = (workload.setup, workload.crash_ops)
        if cache_key not in adapter.golden_cache:
            adapter.golden_cache[cache_key] = (attach_snapshot(descriptor), oracle)
    fp = Fingerprinter(adapter, workloads=[workload],
                       corruption_mode=corruption_mode,
                       trace=trace, metrics=metrics)
    return fp._run_workload(workload)


def check_parallelizable(fp: "Fingerprinter") -> None:
    """Raise with an actionable message when this run cannot fan out."""
    from repro.fingerprint.adapters import ADAPTERS
    from repro.fingerprint.workloads import WORKLOAD_BY_KEY

    if fp.adapter.registry_key is None or fp.adapter.registry_key not in ADAPTERS:
        raise ValueError(
            f"adapter {fp.adapter.name!r} has no registry recipe; parallel "
            "workers rebuild adapters via ADAPTERS[registry_key](**kwargs) — "
            "register the adapter or run with jobs=1"
        )
    for workload in fp.workloads:
        if WORKLOAD_BY_KEY.get(workload.key) is not workload:
            raise ValueError(
                f"workload {workload.key!r} is not the registered Table-3 "
                "workload; custom workloads require jobs=1"
            )


def run_parallel(fp: "Fingerprinter") -> List["WorkloadOutcome"]:
    """Fan the fingerprinter's workloads out across the persistent pool.

    Returns outcomes in workload order regardless of completion order;
    the caller's merge is therefore deterministic.  Distinct golden
    images (one per ``(setup, crash_ops)`` recipe — typically two for
    the Table-3 matrix) are built once in the parent and published via
    shared memory; each task carries its workload's slab descriptor.
    """
    check_parallelizable(fp)
    slabs: Dict[Any, SharedSnapshot] = {}
    goldens: Dict[str, Tuple[Any, Dict[int, str]]] = {}
    for workload in fp.workloads:
        cache_key = (workload.setup, workload.crash_ops)
        snapshot, oracle = fp._golden(workload)
        slab = slabs.get(cache_key)
        if slab is None:
            slab = slabs[cache_key] = SharedSnapshot(snapshot)
        goldens[workload.key] = (slab.descriptor, oracle)
    token = run_token()
    try:
        outcomes: List["WorkloadOutcome"] = pool_map(
            _worker,
            [
                (
                    fp.adapter.registry_key,
                    fp.adapter.registry_kwargs,
                    workload.key,
                    fp.corruption_mode,
                    fp.trace,
                    fp.metrics,
                    goldens[workload.key],
                    token,
                )
                for workload in fp.workloads
            ],
            fp.jobs,
        )
    finally:
        for slab in slabs.values():
            slab.close()
    for workload, outcome in zip(fp.workloads, outcomes):
        fp.progress(
            f"{fp.adapter.name}: workload {workload.key} ({workload.name}) "
            f"[{outcome.wall_s:.2f}s]"
        )
    return outcomes
