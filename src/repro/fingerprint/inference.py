"""Failure-policy inference (§4.3) over typed storage events.

Determines how the file system behaved by comparing a faulty run
against the fault-free baseline across *observable outputs only*: the
error codes and data returned by the API, and the unified typed event
stream — :class:`~repro.obs.events.IOEvent`\\ s recorded at the device
boundary by the fault-injection layer interleaved with the detection /
recovery / policy-action events the file system emitted.  The paper
performs this comparison by hand; we mechanize it.

The retry, redundancy, and remap inferences are derived from the
structured events (request counts per block, typed reads of redundant
locations, explicit remap recovery events) — not from syslog string
matching.  Legacy callers may still pass plain tag strings and an
``IOTrace``; they are coerced into typed events on construction.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.disk.faults import Fault, FaultKind, FaultOp
from repro.disk.trace import IOTrace
from repro.fingerprint.workloads import OpResult
from repro.obs.events import (
    DetectionEvent,
    IOEvent,
    LogEvent,
    PolicyActionEvent,
    RecoveryEvent,
    Severity,
    StorageEvent,
    classify_log,
)
from repro.obs.trace import SpanEndEvent, SpanStartEvent, event_ref, span_ref
from repro.taxonomy.detection import Detection
from repro.taxonomy.policy import PolicyObservation
from repro.taxonomy.recovery import Recovery

#: Policy actions that mean the file system halted activity (R_stop).
STOP_ACTIONS = {"remount-ro", "journal-abort", "unmountable", "mount-failed"}
#: Backward-compatible aliases (tag sets, pre-typed-event names).
STOP_EVENTS = STOP_ACTIONS
SANITY_EVENTS = {"sanity-fail"}
REDUNDANCY_DETECT_EVENTS = {"checksum-mismatch"}


@dataclass
class RunObservation:
    """Everything observable from one workload run.

    ``events`` is the unified ordered stream for the run — typed
    :class:`StorageEvent`\\ s covering device-boundary I/O and FS policy
    behaviour.  Plain strings are accepted for convenience (tests,
    hand-built observations) and coerced via the central tag
    classifier; an ``IOTrace`` may be passed separately, in which case
    its entries are folded in as typed I/O events.
    """

    results: List[OpResult]
    events: List[Union[StorageEvent, str]]
    trace: Optional[IOTrace] = None
    panic: Optional[str] = None
    fault_fired: int = 0
    fault_block: Optional[int] = None
    final_read_only: bool = False
    free_blocks: Optional[int] = None
    #: Stream label provenance references resolve against (the harness
    #: sets "{workload}:{fault_class}:{btype}", matching the digest
    #: fold labels; empty for hand-built observations).
    label: str = ""
    #: Normalized typed stream (computed once at construction).
    typed_events: List[StorageEvent] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        typed: List[StorageEvent] = []
        for e in self.events:
            if isinstance(e, StorageEvent):
                typed.append(e)
            else:
                typed.append(classify_log(Severity.INFO, "run", e, e))
        if self.trace is not None and not any(isinstance(e, IOEvent) for e in typed):
            typed.extend(
                IOEvent(t.op, t.block, t.outcome, t.block_type)
                for t in self.trace.entries
            )
        self.typed_events = typed

    # -- typed accessors used by inference --------------------------------

    def io_events(self) -> List[IOEvent]:
        return [e for e in self.typed_events if isinstance(e, IOEvent)]

    def log_tags(self) -> List[str]:
        return [e.tag for e in self.typed_events if isinstance(e, LogEvent)]

    def recovery_mechanisms(self) -> Counter:
        return Counter(
            e.mechanism for e in self.typed_events if isinstance(e, RecoveryEvent)
        )

    def detection_mechanisms(self) -> Counter:
        return Counter(
            e.mechanism for e in self.typed_events if isinstance(e, DetectionEvent)
        )

    def policy_actions(self) -> Counter:
        return Counter(
            e.action for e in self.typed_events if isinstance(e, PolicyActionEvent)
        )


def _counter_diff(observed: Counter, baseline: Counter) -> Counter:
    diff = Counter(observed)
    diff.subtract(baseline)
    return Counter({k: n for k, n in diff.items() if n > 0})


def _event_diff(observed: List[str], baseline: List[str]) -> Counter:
    return _counter_diff(Counter(observed), Counter(baseline))


def _pair_results(
    baseline: List[OpResult], observed: List[OpResult]
) -> List[Tuple[OpResult, Optional[OpResult]]]:
    pairs: List[Tuple[OpResult, Optional[OpResult]]] = []
    by_index = {i: r for i, r in enumerate(observed)}
    for i, base in enumerate(baseline):
        pairs.append((base, by_index.get(i)))
    return pairs


def _type_read_counts(io: List[IOEvent]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for e in io:
        if e.is_read() and e.block_type:
            counts[e.block_type] = counts.get(e.block_type, 0) + 1
    return counts


def _requests_of(io: List[IOEvent], op: str, block: int) -> int:
    return sum(1 for e in io if e.op == op and e.block == block)


def _collect_provenance(observed: RunObservation) -> List[str]:
    """Evidence references justifying a cell's classification.

    Deterministic and bounded: the *first* faulty I/O event (the
    injected fault firing — present in every cell that reaches
    inference), the first event of each detection / recovery mechanism
    and policy action, and each trace span the evidence occurred under
    (when the run was traced).  All references resolve against the
    run's recorded stream via :func:`repro.obs.trace.resolve_ref`.
    """
    label = observed.label or "observed"
    refs: List[str] = []
    seen = set()
    open_spans: List[int] = []
    cited_spans = set()
    for index, event in enumerate(observed.typed_events):
        if isinstance(event, SpanStartEvent):
            open_spans.append(event.span_id)
            continue
        if isinstance(event, SpanEndEvent):
            if open_spans and open_spans[-1] == event.span_id:
                open_spans.pop()
            continue
        marker = None
        if isinstance(event, IOEvent):
            if event.outcome in ("error", "corrupted"):
                marker = "faulty-io"
        elif isinstance(event, (DetectionEvent, RecoveryEvent)):
            marker = (event.kind, event.mechanism)
        elif isinstance(event, PolicyActionEvent):
            marker = (event.kind, event.tag)
        if marker is None or marker in seen:
            continue
        seen.add(marker)
        refs.append(event_ref(label, index, event))
        if open_spans and open_spans[-1] not in cited_spans:
            cited_spans.add(open_spans[-1])
            refs.append(span_ref(label, open_spans[-1]))
    return refs


def infer_policy(
    baseline: RunObservation,
    observed: RunObservation,
    fault: Fault,
    redundancy_types: List[str],
) -> PolicyObservation:
    """Classify one faulty run against its baseline into IRON levels."""
    detection = set()
    recovery = set()
    notes: List[str] = []

    new_events = _event_diff(observed.log_tags(), baseline.log_tags())
    base_io = baseline.io_events()
    obs_io = observed.io_events()
    pairs = _pair_results(baseline.results, observed.results)
    all_errors_new = [
        (b.op, o.errno) for b, o in pairs
        if o is not None and b.errno is None and o.errno is not None
    ]
    # Only I/O-flavoured error codes are *detection* evidence.  An
    # ENOENT or ENOSPC several calls later is a downstream consequence
    # of silently-accepted damage, which the paper classifies as the
    # failure being hidden, not detected.
    io_errnos = {"EIO", "EROFS", "EUCLEAN"}
    errors_new = [(op, e) for op, e in all_errors_new if e in io_errnos]
    consequence_errors = [(op, e) for op, e in all_errors_new if e not in io_errnos]
    missing_ops = sum(1 for _, o in pairs if o is None)
    data_diff = [
        b.op for b, o in pairs
        if o is not None and b.errno is None and o.errno is None and b.detail != o.detail
    ]

    # ---- recovery -------------------------------------------------------

    if observed.panic is not None:
        recovery.add(Recovery.STOP)
        notes.append(f"panic: {observed.panic}")
    new_actions = _counter_diff(observed.policy_actions(), baseline.policy_actions())
    if any(a in new_actions for a in STOP_ACTIONS) or (
        observed.final_read_only and not baseline.final_read_only
    ):
        recovery.add(Recovery.STOP)
    if errors_new:
        recovery.add(Recovery.PROPAGATE)
        notes.append("errors propagated: " + ", ".join(f"{op}={e}" for op, e in errors_new[:3]))

    if observed.fault_block is not None:
        base_n = _requests_of(base_io, fault.op.value, observed.fault_block)
        obs_n = _requests_of(obs_io, fault.op.value, observed.fault_block)
        # More requests than the baseline (and more than the one attempt
        # any access implies) means the file system retried.
        if obs_n > max(base_n, 1):
            recovery.add(Recovery.RETRY)
            notes.append(f"retried {obs_n - max(base_n, 1)}x")

    base_reads = _type_read_counts(base_io)
    obs_reads = _type_read_counts(obs_io)
    for rtype in redundancy_types:
        if obs_reads.get(rtype, 0) > base_reads.get(rtype, 0):
            recovery.add(Recovery.REDUNDANCY)
            notes.append(f"read redundant copies ({rtype})")
            break

    # An explicit remap recovery event: the FS redirected the faulty
    # block to a different locale (no current stock FS does — the event
    # exists for IRON-style extensions and shows up here when they do).
    new_mechanisms = _counter_diff(
        observed.recovery_mechanisms(), baseline.recovery_mechanisms()
    )
    if new_mechanisms.get("remap", 0) > 0:
        recovery.add(Recovery.REMAP)
        notes.append("remapped to a different locale")

    # Typed redundancy recoveries — a redundancy array (or any future
    # replica/parity layer) reconstructing around the fault reports
    # mechanism="redundancy" directly, so R_redundancy is structural
    # even when the extra reads happen below the type oracle's view.
    if (Recovery.REDUNDANCY not in recovery
            and new_mechanisms.get("redundancy", 0) > 0):
        recovery.add(Recovery.REDUNDANCY)
        notes.append("reconstructed from redundancy")

    if fault.kind is FaultKind.FAIL and fault.op is FaultOp.READ and data_diff and not errors_new:
        # A failed read, yet the API "succeeded" with different contents:
        # the file system manufactured a response.
        recovery.add(Recovery.GUESS)
        notes.append("fabricated data returned: " + ", ".join(data_diff[:3]))

    if fault.kind is FaultKind.CORRUPT and data_diff and not detection and not errors_new:
        notes.append("corrupt data returned to user: " + ", ".join(data_diff[:3]))

    # ---- detection -------------------------------------------------------

    anything_observed = bool(
        new_events or errors_new or observed.panic or recovery or missing_ops
    )
    if fault.kind is FaultKind.FAIL:
        if anything_observed:
            detection.add(Detection.ERROR_CODE)
        else:
            detection.add(Detection.ZERO)
    else:  # corruption
        new_detections = _counter_diff(
            observed.detection_mechanisms(), baseline.detection_mechanisms()
        )
        if new_detections.get("redundancy", 0) > 0:
            detection.add(Detection.REDUNDANCY)
        if new_detections.get("sanity", 0) > 0:
            detection.add(Detection.SANITY)
        if not detection:
            if errors_new or observed.panic is not None or recovery:
                # It noticed structurally even without an explicit log line.
                detection.add(Detection.SANITY)
            else:
                detection.add(Detection.ZERO)

    if not recovery:
        recovery.add(Recovery.ZERO)

    if "silent-failure" in new_events:
        notes.append("operation failed silently")
    if consequence_errors:
        notes.append(
            "downstream consequences: "
            + ", ".join(f"{op}={e}" for op, e in consequence_errors[:3])
        )
    if (
        baseline.free_blocks is not None
        and observed.free_blocks is not None
        and observed.free_blocks < baseline.free_blocks
    ):
        notes.append(
            f"space leaked: {baseline.free_blocks - observed.free_blocks} blocks"
        )

    return PolicyObservation.of(
        detection, recovery, notes, _collect_provenance(observed)
    )
