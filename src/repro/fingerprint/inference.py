"""Failure-policy inference (§4.3).

Determines how the file system behaved by comparing a faulty run
against the fault-free baseline across *observable outputs only*: the
error codes and data returned by the API, the contents of the system
log, and the low-level I/O trace recorded by the fault-injection layer.
The paper performs this comparison by hand; we mechanize it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.disk.faults import Fault, FaultKind, FaultOp
from repro.disk.trace import IOTrace
from repro.fingerprint.workloads import OpResult
from repro.taxonomy.detection import Detection
from repro.taxonomy.policy import PolicyObservation
from repro.taxonomy.recovery import Recovery

#: Log events that mean the file system halted activity (R_stop).
STOP_EVENTS = {"remount-ro", "journal-abort", "unmountable", "mount-failed"}
#: Log events that prove a sanity check fired (D_sanity).
SANITY_EVENTS = {"sanity-fail"}
#: Log events that prove redundancy-based detection (D_redundancy).
REDUNDANCY_DETECT_EVENTS = {"checksum-mismatch"}


@dataclass
class RunObservation:
    """Everything observable from one workload run."""

    results: List[OpResult]
    events: List[str]
    trace: IOTrace
    panic: Optional[str] = None
    fault_fired: int = 0
    fault_block: Optional[int] = None
    final_read_only: bool = False
    free_blocks: Optional[int] = None


def _event_diff(observed: List[str], baseline: List[str]) -> Counter:
    diff = Counter(observed)
    diff.subtract(Counter(baseline))
    return Counter({e: n for e, n in diff.items() if n > 0})


def _pair_results(
    baseline: List[OpResult], observed: List[OpResult]
) -> List[Tuple[OpResult, Optional[OpResult]]]:
    pairs: List[Tuple[OpResult, Optional[OpResult]]] = []
    by_index = {i: r for i, r in enumerate(observed)}
    for i, base in enumerate(baseline):
        pairs.append((base, by_index.get(i)))
    return pairs


def _type_read_counts(trace: IOTrace) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for e in trace:
        if e.is_read() and e.block_type:
            counts[e.block_type] = counts.get(e.block_type, 0) + 1
    return counts


def infer_policy(
    baseline: RunObservation,
    observed: RunObservation,
    fault: Fault,
    redundancy_types: List[str],
) -> PolicyObservation:
    """Classify one faulty run against its baseline into IRON levels."""
    detection = set()
    recovery = set()
    notes: List[str] = []

    new_events = _event_diff(observed.events, baseline.events)
    pairs = _pair_results(baseline.results, observed.results)
    all_errors_new = [
        (b.op, o.errno) for b, o in pairs
        if o is not None and b.errno is None and o.errno is not None
    ]
    # Only I/O-flavoured error codes are *detection* evidence.  An
    # ENOENT or ENOSPC several calls later is a downstream consequence
    # of silently-accepted damage, which the paper classifies as the
    # failure being hidden, not detected.
    io_errnos = {"EIO", "EROFS", "EUCLEAN"}
    errors_new = [(op, e) for op, e in all_errors_new if e in io_errnos]
    consequence_errors = [(op, e) for op, e in all_errors_new if e not in io_errnos]
    missing_ops = sum(1 for _, o in pairs if o is None)
    data_diff = [
        b.op for b, o in pairs
        if o is not None and b.errno is None and o.errno is None and b.detail != o.detail
    ]

    # ---- recovery -------------------------------------------------------

    if observed.panic is not None:
        recovery.add(Recovery.STOP)
        notes.append(f"panic: {observed.panic}")
    if any(e in new_events for e in STOP_EVENTS) or (
        observed.final_read_only and not baseline.final_read_only
    ):
        recovery.add(Recovery.STOP)
    if errors_new:
        recovery.add(Recovery.PROPAGATE)
        notes.append("errors propagated: " + ", ".join(f"{op}={e}" for op, e in errors_new[:3]))

    if observed.fault_block is not None:
        base_n = sum(
            1 for e in baseline.trace
            if e.op == fault.op.value and e.block == observed.fault_block
        )
        obs_n = sum(
            1 for e in observed.trace
            if e.op == fault.op.value and e.block == observed.fault_block
        )
        # More requests than the baseline (and more than the one attempt
        # any access implies) means the file system retried.
        if obs_n > max(base_n, 1):
            recovery.add(Recovery.RETRY)
            notes.append(f"retried {obs_n - max(base_n, 1)}x")

    base_reads = _type_read_counts(baseline.trace)
    obs_reads = _type_read_counts(observed.trace)
    for rtype in redundancy_types:
        if obs_reads.get(rtype, 0) > base_reads.get(rtype, 0):
            recovery.add(Recovery.REDUNDANCY)
            notes.append(f"read redundant copies ({rtype})")
            break

    if fault.kind is FaultKind.FAIL and fault.op is FaultOp.READ and data_diff and not errors_new:
        # A failed read, yet the API "succeeded" with different contents:
        # the file system manufactured a response.
        recovery.add(Recovery.GUESS)
        notes.append("fabricated data returned: " + ", ".join(data_diff[:3]))

    if fault.kind is FaultKind.CORRUPT and data_diff and not detection and not errors_new:
        notes.append("corrupt data returned to user: " + ", ".join(data_diff[:3]))

    # ---- detection -------------------------------------------------------

    anything_observed = bool(
        new_events or errors_new or observed.panic or recovery or missing_ops
    )
    if fault.kind is FaultKind.FAIL:
        if anything_observed:
            detection.add(Detection.ERROR_CODE)
        else:
            detection.add(Detection.ZERO)
    else:  # corruption
        if any(e in new_events for e in REDUNDANCY_DETECT_EVENTS):
            detection.add(Detection.REDUNDANCY)
        if any(e in new_events for e in SANITY_EVENTS):
            detection.add(Detection.SANITY)
        if not detection:
            if errors_new or observed.panic is not None or recovery:
                # It noticed structurally even without an explicit log line.
                detection.add(Detection.SANITY)
            else:
                detection.add(Detection.ZERO)

    if not recovery:
        recovery.add(Recovery.ZERO)

    if "silent-failure" in new_events:
        notes.append("operation failed silently")
    if consequence_errors:
        notes.append(
            "downstream consequences: "
            + ", ".join(f"{op}={e}" for op, e in consequence_errors[:3])
        )
    if (
        baseline.free_blocks is not None
        and observed.free_blocks is not None
        and observed.free_blocks < baseline.free_blocks
    ):
        notes.append(
            f"space leaked: {baseline.free_blocks - observed.free_blocks} blocks"
        )

    return PolicyObservation.of(detection, recovery, notes)
