"""The failure-policy fingerprinting harness (§4).

Three steps, mechanized:

1. **Apply workloads** (Table 3) that exercise every interesting code
   path, from singlets to recovery and journal writes.
2. **Type-aware fault injection**: for each block type the workload
   touches, arm a read-failure, write-failure, or corruption fault on
   the *next access of that type* beneath the file system.
3. **Infer failure policy** by diffing all observable outputs of the
   faulty run against a fault-free baseline.

The result is a :class:`~repro.taxonomy.policy.PolicyMatrix` — Figure 2
(or Figure 3) as data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import FSError, KernelPanic
from repro.disk.disk import BlockDevice, SimulatedDisk
from repro.disk.faults import CorruptionMode, Fault, FaultKind, FaultOp
from repro.disk.injector import FaultInjector
from repro.fingerprint.inference import RunObservation, infer_policy
from repro.fingerprint.workloads import WORKLOADS, OpResult, Recorder, Workload
from repro.taxonomy.policy import FAULT_CLASSES, PolicyMatrix
from repro.vfs.api import FileSystem

FieldCorruptor = Callable[[bytes, str], bytes]


@dataclass
class FSAdapter:
    """Everything the harness needs to fingerprint one file system."""

    name: str
    #: Figure rows, in display order (Table 4 names).
    figure_block_types: List[str]
    build_device: Callable[[], SimulatedDisk]
    mkfs: Callable[[BlockDevice], None]
    make_fs: Callable[[BlockDevice], FileSystem]
    #: FS-aware corruptor producing plausible-but-wrong blocks
    #: (misdirected-write style); None = random noise only.
    field_corruptor: Optional[FieldCorruptor] = None
    #: Block types holding redundant copies; reads of these during
    #: recovery infer R_redundancy.
    redundancy_types: List[str] = field(default_factory=list)
    #: Workload keys to run (NTFS uses a subset, as in the paper).
    workload_keys: str = "abcdefghijklmnopqrst"


@dataclass
class CellResult:
    """One fingerprinting test: the paper's unit of experimentation."""

    workload: str
    block_type: str
    fault_class: str
    fired: bool


class Fingerprinter:
    """Runs the full fault matrix for one file system."""

    def __init__(
        self,
        adapter: FSAdapter,
        workloads: Optional[Sequence[Workload]] = None,
        corruption_mode: CorruptionMode = CorruptionMode.NOISE,
        progress: Optional[Callable[[str], None]] = None,
    ):
        self.adapter = adapter
        if workloads is None:
            workloads = [w for w in WORKLOADS if w.key in adapter.workload_keys]
        self.workloads = list(workloads)
        self.corruption_mode = corruption_mode
        self.progress = progress or (lambda msg: None)
        self.tests_run = 0
        self.cells: List[CellResult] = []

    # -- public entry point --------------------------------------------------

    def run(self) -> PolicyMatrix:
        matrix = PolicyMatrix(
            fs_name=self.adapter.name,
            block_types=list(self.adapter.figure_block_types),
            workloads=[w.name for w in self.workloads],
        )
        for workload in self.workloads:
            self.progress(f"{self.adapter.name}: workload {workload.key} ({workload.name})")
            snapshot, oracle = self._golden(workload)
            baseline = self._observe(workload, snapshot, oracle, fault=None)
            read_types = self._accessed_types(baseline, "read")
            write_types = self._accessed_types(baseline, "write")
            applicability = {
                "read-failure": read_types,
                "write-failure": write_types,
                "corruption": read_types,
            }
            for fault_class in FAULT_CLASSES:
                for btype in self.adapter.figure_block_types:
                    if btype not in applicability[fault_class]:
                        matrix.mark_not_applicable(fault_class, btype, workload.name)
                        continue
                    fault = self._build_fault(fault_class, btype)
                    obs = self._observe(workload, snapshot, oracle, fault)
                    self.tests_run += 1
                    fired = obs.fault_fired > 0
                    self.cells.append(
                        CellResult(workload.name, btype, fault_class, fired)
                    )
                    if not fired:
                        matrix.mark_not_applicable(fault_class, btype, workload.name)
                        continue
                    observation = infer_policy(
                        baseline, obs, fault, self.adapter.redundancy_types
                    )
                    matrix.put(fault_class, btype, workload.name, observation)
        return matrix

    # -- image preparation ------------------------------------------------------

    def _golden(self, workload: Workload) -> Tuple[list, Dict[int, str]]:
        """Build the pristine (or deliberately crashed) image for one
        workload, plus a frozen block-type oracle usable before mount."""
        disk = self.adapter.build_device()
        self.adapter.mkfs(disk)
        fs = self.adapter.make_fs(disk)
        fs.mount()
        workload.setup(fs)
        if workload.crash_ops is not None:
            fs.crash_after(workload.crash_ops)
        else:
            fs.unmount()
        snapshot = disk.snapshot()
        # Frozen oracle: harvested from a shadow mount on the same disk
        # (post-snapshot mutations are discarded when runs restore).
        shadow = self.adapter.make_fs(disk)
        shadow.mount()
        oracle = {
            b: t for b in range(disk.num_blocks)
            if (t := shadow.block_type(b)) is not None
        }
        return snapshot, oracle

    # -- one observed run ------------------------------------------------------------

    def _observe(
        self,
        workload: Workload,
        snapshot: list,
        frozen_oracle: Dict[int, str],
        fault: Optional[Fault],
    ) -> RunObservation:
        disk = self.adapter.build_device()
        disk.restore(snapshot)
        injector = FaultInjector(disk)
        fs = self.adapter.make_fs(injector)
        injector.set_type_oracle(
            lambda b: fs.block_type(b) or frozen_oracle.get(b)
        )
        recorder = Recorder()
        panic: Optional[str] = None

        if not workload.body_mounts:
            try:
                fs.mount()
            except FSError as exc:
                recorder.results.append(OpResult("pre-mount", exc.errno.name))
            # The body is the traced part; mount traffic is excluded for
            # workloads whose subject is not the mount path itself.
            injector.trace.clear()
            fs.syslog.clear()

        if fault is not None:
            injector.arm(fault)

        try:
            workload.body(fs, recorder)
        except KernelPanic as exc:
            panic = str(exc)
        except FSError as exc:
            recorder.results.append(OpResult("unexpected-error", exc.errno.name))

        free_blocks: Optional[int] = None
        final_ro = False
        if fs.mounted:
            final_ro = fs.read_only
            try:
                free_blocks = fs.statfs().free_blocks
            except FSError:
                pass

        fault_block: Optional[int] = None
        fired = 0
        if fault is not None:
            fired = fault._fired
            fault_block = fault._locked_block if fault.block is None else fault.block

        return RunObservation(
            results=recorder.results,
            events=[r.event for r in fs.syslog.records],
            trace=injector.trace,
            panic=panic,
            fault_fired=fired,
            fault_block=fault_block,
            final_read_only=final_ro,
            free_blocks=free_blocks,
        )

    # -- helpers --------------------------------------------------------------------------

    def _accessed_types(self, baseline: RunObservation, op: str) -> set:
        return {
            e.block_type for e in baseline.trace
            if e.op == op and e.block_type is not None and e.outcome == "ok"
        }

    def _build_fault(self, fault_class: str, block_type: str) -> Fault:
        if fault_class == "read-failure":
            return Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block_type=block_type)
        if fault_class == "write-failure":
            return Fault(op=FaultOp.WRITE, kind=FaultKind.FAIL, block_type=block_type)
        if fault_class == "corruption":
            corruptor = self.adapter.field_corruptor
            mode = (
                CorruptionMode.FIELD
                if corruptor is not None and self.corruption_mode is CorruptionMode.FIELD
                else self.corruption_mode
            )
            return Fault(
                op=FaultOp.READ,
                kind=FaultKind.CORRUPT,
                block_type=block_type,
                corruption=mode,
                corruptor=corruptor,
            )
        raise ValueError(f"unknown fault class {fault_class!r}")
