"""The failure-policy fingerprinting harness (§4).

Three steps, mechanized:

1. **Apply workloads** (Table 3) that exercise every interesting code
   path, from singlets to recovery and journal writes.
2. **Type-aware fault injection**: for each block type the workload
   touches, arm a read-failure, write-failure, or corruption fault on
   the *next access of that type* beneath the file system.
3. **Infer failure policy** by diffing all observable outputs of the
   faulty run against a fault-free baseline.

The result is a :class:`~repro.taxonomy.policy.PolicyMatrix` — Figure 2
(or Figure 3) as data.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import FSError, KernelPanic
from repro.disk.disk import BlockDevice, DiskStats, SimulatedDisk
from repro.disk.faults import CorruptionMode, Fault, FaultKind, FaultOp
from repro.disk.stack import DeviceStack
from repro.fingerprint.inference import RunObservation, infer_policy
from repro.fingerprint.workloads import WORKLOADS, OpResult, Recorder, Workload
from repro.obs.events import StorageEvent, fold_digest
from repro.obs.metrics import MetricsRegistry, metrics_from_events
from repro.obs.trace import enable_tracing, merge_streams, span_tree_digest
from repro.taxonomy.policy import FAULT_CLASSES, PolicyMatrix, PolicyObservation
from repro.vfs.api import FileSystem

FieldCorruptor = Callable[[bytes, str], bytes]


@dataclass
class FSAdapter:
    """Everything the harness needs to fingerprint one file system."""

    name: str
    #: Figure rows, in display order (Table 4 names).
    figure_block_types: List[str]
    build_device: Callable[[], SimulatedDisk]
    mkfs: Callable[[BlockDevice], None]
    make_fs: Callable[[BlockDevice], FileSystem]
    #: FS-aware corruptor producing plausible-but-wrong blocks
    #: (misdirected-write style); None = random noise only.
    field_corruptor: Optional[FieldCorruptor] = None
    #: Block types holding redundant copies; reads of these during
    #: recovery infer R_redundancy.
    redundancy_types: List[str] = field(default_factory=list)
    #: Workload keys to run (NTFS uses a subset, as in the paper).
    workload_keys: str = "abcdefghijklmnopqrst"
    #: How pool workers rebuild this adapter: ``ADAPTERS[registry_key]
    #: (**registry_kwargs)``.  The adapter's closures are not picklable,
    #: so parallel runs ship this recipe instead; None means the adapter
    #: is serial-only (``jobs=1``).
    registry_key: Optional[str] = None
    registry_kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Golden (snapshot, frozen-oracle) pairs keyed by the workload's
    #: ``(setup, crash_ops)`` — the only inputs the pristine image
    #: depends on.  Every standard workload shares one setup, so one
    #: slab image (and the type-oracle cache hanging off its ``meta``)
    #: serves the whole matrix instead of being rebuilt per workload.
    golden_cache: Dict[Any, Any] = field(default_factory=dict, repr=False)

    def build_stack(self) -> DeviceStack:
        """Compose the fingerprinting device stack: disk + injector,
        deliberately cache-less so every FS request reaches the fault
        layer and shows up in the typed event stream."""
        return DeviceStack(self.build_device(), inject=True)


@dataclass
class CellResult:
    """One fingerprinting test: the paper's unit of experimentation."""

    workload: str
    block_type: str
    fault_class: str
    fired: bool


#: One merge op recorded while fingerprinting a workload:
#: ("na" | "put", fault_class, block_type, observation-or-None).
MatrixOp = Tuple[str, str, str, Optional[PolicyObservation]]


@dataclass
class WorkloadOutcome:
    """Everything one workload contributes to the final matrix.

    Produced by :meth:`Fingerprinter._run_workload` — serially or inside
    a pool worker — and merged deterministically by workload order, so
    ``jobs=N`` renders byte-identical figures to ``jobs=1``.
    """

    key: str
    name: str
    ops: List[MatrixOp]
    cells: List[CellResult]
    tests_run: int
    #: Wall-clock seconds spent fingerprinting this workload.
    wall_s: float
    #: Aggregate raw-device traffic over all of the workload's runs.
    io: DiskStats
    #: Typed storage events observed across all of the workload's runs,
    #: and a sha256 over their ordered keys — the determinism witness
    #: (``jobs=N`` must reproduce ``jobs=1`` exactly).
    event_count: int = 0
    event_digest: str = ""
    #: ``repro-metrics/1`` snapshot for this workload (None unless the
    #: fingerprinter ran with ``metrics=True``); per-worker snapshots
    #: merge associatively in the parent.
    metrics: Optional[Dict[str, Any]] = None
    #: Labeled per-run event streams (only when ``trace=True``) and the
    #: structural span-tree digest over their deterministic merge.
    trace: List[Tuple[str, List[StorageEvent]]] = field(default_factory=list)
    span_digest: str = ""


class Fingerprinter:
    """Runs the full fault matrix for one file system."""

    def __init__(
        self,
        adapter: FSAdapter,
        workloads: Optional[Sequence[Workload]] = None,
        corruption_mode: CorruptionMode = CorruptionMode.NOISE,
        progress: Optional[Callable[[str], None]] = None,
        jobs: int = 1,
        trace: bool = False,
        metrics: bool = False,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.adapter = adapter
        if workloads is None:
            workloads = [w for w in WORKLOADS if w.key in adapter.workload_keys]
        self.workloads = list(workloads)
        self.corruption_mode = corruption_mode
        self.progress = progress or (lambda msg: None)
        self.jobs = jobs
        #: Emit spans into every run's event stream and keep the labeled
        #: streams for export (Chrome trace) and digesting.
        self.trace = trace
        #: Accumulate per-workload metrics registries (merged after run).
        self.metrics = metrics
        self.tests_run = 0
        self.cells: List[CellResult] = []
        #: Per-workload wall-clock seconds (key -> seconds) and raw
        #: device traffic, populated by run() for the timing layer.
        self.workload_wall: Dict[str, float] = {}
        self.workload_io: Dict[str, DiskStats] = {}
        #: Per-workload typed-event totals and determinism digests.
        self.workload_events: Dict[str, int] = {}
        self.workload_digest: Dict[str, str] = {}
        #: Per-workload observability products (trace / metrics runs).
        self.workload_trace: Dict[str, List[Tuple[str, List[StorageEvent]]]] = {}
        self.workload_span_digest: Dict[str, str] = {}
        self.workload_metrics: Dict[str, Optional[Dict[str, Any]]] = {}
        self._io_acc: Optional[DiskStats] = None
        self._metrics_acc: Optional[MetricsRegistry] = None
        self._trace_acc: Optional[List[Tuple[str, List[StorageEvent]]]] = None

    # -- public entry point --------------------------------------------------

    def run(self) -> PolicyMatrix:
        matrix = PolicyMatrix(
            fs_name=self.adapter.name,
            block_types=list(self.adapter.figure_block_types),
            workloads=[w.name for w in self.workloads],
        )
        from repro.common.pool import effective_jobs

        if effective_jobs(self.jobs) > 1 and len(self.workloads) > 1:
            from repro.fingerprint.parallel import run_parallel

            outcomes = run_parallel(self)
        else:
            outcomes = []
            for workload in self.workloads:
                self.progress(
                    f"{self.adapter.name}: workload {workload.key} ({workload.name})"
                )
                outcomes.append(self._run_workload(workload))
        for outcome in outcomes:
            self._merge(matrix, outcome)
        return matrix

    # -- one workload (the unit of parallelism) ---------------------------------

    def _run_workload(self, workload: Workload) -> WorkloadOutcome:
        """Fingerprint every (fault class × block type) cell of one
        workload.  Pure with respect to the matrix: results come back as
        an ordered op list so serial and parallel runs merge identically."""
        started = time.perf_counter()
        self._io_acc = DiskStats()
        self._metrics_acc = MetricsRegistry() if self.metrics else None
        self._trace_acc = [] if self.trace else None
        ops: List[MatrixOp] = []
        cells: List[CellResult] = []
        tests_run = 0
        event_count = 0
        hasher = hashlib.sha256()
        snapshot, oracle = self._golden(workload)
        baseline = self._observe(
            workload, snapshot, oracle, fault=None,
            label=f"{workload.key}:baseline",
        )
        fold_digest(hasher, f"{workload.key}:baseline", baseline.typed_events)
        event_count += len(baseline.typed_events)
        read_types = self._accessed_types(baseline, "read")
        write_types = self._accessed_types(baseline, "write")
        applicability = {
            "read-failure": read_types,
            "write-failure": write_types,
            "corruption": read_types,
        }
        for fault_class in FAULT_CLASSES:
            for btype in self.adapter.figure_block_types:
                if btype not in applicability[fault_class]:
                    ops.append(("na", fault_class, btype, None))
                    continue
                fault = self._build_fault(fault_class, btype)
                obs = self._observe(
                    workload, snapshot, oracle, fault,
                    label=f"{workload.key}:{fault_class}:{btype}",
                )
                fold_digest(
                    hasher, f"{workload.key}:{fault_class}:{btype}", obs.typed_events
                )
                event_count += len(obs.typed_events)
                tests_run += 1
                fired = obs.fault_fired > 0
                cells.append(CellResult(workload.name, btype, fault_class, fired))
                if not fired:
                    ops.append(("na", fault_class, btype, None))
                    continue
                observation = infer_policy(
                    baseline, obs, fault, self.adapter.redundancy_types
                )
                ops.append(("put", fault_class, btype, observation))
        io, self._io_acc = self._io_acc, None
        metrics_snapshot = None
        if self._metrics_acc is not None:
            metrics_snapshot = self._metrics_acc.snapshot()
            self._metrics_acc = None
        trace_streams, self._trace_acc = self._trace_acc or [], None
        span_digest = ""
        if trace_streams:
            span_digest = span_tree_digest(
                merge_streams(trace_streams, root=workload.key, root_category="workload")
            )
        return WorkloadOutcome(
            key=workload.key,
            name=workload.name,
            ops=ops,
            cells=cells,
            tests_run=tests_run,
            wall_s=time.perf_counter() - started,
            io=io,
            event_count=event_count,
            event_digest=hasher.hexdigest(),
            metrics=metrics_snapshot,
            trace=trace_streams,
            span_digest=span_digest,
        )

    def _merge(self, matrix: PolicyMatrix, outcome: WorkloadOutcome) -> None:
        for kind, fault_class, btype, observation in outcome.ops:
            if kind == "na":
                matrix.mark_not_applicable(fault_class, btype, outcome.name)
            else:
                matrix.put(fault_class, btype, outcome.name, observation)
        self.cells.extend(outcome.cells)
        self.tests_run += outcome.tests_run
        self.workload_wall[outcome.key] = outcome.wall_s
        self.workload_io[outcome.key] = outcome.io
        self.workload_events[outcome.key] = outcome.event_count
        self.workload_digest[outcome.key] = outcome.event_digest
        self.workload_trace[outcome.key] = outcome.trace
        self.workload_span_digest[outcome.key] = outcome.span_digest
        self.workload_metrics[outcome.key] = outcome.metrics

    # -- observability products ----------------------------------------------

    def merged_trace(self) -> List[StorageEvent]:
        """All traced runs spliced into one deterministic stream.

        Two-level structure: a root span for the fingerprint run, one
        container per workload, one container per (baseline / cell)
        run.  Workload order — not completion order — drives the merge,
        so ``jobs=N`` produces the identical stream.
        """
        workload_streams = []
        for workload in self.workloads:
            streams = self.workload_trace.get(workload.key) or []
            if not streams:
                continue
            workload_streams.append((
                workload.key,
                merge_streams(streams, root=workload.key,
                              root_category="workload"),
            ))
        return merge_streams(
            workload_streams, root=f"fingerprint:{self.adapter.name}"
        )

    def span_digest(self) -> str:
        """Structural digest of :meth:`merged_trace` — the jobs-width
        determinism witness recorded in BENCH JSON."""
        return span_tree_digest(self.merged_trace())

    def merged_metrics(self) -> Optional[Dict[str, Any]]:
        """Associative merge of the per-workload metrics snapshots
        (None when the run did not collect metrics)."""
        snapshots = [
            snap for workload in self.workloads
            if (snap := self.workload_metrics.get(workload.key)) is not None
        ]
        if not snapshots:
            return None
        return MetricsRegistry.merge_snapshots(snapshots)

    # -- image preparation ------------------------------------------------------

    def _golden(self, workload: Workload) -> Tuple[Any, Dict[int, str]]:
        """Build the pristine (or deliberately crashed) image for one
        workload, plus a frozen block-type oracle usable before mount.
        The pair is a pure function of the workload's setup and crash
        schedule, so it is cached on the adapter and shared by every
        workload with the same ``(setup, crash_ops)``."""
        cache_key = (workload.setup, workload.crash_ops)
        cached = self.adapter.golden_cache.get(cache_key)
        if cached is not None:
            return cached
        disk = self.adapter.build_device()
        self.adapter.mkfs(disk)
        fs = self.adapter.make_fs(disk)
        fs.mount()
        workload.setup(fs)
        if workload.crash_ops is not None:
            fs.crash_after(workload.crash_ops)
        else:
            fs.unmount()
        snapshot = disk.snapshot()
        # Frozen oracle: harvested from a shadow mount on the same disk
        # (post-snapshot mutations are discarded when runs restore).
        shadow = self.adapter.make_fs(disk)
        shadow.mount()
        oracle = {
            b: t for b in range(disk.num_blocks)
            if (t := shadow.block_type(b)) is not None
        }
        self.adapter.golden_cache[cache_key] = (snapshot, oracle)
        return snapshot, oracle

    # -- one observed run ------------------------------------------------------------

    def _observe(
        self,
        workload: Workload,
        snapshot: Any,
        frozen_oracle: Dict[int, str],
        fault: Optional[Fault],
        label: str = "",
    ) -> RunObservation:
        stack = self.adapter.build_stack()
        stack.restore(snapshot)
        if self._metrics_acc is not None:
            stack.observe_latencies(self._metrics_acc)
        fs = self.adapter.make_fs(stack)
        stack.injector.set_type_oracle(
            lambda b: fs.block_type(b) or frozen_oracle.get(b)
        )
        recorder = Recorder()
        panic: Optional[str] = None

        if not workload.body_mounts:
            try:
                fs.mount()
            except FSError as exc:
                recorder.results.append(OpResult("pre-mount", exc.errno.name))
            # The body is the traced part; mount traffic is excluded for
            # workloads whose subject is not the mount path itself.
            stack.events.clear()

        # Enable tracing only now: the run span must open after the
        # mount-traffic clear above, or its start would be erased.
        tracer = enable_tracing(stack.events) if self.trace else None
        run_span = tracer.start(label or workload.key, "run",
                                source=self.adapter.name) if tracer else 0

        if fault is not None:
            stack.injector.arm(fault)

        try:
            workload.body(fs, recorder)
        except KernelPanic as exc:
            panic = str(exc)
        except FSError as exc:
            recorder.results.append(OpResult("unexpected-error", exc.errno.name))

        if tracer is not None:
            tracer.end(run_span, "error" if panic is not None else "ok")

        free_blocks: Optional[int] = None
        final_ro = False
        if fs.mounted:
            final_ro = fs.read_only
            try:
                free_blocks = fs.statfs().free_blocks
            except FSError:
                pass

        fault_block: Optional[int] = None
        fired = 0
        if fault is not None:
            fired = fault._fired
            fault_block = fault._locked_block if fault.block is None else fault.block

        if self._io_acc is not None:
            acc, s = self._io_acc, stack.stats
            acc.reads += s.reads
            acc.writes += s.writes
            acc.bytes_read += s.bytes_read
            acc.bytes_written += s.bytes_written
            acc.seeks += s.seeks
            acc.busy_time_s += s.busy_time_s

        if self._metrics_acc is not None:
            metrics_from_events(stack.events, self._metrics_acc)
            stack.collect_metrics(self._metrics_acc)
        if self._trace_acc is not None:
            self._trace_acc.append((label or workload.key, list(stack.events)))

        return RunObservation(
            results=recorder.results,
            events=list(stack.events),
            trace=stack.injector.trace,
            panic=panic,
            fault_fired=fired,
            fault_block=fault_block,
            final_read_only=final_ro,
            free_blocks=free_blocks,
            label=label,
        )

    # -- helpers --------------------------------------------------------------------------

    def _accessed_types(self, baseline: RunObservation, op: str) -> set:
        return {
            e.block_type for e in baseline.io_events()
            if e.op == op and e.block_type is not None and e.outcome == "ok"
        }

    def _build_fault(self, fault_class: str, block_type: str) -> Fault:
        if fault_class == "read-failure":
            return Fault(op=FaultOp.READ, kind=FaultKind.FAIL, block_type=block_type)
        if fault_class == "write-failure":
            return Fault(op=FaultOp.WRITE, kind=FaultKind.FAIL, block_type=block_type)
        if fault_class == "corruption":
            corruptor = self.adapter.field_corruptor
            mode = (
                CorruptionMode.FIELD
                if corruptor is not None and self.corruption_mode is CorruptionMode.FIELD
                else self.corruption_mode
            )
            return Fault(
                op=FaultOp.READ,
                kind=FaultKind.CORRUPT,
                block_type=block_type,
                corruption=mode,
                corruptor=corruptor,
            )
        raise ValueError(f"unknown fault class {fault_class!r}")
