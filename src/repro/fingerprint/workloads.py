"""The fingerprinting workload suite (Table 3).

*Singlets* each stress a single call in the file-system API; *generics*
stress functionality common across the API (path traversal, crash
recovery, journal writes).  Each workload has a ``setup`` phase (run on
a pristine volume to create the objects the body needs) and a ``body``
phase (the traced part, run with faults armed).

The bodies are written against the common VFS API, so the same suite
fingerprints every file system under test; per-FS peculiarities
(e.g. files large enough to reach ext3's triple-indirect pointers or to
force ReiserFS B+-tree splits) are exercised by sizing the setup
objects past each system's inline capacities.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, List, Optional

from repro.common.errors import FSError
from repro.vfs.api import FileSystem
from repro.vfs.fdtable import O_RDONLY, O_RDWR, O_WRONLY


@dataclass(frozen=True)
class OpResult:
    """Outcome of one API call: name, error code (or None), and a short
    digest of any returned value, for comparing runs."""

    op: str
    errno: Optional[str]
    detail: str = ""


class Recorder:
    """Runs API calls, capturing success/error/result per call."""

    def __init__(self) -> None:
        self.results: List[OpResult] = []

    def do(self, op: str, fn: Callable[[], object]) -> object:
        try:
            value = fn()
        except FSError as exc:
            self.results.append(OpResult(op, exc.errno.name))
            return None
        self.results.append(OpResult(op, None, _digest(value)))
        return value


def _digest(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, bytes):
        import hashlib
        return hashlib.sha1(value).hexdigest()[:12]
    if isinstance(value, (list, tuple)):
        return ",".join(sorted(str(v) for v in value))[:80]
    return str(value)[:80]


@dataclass
class Workload:
    """One Table-3 workload."""

    key: str          # Figure 2 column letter
    name: str
    setup: Callable[[FileSystem], None]
    body: Callable[[FileSystem, Recorder], None]
    #: True for workloads whose body performs the mount itself
    #: (p: mount, s: FS recovery) — the harness must not pre-mount.
    body_mounts: bool = False
    #: When set, the golden image is left *crashed*: after setup, these
    #: operations are committed to the journal but not checkpointed, and
    #: the machine "loses power" (s: FS recovery).
    crash_ops: Optional[Callable[[FileSystem], None]] = None


# -- the standard namespace every workload's setup builds on -------------

BIG_FILE_BLOCKS = 40  # spans direct + single/double indirect with small ptrs


@lru_cache(maxsize=8)
def _patterned(n: int, mul: int, add: int) -> bytes:
    """The deterministic payload pattern setup files are filled with.
    Memoized: setup runs once per matrix cell, and the pattern only
    depends on (length, multiplier, offset)."""
    return bytes((i * mul + add) % 256 for i in range(n))


def standard_setup(fs: FileSystem) -> None:
    """Create the objects the workload bodies reference."""
    bs = fs.statfs().block_size
    fs.mkdir("/dir1")
    fs.mkdir("/dir1/subdir")
    fs.write_file("/dir1/subdir/leaf", b"leaf-data")
    fs.write_file("/dir1/file_small", b"small-file-contents")
    big = _patterned(BIG_FILE_BLOCKS * bs, 7, 3)
    fs.write_file("/dir1/file_big", big)
    fs.symlink("/dir1/file_small", "/link_to_small")
    fs.mkdir("/dir2")
    fs.write_file("/dir2/src", b"rename-source")
    fs.write_file("/dir2/victim", b"rename-victim")
    fs.mkdir("/empty_dir")
    fs.write_file("/file_unlink", b"to-be-unlinked")
    trunc = _patterned(20 * bs, 13, 5)
    fs.write_file("/file_trunc", trunc)
    fs.write_file("/file_chmod", b"chmod-target")


def _noop_setup(fs: FileSystem) -> None:
    standard_setup(fs)


# -- workload bodies ------------------------------------------------------------


def _body_path_traversal(fs: FileSystem, r: Recorder) -> None:
    r.do("stat-deep", lambda: fs.stat("/dir1/subdir/leaf"))


def _body_access_family(fs: FileSystem, r: Recorder) -> None:
    r.do("access", lambda: fs.access("/dir1/file_small"))
    r.do("chdir", lambda: fs.chdir("/dir1"))
    r.do("stat", lambda: fs.stat("file_small"))
    r.do("statfs", lambda: fs.statfs())
    r.do("lstat", lambda: fs.lstat("/link_to_small"))
    fd = r.do("open", lambda: fs.open("/dir1/file_small", O_RDONLY))
    if fd is not None:
        r.do("close", lambda: fs.close(fd))
    r.do("chroot", lambda: fs.chroot("/dir1"))
    r.do("stat-chrooted", lambda: fs.stat("/subdir/leaf"))


def _body_chmod_family(fs: FileSystem, r: Recorder) -> None:
    r.do("chmod", lambda: fs.chmod("/file_chmod", 0o600))
    r.do("chown", lambda: fs.chown("/file_chmod", 7, 7))
    r.do("utimes", lambda: fs.utimes("/file_chmod", 100.0, 200.0))


def _body_read(fs: FileSystem, r: Recorder) -> None:
    fd = r.do("open", lambda: fs.open("/dir1/file_big", O_RDONLY))
    if fd is not None:
        st = fs.stat("/dir1/file_big")
        r.do("read", lambda: fs.read(fd, st.size, offset=0))
        r.do("close", lambda: fs.close(fd))


def _body_readlink(fs: FileSystem, r: Recorder) -> None:
    r.do("readlink", lambda: fs.readlink("/link_to_small"))


def _body_getdirentries(fs: FileSystem, r: Recorder) -> None:
    r.do("getdirentries", lambda: fs.getdirentries("/dir1"))


def _body_creat(fs: FileSystem, r: Recorder) -> None:
    fd = r.do("creat", lambda: fs.creat("/new_file"))
    if fd is not None:
        r.do("close", lambda: fs.close(fd))


def _body_link(fs: FileSystem, r: Recorder) -> None:
    r.do("link", lambda: fs.link("/dir1/file_small", "/new_link"))


def _body_mkdir(fs: FileSystem, r: Recorder) -> None:
    r.do("mkdir", lambda: fs.mkdir("/new_dir"))


def _body_rename(fs: FileSystem, r: Recorder) -> None:
    r.do("rename", lambda: fs.rename("/dir2/src", "/dir2/victim"))


def _body_symlink(fs: FileSystem, r: Recorder) -> None:
    r.do("symlink", lambda: fs.symlink("/dir1/file_small", "/new_symlink"))


def _body_write(fs: FileSystem, r: Recorder) -> None:
    bs = fs.statfs().block_size
    fd = r.do("open", lambda: fs.open("/dir1/file_big", O_RDWR))
    if fd is not None:
        # Overwrite blocks reached through the indirect chain, plus a
        # partial block forcing a read-modify-write.
        r.do("write-indirect", lambda: fs.write(fd, b"X" * (2 * bs), offset=14 * bs))
        r.do("write-partial", lambda: fs.write(fd, b"Y" * 17, offset=3 * bs + 5))
        r.do("close", lambda: fs.close(fd))
    fd2 = r.do("open-extend", lambda: fs.open("/dir1/file_small", O_RDWR))
    if fd2 is not None:
        r.do("write-extend", lambda: fs.write(fd2, b"Z" * bs, offset=bs))
        r.do("close", lambda: fs.close(fd2))


def _body_truncate(fs: FileSystem, r: Recorder) -> None:
    r.do("truncate", lambda: fs.truncate("/file_trunc", 100))


def _body_rmdir(fs: FileSystem, r: Recorder) -> None:
    r.do("rmdir", lambda: fs.rmdir("/empty_dir"))


def _body_unlink(fs: FileSystem, r: Recorder) -> None:
    r.do("unlink", lambda: fs.unlink("/file_unlink"))


def _body_mount(fs: FileSystem, r: Recorder) -> None:
    r.do("mount", fs.mount)
    if fs.mounted:
        r.do("stat-postmount", lambda: fs.stat("/dir1/file_small"))


def _body_fsync_sync(fs: FileSystem, r: Recorder) -> None:
    fd = r.do("open", lambda: fs.open("/dir1/file_small", O_WRONLY))
    if fd is not None:
        r.do("write", lambda: fs.write(fd, b"sync-me", offset=0))
        r.do("fsync", lambda: fs.fsync(fd))
        r.do("close", lambda: fs.close(fd))
    r.do("sync", fs.sync)


def _body_umount(fs: FileSystem, r: Recorder) -> None:
    fd = r.do("creat", lambda: fs.creat("/pre_umount_file"))
    if fd is not None:
        r.do("close", lambda: fs.close(fd))
    r.do("umount", fs.unmount)


def _body_recovery(fs: FileSystem, r: Recorder) -> None:
    r.do("mount-recover", fs.mount)
    if fs.mounted:
        r.do("stat-recovered", lambda: fs.stat("/crashfile"))


def _recovery_crash_ops(fs: FileSystem) -> None:
    # Committed to the journal but never checkpointed; replay at the
    # next mount must reconstruct these.
    fs.write_file("/crashfile", b"written-just-before-crash")
    fs.mkdir("/crashdir")
    fs.unlink("/file_unlink")


def _body_log_writes(fs: FileSystem, r: Recorder) -> None:
    for i in range(3):
        fd = r.do(f"creat-{i}", lambda i=i: fs.creat(f"/logfile{i}"))
        if fd is not None:
            r.do(f"write-{i}", lambda fd=fd: fs.write(fd, b"L" * 512, offset=0))
            r.do(f"close-{i}", lambda fd=fd: fs.close(fd))
    r.do("sync", fs.sync)


WORKLOADS: List[Workload] = [
    Workload("a", "path traversal", _noop_setup, _body_path_traversal),
    Workload("b", "access,chdir,chroot,stat,statfs,lstat,open", _noop_setup, _body_access_family),
    Workload("c", "chmod,chown,utimes", _noop_setup, _body_chmod_family),
    Workload("d", "read", _noop_setup, _body_read),
    Workload("e", "readlink", _noop_setup, _body_readlink),
    Workload("f", "getdirentries", _noop_setup, _body_getdirentries),
    Workload("g", "creat", _noop_setup, _body_creat),
    Workload("h", "link", _noop_setup, _body_link),
    Workload("i", "mkdir", _noop_setup, _body_mkdir),
    Workload("j", "rename", _noop_setup, _body_rename),
    Workload("k", "symlink", _noop_setup, _body_symlink),
    Workload("l", "write", _noop_setup, _body_write),
    Workload("m", "truncate", _noop_setup, _body_truncate),
    Workload("n", "rmdir", _noop_setup, _body_rmdir),
    Workload("o", "unlink", _noop_setup, _body_unlink),
    Workload("p", "mount", _noop_setup, _body_mount, body_mounts=True),
    Workload("q", "fsync,sync", _noop_setup, _body_fsync_sync),
    Workload("r", "umount", _noop_setup, _body_umount),
    Workload("s", "FS recovery", _noop_setup, _body_recovery,
             body_mounts=True, crash_ops=_recovery_crash_ops),
    Workload("t", "log writes", _noop_setup, _body_log_writes),
]

WORKLOAD_BY_KEY = {w.key: w for w in WORKLOADS}


def render_workload_table() -> str:
    """Regenerate Table 3."""
    singlet_keys = "bcdefghijklmnopqr"
    lines = ["Workload                                      Purpose",
             "Singlets:"]
    singlets = [w for w in WORKLOADS if w.key in singlet_keys]
    for w in singlets:
        lines.append(f"  {w.name:44} Exercise the Posix API")
    lines.append("Generics:")
    for w in WORKLOADS:
        if w.key in "ast":
            purpose = {"a": "Traverse hierarchy", "s": "Invoke recovery",
                       "t": "Update journal"}[w.key]
            lines.append(f"  {w.name:44} {purpose}")
    return "\n".join(lines)
