"""Per-file-system adapters for the fingerprinting harness.

Each adapter supplies mkfs, a factory, the Figure-2 row order, and a
*field corruptor* — the FS-aware corruption that produces a "block
similar to the expected one but with one or more corrupted fields"
(§4.2), the misdirected-write-style damage that plain type checks
cannot catch.
"""

from __future__ import annotations

from typing import Optional

from repro.common.structs import U16, U32
from repro.disk.disk import SimulatedDisk, make_disk
from repro.fs.ext3 import Ext3, Ext3Config, mkfs_ext3
from repro.fs.ext3.structures import Inode as Ext3Inode
from repro.fs.ext3.config import INODE_SIZE
from repro.fs.ixt3 import ALL_FEATURES, Ixt3, ixt3_config, mkfs_ixt3
from repro.fs.jfs import JFS, JFSConfig, mkfs_jfs
from repro.fs.ntfs import NTFS, NTFSConfig, mkfs_ntfs
from repro.fs.reiserfs import ReiserConfig, ReiserFS, mkfs_reiserfs
from repro.fingerprint.harness import FSAdapter

#: Small geometry: deep indirect chains reachable with tiny images.
EXT3_FINGERPRINT_CONFIG = Ext3Config(
    block_size=1024,
    blocks_per_group=256,
    inodes_per_group=64,
    num_groups=2,
    journal_blocks=64,
    ptrs_per_block=8,
)

EXT3_FIGURE_ROWS = [
    "inode", "dir", "bitmap", "i-bitmap", "indirect", "data", "super",
    "g-desc", "j-super", "j-revoke", "j-desc", "j-commit", "j-data",
]


def ext3_field_corruptor(payload: bytes, block_type: str) -> bytes:
    """Corrupt one field of an ext3 block, leaving it plausible."""
    raw = bytearray(payload)
    if block_type == "inode":
        # Blast every inode slot: overly-large size field and a zeroed
        # link count — the two corruptions §5.1 discusses.
        for off in range(0, len(raw) - INODE_SIZE + 1, INODE_SIZE):
            inode = Ext3Inode.unpack(bytes(raw[off:off + INODE_SIZE]))
            if not inode.is_allocated:
                continue
            inode.size = 1 << 60
            inode.links = 0
            raw[off:off + INODE_SIZE] = inode.pack()
        return bytes(raw)
    if block_type == "dir":
        # Entries pointing at out-of-range inodes with garbage names.
        garbage = U32.pack(0xDEADBEEF) + bytes((4, 1)) + b"zzzz"
        raw[:len(garbage)] = garbage
        return bytes(raw)
    if block_type == "indirect":
        # Pointers redirected far out of the volume.
        for off in range(0, min(len(raw), 32), 4):
            raw[off:off + 4] = U32.pack(0x7FFFFFF0 + off)
        return bytes(raw)
    if block_type in ("bitmap", "i-bitmap"):
        # All-allocated bitmap: silently eats free space.
        return b"\xff" * len(raw)
    if block_type == "super":
        # Magic destroyed: the type check should catch this one.
        raw[0:4] = U32.pack(0x0BAD0BAD)
        return bytes(raw)
    if block_type.startswith("j-"):
        # Journal block with its magic destroyed.
        raw[0:4] = U32.pack(0x0BAD0BAD)
        return bytes(raw)
    # data / g-desc / anything else: flip a swath of bytes.
    for i in range(0, min(64, len(raw))):
        raw[i] ^= 0x5A
    return bytes(raw)


REISER_FINGERPRINT_CONFIG = ReiserConfig(
    block_size=1024,
    total_blocks=768,
    journal_blocks=64,
    max_leaf_items=8,
    max_fanout=6,
    indirect_ptrs_per_item=16,
    tail_threshold=256,
)

REISER_FIGURE_ROWS = [
    "stat item", "dir item", "bitmap", "indirect", "data", "super",
    "j-header", "j-desc", "j-commit", "j-data", "root", "internal",
]


def reiserfs_field_corruptor(payload: bytes, block_type: str) -> bytes:
    """Corrupt one field of a ReiserFS block, leaving it plausible."""
    raw = bytearray(payload)
    if block_type in ("stat item", "dir item", "indirect", "direct item",
                      "leaf node", "root", "internal"):
        # Break the node header: an absurd level defeats the sanity check.
        raw[0:2] = U16.pack(0x7F7F)
        return bytes(raw)
    if block_type == "bitmap":
        return b"\xff" * len(raw)
    if block_type == "super":
        raw[:8] = b"NoTrEiSe"
        return bytes(raw)
    if block_type.startswith("j-"):
        raw[0:4] = U32.pack(0x0BAD0BAD)
        return bytes(raw)
    for i in range(0, min(64, len(raw))):
        raw[i] ^= 0x5A
    return bytes(raw)


def make_reiserfs_adapter(config: Optional[ReiserConfig] = None) -> FSAdapter:
    cfg = config or REISER_FINGERPRINT_CONFIG

    def build_device() -> SimulatedDisk:
        return make_disk(cfg.total_blocks, cfg.block_size)

    return FSAdapter(
        name="reiserfs",
        figure_block_types=list(REISER_FIGURE_ROWS),
        build_device=build_device,
        mkfs=lambda dev: mkfs_reiserfs(dev, cfg),
        make_fs=lambda dev: ReiserFS(dev, sync_mode=True),
        field_corruptor=reiserfs_field_corruptor,
        redundancy_types=[],
        registry_key="reiserfs",
        registry_kwargs={"config": cfg},
    )


JFS_FINGERPRINT_CONFIG = JFSConfig()

JFS_FIGURE_ROWS = [
    "inode", "dir", "bmap", "imap", "internal", "data", "super",
    "j-super", "j-data", "aggr-inode", "bmap-desc", "imap-cntl",
]


def jfs_field_corruptor(payload: bytes, block_type: str) -> bytes:
    """Corrupt one field of a JFS block, leaving it plausible."""
    raw = bytearray(payload)
    if block_type in ("inode", "dir", "internal"):
        # Blast the entry/pointer count past the maximum: caught by
        # JFS's count sanity checks.
        raw[0:2] = U16.pack(0xFFF0)
        raw[2:4] = U16.pack(0xFFF0)
        return bytes(raw)
    if block_type in ("bmap", "imap"):
        # Break the duplicated free-count equality check.
        raw[0:4] = U32.pack(12345)
        raw[4:8] = U32.pack(54321)
        return bytes(raw)
    if block_type in ("super", "aggr-inode", "j-super", "j-data"):
        raw[0:4] = U32.pack(0x0BAD0BAD)
        return bytes(raw)
    for i in range(0, min(64, len(raw))):
        raw[i] ^= 0x5A
    return bytes(raw)


def make_jfs_adapter(config: Optional[JFSConfig] = None) -> FSAdapter:
    cfg = config or JFS_FINGERPRINT_CONFIG

    def build_device() -> SimulatedDisk:
        return make_disk(cfg.total_blocks, cfg.block_size)

    return FSAdapter(
        name="jfs",
        figure_block_types=list(JFS_FIGURE_ROWS),
        build_device=build_device,
        mkfs=lambda dev: mkfs_jfs(dev, cfg),
        make_fs=lambda dev: JFS(dev, sync_mode=True),
        field_corruptor=jfs_field_corruptor,
        redundancy_types=["super"],
        registry_key="jfs",
        registry_kwargs={"config": cfg},
    )


def make_ext3_adapter(config: Optional[Ext3Config] = None) -> FSAdapter:
    cfg = config or EXT3_FINGERPRINT_CONFIG

    def build_device() -> SimulatedDisk:
        return make_disk(cfg.total_blocks, cfg.block_size)

    return FSAdapter(
        name="ext3",
        figure_block_types=list(EXT3_FIGURE_ROWS),
        build_device=build_device,
        mkfs=lambda dev: mkfs_ext3(dev, cfg),
        make_fs=lambda dev: Ext3(dev, sync_mode=True),
        field_corruptor=ext3_field_corruptor,
        redundancy_types=[],  # ext3 never reads its superblock copies (§5.1)
        registry_key="ext3",
        registry_kwargs={"config": cfg},
    )


NTFS_FIGURE_ROWS = [
    "MFT", "directory", "volume-bitmap", "MFT-bitmap", "logfile", "data", "boot",
]


def ntfs_field_corruptor(payload: bytes, block_type: str) -> bytes:
    """Corrupt one field of an NTFS block, leaving it plausible."""
    raw = bytearray(payload)
    if block_type in ("MFT", "directory", "boot"):
        raw[:4] = b"XXXX"  # metadata magic destroyed: strong checks catch it
        return bytes(raw)
    if block_type in ("volume-bitmap", "MFT-bitmap"):
        return b"\xff" * len(raw)
    if block_type == "logfile":
        raw[0:4] = U32.pack(0x0BAD0BAD)
        return bytes(raw)
    for i in range(0, min(64, len(raw))):
        raw[i] ^= 0x5A
    return bytes(raw)


def make_ntfs_adapter(config: Optional[NTFSConfig] = None) -> FSAdapter:
    cfg = config or NTFSConfig()

    def build_device() -> SimulatedDisk:
        return make_disk(cfg.total_blocks, cfg.block_size)

    return FSAdapter(
        name="ntfs",
        figure_block_types=list(NTFS_FIGURE_ROWS),
        build_device=build_device,
        mkfs=lambda dev: mkfs_ntfs(dev, cfg),
        make_fs=lambda dev: NTFS(dev, sync_mode=True),
        field_corruptor=ntfs_field_corruptor,
        redundancy_types=[],
        # The paper's NTFS analysis is partial (closed-source, §5.4):
        # no recovery/log-write workloads.
        workload_keys="abcdefghijklmnopqr",
        registry_key="ntfs",
        registry_kwargs={"config": cfg},
    )


IXT3_FIGURE_ROWS = list(EXT3_FIGURE_ROWS)


def make_ixt3_adapter(features: int = ALL_FEATURES,
                      base: Optional[Ext3Config] = None) -> FSAdapter:
    base_cfg = base or EXT3_FINGERPRINT_CONFIG
    cfg = ixt3_config(base_cfg)

    def build_device() -> SimulatedDisk:
        return make_disk(cfg.total_blocks, cfg.block_size)

    return FSAdapter(
        name="ixt3",
        figure_block_types=list(IXT3_FIGURE_ROWS),
        build_device=build_device,
        mkfs=lambda dev: mkfs_ixt3(dev, base_cfg, features=features, config=cfg),
        make_fs=lambda dev: Ixt3(dev, sync_mode=True),
        field_corruptor=ext3_field_corruptor,
        redundancy_types=["replica", "parity"],
        registry_key="ixt3",
        registry_kwargs={"features": features, "base": base_cfg},
    )


ADAPTERS = {
    "ext3": make_ext3_adapter,
    "reiserfs": make_reiserfs_adapter,
    "jfs": make_jfs_adapter,
    "ntfs": make_ntfs_adapter,
    "ixt3": make_ixt3_adapter,
}


def make_array_adapter(base: str = "ext3", geometry: str = "mirror",
                       members: int = 2, **base_kwargs) -> FSAdapter:
    """A registered adapter's file system mounted on a redundancy array.

    Clones the *base* adapter and swaps its ``build_device`` for a
    :func:`repro.redundancy.array.make_array` of the same logical
    geometry — everything else (mkfs, workloads, corruptors, figure
    rows) is inherited, which is the point: the array drops in below
    an unchanged file system.  *members* is the copy/member count
    (the RDP prime for ``geometry="rdp"``).
    """
    import dataclasses

    from repro.redundancy.array import make_array

    inner = ADAPTERS[base](**base_kwargs)
    probe = inner.build_device()
    num_blocks, block_size = probe.num_blocks, probe.block_size

    def build_device():
        return make_array(geometry, num_blocks, block_size, members=members)

    return dataclasses.replace(
        inner,
        name=f"{inner.name}@{geometry}{members}",
        build_device=build_device,
        registry_key=f"{base}@{geometry}{members}",
        registry_kwargs=dict(base_kwargs),
        golden_cache={},
    )


def _register_array_adapters() -> None:
    """Array-backed variants of every base adapter: 2-way mirror,
    4-member rotating parity, RDP at p=5 (six members)."""
    import functools

    for base in ("ext3", "reiserfs", "jfs", "ntfs", "ixt3"):
        for geometry, members in (("mirror", 2), ("parity", 4), ("rdp", 5)):
            ADAPTERS[f"{base}@{geometry}{members}"] = functools.partial(
                make_array_adapter, base=base, geometry=geometry,
                members=members)


_register_array_adapters()
