"""The Table-6 variant sweep: run each benchmark under every feature
combination and report run time (virtual disk time) normalized to the
no-feature baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.disk.stack import DeviceStack
from repro.fs.ext3 import Ext3Config
from repro.fs.ext3.structures import (
    FEAT_DATA_CSUM,
    FEAT_DATA_PARITY,
    FEAT_META_CSUM,
    FEAT_META_REPLICA,
    FEAT_TXN_CSUM,
)
from repro.fs.ixt3 import Ixt3, ixt3_config, mkfs_ixt3
from repro.bench.paperdata import TABLE6_PAPER, VARIANT_ORDER, variant_label
from repro.bench.workloads import BENCHMARKS, BenchScale

FEATURE_BITS = {
    "Mc": FEAT_META_CSUM,
    "Mr": FEAT_META_REPLICA,
    "Dc": FEAT_DATA_CSUM,
    "Dp": FEAT_DATA_PARITY,
    "Tc": FEAT_TXN_CSUM,
}

#: Volume geometry for the benchmarks: large enough for PostMark's file
#: population, natural pointer fan-out.
BENCH_BASE_CONFIG = Ext3Config(
    block_size=1024,
    blocks_per_group=4096,
    inodes_per_group=512,
    num_groups=2,
    journal_blocks=256,
)

#: Buffer-cache size in blocks (the paper's testbed had 1 GB of RAM —
#: the whole working set fits; ours likewise).
CACHE_BLOCKS = 8192


def features_mask(features: Tuple[str, ...]) -> int:
    mask = 0
    for f in features:
        mask |= FEATURE_BITS[f]
    return mask


@dataclass
class VariantResult:
    features: Tuple[str, ...]
    seconds: float
    reads: int
    writes: int

    @property
    def label(self) -> str:
        return variant_label(self.features)


@dataclass
class Table6Run:
    """Measured Table 6: per benchmark, one result per variant."""

    results: Dict[str, List[VariantResult]] = field(default_factory=dict)

    def normalized(self, bench: str) -> List[float]:
        rows = self.results[bench]
        base = rows[0].seconds
        return [r.seconds / base if base else 1.0 for r in rows]

    def render(self, include_paper: bool = True) -> str:
        benches = list(self.results)
        lines = []
        header = f"{'#':>2} {'Variant':17}"
        for b in benches:
            header += f" {b + ' meas':>10}"
            if include_paper:
                header += f" {b + ' paper':>10}"
        lines.append(header)
        for i, features in enumerate(VARIANT_ORDER):
            row = f"{i:>2} {variant_label(features):17}"
            for b in benches:
                row += f" {self.normalized(b)[i]:>10.2f}"
                if include_paper:
                    row += f" {TABLE6_PAPER[b][i]:>10.2f}"
            lines.append(row)
        return "\n".join(lines)


def run_variant(
    bench: str,
    features: Tuple[str, ...],
    scale: Optional[BenchScale] = None,
    base_config: Optional[Ext3Config] = None,
) -> VariantResult:
    """Run one benchmark under one feature combination; returns the
    virtual-disk run time of the measured phase."""
    scale = scale or BenchScale()
    base = base_config or BENCH_BASE_CONFIG
    cfg = ixt3_config(base, dynamic_replica_slots=512)
    stack = DeviceStack.build(cfg.total_blocks, cfg.block_size,
                              cache_blocks=CACHE_BLOCKS)
    disk, cache = stack.disk, stack.cache
    # mkfs writes go straight to the medium so the mount starts with the
    # same cold cache the hand-wired stack had.
    mkfs_ixt3(disk, base, features=features_mask(features), config=cfg)
    fs = Ixt3(stack, sync_mode=False, commit_every=256)
    fs.mount()
    spec = BENCHMARKS[bench]
    if spec["setup"] is not None:
        spec["setup"](fs, scale)
        fs.sync()
        # The measured phase starts cache-cold, as each of the paper's
        # runs did.
        cache.invalidate_all()
    t0 = disk.clock
    r0, w0 = disk.stats.reads, disk.stats.writes
    spec["run"](fs, scale)
    seconds = disk.clock - t0
    result = VariantResult(
        features=features,
        seconds=seconds,
        reads=disk.stats.reads - r0,
        writes=disk.stats.writes - w0,
    )
    fs.unmount()
    return result


def run_table6(
    benches: Optional[List[str]] = None,
    variants: Optional[List[Tuple[str, ...]]] = None,
    scale: Optional[BenchScale] = None,
    progress=None,
) -> Table6Run:
    """Run the full (or a partial) Table 6 sweep."""
    benches = benches or list(BENCHMARKS)
    variants = variants if variants is not None else VARIANT_ORDER
    out = Table6Run()
    for bench in benches:
        rows = []
        for features in variants:
            if progress:
                progress(f"{bench}: {variant_label(features)}")
            rows.append(run_variant(bench, features, scale=scale))
        out.results[bench] = rows
    return out
