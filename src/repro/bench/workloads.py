"""The four Table-6 benchmark workloads (§6.2), scaled to simulator
size but preserving each workload's character:

* **SSH-Build** — unpack a source tree, "configure" (many small reads
  and writes), "build" (read sources, emit objects, link a binary):
  the typical action of a developer.
* **Web server** — static HTTP GETs over a fixed document set:
  read-intensive with concurrency.
* **PostMark** — small-file create/append/read/delete transactions in
  a directory tree: metadata intensive.
* **TPC-B** — debit-credit transactions with a synchronous commit
  (fsync) per transaction: synchronous update traffic.

All generators are deterministic (seeded) so variant comparisons
measure mechanism cost, not workload noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.common.rng import stream as _seeded_stream
from repro.vfs.api import FileSystem
from repro.vfs.fdtable import O_RDONLY, O_RDWR, O_WRONLY


def _compute(fs: FileSystem, seconds: float) -> None:
    """Charge CPU time (compilation, request handling): the clock
    advances but no I/O is issued.  This is what makes SSH-Build's
    ratios compress toward 1.0, as on the paper's real testbed where
    compilation dominated the run."""
    raw = fs._raw_disk()
    if raw is not None:
        raw.stall(seconds)


@dataclass(frozen=True)
class BenchScale:
    """Scaled-down workload parameters (paper-size in comments)."""

    # SSH-Build: the paper unpacks an 11 MB tree and compiles it.
    ssh_dirs: int = 8
    ssh_sources: int = 60
    ssh_source_size: int = 6 * 1024
    ssh_objects: int = 40
    ssh_object_size: int = 3 * 1024

    # Web: the paper transfers 25 MB of static pages.
    web_files: int = 40
    web_file_size: int = 8 * 1024
    web_requests: int = 250

    # PostMark: the paper runs 1500 transactions over 1500 files
    # (4 KB - 1 MB) in 10 subdirectories.
    post_files: int = 200
    post_dirs: int = 10
    post_txns: int = 500
    post_min_size: int = 2 * 1024
    post_max_size: int = 32 * 1024

    # TPC-B: the paper runs 1000 debit-credit transactions.
    tpcb_accounts_blocks: int = 64
    tpcb_txns: int = 200

    # CPU cost per compile step (SSH) and per request (Web): on the
    # paper's testbed both workloads were compute/transfer bound.
    ssh_compile_cpu_s: float = 0.045
    ssh_configure_cpu_s: float = 0.012
    web_request_cpu_s: float = 0.004


def ssh_build(fs: FileSystem, scale: BenchScale, seed: int = 1) -> None:
    rng = _seeded_stream(seed)
    # Unpack.
    fs.mkdir("/ssh")
    for d in range(scale.ssh_dirs):
        fs.mkdir(f"/ssh/dir{d}")
    sources = []
    for i in range(scale.ssh_sources):
        d = i % scale.ssh_dirs
        path = f"/ssh/dir{d}/src{i}.c"
        body = bytes(rng.randrange(256) for _ in range(scale.ssh_source_size))
        fs.write_file(path, body)
        sources.append(path)
    # Configure: probe headers (reads) and write small config outputs.
    for i in range(20):
        fs.read_file(sources[rng.randrange(len(sources))])
        fs.write_file(f"/ssh/conftest{i}", b"#define HAVE_FEATURE 1\n" * 8)
        fs.unlink(f"/ssh/conftest{i}")
        _compute(fs, scale.ssh_configure_cpu_s)
    fs.write_file("/ssh/config.h", b"#define CONFIGURED 1\n" * 32)
    # Build: read each source, emit an object; then link.
    objects = []
    for i in range(scale.ssh_objects):
        fs.read_file(sources[i % len(sources)])
        _compute(fs, scale.ssh_compile_cpu_s)  # the compiler runs
        obj = f"/ssh/dir{i % scale.ssh_dirs}/obj{i}.o"
        fs.write_file(obj, bytes(rng.randrange(256) for _ in range(scale.ssh_object_size)))
        objects.append(obj)
    linked = bytearray()
    for obj in objects:
        linked += fs.read_file(obj)[:1024]
    fs.write_file("/ssh/sshd", bytes(linked))
    fs.sync()


def web_server_setup(fs: FileSystem, scale: BenchScale, seed: int = 2) -> None:
    rng = _seeded_stream(seed)
    fs.mkdir("/htdocs")
    for i in range(scale.web_files):
        body = bytes(rng.randrange(256) for _ in range(scale.web_file_size))
        fs.write_file(f"/htdocs/page{i}.html", body)
    fs.sync()


def web_server(fs: FileSystem, scale: BenchScale, seed: int = 3) -> None:
    """The measured phase: static GETs (reads only)."""
    rng = _seeded_stream(seed)
    for _ in range(scale.web_requests):
        i = rng.randrange(scale.web_files)
        path = f"/htdocs/page{i}.html"
        fd = fs.open(path, O_RDONLY)
        st = fs.stat(path)
        fs.read(fd, st.size, offset=0)
        fs.close(fd)
        _compute(fs, scale.web_request_cpu_s)


def postmark(fs: FileSystem, scale: BenchScale, seed: int = 4) -> None:
    rng = _seeded_stream(seed)
    for d in range(scale.post_dirs):
        fs.mkdir(f"/pm{d}")
    live: Dict[str, int] = {}
    serial = 0

    def create_one():
        nonlocal serial
        d = rng.randrange(scale.post_dirs)
        path = f"/pm{d}/file{serial}"
        serial += 1
        size = rng.randrange(scale.post_min_size, scale.post_max_size)
        fs.write_file(path, bytes(rng.randrange(256) for _ in range(size)))
        live[path] = size

    for _ in range(scale.post_files):
        create_one()
    for _ in range(scale.post_txns):
        op = rng.randrange(4)
        if op == 0 or not live:
            create_one()
        elif op == 1:
            path = rng.choice(sorted(live))
            fs.unlink(path)
            del live[path]
        elif op == 2:
            path = rng.choice(sorted(live))
            fs.read_file(path)
        else:
            path = rng.choice(sorted(live))
            fd = fs.open(path, O_WRONLY)
            append = bytes(rng.randrange(256) for _ in range(256))
            fs.write(fd, append, offset=live[path])
            fs.close(fd)
            live[path] += 256
    for path in sorted(live):
        fs.unlink(path)
    fs.sync()


def tpcb(fs: FileSystem, scale: BenchScale, seed: int = 5) -> None:
    rng = _seeded_stream(seed)
    bs = fs.statfs().block_size
    fs.write_file("/accounts.db", b"\x00" * (scale.tpcb_accounts_blocks * bs))
    fs.write_file("/history.log", b"")
    fs.sync()
    acct_fd = fs.open("/accounts.db", O_RDWR)
    hist_fd = fs.open("/history.log", O_WRONLY)
    hist_off = 0
    for txn in range(scale.tpcb_txns):
        # Debit-credit: read-modify-write an account, teller and branch
        # record, then append to the history and commit synchronously.
        for _ in range(3):
            blk = rng.randrange(scale.tpcb_accounts_blocks)
            old = fs.read(acct_fd, 64, offset=blk * bs)
            record = bytes((b + 1) % 256 for b in old.ljust(64, b"\x00"))
            fs.write(acct_fd, record, offset=blk * bs)
        entry = f"txn {txn:08d} commit\n".encode()
        fs.write(hist_fd, entry, offset=hist_off)
        hist_off += len(entry)
        fs.fsync(hist_fd)
    fs.close(acct_fd)
    fs.close(hist_fd)
    fs.sync()


#: The measured phase of each benchmark; setup (if any) runs untimed.
BENCHMARKS: Dict[str, Dict[str, Callable]] = {
    "SSH": {"setup": None, "run": ssh_build},
    "Web": {"setup": web_server_setup, "run": web_server},
    "Post": {"setup": None, "run": postmark},
    "TPCB": {"setup": None, "run": tpcb},
}
