"""Space-overhead analysis (§6.2).

The paper measured local file systems and computed the extra space
needed if all metadata were replicated, checksums stored, and one
parity block allocated per file: 3-10% for checksums plus metadata
replication, 3-17% for parity depending on the volume.

We regenerate the measurement over synthetic volume profiles spanning
the small-file and large-file mixes of real deployments: parity costs
one block per file, so small-file volumes sit at the top of the parity
range and large-file volumes at the bottom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common.checksum import SHA1_SIZE
from repro.common.rng import stream as _seeded_stream


@dataclass(frozen=True)
class VolumeProfile:
    """A synthetic population of files: (name, file count, mean size)."""

    name: str
    num_files: int
    mean_file_bytes: int
    #: Fraction of the volume's used blocks that is metadata
    #: (inodes, directories, indirect blocks, bitmaps).
    metadata_fraction: float
    block_size: int = 4096


#: Profiles spanning the paper's range of "a number of local file
#: systems": a mail spool (tiny files), a developer workstation, a
#: media archive (huge files).
PROFILES: List[VolumeProfile] = [
    VolumeProfile("mail-spool", num_files=20000, mean_file_bytes=20 * 1024,
                  metadata_fraction=0.09),
    VolumeProfile("workstation", num_files=8000, mean_file_bytes=64 * 1024,
                  metadata_fraction=0.06),
    VolumeProfile("source-tree", num_files=15000, mean_file_bytes=30 * 1024,
                  metadata_fraction=0.075),
    VolumeProfile("media-archive", num_files=4000, mean_file_bytes=120 * 1024,
                  metadata_fraction=0.026),
]


@dataclass
class SpaceOverhead:
    profile: str
    data_blocks: int
    metadata_blocks: int
    checksum_blocks: int
    replica_blocks: int
    parity_blocks: int

    @property
    def used_blocks(self) -> int:
        return self.data_blocks + self.metadata_blocks

    @property
    def meta_redundancy_fraction(self) -> float:
        """Checksums + metadata replication, relative to used space."""
        return (self.checksum_blocks + self.replica_blocks) / self.used_blocks

    @property
    def parity_fraction(self) -> float:
        return self.parity_blocks / self.used_blocks


def analyze(profile: VolumeProfile, seed: int = 11) -> SpaceOverhead:
    """Compute ixt3's space costs over one synthetic volume."""
    rng = _seeded_stream(seed)
    bs = profile.block_size
    data_blocks = 0
    parity_blocks = 0
    for _ in range(profile.num_files):
        # Log-normal-ish file sizes around the mean.
        size = max(1, int(profile.mean_file_bytes * rng.lognormvariate(0, 0.8)))
        data_blocks += (size + bs - 1) // bs
        parity_blocks += 1  # one parity block per file (§6.1)
    metadata_blocks = int(
        data_blocks * profile.metadata_fraction / (1 - profile.metadata_fraction)
    )
    used = data_blocks + metadata_blocks
    checksum_blocks = (used * SHA1_SIZE + bs - 1) // bs  # one digest per block
    replica_blocks = metadata_blocks  # every metadata block has a copy
    return SpaceOverhead(
        profile=profile.name,
        data_blocks=data_blocks,
        metadata_blocks=metadata_blocks,
        checksum_blocks=checksum_blocks,
        replica_blocks=replica_blocks,
        parity_blocks=parity_blocks,
    )


def analyze_all() -> List[SpaceOverhead]:
    return [analyze(p) for p in PROFILES]


def render(results: List[SpaceOverhead]) -> str:
    lines = [
        f"{'Volume':14} {'used (blocks)':>14} {'cksum+replica':>14} {'parity':>9}",
    ]
    for r in results:
        lines.append(
            f"{r.profile:14} {r.used_blocks:>14} "
            f"{r.meta_redundancy_fraction:>13.1%} {r.parity_fraction:>8.1%}"
        )
    lines.append("paper (§6.2):  checksums+replication 3-10%; parity 3-17%")
    return "\n".join(lines)
