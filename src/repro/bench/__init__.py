"""Benchmark substrate: Table-6 workloads, the variant sweep, paper
data, and the space-overhead analyzer."""

from repro.bench.harness import (
    BENCH_BASE_CONFIG,
    Table6Run,
    VariantResult,
    features_mask,
    run_table6,
    run_variant,
)
from repro.bench.paperdata import (
    PAPER_BASELINE_SECONDS,
    PAPER_IXT3_SCENARIOS,
    PAPER_SPACE_META_RANGE,
    PAPER_SPACE_PARITY_RANGE,
    TABLE6_PAPER,
    VARIANT_ORDER,
    variant_label,
)
from repro.bench.space import PROFILES, SpaceOverhead, analyze, analyze_all, render
from repro.bench.timing import (
    bench_json_path,
    fingerprint_record,
    record_entry,
    table6_record,
    timed,
)
from repro.bench.workloads import BENCHMARKS, BenchScale

__all__ = [
    "BENCHMARKS",
    "BENCH_BASE_CONFIG",
    "BenchScale",
    "PAPER_BASELINE_SECONDS",
    "PAPER_IXT3_SCENARIOS",
    "PAPER_SPACE_META_RANGE",
    "PAPER_SPACE_PARITY_RANGE",
    "PROFILES",
    "SpaceOverhead",
    "TABLE6_PAPER",
    "Table6Run",
    "VARIANT_ORDER",
    "VariantResult",
    "analyze",
    "analyze_all",
    "bench_json_path",
    "features_mask",
    "fingerprint_record",
    "record_entry",
    "render",
    "run_table6",
    "run_variant",
    "table6_record",
    "timed",
    "variant_label",
]
