"""Paper-reported numbers, for paper-vs-measured comparison.

Table 6: run time of each ixt3 variant normalized to stock ext3, for
SSH-Build, Web server, PostMark and TPC-B.  Variants are the 32
combinations of Mc (metadata checksums), Mr (metadata replicas),
Dc (data checksums), Dp (data parity), Tc (transactional checksums),
in the paper's row order.  Bracketed speedups appear as values < 1.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Feature combination per Table 6 row, in row order.
VARIANT_ORDER: List[Tuple[str, ...]] = [
    (),
    ("Mc",), ("Mr",), ("Dc",), ("Dp",), ("Tc",),
    ("Mc", "Mr"), ("Mc", "Dc"), ("Mc", "Dp"), ("Mc", "Tc"),
    ("Mr", "Dc"), ("Mr", "Dp"), ("Mr", "Tc"),
    ("Dc", "Dp"), ("Dc", "Tc"), ("Dp", "Tc"),
    ("Mc", "Mr", "Dc"), ("Mc", "Mr", "Dp"), ("Mc", "Mr", "Tc"),
    ("Mc", "Dc", "Dp"), ("Mc", "Dc", "Tc"), ("Mc", "Dp", "Tc"),
    ("Mr", "Dc", "Dp"), ("Mr", "Dc", "Tc"), ("Mr", "Dp", "Tc"),
    ("Dc", "Dp", "Tc"),
    ("Mc", "Mr", "Dc", "Dp"), ("Mc", "Mr", "Dc", "Tc"),
    ("Mc", "Mr", "Dp", "Tc"), ("Mc", "Dc", "Dp", "Tc"),
    ("Mr", "Dc", "Dp", "Tc"),
    ("Mc", "Mr", "Dc", "Dp", "Tc"),
]

_SSH = [1.00, 1.00, 1.00, 1.00, 1.02, 1.00, 1.01, 1.02, 1.01, 1.00, 1.02,
        1.02, 1.00, 1.03, 1.01, 1.01, 1.02, 1.02, 1.01, 1.03, 1.02, 1.01,
        1.03, 1.02, 1.02, 1.02, 1.03, 1.04, 1.02, 1.03, 1.05, 1.06]
_WEB = [1.00, 1.00, 1.00, 1.00, 1.00, 1.00, 1.00, 1.00, 1.00, 1.00, 1.00,
        1.00, 1.00, 1.00, 1.01, 1.00, 1.00, 1.01, 1.00, 1.00, 1.00, 1.00,
        1.00, 1.00, 1.00, 1.01, 1.00, 1.00, 1.00, 1.00, 1.00, 1.00]
_POST = [1.00, 1.01, 1.18, 1.13, 1.07, 1.01, 1.19, 1.11, 1.10, 1.05, 1.26,
         1.20, 1.15, 1.13, 1.15, 1.06, 1.28, 1.30, 1.19, 1.20, 1.06, 1.03,
         1.35, 1.26, 1.21, 1.18, 1.37, 1.24, 1.25, 1.18, 1.30, 1.32]
_TPCB = [1.00, 1.00, 1.19, 1.00, 1.03, 0.80, 1.20, 1.00, 1.03, 0.81, 1.20,
         1.39, 1.00, 1.04, 0.81, 0.84, 1.19, 1.42, 1.01, 1.03, 0.81, 0.85,
         1.42, 1.01, 1.19, 0.85, 1.42, 1.01, 1.19, 0.87, 1.20, 1.21]

TABLE6_PAPER: Dict[str, List[float]] = {
    "SSH": _SSH,
    "Web": _WEB,
    "Post": _POST,
    "TPCB": _TPCB,
}

#: Absolute ext3 baseline run times the paper reports (seconds).
PAPER_BASELINE_SECONDS = {"SSH": 117.78, "Web": 53.05, "Post": 150.80, "TPCB": 58.13}

#: §6.2 space overheads: checksums + metadata replication 3-10%;
#: per-file parity 3-17% depending on the volume.
PAPER_SPACE_META_RANGE = (0.03, 0.10)
PAPER_SPACE_PARITY_RANGE = (0.03, 0.17)

#: §6.2: "ixt3 detects and recovers from over 200 possible different
#: partial-error scenarios that we induced."
PAPER_IXT3_SCENARIOS = 200


def variant_label(features: Tuple[str, ...]) -> str:
    return " ".join(features) if features else "(baseline)"
