"""Wall-clock timing layer for the benchmark drivers.

The simulator's own observable is *virtual* disk time; this module
records the other axis — how long the harness itself takes to run — so
the repo's performance trajectory is machine-readable.  Records merge
into a single JSON file, ``BENCH_fingerprint.json`` at the repo root
(override with the ``REPRO_BENCH_JSON`` environment variable), keyed by
entry name so successive runs update in place.

Schema (``repro-bench-timing/1``)::

    {
      "schema": "repro-bench-timing/1",
      "generated_at": "2026-08-06T12:00:00Z",
      "entries": {
        "fingerprint_ext3": {
          "wall_s": 12.3,          # total wall-clock for the run
          "jobs": 4,               # process-pool width used
          "tests_run": 420,        # fault-injection tests executed
          "total_cells": 420,      # CellResults recorded
          "applicable_cells": 312, # matrix cells with an observation
          "workloads": {           # per-workload breakdown
            "a": {"wall_s": 0.61, "reads": 1200, "writes": 340,
                  "bytes_read": 1228800, "bytes_written": 348160,
                  "seeks": 95, "busy_time_s": 0.8,
                  "events": 5000,  # typed storage events observed
                  "event_digest": "sha256-hex"}  # determinism witness
          }
        },
        ...                        # non-fingerprint entries carry their
      }                            # own driver-specific fields
    }
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, TypeVar

SCHEMA = "repro-bench-timing/1"
DEFAULT_FILENAME = "BENCH_fingerprint.json"
CRASH_FILENAME = "BENCH_crash.json"
ARRAY_FILENAME = "BENCH_array.json"
FLEET_FILENAME = "BENCH_fleet.json"

T = TypeVar("T")


def bench_json_path(root: Optional[os.PathLike] = None) -> Path:
    """Where timing records land: ``$REPRO_BENCH_JSON`` when set, else
    ``BENCH_fingerprint.json`` under *root* (default: cwd)."""
    env = os.environ.get("REPRO_BENCH_JSON")
    if env:
        return Path(env)
    return Path(root) / DEFAULT_FILENAME if root else Path.cwd() / DEFAULT_FILENAME


def timed(fn: Callable[[], T]) -> Tuple[T, float]:
    """Run *fn*, returning ``(result, wall_clock_seconds)``.

    When *fn* raises, the measurement is not lost: the elapsed time up
    to the failure is attached to the exception as ``timed_wall_s``, so
    drivers can record a failed entry (see :func:`failure_record`)
    before re-raising instead of dropping the run from the BENCH JSON.
    """
    started = time.perf_counter()
    try:
        value = fn()
    except BaseException as exc:
        exc.timed_wall_s = time.perf_counter() - started
        raise
    return value, time.perf_counter() - started


def failure_record(exc: BaseException, **context: Any) -> Dict[str, Any]:
    """Build the JSON record for a benched run that raised.

    ``wall_s`` is the elapsed time :func:`timed` attached to the
    exception (0.0 when the failure happened outside ``timed``), and
    ``status``/``error`` mark the entry so dashboards and the BENCH
    sanity checks can tell a crashed run from a slow one.  Extra
    keyword context (jobs, profile, workload...) is merged in.
    """
    record: Dict[str, Any] = {
        "status": "failed",
        "error": type(exc).__name__,
        "error_detail": str(exc)[:200],
        "wall_s": round(getattr(exc, "timed_wall_s", 0.0), 6),
    }
    record.update(context)
    return record


def fingerprint_record(fp, matrix, wall_s: float) -> Dict[str, Any]:
    """Build the JSON record for one Fingerprinter run.

    *fp* is the (already-run) :class:`~repro.fingerprint.Fingerprinter`;
    its per-workload wall times and raw-device traffic become the
    ``workloads`` breakdown.
    """
    workloads: Dict[str, Any] = {}
    for key, secs in fp.workload_wall.items():
        entry: Dict[str, Any] = {"wall_s": round(secs, 6)}
        io = fp.workload_io.get(key)
        if io is not None:
            entry.update(
                reads=io.reads,
                writes=io.writes,
                bytes_read=io.bytes_read,
                bytes_written=io.bytes_written,
                seeks=io.seeks,
                busy_time_s=round(io.busy_time_s, 6),
            )
        if key in getattr(fp, "workload_events", {}):
            entry["events"] = fp.workload_events[key]
        if getattr(fp, "workload_digest", {}).get(key):
            entry["event_digest"] = fp.workload_digest[key]
        if getattr(fp, "workload_span_digest", {}).get(key):
            entry["span_digest"] = fp.workload_span_digest[key]
        workloads[key] = entry
    record = {
        "wall_s": round(wall_s, 6),
        "jobs": fp.jobs,
        "tests_run": fp.tests_run,
        "total_cells": len(fp.cells),
        "applicable_cells": len(matrix.cells),
        "workloads": workloads,
    }
    # Observability extras: the structural span-tree digest (a second
    # jobs-width determinism witness) and the merged metrics snapshot.
    if getattr(fp, "trace", False):
        record["span_digest"] = fp.span_digest()
    if getattr(fp, "metrics", False):
        record["metrics"] = fp.merged_metrics()
    return record


def crash_json_path(root: Optional[os.PathLike] = None) -> Path:
    """Where crash-exploration records land: ``$REPRO_BENCH_CRASH_JSON``
    when set, else ``BENCH_crash.json`` under *root* (default: cwd)."""
    env = os.environ.get("REPRO_BENCH_CRASH_JSON")
    if env:
        return Path(env)
    return Path(root) / CRASH_FILENAME if root else Path.cwd() / CRASH_FILENAME


def crash_record(report, wall_s: float) -> Dict[str, Any]:
    """Build the JSON record for one crash-exploration run.

    *report* is a :class:`~repro.crash.engine.CrashReport`; the
    violation digest is the determinism witness compared across
    ``--jobs`` widths.
    """
    record = {
        "wall_s": round(wall_s, 6),
        "jobs": report.jobs,
        "profile": report.profile,
        "workload": report.workload,
        "writes": report.writes,
        "epochs": report.epochs,
        "states_explored": report.states_explored,
        "violations": len(report.violations),
        "violations_by_oracle": report.violations_by_oracle(),
        "violation_digest": report.violation_digest(),
    }
    if getattr(report, "traced", False):
        record["span_digest"] = report.span_digest()
    return record


def array_json_path(root: Optional[os.PathLike] = None) -> Path:
    """Where redundancy-array records land: ``$REPRO_BENCH_ARRAY_JSON``
    when set, else ``BENCH_array.json`` under *root* (default: cwd)."""
    env = os.environ.get("REPRO_BENCH_ARRAY_JSON")
    if env:
        return Path(env)
    return Path(root) / ARRAY_FILENAME if root else Path.cwd() / ARRAY_FILENAME


def array_record(geometry: str, members: int, wall_s: float,
                 throughput: Dict[str, Any],
                 stats: Optional[Any] = None,
                 **extra: Any) -> Dict[str, Any]:
    """Build the JSON record for one array-geometry benchmark.

    *throughput* carries the per-phase numbers (healthy read/write,
    degraded read, rebuild — blocks and virtual MB/s); *stats* is the
    array's logical :class:`~repro.disk.disk.DiskStats` after the run.
    Extra keyword context (event digests, scrub counts...) merges in.
    """
    record: Dict[str, Any] = {
        "geometry": geometry,
        "members": members,
        "wall_s": round(wall_s, 6),
        "throughput": throughput,
    }
    if stats is not None:
        record["io"] = {
            "reads": stats.reads,
            "writes": stats.writes,
            "bytes_read": stats.bytes_read,
            "bytes_written": stats.bytes_written,
            "busy_time_s": round(stats.busy_time_s, 6),
        }
    record.update(extra)
    return record


def fleet_json_path(root: Optional[os.PathLike] = None) -> Path:
    """Where fleet-campaign records land: ``$REPRO_BENCH_FLEET_JSON``
    when set, else ``BENCH_fleet.json`` under *root* (default: cwd)."""
    env = os.environ.get("REPRO_BENCH_FLEET_JSON")
    if env:
        return Path(env)
    return Path(root) / FLEET_FILENAME if root else Path.cwd() / FLEET_FILENAME


def fleet_record(report, wall_s: float, **extra: Any) -> Dict[str, Any]:
    """Build the JSON record for one fleet campaign.

    *report* is a :class:`repro.fleet.campaign.FleetReport`; the record
    carries the loss matrix, the per-cell detail, the analytic
    cross-check, and the campaign's outcome digest.  Extra keyword
    context (``event_digest_jobs1``...) merges in so ``bench --compare``
    can hard-fail on any intra-entry digest disagreement.
    """
    record = report.to_record()
    record["wall_s"] = round(wall_s, 6)
    record["jobs"] = report.jobs
    record["digest"] = report.digest
    record.update(extra)
    return record


def table6_record(run, wall_s: float) -> Dict[str, Any]:
    """Build the JSON record for a Table-6 variant sweep."""
    benches: Dict[str, Any] = {}
    for bench, rows in run.results.items():
        benches[bench] = {
            "variants": [
                {"label": r.label, "seconds": round(r.seconds, 6),
                 "reads": r.reads, "writes": r.writes}
                for r in rows
            ],
            "normalized": [round(x, 4) for x in run.normalized(bench)],
        }
    return {"wall_s": round(wall_s, 6), "benches": benches}


def record_entry(
    name: str,
    record: Dict[str, Any],
    path: Optional[os.PathLike] = None,
) -> Path:
    """Merge one named record into the timing JSON (atomic rewrite).

    A missing or unreadable file starts fresh rather than failing — the
    timing layer must never take a benchmark down with it.
    """
    target = Path(path) if path is not None else bench_json_path()
    data: Dict[str, Any] = {"schema": SCHEMA, "entries": {}}
    try:
        existing = json.loads(target.read_text())
        if isinstance(existing, dict) and isinstance(existing.get("entries"), dict):
            data["entries"] = existing["entries"]
    except (OSError, ValueError):
        pass
    data["entries"][name] = record
    data["generated_at"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    tmp = target.with_suffix(target.suffix + ".tmp")
    tmp.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    tmp.replace(target)
    return target
