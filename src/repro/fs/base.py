"""Shared scaffolding for the simulated file systems.

Holds what every FS in the study has in common — mount state, the
syslog, operation framing around the journal, crash simulation, and
gray-box access to the raw disk — while each file system keeps its own
*failure policy* in its own code, which is precisely where the paper
locates the interesting behaviour.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Optional

from repro.common.errors import Errno, FSError, KernelPanic, ReadOnlyError
from repro.common.syslog import SysLog
from repro.obs.events import EventLog, JournalCommitEvent
from repro.vfs.api import FileSystem
from repro.vfs.fdtable import FDTable
from repro.vfs.generic import BufferLayer


class JournaledFS(FileSystem):
    """Base class: a mounted, journaling file system over a device."""

    name = "journaled"
    GENERIC_READ_RETRIES = 0

    def __init__(
        self,
        device,
        sync_mode: bool = True,
        commit_every: int = 64,
        commit_stall_s: Optional[float] = None,
    ):
        super().__init__()
        self.device = device
        # Join the device stack's typed-event stream when it has one, so
        # injector I/O, buffer-layer retries, journal commits, and this
        # FS's policy events interleave in one ordered record.
        shared = getattr(device, "events", None)
        self.events: EventLog = shared if shared is not None else EventLog()
        self.syslog = SysLog(self.events)
        self.buf = BufferLayer(
            device, self.syslog, self.name, read_retries=self.GENERIC_READ_RETRIES
        )
        self.sync_mode = sync_mode
        self.commit_every = commit_every
        if commit_stall_s is None:
            geometry = getattr(self._raw_disk() or object(), "geometry", None)
            commit_stall_s = geometry.rotation_s * 0.75 if geometry else 0.006
        self.commit_stall_s = commit_stall_s
        self.fdtable = FDTable()
        self.journal = None
        self._mounted = False
        self._read_only = False
        self._ops_since_commit = 0
        #: Open floating journal-transaction span (0 = none / untraced).
        self._txn_span = 0

    # -- state -------------------------------------------------------------

    @property
    def mounted(self) -> bool:
        return self._mounted

    @property
    def read_only(self) -> bool:
        return self._read_only

    @property
    def block_size(self) -> int:
        return self.device.block_size

    def _ensure_mounted(self) -> None:
        if not self._mounted:
            raise FSError(Errno.EINVAL, f"{self.name}: not mounted")

    # -- tracing -----------------------------------------------------------

    def _tracer(self):
        """The span tracer bound to this FS's event stream (or None)."""
        return getattr(self.events, "tracer", None)

    def _span(self, name: str, category: str = "phase", detail: str = ""):
        """Context manager for an FS-internal span (mount phases,
        journal replay, checksum sweeps).  A no-op context when tracing
        is off, so call sites never branch."""
        tracer = self._tracer()
        if tracer is None or not tracer.enabled:
            return contextlib.nullcontext(0)
        return tracer.span(name, category, detail, source=self.name)

    # -- operation framing ------------------------------------------------------

    def _run_modifying(self, body: Callable[[], object]):
        self._begin_op(modifying=True)
        try:
            result = body()
        except KernelPanic:
            self._mounted = False
            raise
        except Exception:
            # Journaling kernels commit whatever the half-finished
            # operation already logged; there is no rollback.
            self._end_op(modifying=True)
            raise
        self._end_op(modifying=True)
        return result

    def _begin_op(self, modifying: bool) -> None:
        self._ensure_mounted()
        if modifying:
            if self._read_only or (self.journal and self.journal.aborted):
                raise ReadOnlyError()
            if self.journal is not None:
                self.journal.begin()
                tracer = self._tracer()
                if tracer is not None and tracer.enabled and not self._txn_span:
                    # Floating: the transaction outlives the op that
                    # opened it (async mode batches many ops per txn),
                    # so it must not capture the op-span nesting stack.
                    self._txn_span = tracer.start(
                        f"{self.name}-txn", "txn",
                        source=self.name, floating=True,
                    )

    def _end_op(self, modifying: bool) -> None:
        if not modifying or self.journal is None or self.journal.aborted:
            return
        self._ops_since_commit += 1
        if self.sync_mode:
            self.journal.commit()
            self.journal.checkpoint()
            self._note_commit(self._ops_since_commit)
            self._ops_since_commit = 0
        elif (self._ops_since_commit >= self.commit_every
              or self._journal_pressure()):
            self.journal.commit()
            self._note_commit(self._ops_since_commit)
            self._ops_since_commit = 0

    def _note_commit(self, ops: int) -> None:
        """Emit the typed commit-barrier event (not a syslog line)."""
        self.events.emit(JournalCommitEvent(self.name, ops))
        if self._txn_span:
            tracer = self._tracer()
            if tracer is not None:
                tracer.end(self._txn_span)
            self._txn_span = 0

    def _journal_pressure(self) -> bool:
        """Commit early when the running transaction approaches the
        journal's capacity (JBD does the same)."""
        current = getattr(self.journal, "current", None)
        if current is None:
            return False
        nblocks = getattr(self.journal, "nblocks", 0)
        return len(current.meta) >= max(nblocks // 2, 8)

    # -- sync / crash --------------------------------------------------------------

    def sync(self) -> None:
        self._ensure_mounted()
        if self._read_only:
            return
        self.journal.commit()
        self.journal.checkpoint()
        self._note_commit(self._ops_since_commit)
        self._ops_since_commit = 0
        flush = getattr(self.device, "flush", None)
        if flush is not None:
            flush()

    def fsync(self, fd: int) -> None:
        self._ensure_mounted()
        self.fdtable.get(fd)
        if self._read_only:
            raise ReadOnlyError()
        self.journal.commit()
        if self.sync_mode:
            self.journal.checkpoint()
        self._note_commit(self._ops_since_commit)

    def commit_transaction(self) -> None:
        """Commit the running transaction to the log *without*
        checkpointing it to home locations.

        This is the crash-engine's epoch barrier: the transaction is
        durable in the write-ahead log (recovery will replay it) while
        its home-location writes remain pending, which is exactly the
        window crash-state exploration enumerates.
        """
        self._ensure_mounted()
        if self._read_only:
            raise ReadOnlyError()
        self.journal.commit()
        self._note_commit(self._ops_since_commit)
        self._ops_since_commit = 0

    def crash(self) -> None:
        """Power loss: volatile state vanishes; the on-disk log remains."""
        if self.journal is not None:
            self.journal.crash()
        self.fdtable.close_all()
        self._mounted = False
        self._read_only = False
        if self._txn_span:
            tracer = self._tracer()
            if tracer is not None:
                tracer.end(self._txn_span, "error")
            self._txn_span = 0

    def crash_after(self, ops) -> None:
        """Run *ops* committed-but-not-checkpointed, then crash."""
        self._ensure_mounted()
        self.sync()
        saved = self.sync_mode
        self.sync_mode = False
        try:
            ops(self)
            self.journal.commit()
            self._note_commit(self._ops_since_commit)
        finally:
            self.sync_mode = saved
        self.crash()

    # -- gray-box disk access ------------------------------------------------------

    def _stall(self, seconds: float) -> None:
        stall = getattr(self.device, "stall", None)
        if stall is not None:
            stall(seconds)

    def _raw_disk(self):
        dev = self.device
        while dev is not None and not hasattr(dev, "peek"):
            dev = getattr(dev, "lower", None)
        return dev

    def _peek(self, block: int) -> bytes:
        raw = self._raw_disk()
        if raw is not None:
            return raw.peek(block)
        return self.device.read_block(block)

    def _peek_view(self, block: int):
        """Zero-copy gray-box read: a buffer over the raw block contents,
        valid until the block is next written.  Falls back to
        :meth:`_peek` on devices without slab views."""
        raw = self._raw_disk()
        peek_view = getattr(raw, "peek_view", None)
        if peek_view is not None:
            return peek_view(block)
        return self._peek(block)
