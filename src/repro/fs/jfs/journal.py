"""JFS's record-level journal.

Unlike ext3 and ReiserFS, which journal whole block images, JFS logs
*records* — byte-range patches against metadata blocks — to reduce
journal traffic (§5.3).  A transaction is a run of record blocks
sharing a sequence number; the final block carries a commit flag and is
issued only after an ordering wait.

Record blocks carry a magic number and are sanity-checked during
replay; a failed check aborts the replay (§5.3) — in contrast to the
blind j-data replay of ext3/ReiserFS.

Write policy (injected by the FS): record-block writes are *ignored*
on failure like most JFS writes (D_zero), but a journal-superblock
write failure crashes the system (R_stop) — one of the paper's
illogical inconsistencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from struct import Struct
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import CorruptionDetected, DiskError
from repro.common.structs import U32
from repro.common.syslog import SysLog

JLOG_MAGIC = 0x474F4C4A  # "JLOG"

_SUPER_STRUCT = Struct("<IIII")  # magic, next_seq, clean, pad
_BLOCK_HDR = Struct("<IIHH")  # magic, seq, nrecords, flags
_BLOCK_HDR_SIZE = _BLOCK_HDR.size
_REC_HDR = Struct("<IHH")  # home block, offset, length
_REC_HDR_SIZE = _REC_HDR.size

FLAG_COMMIT = 1


def pack_log_super(block_size: int, next_seq: int, clean: bool) -> bytes:
    payload = _SUPER_STRUCT.pack(JLOG_MAGIC, next_seq, 1 if clean else 0, 0)
    return payload + b"\x00" * (block_size - len(payload))


def parse_log_super(data: bytes) -> Optional[Tuple[int, bool]]:
    magic, next_seq, clean, _ = _SUPER_STRUCT.unpack_from(data)
    if magic != JLOG_MAGIC:
        return None
    return next_seq, bool(clean)


@dataclass(frozen=True)
class LogRecord:
    """One redo record: patch *length* bytes at *offset* of *home*."""

    home: int
    offset: int
    data: bytes

    def packed_size(self) -> int:
        return _REC_HDR_SIZE + len(self.data)


def _pack_record_block(block_size: int, seq: int, records: List[LogRecord],
                       commit: bool) -> bytes:
    out = bytearray(_BLOCK_HDR.pack(JLOG_MAGIC, seq, len(records),
                                FLAG_COMMIT if commit else 0))
    for rec in records:
        out += _REC_HDR.pack(rec.home, rec.offset, len(rec.data))
        out += rec.data
    if len(out) > block_size:
        raise ValueError("record block overflow")
    return bytes(out) + b"\x00" * (block_size - len(out))


def _parse_record_block(data: bytes, block: int) -> Tuple[int, List[LogRecord], bool]:
    magic, seq, nrecords, flags = _BLOCK_HDR.unpack_from(data)
    if magic != JLOG_MAGIC:
        raise CorruptionDetected(block, "journal record block has bad magic")
    records: List[LogRecord] = []
    off = _BLOCK_HDR_SIZE
    for _ in range(nrecords):
        if off + _REC_HDR_SIZE > len(data):
            raise CorruptionDetected(block, "journal record runs off the block")
        home, roff, rlen = _REC_HDR.unpack_from(data, off)
        off += _REC_HDR_SIZE
        if off + rlen > len(data):
            raise CorruptionDetected(block, "journal record payload truncated")
        records.append(LogRecord(home, roff, bytes(data[off:off + rlen])))
        off += rlen
    return seq, records, bool(flags & FLAG_COMMIT)


def diff_records(home: int, old: Optional[bytes], new: bytes,
                 max_span_gap: int = 16) -> List[LogRecord]:
    """Compute patch records turning *old* into *new* (record-level
    logging).  With no prior image, one whole-block record results."""
    if old is None or len(old) != len(new):
        return [LogRecord(home, 0, new)]
    spans: List[Tuple[int, int]] = []
    i, n = 0, len(new)
    while i < n:
        if old[i] == new[i]:
            i += 1
            continue
        j = i + 1
        gap = 0
        while j < n and gap <= max_span_gap:
            if old[j] != new[j]:
                gap = 0
            else:
                gap += 1
            j += 1
        end = j - gap
        spans.append((i, end))
        i = j
    return [LogRecord(home, s, new[s:e]) for s, e in spans]


WriteFn = Callable[[int, bytes], None]
TypeFn = Callable[[int, str], None]
StallFn = Callable[[float], None]


class RecordJournal:
    """The JFS redo log over a fixed region of the volume.

    Presents the same surface as the block journal (begin / log /
    commit / checkpoint / recover / cached / abort / crash) so the
    shared FS framing drives it."""

    def __init__(
        self,
        super_block: int,
        data_start: int,
        nblocks: int,
        block_size: int,
        syslog: SysLog,
        super_write: WriteFn,       # panics on failure (JFS policy)
        record_write: WriteFn,      # failures ignored (D_zero)
        home_write: WriteFn,
        read_block: Callable[[int], bytes],
        set_type: TypeFn,
        stall: StallFn,
        commit_stall_s: float,
    ):
        self.super_block = super_block
        self.data_start = data_start
        self.nblocks = nblocks
        self.block_size = block_size
        self.syslog = syslog
        self._super_write = super_write
        self._record_write = record_write
        self._home_write = home_write
        self._read_block = read_block
        self._set_type = set_type
        self._stall = stall
        self.commit_stall_s = commit_stall_s

        self.seq = 1
        self.head = 0  # next free data slot
        self.aborted = False
        self._txn_records: List[LogRecord] = []
        self._txn_view: Dict[int, bytes] = {}
        #: Committed-but-unwritten metadata images.
        self.checkpoint_blocks: Dict[int, bytes] = {}
        self.commits = 0
        self.in_txn = False

    # -- transaction construction ----------------------------------------------

    def begin(self) -> None:
        self.in_txn = True

    def log(self, home: int, new_payload: bytes, old_payload: Optional[bytes]) -> None:
        """Record the change turning *old_payload* into *new_payload*."""
        base = self._txn_view.get(home, old_payload)
        max_data = self.block_size - _BLOCK_HDR_SIZE - _REC_HDR_SIZE
        for rec in diff_records(home, base, new_payload):
            # A record must fit in one journal block; split large spans.
            for off in range(0, len(rec.data), max_data):
                self._txn_records.append(
                    LogRecord(rec.home, rec.offset + off, rec.data[off:off + max_data])
                )
        self._txn_view[home] = bytes(new_payload)

    def cached(self, block: int) -> Optional[bytes]:
        if block in self._txn_view:
            return self._txn_view[block]
        return self.checkpoint_blocks.get(block)

    # -- commit ------------------------------------------------------------------

    def commit(self) -> None:
        if not self._txn_records:
            self._txn_view.clear()
            self.in_txn = False
            return
        if self.aborted:
            self._txn_records.clear()
            self._txn_view.clear()
            self.in_txn = False
            return
        capacity = self.block_size - _BLOCK_HDR_SIZE
        batches: List[List[LogRecord]] = [[]]
        used = 0
        for rec in self._txn_records:
            size = rec.packed_size()
            if used + size > capacity and batches[-1]:
                batches.append([])
                used = 0
            batches[-1].append(rec)
            used += size
        if self.head + len(batches) > self.nblocks:
            self.checkpoint()
        for i, batch in enumerate(batches):
            is_last = i == len(batches) - 1
            if is_last:
                # Ordering: earlier record blocks must be durable before
                # the commit-flagged block is issued.
                self._stall(self.commit_stall_s)
            block = self.data_start + self.head
            self._set_type(block, "j-data")
            self._record_write(block, _pack_record_block(
                self.block_size, self.seq, batch, commit=is_last))
            self.head += 1
        self.checkpoint_blocks.update(self._txn_view)
        self._txn_records.clear()
        self._txn_view.clear()
        self.seq += 1
        self.commits += 1
        self.in_txn = False

    def checkpoint(self) -> None:
        for block in sorted(self.checkpoint_blocks):
            self._home_write(block, self.checkpoint_blocks[block])
        self.checkpoint_blocks.clear()
        self.head = 0
        self._set_type(self.super_block, "j-super")
        self._super_write(self.super_block,
                          pack_log_super(self.block_size, self.seq, clean=True))

    def abort(self) -> None:
        self.aborted = True
        self._txn_records.clear()
        self._txn_view.clear()

    def crash(self) -> None:
        self._txn_records.clear()
        self._txn_view.clear()
        self.checkpoint_blocks.clear()
        self.in_txn = False

    # -- recovery -----------------------------------------------------------------

    def recover(self) -> int:
        """Replay committed transactions.  Record blocks are
        sanity-checked; a failed check aborts the replay (§5.3)."""
        raw = self._read_block(self.super_block)
        parsed = parse_log_super(raw)
        if parsed is None:
            raise CorruptionDetected(self.super_block, "bad journal superblock magic")
        next_seq, clean = parsed
        self.seq = max(self.seq, next_seq)
        replayed = 0
        pending: List[LogRecord] = []
        pos = 0
        expected = next_seq
        while pos < self.nblocks:
            block = self.data_start + pos
            data = self._read_block(block)
            magic = U32.unpack_from(data)[0]
            if magic != JLOG_MAGIC:
                break
            seq, records, commit = _parse_record_block(data, block)
            if seq != expected:
                break
            pending.extend(records)
            pos += 1
            if commit:
                self._apply(pending)
                pending = []
                replayed += 1
                expected += 1
                self.seq = max(self.seq, expected)
        self.head = 0
        self._set_type(self.super_block, "j-super")
        self._super_write(self.super_block,
                          pack_log_super(self.block_size, self.seq, clean=True))
        if replayed:
            self.syslog.recovery("jfs-log", "recovery",
                                 f"replayed {replayed} transactions",
                                 mechanism="journal-replay")
        return replayed

    def _apply(self, records: List[LogRecord]) -> None:
        images: Dict[int, bytearray] = {}
        for rec in records:
            if rec.home not in images:
                try:
                    images[rec.home] = bytearray(self._read_block(rec.home))
                except DiskError:
                    self.syslog.detection("jfs-log", "read-error",
                                          f"replay target {rec.home} unreadable",
                                          mechanism="error-code", block=rec.home)
                    continue
            img = images[rec.home]
            img[rec.offset:rec.offset + len(rec.data)] = rec.data
        for home, img in images.items():
            self._home_write(home, bytes(img))
