"""IBM JFS, as characterized by the study (§5.3) — "the kitchen sink".

JFS is the least consistent system in the study: its detection and
recovery choices vary dramatically with block type.  As code paths:

* **Reads**: error codes are checked; all metadata reads go through the
  *generic* kernel layer, which retries once (``R_retry``) — the split
  between generic and specific code that the paper blames for policy
  diffusion.  After the retry: most reads propagate (``R_propagate``);
  a failed block-allocation-map or inode-allocation-map page read
  *crashes the system* (``R_stop``); a failed primary-superblock read
  falls back to the adjacent secondary copy (``R_redundancy``); a
  failed aggregate-inode read does **not** use the secondary aggregate
  inode table (bug).
* **Writes**: ignored (``D_zero``) — except a journal-superblock write
  failure, which crashes the system (``R_stop``).
* **Sanity**: superblock magic+version; entry/pointer counts in inode,
  directory and internal tree blocks; an equality check on the
  duplicated free-count field of allocation-map pages.  A failed check
  propagates the error and remounts read-only; during journal replay it
  aborts the replay.
* **Documented bugs reproduced here**: a corrupt *primary* superblock
  fails the mount without consulting the intact secondary (while a
  primary read *error* does use it); an internal tree block that fails
  its sanity check yields a **blank page** to the user (``R_guess``);
  and in inode allocation the generic layer detects and retries a
  failed inode-map-control read but JFS ignores the error and proceeds
  with a zeroed buffer, corrupting the file system.
"""

from __future__ import annotations

import stat as _stat
from typing import Dict, List, Optional, Tuple

from repro.common.bitmap import Bitmap
from repro.common.errors import (
    CorruptionDetected,
    DiskError,
    Errno,
    FSError,
    KernelPanic,
)
from repro.common.structs import U32x2
from repro.common.syslog import Severity
from repro.fs.base import JournaledFS
from repro.fs.jfs.config import JFSConfig
from repro.fs.jfs.journal import RecordJournal
from repro.fs.jfs.structures import (
    AggregateInode,
    JFSInode,
    JFSSuper,
    check_inode_block,
    pack_dir_block,
    pack_map_block,
    pack_tree_block,
    unpack_dir_block,
    unpack_map_block,
    unpack_tree_block,
)
from repro.vfs.fdtable import O_APPEND, O_CREAT, O_TRUNC
from repro.vfs.paths import MAX_SYMLINK_DEPTH, dirname_basename, is_ancestor, split_path
from repro.vfs.stat import (
    DEFAULT_DIR_MODE,
    DEFAULT_FILE_MODE,
    DEFAULT_LINK_MODE,
    StatResult,
    StatVFS,
)

FT_REG, FT_DIR, FT_SYMLINK = 1, 2, 7
ROOT_INO = 2


class JFS(JournaledFS):
    """IBM JFS over a :class:`BlockDevice`."""

    name = "jfs"

    #: Table 4: JFS on-disk structures.
    BLOCK_TYPES: Dict[str, str] = {
        "inode": "Info about files and directories",
        "dir": "List of files in directory",
        "bmap": "Tracks data blocks per group",
        "imap": "Tracks inodes per group",
        "internal": "Allows for large files to exist",
        "data": "Holds user data",
        "super": "Contains info about file system",
        "j-super": "Describes journal",
        "j-data": "Contains records of transactions",
        "aggr-inode": "Contains info about disk partition",
        "bmap-desc": "Describes block allocation map",
        "imap-cntl": "Summary info about imaps",
    }

    #: The generic layer JFS calls retries metadata reads once (§5.3).
    GENERIC_READ_RETRIES = 1

    def __init__(self, device, sync_mode: bool = True, commit_every: int = 64,
                 commit_stall_s: Optional[float] = None):
        super().__init__(device, sync_mode=sync_mode, commit_every=commit_every,
                         commit_stall_s=commit_stall_s)
        self.sb: Optional[JFSSuper] = None
        self.config: Optional[JFSConfig] = None
        self.aggr: Optional[AggregateInode] = None
        self.journal: Optional[RecordJournal] = None
        self._types: Dict[int, str] = {}

    # ==================================================================
    # Failure-policy write hooks
    # ==================================================================

    def _write_nocheck(self, block: int, data: bytes) -> None:
        # Most JFS write errors are ignored (D_zero, §5.3).
        self.buf.bwrite_nocheck(block, data)

    def _write_logsuper(self, block: int, data: bytes) -> None:
        # ... except the journal superblock: failure crashes (R_stop).
        try:
            self.buf.bwrite(block, data, retries=0)
        except DiskError as exc:
            self.syslog.detection(self.name, "write-error",
                                  f"journal superblock write failed: {exc}",
                                  mechanism="error-code",
                                  severity=Severity.CRITICAL, block=block)
            raise KernelPanic("jfs", "cannot update journal superblock") from exc

    # ==================================================================
    # Lifecycle
    # ==================================================================

    def mount(self) -> None:
        if self._mounted:
            raise FSError(Errno.EINVAL, "already mounted")
        sb = self._read_superblock()
        self.sb = sb
        self.config = JFSConfig(
            block_size=sb.block_size,
            total_blocks=sb.total_blocks,
            journal_blocks=sb.journal_blocks,
            num_inodes=sb.num_inodes,
            num_direct=sb.num_direct,
            tree_fanout=sb.tree_fanout,
        )
        self.aggr = self._read_aggregate_inode()
        self._read_bmap_descriptor()
        self.journal = RecordJournal(
            super_block=self.config.journal_super,
            data_start=self.config.journal_data_start,
            nblocks=self.config.journal_blocks,
            block_size=self.block_size,
            syslog=self.syslog,
            super_write=self._write_logsuper,
            record_write=self._write_nocheck,
            home_write=self._write_nocheck,
            read_block=self.buf.bread,
            set_type=self._set_type,
            stall=self._stall,
            commit_stall_s=self.commit_stall_s,
        )
        self._rebuild_types()
        try:
            with self._span("journal-replay", "txn"):
                self.journal.recover()
        except CorruptionDetected as exc:
            # A sanity-check failure during replay aborts the replay
            # (R_stop) and the volume comes up read-only (§5.3).
            self.syslog.detection(self.name, "sanity-fail", str(exc),
                                  mechanism="sanity", block=exc.block)
            self.syslog.action(self.name, "remount-ro", "journal replay aborted")
            self.journal.abort()
            self._read_only = True
        except DiskError as exc:
            self.syslog.detection(self.name, "read-error",
                                  f"journal unreadable during recovery: {exc}",
                                  mechanism="error-code")
            self.syslog.action(self.name, "remount-ro", "journal replay aborted")
            self.journal.abort()
            self._read_only = True
        self._mounted = True
        self._rebuild_types()

    def _read_superblock(self) -> JFSSuper:
        try:
            raw = self.buf.bread(0)
        except DiskError as exc:
            # Read *error* on the primary: fall back to the secondary
            # copy (R_redundancy) to complete the mount (§5.3).
            self.syslog.detection(self.name, "read-error",
                                  f"primary superblock unreadable: {exc}",
                                  mechanism="error-code", block=0)
            try:
                raw = self.buf.bread(1)
            except DiskError as exc2:
                self.syslog.action(self.name, "mount-failed", "both superblocks unreadable")
                raise FSError(Errno.EIO, "cannot read superblock") from exc2
            sb = JFSSuper.unpack(raw)
            if sb.is_valid():
                self.syslog.recovery(self.name, "redundancy-used",
                                     "mounted from secondary superblock",
                                     mechanism="redundancy")
                return sb
            raise FSError(Errno.EUCLEAN, "secondary superblock invalid")
        sb = JFSSuper.unpack(raw)
        if not sb.is_valid():
            # The paper's inconsistency (§5.3): a *corrupt* primary is
            # not recovered from the secondary — the mount just fails.
            self.syslog.detection(self.name, "sanity-fail", "bad superblock magic",
                                  mechanism="sanity", block=0)
            self.syslog.action(self.name, "mount-failed",
                               "primary superblock corrupt; secondary not consulted")
            raise FSError(Errno.EUCLEAN, "bad superblock")
        return sb

    def _read_aggregate_inode(self) -> AggregateInode:
        cfg = self.config
        try:
            raw = self.buf.bread(cfg.aggr_inode_block)
        except DiskError as exc:
            # Bug (§5.3): the secondary aggregate inode table exists but
            # is not consulted when the primary read returns an error.
            self.syslog.detection(self.name, "read-error",
                                  f"aggregate inode unreadable: {exc}",
                                  mechanism="error-code",
                                  block=cfg.aggr_inode_block)
            raise FSError(Errno.EIO, "cannot read aggregate inode") from exc
        aggr = AggregateInode.unpack(raw)
        if not aggr.is_valid():
            self.syslog.detection(self.name, "sanity-fail", "aggregate inode magic bad",
                                  mechanism="sanity", block=cfg.aggr_inode_block)
            raise FSError(Errno.EUCLEAN, "aggregate inode corrupt")
        return aggr

    def _read_bmap_descriptor(self) -> None:
        cfg = self.config
        try:
            self.buf.bread(cfg.bmap_desc_block)
        except DiskError as exc:
            self.syslog.detection(self.name, "read-error",
                                  f"bmap descriptor unreadable: {exc}",
                                  mechanism="error-code",
                                  block=cfg.bmap_desc_block)
            raise FSError(Errno.EIO, "cannot read bmap descriptor") from exc

    def unmount(self) -> None:
        self._ensure_mounted()
        if not self._read_only:
            self.journal.commit()
            self.journal.checkpoint()
            self.sb.generation += 1
            self._write_nocheck(0, self.sb.pack(self.block_size))
        self.fdtable.close_all()
        self._mounted = False

    def crash_after(self, ops) -> None:
        self._ensure_mounted()
        self.sync()
        saved = self.sync_mode
        self.sync_mode = False
        try:
            ops(self)
            self.journal.commit()
        finally:
            self.sync_mode = saved
        self.crash()

    # ==================================================================
    # Namespace operations (bodies share the common structure)
    # ==================================================================

    def creat(self, path: str, mode: int = 0o644) -> int:
        return self._run_modifying(lambda: self._do_creat(path, mode))

    def open(self, path: str, flags: int = 0, mode: int = 0o644) -> int:
        modifying = bool(flags & (O_CREAT | O_TRUNC))
        self._begin_op(modifying=modifying)
        try:
            fd = self._do_open(path, flags, mode)
        except KernelPanic:
            self._mounted = False
            raise
        except Exception:
            self._end_op(modifying=modifying)
            raise
        self._end_op(modifying=modifying)
        return fd

    def close(self, fd: int) -> None:
        self._ensure_mounted()
        self.fdtable.close(fd)

    def read(self, fd: int, size: int, offset: Optional[int] = None) -> bytes:
        self._begin_op(modifying=False)
        try:
            of = self.fdtable.get(fd)
            if not of.readable:
                raise FSError(Errno.EBADF, "fd not open for reading")
            inode = self._iget(of.ino)
            pos = of.offset if offset is None else offset
            end = min(pos + size, inode.size)
            if end <= pos:
                return b""
            bs = self.block_size
            chunks = []
            for fb in range(pos // bs, (end - 1) // bs + 1):
                chunk = self._read_file_block(of.ino, inode, fb)
                lo = pos - fb * bs if fb == pos // bs else 0
                hi = end - fb * bs if fb == (end - 1) // bs else bs
                chunks.append(chunk[lo:hi])
            if offset is None:
                of.offset = end
            return b"".join(chunks)
        finally:
            self._end_op(modifying=False)

    def write(self, fd: int, data: bytes, offset: Optional[int] = None) -> int:
        def body():
            of = self.fdtable.get(fd)
            if not of.writable:
                raise FSError(Errno.EBADF, "fd not open for writing")
            if not data:
                return 0
            inode = self._iget(of.ino)
            pos = inode.size if of.flags & O_APPEND else (
                of.offset if offset is None else offset
            )
            end = pos + len(data)
            bs = self.block_size
            if end > self.config.max_file_blocks * bs:
                raise FSError(Errno.EFBIG, "file too large")
            written = 0
            for fb in range(pos // bs, max(pos, end - 1) // bs + 1):
                lo = pos - fb * bs if fb == pos // bs else 0
                hi = end - fb * bs if fb == (end - 1) // bs else bs
                piece = data[written:written + (hi - lo)]
                bno = self._bmap(of.ino, inode, fb, allocate=True)
                if lo == 0 and hi == bs:
                    payload = piece
                else:
                    base = bytearray(self._read_file_block(of.ino, inode, fb)
                                     if fb * bs < inode.size else bytes(bs))
                    base[lo:hi] = piece
                    payload = bytes(base)
                # JFS does not journal user data; in-place write, errors
                # ignored (D_zero).
                self._types[bno] = "data"
                self._write_nocheck(bno, payload)
                written += hi - lo
            if end > inode.size:
                inode.size = end
            inode.mtime += 1.0
            self._iput(of.ino, inode)
            if offset is None or of.flags & O_APPEND:
                of.offset = end
            return written
        return self._run_modifying(body)

    def truncate(self, path: str, size: int) -> None:
        def body():
            ino = self._lookup(path, follow=True)
            inode = self._iget(ino)
            if _stat.S_ISDIR(inode.mode):
                raise FSError(Errno.EISDIR, path)
            if size < inode.size:
                self._shrink(ino, inode, size)
            inode.size = size
            inode.mtime += 1.0
            self._iput(ino, inode)
        self._run_modifying(body)

    def link(self, existing: str, new: str) -> None:
        def body():
            src = self._lookup(existing, follow=False)
            inode = self._iget(src)
            if _stat.S_ISDIR(inode.mode):
                raise FSError(Errno.EPERM, "hard links to directories are not allowed")
            parent_path, name = dirname_basename(self.resolve(new))
            parent_ino = self._lookup(parent_path, follow=True)
            if self._dir_find(parent_ino, name) is not None:
                raise FSError(Errno.EEXIST, new)
            self._dir_add(parent_ino, name, src, FT_REG)
            inode.links += 1
            self._iput(src, inode)
        self._run_modifying(body)

    def unlink(self, path: str) -> None:
        def body():
            parent_path, name = dirname_basename(self.resolve(path))
            parent_ino = self._lookup(parent_path, follow=True)
            found = self._dir_find(parent_ino, name)
            if found is None:
                raise FSError(Errno.ENOENT, path)
            child_ino, _ = found
            inode = self._iget(child_ino)
            if _stat.S_ISDIR(inode.mode):
                raise FSError(Errno.EISDIR, path)
            self._dir_remove(parent_ino, name)
            if inode.links <= 1:
                self._shrink(child_ino, inode, 0)
                self._free_inode(child_ino)
            else:
                inode.links -= 1
                self._iput(child_ino, inode)
        self._run_modifying(body)

    def symlink(self, target: str, linkpath: str) -> None:
        def body():
            if len(target.encode()) > self.block_size:
                raise FSError(Errno.ENAMETOOLONG, "symlink target too long")
            parent_path, name = dirname_basename(self.resolve(linkpath))
            parent_ino = self._lookup(parent_path, follow=True)
            if self._dir_find(parent_ino, name) is not None:
                raise FSError(Errno.EEXIST, linkpath)
            ino = self._alloc_inode(DEFAULT_LINK_MODE)
            inode = self._iget(ino)
            bno = self._bmap(ino, inode, 0, allocate=True)
            raw = target.encode()
            self._types[bno] = "data"
            self._write_nocheck(bno, raw + b"\x00" * (self.block_size - len(raw)))
            inode.size = len(raw)
            self._iput(ino, inode)
            self._dir_add(parent_ino, name, ino, FT_SYMLINK)
        self._run_modifying(body)

    def readlink(self, path: str) -> str:
        self._begin_op(modifying=False)
        try:
            ino = self._lookup(path, follow=False)
            inode = self._iget(ino)
            if not _stat.S_ISLNK(inode.mode):
                raise FSError(Errno.EINVAL, "not a symlink")
            data = self._read_file_block(ino, inode, 0)
            return data[:inode.size].decode(errors="replace")
        finally:
            self._end_op(modifying=False)

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        def body():
            parent_path, name = dirname_basename(self.resolve(path))
            parent_ino = self._lookup(parent_path, follow=True)
            parent = self._iget(parent_ino)
            if not _stat.S_ISDIR(parent.mode):
                raise FSError(Errno.ENOTDIR, parent_path)
            if self._dir_find(parent_ino, name) is not None:
                raise FSError(Errno.EEXIST, path)
            ino = self._alloc_inode((DEFAULT_DIR_MODE & ~0o777) | (mode & 0o777))
            inode = self._iget(ino)
            inode.links = 2
            bno = self._bmap(ino, inode, 0, allocate=True, kind="dir")
            payload = pack_dir_block([(ino, FT_DIR, "."), (parent_ino, FT_DIR, "..")],
                                     self.block_size)
            self._meta_update(bno, payload)
            inode.size = self.block_size
            self._iput(ino, inode)
            self._dir_add(parent_ino, name, ino, FT_DIR)
            parent = self._iget(parent_ino)
            parent.links += 1
            self._iput(parent_ino, parent)
        self._run_modifying(body)

    def rmdir(self, path: str) -> None:
        def body():
            resolved = self.resolve(path)
            if resolved == "/":
                raise FSError(Errno.EINVAL, "cannot remove root")
            parent_path, name = dirname_basename(resolved)
            parent_ino = self._lookup(parent_path, follow=True)
            found = self._dir_find(parent_ino, name)
            if found is None:
                raise FSError(Errno.ENOENT, path)
            child_ino, _ = found
            inode = self._iget(child_ino)
            if not _stat.S_ISDIR(inode.mode):
                raise FSError(Errno.ENOTDIR, path)
            if any(n not in (".", "..") for _, _, n in self._dir_entries(child_ino, inode)):
                raise FSError(Errno.ENOTEMPTY, path)
            self._dir_remove(parent_ino, name)
            self._shrink(child_ino, inode, 0, kind="dir")
            self._free_inode(child_ino)
            parent = self._iget(parent_ino)
            parent.links = max(parent.links - 1, 0)
            self._iput(parent_ino, parent)
        self._run_modifying(body)

    def rename(self, old: str, new: str) -> None:
        def body():
            old_r, new_r = self.resolve(old), self.resolve(new)
            if is_ancestor(old_r, new_r) and old_r != new_r:
                raise FSError(Errno.EINVAL, "cannot move a directory into itself")
            old_pp, old_name = dirname_basename(old_r)
            new_pp, new_name = dirname_basename(new_r)
            old_parent = self._lookup(old_pp, follow=True)
            found = self._dir_find(old_parent, old_name)
            if found is None:
                raise FSError(Errno.ENOENT, old)
            if old_r == new_r:
                return  # renaming an existing name onto itself: no-op
            moving_ino, ftype = found
            moving = self._iget(moving_ino)
            moving_is_dir = _stat.S_ISDIR(moving.mode)
            new_parent = self._lookup(new_pp, follow=True)
            target = self._dir_find(new_parent, new_name)
            if target is not None:
                tino, _ = target
                tinode = self._iget(tino)
                if _stat.S_ISDIR(tinode.mode):
                    if not moving_is_dir:
                        raise FSError(Errno.EISDIR, new)
                    kids = self._dir_entries(tino, tinode)
                    if any(n not in (".", "..") for _, _, n in kids):
                        raise FSError(Errno.ENOTEMPTY, new)
                    self._dir_remove(new_parent, new_name)
                    self._shrink(tino, tinode, 0, kind="dir")
                    self._free_inode(tino)
                    np = self._iget(new_parent)
                    np.links = max(np.links - 1, 0)
                    self._iput(new_parent, np)
                else:
                    if moving_is_dir:
                        raise FSError(Errno.ENOTDIR, new)
                    self._dir_remove(new_parent, new_name)
                    if tinode.links <= 1:
                        self._shrink(tino, tinode, 0)
                        self._free_inode(tino)
                    else:
                        tinode.links -= 1
                        self._iput(tino, tinode)
            self._dir_remove(old_parent, old_name)
            self._dir_add(new_parent, new_name, moving_ino, ftype)
            if moving_is_dir and old_parent != new_parent:
                self._dir_set_dotdot(moving_ino, new_parent)
                op = self._iget(old_parent)
                op.links = max(op.links - 1, 0)
                self._iput(old_parent, op)
                np = self._iget(new_parent)
                np.links += 1
                self._iput(new_parent, np)
        self._run_modifying(body)

    def getdirentries(self, path: str) -> List[str]:
        self._begin_op(modifying=False)
        try:
            ino = self._lookup(path, follow=True)
            inode = self._iget(ino)
            if not _stat.S_ISDIR(inode.mode):
                raise FSError(Errno.ENOTDIR, path)
            return [n for _, _, n in self._dir_entries(ino, inode)]
        finally:
            self._end_op(modifying=False)

    def stat(self, path: str) -> StatResult:
        self._begin_op(modifying=False)
        try:
            ino = self._lookup(path, follow=True)
            return self._stat_of(ino)
        finally:
            self._end_op(modifying=False)

    def lstat(self, path: str) -> StatResult:
        self._begin_op(modifying=False)
        try:
            ino = self._lookup(path, follow=False)
            return self._stat_of(ino)
        finally:
            self._end_op(modifying=False)

    def statfs(self) -> StatVFS:
        self._ensure_mounted()
        return StatVFS(
            block_size=self.block_size,
            total_blocks=self.sb.total_blocks,
            free_blocks=self.sb.free_blocks,
            total_inodes=self.sb.num_inodes,
            free_inodes=self.sb.free_inodes,
        )

    def chmod(self, path: str, mode: int) -> None:
        def body():
            ino = self._lookup(path, follow=True)
            inode = self._iget(ino)
            inode.mode = (inode.mode & ~0o7777) | (mode & 0o7777)
            self._iput(ino, inode)
        self._run_modifying(body)

    def chown(self, path: str, uid: int, gid: int) -> None:
        def body():
            ino = self._lookup(path, follow=True)
            inode = self._iget(ino)
            inode.uid, inode.gid = uid, gid
            self._iput(ino, inode)
        self._run_modifying(body)

    def utimes(self, path: str, atime: float, mtime: float) -> None:
        def body():
            ino = self._lookup(path, follow=True)
            inode = self._iget(ino)
            inode.atime, inode.mtime = atime, mtime
            self._iput(ino, inode)
        self._run_modifying(body)

    # ==================================================================
    # Operation bodies
    # ==================================================================

    def _do_creat(self, path: str, mode: int) -> int:
        parent_path, name = dirname_basename(self.resolve(path))
        parent_ino = self._lookup(parent_path, follow=True)
        parent = self._iget(parent_ino)
        if not _stat.S_ISDIR(parent.mode):
            raise FSError(Errno.ENOTDIR, parent_path)
        found = self._dir_find(parent_ino, name)
        if found is not None:
            child_ino, _ = found
            inode = self._iget(child_ino)
            if _stat.S_ISDIR(inode.mode):
                raise FSError(Errno.EISDIR, path)
            self._shrink(child_ino, inode, 0)
            inode.size = 0
            self._iput(child_ino, inode)
            return self.fdtable.allocate(child_ino, 1)
        ino = self._alloc_inode((DEFAULT_FILE_MODE & ~0o777) | (mode & 0o777))
        self._dir_add(parent_ino, name, ino, FT_REG)
        return self.fdtable.allocate(ino, 1)

    def _do_open(self, path: str, flags: int, mode: int) -> int:
        resolved = self.resolve(path)
        try:
            ino = self._lookup(resolved, follow=True)
        except FSError as exc:
            if exc.errno is Errno.ENOENT and flags & O_CREAT:
                return self._do_creat(resolved, mode)
            raise
        inode = self._iget(ino)
        if _stat.S_ISDIR(inode.mode) and (flags & 0x3):
            raise FSError(Errno.EISDIR, path)
        if flags & O_TRUNC and not _stat.S_ISDIR(inode.mode):
            self._shrink(ino, inode, 0)
            inode.size = 0
            self._iput(ino, inode)
        return self.fdtable.allocate(ino, flags)

    # ==================================================================
    # Inodes
    # ==================================================================

    def _iget(self, ino: int) -> JFSInode:
        if not 1 <= ino <= self.sb.num_inodes:
            raise FSError(Errno.EUCLEAN, f"inode number {ino} out of range")
        block, off = self.config.inode_location(ino)
        raw = self._meta_bread(block, check="inode")
        return JFSInode.unpack(raw[off:off + self.config.inode_size])

    def _iput(self, ino: int, inode: JFSInode) -> None:
        block, off = self.config.inode_location(ino)
        raw = bytearray(self._meta_bread(block, check="inode"))
        raw[off:off + self.config.inode_size] = inode.pack(self.config.inode_size)
        # Refresh the header count.
        count = 0
        for slot in range(self.config.inodes_per_block):
            o = 8 + slot * self.config.inode_size
            if JFSInode.unpack(bytes(raw[o:o + self.config.inode_size])).is_allocated:
                count += 1
        raw[0:8] = U32x2.pack(count, 0)
        self._meta_update(block, bytes(raw))

    def _stat_of(self, ino: int) -> StatResult:
        inode = self._iget(ino)
        return StatResult(ino=ino, mode=inode.mode, nlink=inode.links,
                          uid=inode.uid, gid=inode.gid, size=inode.size,
                          atime=inode.atime, mtime=inode.mtime, ctime=inode.ctime)

    # ==================================================================
    # Directories
    # ==================================================================

    def _dir_blocks(self, ino: int, inode: JFSInode):
        # Directory ops on a non-directory must fail with ENOTDIR —
        # parsing file data as dirents would trip the sanity checks and
        # fail-stop the volume over a merely bad path.
        if not _stat.S_ISDIR(inode.mode):
            raise FSError(Errno.ENOTDIR, "not a directory")
        bs = self.block_size
        for fb in range((inode.size + bs - 1) // bs):
            bno = self._bmap(ino, inode, fb, allocate=False)
            if bno:
                yield fb, bno

    def _dir_entries(self, ino: int, inode: JFSInode) -> List[Tuple[int, int, str]]:
        out = []
        for _, bno in self._dir_blocks(ino, inode):
            raw = self._meta_bread(bno, check="dir")
            out.extend(self._parse_dir(raw, bno))
        return out

    def _parse_dir(self, raw: bytes, bno: int) -> List[Tuple[int, int, str]]:
        try:
            return unpack_dir_block(raw, bno, self.block_size)
        except CorruptionDetected as exc:
            # Sanity failure: propagate and remount read-only (§5.3).
            self.syslog.detection(self.name, "sanity-fail", str(exc),
                                  mechanism="sanity", block=bno)
            self._remount_ro()
            raise FSError(Errno.EUCLEAN, str(exc)) from exc

    def _dir_find(self, ino: int, name: str) -> Optional[Tuple[int, int]]:
        inode = self._iget(ino)
        for _, bno in self._dir_blocks(ino, inode):
            raw = self._meta_bread(bno, check="dir")
            for eino, ftype, ename in self._parse_dir(raw, bno):
                if ename == name and 0 < eino <= self.sb.num_inodes:
                    return eino, ftype
        return None

    def _dir_add(self, ino: int, name: str, child: int, ftype: int) -> None:
        inode = self._iget(ino)
        entry_size = 6 + len(name.encode())
        for _, bno in self._dir_blocks(ino, inode):
            raw = self._meta_bread(bno, check="dir")
            entries = self._parse_dir(raw, bno)
            used = 8 + sum(6 + len(n.encode("latin-1", errors="replace")[:255])
                           for _, _, n in entries)
            if used + entry_size <= self.block_size:
                entries.append((child, ftype, name))
                self._meta_update(bno, pack_dir_block(entries, self.block_size))
                return
        fb = (inode.size + self.block_size - 1) // self.block_size
        bno = self._bmap(ino, inode, fb, allocate=True, kind="dir")
        self._meta_update(bno, pack_dir_block([(child, ftype, name)], self.block_size))
        inode.size = (fb + 1) * self.block_size
        self._iput(ino, inode)

    def _dir_remove(self, ino: int, name: str) -> None:
        inode = self._iget(ino)
        for _, bno in self._dir_blocks(ino, inode):
            raw = self._meta_bread(bno, check="dir")
            entries = self._parse_dir(raw, bno)
            kept = [(i, f, n) for i, f, n in entries if n != name]
            if len(kept) != len(entries):
                self._meta_update(bno, pack_dir_block(kept, self.block_size))
                return
        raise FSError(Errno.ENOENT, name)

    def _dir_set_dotdot(self, ino: int, new_parent: int) -> None:
        inode = self._iget(ino)
        for _, bno in self._dir_blocks(ino, inode):
            raw = self._meta_bread(bno, check="dir")
            entries = self._parse_dir(raw, bno)
            changed = False
            for i, (eino, ftype, n) in enumerate(entries):
                if n == "..":
                    entries[i] = (new_parent, FT_DIR, "..")
                    changed = True
            if changed:
                self._meta_update(bno, pack_dir_block(entries, self.block_size))
                return

    # ==================================================================
    # Path lookup
    # ==================================================================

    def _lookup(self, path: str, follow: bool = True, _depth: int = 0) -> int:
        if _depth > MAX_SYMLINK_DEPTH:
            raise FSError(Errno.ELOOP, path)
        resolved = self.resolve(path)
        parts = split_path(resolved)
        ino = ROOT_INO
        for i, name in enumerate(parts):
            inode = self._iget(ino)
            if not _stat.S_ISDIR(inode.mode):
                raise FSError(Errno.ENOTDIR, "/" + "/".join(parts[:i]))
            found = self._dir_find(ino, name)
            if found is None:
                raise FSError(Errno.ENOENT, resolved)
            child_ino, _ = found
            child = self._iget(child_ino)
            is_last = i == len(parts) - 1
            if _stat.S_ISLNK(child.mode) and (follow or not is_last):
                data = self._read_file_block(child_ino, child, 0)
                target = data[:child.size].decode(errors="replace")
                if not target.startswith("/"):
                    target = "/" + "/".join(parts[:i]) + "/" + target
                remainder = "/".join(parts[i + 1:])
                full = target + ("/" + remainder if remainder else "")
                return self._lookup(full, follow=follow, _depth=_depth + 1)
            ino = child_ino
        return ino

    # ==================================================================
    # Extent tree (file block mapping)
    # ==================================================================

    def _bmap(self, ino: int, inode: JFSInode, idx: int, allocate: bool,
              kind: str = "data", raw_sanity: bool = False) -> int:
        """Map file block *idx*.  A sanity failure on an internal tree
        block normally propagates as EUCLEAN and remounts read-only;
        ``raw_sanity`` lets the data-read path intercept it to apply the
        blank-page bug instead."""
        try:
            return self._bmap_inner(ino, inode, idx, allocate, kind)
        except CorruptionDetected as exc:
            if raw_sanity:
                raise
            self._remount_ro()
            raise FSError(Errno.EUCLEAN, str(exc)) from exc

    def _bmap_inner(self, ino: int, inode: JFSInode, idx: int, allocate: bool,
                    kind: str = "data") -> int:
        cfg = self.config
        if idx < cfg.num_direct:
            if inode.direct[idx] == 0 and allocate:
                inode.direct[idx] = self._alloc_block(kind)
                inode.nblocks += 1
                self._iput(ino, inode)
            return inode.direct[idx]
        idx -= cfg.num_direct
        f = cfg.tree_fanout
        if idx >= f * f:
            raise FSError(Errno.EFBIG, "file block beyond extent tree")
        if inode.tree_root == 0:
            if not allocate:
                return 0
            inode.tree_root = self._alloc_block("internal")
            inode.tree_levels = 1
            self._meta_update(inode.tree_root,
                              pack_tree_block(1, [], self.block_size, f))
            self._types[inode.tree_root] = "internal"
            self._iput(ino, inode)
        if idx >= f and inode.tree_levels == 1:
            if not allocate:
                return 0
            # Grow the tree: new level-2 root over the old root.
            new_root = self._alloc_block("internal")
            self._meta_update(new_root, pack_tree_block(
                2, [inode.tree_root], self.block_size, f))
            self._types[new_root] = "internal"
            inode.tree_root = new_root
            inode.tree_levels = 2
            self._iput(ino, inode)
        return self._tree_walk(ino, inode, inode.tree_root, inode.tree_levels,
                               idx, allocate, kind)

    def _tree_walk(self, ino: int, inode: JFSInode, block: int, level: int,
                   idx: int, allocate: bool, kind: str) -> int:
        f = self.config.tree_fanout
        raw = self._meta_bread(block, check="internal")
        blevel, ptrs = self._parse_tree(raw, block)
        if level == 1:
            if idx < len(ptrs) and ptrs[idx]:
                return ptrs[idx]
            if not allocate:
                return 0
            while len(ptrs) <= idx:
                ptrs.append(0)
            new_block = self._alloc_block(kind) if level == 1 else 0
            ptrs[idx] = new_block
            self._meta_update(block, pack_tree_block(1, ptrs, self.block_size, f))
            inode.nblocks += 1
            self._iput(ino, inode)
            return new_block
        slot, sub = divmod(idx, f)
        if slot >= len(ptrs) or ptrs[slot] == 0:
            if not allocate:
                return 0
            child = self._alloc_block("internal")
            self._meta_update(child, pack_tree_block(
                level - 1, [], self.block_size, f))
            self._types[child] = "internal"
            while len(ptrs) <= slot:
                ptrs.append(0)
            ptrs[slot] = child
            self._meta_update(block, pack_tree_block(level, ptrs, self.block_size, f))
        return self._tree_walk(ino, inode, ptrs[slot], level - 1, sub, allocate, kind)

    def _parse_tree(self, raw: bytes, block: int) -> Tuple[int, List[int]]:
        try:
            return unpack_tree_block(raw, block, self.config.tree_fanout)
        except CorruptionDetected as exc:
            self.syslog.detection(self.name, "sanity-fail", str(exc),
                                  mechanism="sanity", block=block)
            raise

    def _read_file_block(self, ino: int, inode: JFSInode, fb: int) -> bytes:
        bs = self.block_size
        try:
            bno = self._bmap(ino, inode, fb, allocate=False, raw_sanity=True)
        except CorruptionDetected:
            # The paper's bug (§5.3): a failed sanity check on an
            # internal tree block returns a *blank page* to the user
            # (R_guess) instead of an error.
            return b"\x00" * bs
        if bno == 0:
            return b"\x00" * bs
        cached = self.journal.cached(bno) if self.journal else None
        if cached is not None:
            return cached
        try:
            return self.buf.bread(bno)
        except DiskError as exc:
            self.syslog.detection(self.name, "read-error",
                                  f"data read failed: {exc}",
                                  mechanism="error-code", block=bno)
            raise FSError(Errno.EIO, f"data block {bno} unreadable") from exc

    def _shrink(self, ino: int, inode: JFSInode, new_size: int, kind: str = "data") -> None:
        bs = self.block_size
        keep = (new_size + bs - 1) // bs
        cfg = self.config
        for i in range(keep, cfg.num_direct):
            if inode.direct[i]:
                self._free_block(inode.direct[i])
                inode.direct[i] = 0
                inode.nblocks = max(inode.nblocks - 1, 0)
        if inode.tree_root and keep <= cfg.num_direct:
            try:
                self._free_tree(inode.tree_root, inode.tree_levels)
            except FSError:
                self.syslog.warning(self.name, "ignored-error",
                                    "tree read failure during shrink; blocks leaked")
            inode.tree_root = 0
            inode.tree_levels = 0
        self._iput(ino, inode)

    def _free_tree(self, block: int, level: int) -> None:
        raw = self._meta_bread(block, check="internal")
        try:
            _, ptrs = unpack_tree_block(raw, block, self.config.tree_fanout)
        except CorruptionDetected:
            ptrs = []
        for ptr in ptrs:
            if not ptr:
                continue
            if level > 1:
                self._free_tree(ptr, level - 1)
            else:
                self._free_block(ptr)
        self._free_block(block)

    # ==================================================================
    # Read / update policy
    # ==================================================================

    def _meta_bread(self, block: int, check: Optional[str] = None) -> bytes:
        cached = self.journal.cached(block) if self.journal else None
        if cached is not None:
            raw = cached
        else:
            try:
                # All metadata reads go through the generic layer, which
                # retries once (§5.3).
                raw = self.buf.bread(block)
            except DiskError as exc:
                btype = self.block_type(block)
                self.syslog.detection(self.name, "read-error",
                                      f"metadata read failed: {exc}",
                                      mechanism="error-code", block=block)
                if btype in ("bmap", "imap"):
                    # Allocation-map read failure crashes the system (§5.3).
                    raise KernelPanic("jfs", f"cannot read allocation map block {block}") from exc
                raise FSError(Errno.EIO, f"metadata block {block} unreadable") from exc
        if check == "inode":
            try:
                check_inode_block(raw, block, self.config.inodes_per_block)
            except CorruptionDetected as exc:
                self.syslog.detection(self.name, "sanity-fail", str(exc),
                                  mechanism="sanity", block=block)
                self._remount_ro()
                raise FSError(Errno.EUCLEAN, str(exc)) from exc
        return raw

    def _meta_update(self, block: int, new_payload: bytes) -> None:
        old: Optional[bytes] = None
        cached = self.journal.cached(block)
        if cached is not None:
            old = cached
        else:
            try:
                old = self.buf.bread(block, retries=0)
            except DiskError:
                old = None
        self.journal.log(block, new_payload, old)

    def _remount_ro(self) -> None:
        if self._read_only:
            return
        self._read_only = True
        if self.journal is not None:
            self.journal.abort()
        self.syslog.action(self.name, "remount-ro", "remounting file system read-only")

    # ==================================================================
    # Allocation
    # ==================================================================

    def _map_bits_per_block(self) -> int:
        return (self.block_size - 16) * 8

    def _read_map(self, block: int, nbits: int) -> Bitmap:
        raw = self._meta_bread(block)
        try:
            return unpack_map_block(raw, block, nbits)
        except CorruptionDetected as exc:
            # JFS's equality check caught map corruption (§5.3).
            self.syslog.detection(self.name, "sanity-fail", str(exc),
                                  mechanism="sanity", block=block)
            self._remount_ro()
            raise FSError(Errno.EUCLEAN, str(exc)) from exc

    def _alloc_block(self, kind: str) -> int:
        cfg = self.config
        bits = self._map_bits_per_block()
        for page in range(cfg.bmap_blocks):
            map_block = cfg.bmap_start + page
            bmp = self._read_map(map_block, bits)
            start = max(cfg.data_start - page * bits, 0)
            bit = bmp.find_free(start)
            if bit is None:
                continue
            absolute = page * bits + bit
            if absolute >= cfg.total_blocks:
                continue
            bmp.set(bit)
            self._meta_update(map_block, pack_map_block(bmp, self.block_size))
            self.sb.free_blocks -= 1
            self._flush_super()
            self._types[absolute] = kind
            return absolute
        raise FSError(Errno.ENOSPC, "out of disk space")

    def _free_block(self, block: int) -> None:
        cfg = self.config
        if not cfg.data_start <= block < cfg.total_blocks:
            return
        bits = self._map_bits_per_block()
        page, bit = divmod(block, bits)
        map_block = cfg.bmap_start + page
        bmp = self._read_map(map_block, bits)
        if bmp.test(bit):
            bmp.clear(bit)
            self._meta_update(map_block, pack_map_block(bmp, self.block_size))
            self.sb.free_blocks += 1
            self._flush_super()
        self._types.pop(block, None)

    def _alloc_inode(self, mode: int) -> int:
        cfg = self.config
        # The paper's bug (§5.3): the generic layer detects and retries a
        # failed inode-map-control read, but JFS ignores the error and
        # proceeds with a zeroed buffer, corrupting the file system.
        try:
            self.buf.bread(cfg.imap_control_block)
        except DiskError:
            pass  # error deliberately ignored (the bug)
        bits = self._map_bits_per_block()
        for page in range(cfg.imap_blocks):
            map_block = cfg.imap_start + page
            bmp = self._read_map(map_block, bits)
            bit = bmp.find_free()
            if bit is None:
                continue
            idx = page * bits + bit
            if idx >= cfg.num_inodes:
                continue
            bmp.set(bit)
            self._meta_update(map_block, pack_map_block(bmp, self.block_size))
            self.sb.free_inodes -= 1
            self._flush_super()
            self._update_imap_control()
            ino = idx + 1
            inode = JFSInode(mode=mode, links=1, atime=1.0, mtime=1.0, ctime=1.0)
            self._iput(ino, inode)
            return ino
        raise FSError(Errno.ENOSPC, "out of inodes")

    def _free_inode(self, ino: int) -> None:
        cfg = self.config
        bits = self._map_bits_per_block()
        page, bit = divmod(ino - 1, bits)
        map_block = cfg.imap_start + page
        bmp = self._read_map(map_block, bits)
        if bmp.test(bit):
            bmp.clear(bit)
            self._meta_update(map_block, pack_map_block(bmp, self.block_size))
            self.sb.free_inodes += 1
            self._flush_super()
        self._iput(ino, JFSInode())
        self._update_imap_control()

    def _update_imap_control(self) -> None:
        from repro.fs.jfs.structures import pack_imap_control
        self._meta_update(self.config.imap_control_block, pack_imap_control(
            self.sb.num_inodes, self.sb.free_inodes, 0, self.block_size))

    def _flush_super(self) -> None:
        # Only the primary superblock is kept current; the secondary
        # was written at mkfs time.
        self._meta_update(0, self.sb.pack(self.block_size))

    # ==================================================================
    # Gray-box: block-type oracle
    # ==================================================================

    def block_type(self, block: int) -> Optional[str]:
        cfg = self.config
        if cfg is None:
            return None
        if block in (0, 1):
            return "super"
        if block == cfg.journal_super:
            return "j-super"
        if cfg.journal_data_start <= block < cfg.journal_data_start + cfg.journal_blocks:
            return "j-data"
        if block in (cfg.aggr_inode_block, cfg.aggr_inode_secondary):
            return "aggr-inode"
        if block == cfg.bmap_desc_block:
            return "bmap-desc"
        if cfg.bmap_start <= block < cfg.bmap_start + cfg.bmap_blocks:
            return "bmap"
        if block == cfg.imap_control_block:
            return "imap-cntl"
        if cfg.imap_start <= block < cfg.imap_start + cfg.imap_blocks:
            return "imap"
        if cfg.inode_table_start <= block < cfg.inode_table_start + cfg.inode_table_blocks:
            return "inode"
        return self._types.get(block)

    def _set_type(self, block: int, jtype: str) -> None:
        # Journal region roles are fixed by layout; nothing dynamic.
        pass

    def redundancy_types(self) -> List[str]:
        return ["super"]

    def _rebuild_types(self) -> None:
        cfg = self.config
        self._types = {}
        for ino in range(1, cfg.num_inodes + 1):
            block, off = cfg.inode_location(ino)
            inode = JFSInode.unpack(self._peek(block)[off:off + cfg.inode_size])
            if not inode.is_allocated:
                continue
            kind = "dir" if _stat.S_ISDIR(inode.mode) else "data"
            for bno in inode.direct:
                if bno:
                    self._types[bno] = kind
            if inode.tree_root:
                self._label_tree(inode.tree_root, inode.tree_levels, kind)

    def _label_tree(self, block: int, level: int, kind: str) -> None:
        if not 0 < block < self.device.num_blocks or level <= 0:
            return
        self._types[block] = "internal"
        try:
            _, ptrs = unpack_tree_block(self._peek(block), block, self.config.tree_fanout)
        except CorruptionDetected:
            return
        for ptr in ptrs:
            if not 0 < ptr < self.device.num_blocks:
                continue
            if level > 1:
                self._label_tree(ptr, level - 1, kind)
            else:
                self._types[ptr] = kind
