"""IBM JFS (§5.3): record-level journaling, extent trees, dual supers."""

from repro.fs.jfs.config import JFSConfig
from repro.fs.jfs.jfs import JFS
from repro.fs.jfs.journal import RecordJournal, diff_records
from repro.fs.jfs.mkfs import mkfs_jfs
from repro.fs.jfs.structures import AggregateInode, JFSInode, JFSSuper

__all__ = [
    "AggregateInode",
    "JFS",
    "JFSConfig",
    "JFSInode",
    "JFSSuper",
    "RecordJournal",
    "diff_records",
    "mkfs_jfs",
]
