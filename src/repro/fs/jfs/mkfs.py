"""mkfs for JFS volumes: dual superblocks, aggregate inodes (primary
and secondary, adjacent), allocation maps with duplicated free-count
fields, the inode table, the root directory, and a clean redo log."""

from __future__ import annotations

from repro.common.bitmap import Bitmap
from repro.disk.disk import BlockDevice
from repro.fs.jfs.config import JFSConfig
from repro.fs.jfs.journal import pack_log_super
from repro.fs.jfs.structures import (
    AGGR_MAGIC,
    AggregateInode,
    JFS_MAGIC,
    JFS_VERSION,
    JFSInode,
    JFSSuper,
    pack_bmap_desc,
    pack_dir_block,
    pack_imap_control,
    pack_map_block,
)
from repro.vfs.stat import DEFAULT_DIR_MODE

FT_DIR = 2
ROOT_INO = 2


def mkfs_jfs(device: BlockDevice, config: JFSConfig) -> JFSSuper:
    """Format *device* with a JFS layout.  Returns the superblock."""
    if device.num_blocks < config.total_blocks:
        raise ValueError("device too small for configured volume")
    if device.block_size != config.block_size:
        raise ValueError("device block size does not match config")
    bs = config.block_size
    zero = b"\x00" * bs

    root_dir_block = config.data_start
    sb = JFSSuper(
        magic=JFS_MAGIC,
        version=JFS_VERSION,
        block_size=bs,
        total_blocks=config.total_blocks,
        free_blocks=config.total_blocks - config.data_start - 1,
        free_inodes=config.num_inodes - 2,  # reserved ino 1 + root
        num_inodes=config.num_inodes,
        journal_blocks=config.journal_blocks,
        num_direct=config.num_direct,
        tree_fanout=config.tree_fanout,
    )

    # Journal: clean superblock; the data region parses as nothing.
    device.write_block(config.journal_super, pack_log_super(bs, 1, clean=True))
    for i in range(config.journal_blocks):
        device.write_block(config.journal_data_start + i, zero)

    # Aggregate inodes: primary and (adjacent) secondary copies.
    aggr = AggregateInode(magic=AGGR_MAGIC, bmap_desc=config.bmap_desc_block,
                          imap_cntl=config.imap_control_block,
                          log_start=config.journal_super)
    device.write_block(config.aggr_inode_block, aggr.pack(bs))
    device.write_block(config.aggr_inode_secondary, aggr.pack(bs))

    device.write_block(config.bmap_desc_block,
                       pack_bmap_desc(config.total_blocks, config.bmap_blocks, bs))

    # Block allocation map: metadata region + root dir block used; bits
    # beyond the volume pre-set.
    bits = (bs - 16) * 8
    for page in range(config.bmap_blocks):
        bmp = Bitmap(bits)
        lo = page * bits
        for bit in range(bits):
            absolute = lo + bit
            if absolute <= root_dir_block or absolute >= config.total_blocks:
                bmp.set(bit)
        device.write_block(config.bmap_start + page, pack_map_block(bmp, bs))

    device.write_block(config.imap_control_block,
                       pack_imap_control(config.num_inodes, sb.free_inodes, 0, bs))

    # Inode allocation map: ino 1 reserved, ino 2 root; excess bits set.
    for page in range(config.imap_blocks):
        bmp = Bitmap(bits)
        lo = page * bits
        for bit in range(bits):
            idx = lo + bit
            if idx >= config.num_inodes:
                bmp.set(bit)
        if page == 0:
            bmp.set(0)
            bmp.set(1)
        device.write_block(config.imap_start + page, pack_map_block(bmp, bs))

    # Inode table with the root inode.
    root = JFSInode(mode=DEFAULT_DIR_MODE, links=2, size=bs,
                    atime=1.0, mtime=1.0, ctime=1.0, nblocks=1)
    root.direct[0] = root_dir_block
    for i in range(config.inode_table_blocks):
        slots = [None] * config.inodes_per_block
        base_ino = i * config.inodes_per_block + 1
        if base_ino <= ROOT_INO < base_ino + config.inodes_per_block:
            slots[ROOT_INO - base_ino] = root
        from repro.fs.jfs.structures import pack_inode_block
        device.write_block(config.inode_table_start + i,
                           pack_inode_block(slots, bs, config.inode_size))

    device.write_block(root_dir_block, pack_dir_block(
        [(ROOT_INO, FT_DIR, "."), (ROOT_INO, FT_DIR, "..")], bs))

    # Superblocks last: primary at 0, secondary adjacent at 1.
    device.write_block(1, sb.pack(bs))
    device.write_block(0, sb.pack(bs))
    return sb
