"""JFS on-disk structures.

Most JFS metadata blocks carry an entry count that the file system
sanity-checks against the maximum possible for the block type (§5.3);
the block allocation map additionally stores its free count *twice*
and verifies the two fields agree (the paper's "equality check on a
field").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from struct import Struct
from typing import List, Optional, Tuple

from repro.common.bitmap import Bitmap
from repro.common.errors import CorruptionDetected
from repro.common.structs import U32x2, U32x3, u32_seq

JFS_MAGIC = 0x3153464A  # "JFS1"
JFS_VERSION = 2

_SB_STRUCT = Struct("<IIIIIIIIIIII")


@dataclass
class JFSSuper:
    """Contains info about file system (Table 4)."""

    magic: int
    version: int
    block_size: int
    total_blocks: int
    free_blocks: int
    free_inodes: int
    num_inodes: int
    journal_blocks: int
    num_direct: int
    tree_fanout: int
    state: int = 0
    generation: int = 0

    def pack(self, block_size: int) -> bytes:
        payload = _SB_STRUCT.pack(
            self.magic, self.version, self.block_size,
            self.total_blocks, self.free_blocks, self.free_inodes,
            self.num_inodes, self.journal_blocks, self.num_direct,
            self.tree_fanout, self.state, self.generation,
        )
        return payload + b"\x00" * (block_size - len(payload))

    @classmethod
    def unpack(cls, data: bytes) -> "JFSSuper":
        return cls(*_SB_STRUCT.unpack_from(data))

    def is_valid(self) -> bool:
        """Magic and version check (D_sanity, §5.3)."""
        return (
            self.magic == JFS_MAGIC
            and self.version == JFS_VERSION
            and self.block_size >= 512
            and self.total_blocks > 0
        )


_INODE_STRUCT = Struct("<HHHHQddd8IIII")
INODE_USED = _INODE_STRUCT.size


@dataclass
class JFSInode:
    """Info about files and directories (Table 4)."""

    mode: int = 0
    links: int = 0
    uid: int = 0
    gid: int = 0
    size: int = 0
    atime: float = 0.0
    mtime: float = 0.0
    ctime: float = 0.0
    direct: List[int] = field(default_factory=lambda: [0] * 8)
    tree_root: int = 0
    tree_levels: int = 0
    nblocks: int = 0

    def pack(self, inode_size: int) -> bytes:
        payload = _INODE_STRUCT.pack(
            self.mode, self.links, self.uid, self.gid,
            self.size, self.atime, self.mtime, self.ctime,
            *self.direct, self.tree_root, self.tree_levels, self.nblocks,
        )
        return payload + b"\x00" * (inode_size - len(payload))

    @classmethod
    def unpack(cls, data: bytes) -> "JFSInode":
        f = _INODE_STRUCT.unpack_from(data)
        return cls(
            mode=f[0], links=f[1], uid=f[2], gid=f[3], size=f[4],
            atime=f[5], mtime=f[6], ctime=f[7], direct=list(f[8:16]),
            tree_root=f[16], tree_levels=f[17], nblocks=f[18],
        )

    @property
    def is_allocated(self) -> bool:
        return self.links > 0 or self.mode != 0


def pack_inode_block(inodes: List[Optional[JFSInode]], block_size: int,
                     inode_size: int) -> bytes:
    """Inode extent block: header carries the used-slot count, which
    JFS sanity-checks against the maximum (§5.3)."""
    count = sum(1 for i in inodes if i is not None and i.is_allocated)
    out = bytearray(U32x2.pack(count, 0))
    for inode in inodes:
        raw = (inode or JFSInode()).pack(inode_size)
        out += raw
    out += b"\x00" * (block_size - len(out))
    return bytes(out)


def check_inode_block(data: bytes, block: int, inodes_per_block: int) -> None:
    count, _ = U32x2.unpack_from(data)
    if count > inodes_per_block:
        raise CorruptionDetected(block, f"inode block count {count} exceeds maximum")


_DIR_HDR = U32x2  # nentries, pad
_DIRENT_HDR = Struct("<IBB")


def pack_dir_block(entries: List[Tuple[int, int, str]], block_size: int) -> bytes:
    """Directory block: header count + (ino, ftype, name) entries."""
    out = bytearray(_DIR_HDR.pack(len(entries), 0))
    for ino, ftype, name in entries:
        raw = name.encode("latin-1", errors="replace")[:255]
        out += _DIRENT_HDR.pack(ino, ftype & 0xFF, len(raw)) + raw
    if len(out) > block_size:
        raise ValueError("directory block overflow")
    return bytes(out) + b"\x00" * (block_size - len(out))


def unpack_dir_block(data: bytes, block: int, block_size: int) -> List[Tuple[int, int, str]]:
    """Parse a directory block, sanity-checking the entry count (§5.3)."""
    nentries, _ = _DIR_HDR.unpack_from(data)
    max_entries = (block_size - 8) // 6
    if nentries > max_entries:
        raise CorruptionDetected(block, f"directory entry count {nentries} exceeds maximum")
    out: List[Tuple[int, int, str]] = []
    off = 8
    for _ in range(nentries):
        if off + 6 > len(data):
            raise CorruptionDetected(block, "directory entry runs off the block")
        ino, ftype, nlen = _DIRENT_HDR.unpack_from(data, off)
        off += 6
        name = data[off:off + nlen].decode("latin-1")
        off += nlen
        out.append((ino, ftype, name))
    return out


_TREE_HDR = Struct("<HHI")  # level, count, pad


def pack_tree_block(level: int, pointers: List[int], block_size: int,
                    fanout: int) -> bytes:
    """Internal (extent tree) block: level + pointer count + pointers."""
    if len(pointers) > fanout:
        raise ValueError("tree block overflow")
    out = bytearray(_TREE_HDR.pack(level, len(pointers), 0))
    out += u32_seq(len(pointers)).pack(*pointers)
    return bytes(out) + b"\x00" * (block_size - len(out))


def unpack_tree_block(data: bytes, block: int, fanout: int) -> Tuple[int, List[int]]:
    """Parse an internal block, checking the pointer count (§5.3)."""
    level, count, _ = _TREE_HDR.unpack_from(data)
    if count > fanout or level == 0 or level > 4:
        raise CorruptionDetected(block, f"tree block level={level} count={count} invalid")
    ptrs = list(u32_seq(count).unpack_from(data, 8))
    return level, ptrs


_MAP_HDR = U32x2  # free count, free count copy (equality-checked)


def pack_map_block(bmp: Bitmap, block_size: int) -> bytes:
    free = bmp.count_free()
    return _MAP_HDR.pack(free, free) + bmp.to_bytes(pad_to=block_size - 8)


def unpack_map_block(data: bytes, block: int, nbits: int) -> Bitmap:
    """Parse an allocation-map page, performing JFS's equality check on
    the duplicated free-count field (§5.3)."""
    free_a, free_b = _MAP_HDR.unpack_from(data)
    if free_a != free_b:
        raise CorruptionDetected(block, "allocation map free-count fields disagree")
    bmp = Bitmap(nbits, data[8:])
    if bmp.count_free() != free_a:
        raise CorruptionDetected(block, "allocation map free count does not match bits")
    return bmp


_AGGR_STRUCT = Struct("<IIIII")  # magic, bmap_desc, imap_cntl, log_start, generation
AGGR_MAGIC = 0x41475232  # "AGR2"


@dataclass
class AggregateInode:
    """Special inode describing the disk partition (Table 4): locates
    the allocation maps and the journal."""

    magic: int
    bmap_desc: int
    imap_cntl: int
    log_start: int
    generation: int = 0

    def pack(self, block_size: int) -> bytes:
        payload = _AGGR_STRUCT.pack(self.magic, self.bmap_desc,
                                    self.imap_cntl, self.log_start, self.generation)
        return payload + b"\x00" * (block_size - len(payload))

    @classmethod
    def unpack(cls, data: bytes) -> "AggregateInode":
        return cls(*_AGGR_STRUCT.unpack_from(data))

    def is_valid(self) -> bool:
        return self.magic == AGGR_MAGIC


_BMAPDESC_STRUCT = U32x3  # total blocks, nmaps, pad


def pack_bmap_desc(total_blocks: int, nmaps: int, block_size: int) -> bytes:
    payload = _BMAPDESC_STRUCT.pack(total_blocks, nmaps, 0)
    return payload + b"\x00" * (block_size - len(payload))


def unpack_bmap_desc(data: bytes) -> Tuple[int, int]:
    total, nmaps, _ = _BMAPDESC_STRUCT.unpack_from(data)
    return total, nmaps


_IMAPCTL_STRUCT = U32x3  # num inodes, free inodes, next search hint


def pack_imap_control(num_inodes: int, free_inodes: int, hint: int,
                      block_size: int) -> bytes:
    payload = _IMAPCTL_STRUCT.pack(num_inodes, free_inodes, hint)
    return payload + b"\x00" * (block_size - len(payload))


def unpack_imap_control(data: bytes) -> Tuple[int, int, int]:
    return _IMAPCTL_STRUCT.unpack_from(data)
