"""JFS volume geometry.

Layout (note the paper's observation that JFS keeps its redundant
copies in *close proximity*, making them vulnerable to spatially-local
faults — the secondary superblock sits right next to the primary, and
the secondary aggregate-inode table right after the primary one):

    block 0                      primary superblock
    block 1                      secondary superblock (adjacent!)
    block 2                      journal superblock
    3 .. 3+Jn-1                  journal data region
    then                         aggregate inode table (primary)
    then                         aggregate inode table (secondary)
    then                         bmap descriptor
    then                         bmap pages (block allocation map)
    then                         imap control
    then                         imap pages (inode allocation map)
    then                         inode extent blocks
    rest                         data area (files, directories,
                                 internal tree blocks)
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class JFSConfig:
    block_size: int = 1024
    total_blocks: int = 768
    journal_blocks: int = 48
    num_inodes: int = 98  # 14 inode blocks of 7 slots at 1 KB blocks
    #: Pointers in an inode before the extent tree kicks in.
    num_direct: int = 8
    #: Pointers per internal (extent tree) block.
    tree_fanout: int = 16
    inode_size: int = 128

    def __post_init__(self) -> None:
        if self.block_size % 512 or self.block_size < 512:
            raise ValueError("block_size must be a multiple of 512")
        if self.num_inodes % self.inodes_per_block:
            raise ValueError("num_inodes must fill whole inode blocks")
        if self.data_start >= self.total_blocks:
            raise ValueError("volume too small for metadata regions")

    @property
    def inodes_per_block(self) -> int:
        # One header word pair precedes the inode slots.
        return (self.block_size - 8) // self.inode_size

    @property
    def journal_super(self) -> int:
        return 2

    @property
    def journal_data_start(self) -> int:
        return 3

    @property
    def aggr_inode_block(self) -> int:
        return self.journal_data_start + self.journal_blocks

    @property
    def aggr_inode_secondary(self) -> int:
        return self.aggr_inode_block + 1

    @property
    def bmap_desc_block(self) -> int:
        return self.aggr_inode_secondary + 1

    @property
    def bmap_start(self) -> int:
        return self.bmap_desc_block + 1

    @property
    def bmap_blocks(self) -> int:
        bits = (self.block_size - 16) * 8
        return (self.total_blocks + bits - 1) // bits

    @property
    def imap_control_block(self) -> int:
        return self.bmap_start + self.bmap_blocks

    @property
    def imap_start(self) -> int:
        return self.imap_control_block + 1

    @property
    def imap_blocks(self) -> int:
        bits = (self.block_size - 16) * 8
        return (self.num_inodes + bits - 1) // bits

    @property
    def inode_table_start(self) -> int:
        return self.imap_start + self.imap_blocks

    @property
    def inode_table_blocks(self) -> int:
        return self.num_inodes // self.inodes_per_block

    @property
    def data_start(self) -> int:
        return self.inode_table_start + self.inode_table_blocks

    @property
    def max_file_blocks(self) -> int:
        return self.num_direct + self.tree_fanout + self.tree_fanout ** 2

    def inode_location(self, ino: int):
        """(block, byte offset) of inode *ino* (1-based; ino 2 = root)."""
        if not 1 <= ino <= self.num_inodes:
            raise ValueError(f"inode {ino} out of range")
        idx = ino - 1
        block_off, slot = divmod(idx, self.inodes_per_block)
        return self.inode_table_start + block_off, 8 + slot * self.inode_size
