"""ReiserFS volume geometry.

Layout:

    block 0                      superblock
    1 .. 1+Jn-1                  journal region (header + log)
    then bitmap blocks           whole-device data bitmap
    then the pool                tree nodes and unformatted data blocks

``max_leaf_items`` / ``max_fanout`` shrink node capacities so tree
splits and multi-level trees arise with tiny images.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ReiserConfig:
    block_size: int = 1024
    total_blocks: int = 640
    journal_blocks: int = 64
    max_leaf_items: int = 8
    max_fanout: int = 6
    indirect_ptrs_per_item: int = 16
    #: Files at or below this size live in a direct item (tail).
    tail_threshold: int = 256

    def __post_init__(self) -> None:
        if self.block_size % 512 or self.block_size < 512:
            raise ValueError("block_size must be a multiple of 512")
        if self.journal_blocks < 8:
            raise ValueError("journal needs at least 8 blocks")
        if self.max_fanout < 3 or self.max_leaf_items < 2:
            raise ValueError("tree capacities too small")
        if self.tail_threshold >= self.block_size:
            raise ValueError("tail threshold must be below one block")
        if self.data_start >= self.total_blocks:
            raise ValueError("volume too small for metadata regions")

    @property
    def journal_start(self) -> int:
        return 1

    @property
    def bitmap_start(self) -> int:
        return self.journal_start + self.journal_blocks

    @property
    def bitmap_blocks(self) -> int:
        bits_per_block = self.block_size * 8
        return (self.total_blocks + bits_per_block - 1) // bits_per_block

    @property
    def data_start(self) -> int:
        return self.bitmap_start + self.bitmap_blocks
