"""mkfs for ReiserFS volumes: superblock, clean journal, data bitmap,
and a root leaf holding the root directory's stat item and entries."""

from __future__ import annotations

from repro.common.bitmap import Bitmap
from repro.disk.disk import BlockDevice
from repro.fs.ext3.journal import pack_journal_super
from repro.fs.reiserfs.btree import IT_DIRENTRY, IT_STAT, Item, Node
from repro.fs.reiserfs.config import ReiserConfig
from repro.fs.reiserfs.structures import (
    REISER_MAGIC,
    ReiserSuper,
    ROOT_KEY_PAIR,
    StatBody,
    name_hash,
    pack_dirent_body,
)
from repro.vfs.stat import DEFAULT_DIR_MODE

FT_DIR = 2


def mkfs_reiserfs(device: BlockDevice, config: ReiserConfig) -> ReiserSuper:
    """Format *device* with a ReiserFS layout.  Returns the superblock."""
    if device.num_blocks < config.total_blocks:
        raise ValueError("device too small for configured volume")
    if device.block_size != config.block_size:
        raise ValueError("device block size does not match config")
    bs = config.block_size

    root_block = config.data_start
    d, o = ROOT_KEY_PAIR
    root_stat = StatBody(mode=DEFAULT_DIR_MODE, links=2,
                         atime=1.0, mtime=1.0, ctime=1.0)
    root_leaf = Node(level=1, items=[
        Item((d, o, 0, IT_STAT), root_stat.pack()),
        Item((d, o, name_hash("."), IT_DIRENTRY),
             pack_dirent_body(ROOT_KEY_PAIR, FT_DIR, ".")),
        Item((d, o, name_hash(".."), IT_DIRENTRY),
             pack_dirent_body(ROOT_KEY_PAIR, FT_DIR, "..")),
    ])
    device.write_block(root_block, root_leaf.pack(bs))

    # Data bitmap: everything up to and including the root leaf is used;
    # bits beyond the end of the volume are pre-set so they can never be
    # allocated.
    bits_per_block = bs * 8
    for i in range(config.bitmap_blocks):
        bmp = Bitmap(bits_per_block)
        lo = i * bits_per_block
        for bit in range(bits_per_block):
            absolute = lo + bit
            if absolute <= root_block or absolute >= config.total_blocks:
                bmp.set(bit)
        device.write_block(config.bitmap_start + i, bmp.to_bytes(pad_to=bs))

    device.write_block(config.journal_start, pack_journal_super(bs, 1, clean=True))

    sb = ReiserSuper(
        magic=REISER_MAGIC,
        block_size=bs,
        total_blocks=config.total_blocks,
        free_blocks=config.total_blocks - config.data_start - 1,
        root_block=root_block,
        height=1,
        next_objid=3,
        journal_start=config.journal_start,
        journal_blocks=config.journal_blocks,
        bitmap_start=config.bitmap_start,
        bitmap_blocks=config.bitmap_blocks,
        data_start=config.data_start,
        nobjects=1,
    )
    device.write_block(0, sb.pack(bs))
    return sb
