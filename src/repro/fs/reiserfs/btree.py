"""The ReiserFS balanced tree: keys, items, nodes, and tree operations.

Virtually all metadata and data live in one balanced tree (§5.2):
*stat items* describe files and directories, *directory items* map
names to object keys, *direct items* hold small-file bodies and tails,
and *indirect items* point at unformatted data blocks.  Internal and
leaf nodes carry a block header (level, item count, free space) that
ReiserFS sanity-checks on every access.

The tree is parameterized by I/O callbacks so the owning file system
supplies its failure policy (and the journal cache) around every node
read and write.  Fan-out and leaf capacity are mkfs-configurable so
deep trees arise with tiny images.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from struct import Struct
from typing import Callable, List, Optional, Tuple

from repro.common.errors import CorruptionDetected
from repro.common.structs import U32, u32_seq

# Item types, in key sort order.
IT_STAT = 0
IT_DIRENTRY = 1
IT_INDIRECT = 2
IT_DIRECT = 3

#: Key: (dirid, objectid, offset, type).
Key = Tuple[int, int, int, int]

_HDR_STRUCT = Struct("<HHHH")  # level, nitems, free_space, pad
_HDR_SIZE = _HDR_STRUCT.size
_KEY_STRUCT = Struct("<IIII")
_KEY_SIZE = _KEY_STRUCT.size
_IHEAD_STRUCT = Struct("<IIIIHH")  # key + length + location
_IHEAD_SIZE = _IHEAD_STRUCT.size

MAX_HEIGHT = 7


@dataclass
class Item:
    """One leaf item: key plus opaque body."""

    key: Key
    body: bytes

    @property
    def kind(self) -> int:
        return self.key[3]


@dataclass
class Node:
    """A tree node; ``level`` 1 is a leaf, higher levels are internal."""

    level: int
    items: List[Item] = field(default_factory=list)          # leaves
    keys: List[Key] = field(default_factory=list)            # internal
    children: List[int] = field(default_factory=list)        # internal

    @property
    def is_leaf(self) -> bool:
        return self.level == 1

    def nitems(self) -> int:
        return len(self.items) if self.is_leaf else len(self.keys)

    # -- serialization ------------------------------------------------------

    def pack(self, block_size: int) -> bytes:
        if self.is_leaf:
            needed = _HDR_SIZE + sum(_IHEAD_SIZE + len(i.body) for i in self.items)
            if needed > block_size:
                raise ValueError("leaf node overflow")
            heads = bytearray()
            bodies = bytearray()
            loc = block_size
            for item in self.items:
                loc -= len(item.body)
                heads += _IHEAD_STRUCT.pack(*item.key, len(item.body), loc)
            for item in reversed(self.items):
                bodies += item.body
            used = _HDR_SIZE + len(heads) + len(bodies)
            free = block_size - used
            if free < 0:
                raise ValueError("leaf node overflow")
            hdr = _HDR_STRUCT.pack(self.level, len(self.items), free, 0)
            return hdr + bytes(heads) + b"\x00" * free + bytes(bodies)
        body = bytearray()
        for key in self.keys:
            body += _KEY_STRUCT.pack(*key)
        for child in self.children:
            body += U32.pack(child)
        free = block_size - _HDR_SIZE - len(body)
        if free < 0:
            raise ValueError("internal node overflow")
        hdr = _HDR_STRUCT.pack(self.level, len(self.keys), free, 0)
        return hdr + bytes(body) + b"\x00" * free

    @classmethod
    def unpack(cls, data: bytes, block: int) -> "Node":
        """Parse and sanity-check a node (D_sanity: level, item count,
        free space are all verified — §5.2)."""
        level, nitems, free, _pad = _HDR_STRUCT.unpack_from(data)
        if not 1 <= level <= MAX_HEIGHT:
            raise CorruptionDetected(block, f"tree node level {level} out of range")
        bs = len(data)
        if level == 1:
            if _HDR_SIZE + nitems * _IHEAD_SIZE > bs:
                raise CorruptionDetected(block, f"leaf item count {nitems} impossible")
            items: List[Item] = []
            total_body = 0
            for i in range(nitems):
                f = _IHEAD_STRUCT.unpack_from(data, _HDR_SIZE + i * _IHEAD_SIZE)
                key = (f[0], f[1], f[2], f[3])
                length, loc = f[4], f[5]
                if loc + length > bs or loc < _HDR_SIZE:
                    raise CorruptionDetected(block, "leaf item body out of bounds")
                items.append(Item(key, bytes(data[loc:loc + length])))
                total_body += length
            expect_free = bs - _HDR_SIZE - nitems * _IHEAD_SIZE - total_body
            if free != expect_free:
                raise CorruptionDetected(block, "leaf free-space field inconsistent")
            node = cls(level=1, items=items)
            return node
        nkeys = nitems
        need = _HDR_SIZE + nkeys * _KEY_SIZE + (nkeys + 1) * 4
        if need > bs:
            raise CorruptionDetected(block, f"internal key count {nkeys} impossible")
        keys: List[Key] = []
        off = _HDR_SIZE
        for _ in range(nkeys):
            f = _KEY_STRUCT.unpack_from(data, off)
            keys.append((f[0], f[1], f[2], f[3]))
            off += _KEY_SIZE
        children = list(u32_seq(nkeys + 1).unpack_from(data, off))
        expect_free = bs - need
        if free != expect_free:
            raise CorruptionDetected(block, "internal free-space field inconsistent")
        prev = None
        for key in keys:
            if prev is not None and key < prev:
                raise CorruptionDetected(block, "internal keys out of order")
            prev = key
        return cls(level=level, keys=keys, children=children)


# I/O callbacks supplied by the file system.
ReadNode = Callable[[int, int], Node]        # (block, retries) -> Node
WriteNode = Callable[[int, "Node"], None]
AllocBlock = Callable[[str], int]            # kind -> block
FreeBlock = Callable[[int], None]


class BTree:
    """Insert / delete / search / range-scan over on-disk nodes."""

    def __init__(
        self,
        read_node: ReadNode,
        write_node: WriteNode,
        alloc: AllocBlock,
        free: FreeBlock,
        max_leaf_items: int,
        max_fanout: int,
        block_size: int,
    ):
        self.read_node = read_node
        self.write_node = write_node
        self.alloc = alloc
        self.free = free
        self.max_leaf_items = max_leaf_items
        self.max_fanout = max_fanout
        self.block_size = block_size
        self.root_block: int = 0
        self.height: int = 1

    # -- search ----------------------------------------------------------------

    def _descend(self, key: Key, retries: int = 0) -> List[Tuple[int, Node]]:
        """Path of (block, node) from root to the leaf covering *key*."""
        path: List[Tuple[int, Node]] = []
        block = self.root_block
        for _ in range(MAX_HEIGHT + 1):
            node = self.read_node(block, retries)
            path.append((block, node))
            if node.is_leaf:
                return path
            idx = bisect_right(node.keys, key)
            block = node.children[idx]
        raise CorruptionDetected(block, "tree deeper than maximum height")

    def lookup(self, key: Key, retries: int = 0) -> Optional[Item]:
        path = self._descend(key, retries)
        leaf = path[-1][1]
        for item in leaf.items:
            if item.key == key:
                return item
        return None

    def range_scan(self, lo: Key, hi: Key, retries: int = 0) -> List[Item]:
        """All items with lo <= key <= hi (small trees: full walk)."""
        out: List[Item] = []
        self._collect(self.root_block, lo, hi, out, retries, 0)
        return out

    def _collect(self, block: int, lo: Key, hi: Key, out: List[Item],
                 retries: int, depth: int) -> None:
        if depth > MAX_HEIGHT:
            raise CorruptionDetected(block, "tree walk exceeded maximum height")
        node = self.read_node(block, retries)
        if node.is_leaf:
            out.extend(i for i in node.items if lo <= i.key <= hi)
            return
        for idx, child in enumerate(node.children):
            child_lo = node.keys[idx - 1] if idx > 0 else None
            child_hi = node.keys[idx] if idx < len(node.keys) else None
            if child_hi is not None and child_hi <= lo:
                continue  # subtree holds only keys strictly below lo
            if child_lo is not None and child_lo > hi:
                continue  # subtree holds only keys above hi
            self._collect(child, lo, hi, out, retries, depth + 1)

    # -- insert ------------------------------------------------------------------

    def insert(self, item: Item, retries: int = 0) -> None:
        if self.lookup(item.key, retries) is not None:
            raise ValueError(f"duplicate key {item.key}")
        path = self._descend(item.key, retries)
        self._insert_at(path, item)

    def replace(self, item: Item, retries: int = 0) -> None:
        """Update an existing item's body (delete + insert)."""
        self.delete(item.key, retries)
        self.insert(item, retries)

    def _leaf_fits(self, leaf: Node) -> bool:
        if len(leaf.items) > self.max_leaf_items:
            return False
        used = _HDR_SIZE + sum(_IHEAD_SIZE + len(i.body) for i in leaf.items)
        return used <= self.block_size

    def _insert_at(self, path: List[Tuple[int, Node]], item: Item) -> None:
        block, leaf = path[-1]
        pos = bisect_right([i.key for i in leaf.items], item.key)
        leaf.items.insert(pos, item)
        if self._leaf_fits(leaf):
            self.write_node(block, leaf)
            return
        # Split the leaf; promote the right sibling's first key.
        mid = len(leaf.items) // 2
        right = Node(level=1, items=leaf.items[mid:])
        leaf.items = leaf.items[:mid]
        right_block = self.alloc("leaf")
        self.write_node(block, leaf)
        self.write_node(right_block, right)
        self._promote(path[:-1], block, right.items[0].key, right_block)

    def _promote(self, path: List[Tuple[int, Node]], left_block: int,
                 key: Key, right_block: int) -> None:
        if not path:
            # Root split: the tree grows by one level.
            new_root = Node(level=self.height + 1, keys=[key],
                            children=[left_block, right_block])
            new_block = self.alloc("internal")
            self.write_node(new_block, new_root)
            self.root_block = new_block
            self.height += 1
            return
        block, node = path[-1]
        idx = node.children.index(left_block)
        node.keys.insert(idx, key)
        node.children.insert(idx + 1, right_block)
        if len(node.children) <= self.max_fanout:
            self.write_node(block, node)
            return
        mid = len(node.keys) // 2
        promoted = node.keys[mid]
        right = Node(level=node.level, keys=node.keys[mid + 1:],
                     children=node.children[mid + 1:])
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        right_blk = self.alloc("internal")
        self.write_node(block, node)
        self.write_node(right_blk, right)
        self._promote(path[:-1], block, promoted, right_blk)

    # -- delete --------------------------------------------------------------------

    def delete(self, key: Key, retries: int = 0) -> Item:
        path = self._descend(key, retries)
        block, leaf = path[-1]
        for i, item in enumerate(leaf.items):
            if item.key == key:
                removed = leaf.items.pop(i)
                if leaf.items or len(path) == 1:
                    self.write_node(block, leaf)
                else:
                    self._drop_child(path[:-1], block)
                    self.free(block)
                return removed
        raise KeyError(f"key {key} not found")

    def _drop_child(self, path: List[Tuple[int, Node]], child_block: int) -> None:
        block, node = path[-1]
        idx = node.children.index(child_block)
        node.children.pop(idx)
        if node.keys:
            node.keys.pop(0 if idx == 0 else idx - 1)
        if not node.children:
            if len(path) == 1:
                # The whole tree emptied: recreate an empty leaf root.
                self.write_node(block, Node(level=1))
                self.root_block = block
                self.height = 1
                return
            self._drop_child(path[:-1], block)
            self.free(block)
            return
        if len(node.children) == 1 and block == self.root_block and node.level > 1:
            # Root with a single child: shrink the tree by one level.
            self.root_block = node.children[0]
            self.height -= 1
            self.free(block)
            return
        self.write_node(block, node)

    # -- bootstrap --------------------------------------------------------------------

    def create_empty(self) -> None:
        block = self.alloc("leaf")
        self.write_node(block, Node(level=1))
        self.root_block = block
        self.height = 1
