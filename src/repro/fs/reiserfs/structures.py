"""ReiserFS on-disk structures outside the tree: superblock and item
bodies (stat, directory-entry, indirect, direct)."""

from __future__ import annotations

from dataclasses import dataclass
from struct import Struct
from typing import List, Tuple

from repro.common.checksum import crc32
from repro.common.structs import U32, u32_seq

REISER_MAGIC = b"ReIsErFs"

_SB_STRUCT = Struct("<8sIIIIIIIIIIIH")
_SB_SIZE = _SB_STRUCT.size

#: Root object identity: (dirid, objectid).
ROOT_KEY_PAIR = (1, 2)


@dataclass
class ReiserSuper:
    """Contains info about tree and file system (Table 4)."""

    magic: bytes
    block_size: int
    total_blocks: int
    free_blocks: int
    root_block: int
    height: int
    next_objid: int
    journal_start: int
    journal_blocks: int
    bitmap_start: int
    bitmap_blocks: int
    data_start: int
    state: int = 0
    nobjects: int = 1

    def pack(self, block_size: int) -> bytes:
        payload = _SB_STRUCT.pack(
            self.magic, self.block_size, self.total_blocks, self.free_blocks,
            self.root_block, self.height, self.next_objid, self.journal_start,
            self.journal_blocks, self.bitmap_start, self.bitmap_blocks,
            self.data_start, self.state,
        ) + U32.pack(self.nobjects)
        return payload + b"\x00" * (block_size - len(payload))

    @classmethod
    def unpack(cls, data: bytes) -> "ReiserSuper":
        f = _SB_STRUCT.unpack_from(data)
        (nobjects,) = U32.unpack_from(data, _SB_SIZE)
        return cls(*f, nobjects=nobjects)

    def is_valid(self) -> bool:
        """ReiserFS superblock magic check (D_sanity, §5.2)."""
        return (
            self.magic == REISER_MAGIC
            and self.block_size >= 512
            and 0 < self.root_block < self.total_blocks
            and 1 <= self.height <= 7
        )


_STAT_STRUCT = Struct("<HHHHQddd")
STAT_BODY_SIZE = _STAT_STRUCT.size


@dataclass
class StatBody:
    """Stat item: info about files and directories (Table 4)."""

    mode: int = 0
    links: int = 0
    uid: int = 0
    gid: int = 0
    size: int = 0
    atime: float = 0.0
    mtime: float = 0.0
    ctime: float = 0.0

    def pack(self) -> bytes:
        return _STAT_STRUCT.pack(
            self.mode, self.links, self.uid, self.gid,
            self.size, self.atime, self.mtime, self.ctime,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "StatBody":
        return cls(*_STAT_STRUCT.unpack_from(data))


_DIRENT_HDR = Struct("<IIBB")


def pack_dirent_body(child: Tuple[int, int], ftype: int, name: str) -> bytes:
    raw = name.encode("latin-1", errors="replace")[:255]
    return _DIRENT_HDR.pack(child[0], child[1], ftype & 0xFF, len(raw)) + raw


def unpack_dirent_body(data: bytes) -> Tuple[Tuple[int, int], int, str]:
    dirid, objid, ftype, nlen = _DIRENT_HDR.unpack_from(data)
    name = data[10:10 + nlen].decode("latin-1")
    return (dirid, objid), ftype, name


def pack_indirect_body(pointers: List[int]) -> bytes:
    return u32_seq(len(pointers)).pack(*pointers)


def unpack_indirect_body(data: bytes) -> List[int]:
    n = len(data) // 4
    return list(u32_seq(n).unpack_from(data))


def name_hash(name: str) -> int:
    """Deterministic directory-entry hash offset.  Offsets below 16 are
    reserved ('.' at 2, '..' at 3, stat item at 0)."""
    if name == ".":
        return 2
    if name == "..":
        return 3
    return (crc32(name.encode()) & 0x7FFFFFF0) + 16
