"""ReiserFS v3 (§5.2): one balanced tree for metadata and data."""

from repro.fs.reiserfs.btree import BTree, Item, Node
from repro.fs.reiserfs.config import ReiserConfig
from repro.fs.reiserfs.mkfs import mkfs_reiserfs
from repro.fs.reiserfs.reiserfs import ReiserFS
from repro.fs.reiserfs.structures import ReiserSuper, StatBody

__all__ = [
    "BTree",
    "Item",
    "Node",
    "ReiserConfig",
    "ReiserFS",
    "ReiserSuper",
    "StatBody",
    "mkfs_reiserfs",
]
