"""ReiserFS version 3, as characterized by the study (§5.2).

Virtually all metadata and data live in a balanced tree.  The failure
policy, expressed as code paths:

* **Reads**: error codes are checked everywhere (``D_errorcode``); most
  failures propagate (``R_propagate``); data-block reads, and tree
  reads reaching file body items during ``unlink``/``truncate``/
  ``write``, are retried once (``R_retry``).  Writes are never retried.
* **Writes**: error codes are checked and virtually any write failure
  causes a ``panic`` (``R_stop``) — the Hippocratic "first, do no
  harm" policy.  Exception (the paper's bug, by a different developer):
  an *ordered data block* write failure is silently ignored and the
  transaction commits anyway.
* **Sanity** (``D_sanity``): every tree node's block header (level,
  item count, free space) is verified; the superblock and journal
  metadata carry magic numbers.  Bitmap and unformatted data blocks
  have no type information and are never checked.
* **Documented bugs reproduced here**: an indirect-item read failure
  during ``truncate``/``unlink`` is detected but *ignored*, leaking
  space; sanity failures on internal tree nodes ``panic`` instead of
  returning an error; journal *data* blocks are replayed with no sanity
  check, so a corrupted journal block can be written anywhere — even
  over the superblock.
"""

from __future__ import annotations

import stat as _stat
from typing import Dict, List, Optional, Tuple

from repro.common.bitmap import Bitmap
from repro.common.errors import (
    CorruptionDetected,
    DiskError,
    Errno,
    FSError,
    KernelPanic,
)
from repro.common.syslog import Severity
from repro.fs.base import JournaledFS
from repro.fs.ext3.journal import Journal, parse_commit, parse_desc
from repro.fs.reiserfs.btree import (
    BTree,
    IT_DIRECT,
    IT_DIRENTRY,
    IT_INDIRECT,
    IT_STAT,
    Item,
    Node,
)
from repro.fs.reiserfs.config import ReiserConfig
from repro.fs.reiserfs.structures import (
    ReiserSuper,
    ROOT_KEY_PAIR,
    StatBody,
    name_hash,
    pack_dirent_body,
    pack_indirect_body,
    unpack_dirent_body,
    unpack_indirect_body,
)
from repro.vfs.fdtable import O_APPEND, O_CREAT, O_TRUNC
from repro.vfs.paths import MAX_SYMLINK_DEPTH, dirname_basename, is_ancestor, split_path
from repro.vfs.stat import (
    DEFAULT_DIR_MODE,
    DEFAULT_FILE_MODE,
    DEFAULT_LINK_MODE,
    StatResult,
    StatVFS,
)

FT_REG, FT_DIR, FT_SYMLINK = 1, 2, 7

Pair = Tuple[int, int]


class ReiserFS(JournaledFS):
    """ReiserFS over a :class:`BlockDevice`."""

    name = "reiserfs"

    #: Table 4: ReiserFS on-disk structures.
    BLOCK_TYPES: Dict[str, str] = {
        "leaf node": "Contains items of various kinds",
        "stat item": "Info about files and directories",
        "dir item": "List of files in directory",
        "direct item": "Holds small files or tail of file",
        "indirect": "Allows for large files to exist",
        "bitmap": "Tracks data blocks",
        "data": "Holds user data",
        "super": "Contains info about tree and file system",
        "j-header": "Describes journal",
        "j-desc": "Describes contents of transaction",
        "j-commit": "Marks end of transaction",
        "j-data": "Contains blocks that are journaled",
        "root": "Used for tree traversal",
        "internal": "Used for tree traversal",
    }

    def __init__(self, device, sync_mode: bool = True, commit_every: int = 64,
                 commit_stall_s: Optional[float] = None):
        super().__init__(device, sync_mode=sync_mode, commit_every=commit_every,
                         commit_stall_s=commit_stall_s)
        self.sb: Optional[ReiserSuper] = None
        self.config: Optional[ReiserConfig] = None
        self.tree: Optional[BTree] = None
        self._types: Dict[int, str] = {}
        self._jtypes: Dict[int, str] = {}
        self._fd_pairs: Dict[int, Pair] = {}

    # ==================================================================
    # Failure-policy hooks: check write errors and panic (R_stop).
    # ==================================================================

    def _panic_write(self, block: int, data: bytes) -> None:
        try:
            self.buf.bwrite(block, data)
        except DiskError as exc:
            self.syslog.detection(self.name, "write-error",
                                  f"write failed, panicking: {exc}",
                                  mechanism="error-code",
                                  severity=Severity.CRITICAL, block=block)
            raise KernelPanic("reiserfs", f"I/O failure writing block {block}") from exc

    def _write_ordered_buggy(self, block: int, data: bytes) -> None:
        # The paper's bug (§5.2): an ordered data write failure is
        # ignored; the transaction is journaled and committed anyway,
        # leaving metadata pointing at stale or invalid data contents.
        self.buf.bwrite_nocheck(block, data)

    # ==================================================================
    # Lifecycle
    # ==================================================================

    def mount(self) -> None:
        if self._mounted:
            raise FSError(Errno.EINVAL, "already mounted")
        try:
            raw = self.buf.bread(0)
        except DiskError as exc:
            self.syslog.detection(self.name, "read-error",
                                  f"superblock unreadable: {exc}",
                                  mechanism="error-code", block=0)
            raise FSError(Errno.EIO, "cannot read superblock") from exc
        sb = ReiserSuper.unpack(raw)
        if not sb.is_valid():
            self.syslog.detection(self.name, "sanity-fail", "bad superblock magic",
                                  mechanism="sanity", block=0)
            self.syslog.action(self.name, "unmountable", "refusing to mount corrupt volume")
            raise FSError(Errno.EUCLEAN, "bad superblock")
        self.sb = sb
        self.config = ReiserConfig(
            block_size=sb.block_size,
            total_blocks=sb.total_blocks,
            journal_blocks=sb.journal_blocks,
        )
        self.journal = Journal(
            start=sb.journal_start,
            nblocks=sb.journal_blocks,
            block_size=self.block_size,
            syslog=self.syslog,
            journal_write=self._panic_write,
            home_write=self._panic_write,
            ordered_write=self._write_ordered_buggy,
            read_block=self.buf.bread,
            set_type=self._set_jtype,
            stall=self._stall,
            commit_stall_s=self.commit_stall_s,
            txn_checksum=False,
        )
        self.tree = BTree(
            read_node=self._node_read,
            write_node=self._node_write,
            alloc=self._alloc_tree_block,
            free=self._free_block,
            max_leaf_items=self.config.max_leaf_items,
            max_fanout=self.config.max_fanout,
            block_size=self.block_size,
        )
        self.tree.root_block = sb.root_block
        self.tree.height = sb.height
        self._rebuild_types()
        try:
            # No sanity or type check protects journal *data* blocks: a
            # corrupted copy is replayed to wherever its descriptor
            # points (§5.2).
            with self._span("journal-replay", "txn"):
                self.journal.recover()
        except CorruptionDetected as exc:
            self.syslog.detection(self.name, "sanity-fail", str(exc),
                                  mechanism="sanity", block=exc.block)
            raise FSError(Errno.EUCLEAN, "journal header invalid") from exc
        except DiskError as exc:
            self.syslog.action(self.name, "mount-failed",
                               f"journal unreadable during recovery: {exc}")
            raise FSError(Errno.EIO, "cannot replay journal") from exc
        # Recovery may have replayed a (possibly corrupt) block over the
        # superblock or tree root; re-read the superblock blindly.
        sb2 = ReiserSuper.unpack(self.buf.bread(0))
        if sb2.is_valid():
            self.sb = sb2
            self.tree.root_block = sb2.root_block
            self.tree.height = sb2.height
        self._mounted = True
        self._rebuild_types()

    def unmount(self) -> None:
        self._ensure_mounted()
        if not self._read_only:
            self.journal.commit()
            self.journal.checkpoint()
        self.fdtable.close_all()
        self._fd_pairs.clear()
        self._mounted = False

    # ==================================================================
    # Namespace operations
    # ==================================================================

    def creat(self, path: str, mode: int = 0o644) -> int:
        def body():
            return self._do_creat(path, mode)
        return self._run_modifying(body)

    def open(self, path: str, flags: int = 0, mode: int = 0o644) -> int:
        modifying = bool(flags & (O_CREAT | O_TRUNC))
        self._begin_op(modifying=modifying)
        try:
            fd = self._do_open(path, flags, mode)
        except KernelPanic:
            self._mounted = False
            raise
        except Exception:
            self._end_op(modifying=modifying)
            raise
        self._end_op(modifying=modifying)
        return fd

    def close(self, fd: int) -> None:
        self._ensure_mounted()
        self.fdtable.close(fd)
        self._fd_pairs.pop(fd, None)

    def read(self, fd: int, size: int, offset: Optional[int] = None) -> bytes:
        self._begin_op(modifying=False)
        try:
            of = self.fdtable.get(fd)
            if not of.readable:
                raise FSError(Errno.EBADF, "fd not open for reading")
            pair = self._fd_pairs[fd]
            st = self._get_stat(pair)
            pos = of.offset if offset is None else offset
            end = min(pos + size, st.size)
            if end <= pos:
                return b""
            content = self._read_object_data(pair, st)
            if offset is None:
                of.offset = end
            return content[pos:end]
        finally:
            self._end_op(modifying=False)

    def write(self, fd: int, data: bytes, offset: Optional[int] = None) -> int:
        def body():
            of = self.fdtable.get(fd)
            if not of.writable:
                raise FSError(Errno.EBADF, "fd not open for writing")
            if not data:
                return 0
            pair = self._fd_pairs[fd]
            st = self._get_stat(pair, retries=1)
            pos = st.size if of.flags & O_APPEND else (
                of.offset if offset is None else offset
            )
            old = self._read_object_data(pair, st, retries=1) if st.size else b""
            new = bytearray(max(len(old), pos + len(data)))
            new[:len(old)] = old
            new[pos:pos + len(data)] = data
            self._store_object_data(pair, st, bytes(new))
            if offset is None or of.flags & O_APPEND:
                of.offset = pos + len(data)
            return len(data)
        return self._run_modifying(body)

    def truncate(self, path: str, size: int) -> None:
        def body():
            pair = self._lookup(path, follow=True)
            st = self._get_stat(pair, retries=1)
            if _stat.S_ISDIR(st.mode):
                raise FSError(Errno.EISDIR, path)
            if size == st.size:
                return
            if size > st.size:
                content = self._read_object_data(pair, st, retries=1)
                self._store_object_data(pair, st, content + b"\x00" * (size - st.size))
                return
            try:
                content = self._read_object_data(pair, st, retries=1)
            except FSError:
                # The paper's leak bug (§5.2): the indirect read failure
                # was detected (and logged) but is ignored here; the
                # stat item shrinks while the data blocks are never
                # freed — space leaks.
                self.syslog.action(self.name, "ignored-error",
                                   "indirect read failure ignored during truncate",
                                   severity=Severity.WARNING)
                st.size = size
                try:
                    self._put_stat(pair, st)
                except FSError:
                    pass
                return
            self._store_object_data(pair, st, content[:size])
        self._run_modifying(body)

    def link(self, existing: str, new: str) -> None:
        def body():
            src = self._lookup(existing, follow=False)
            st = self._get_stat(src)
            if _stat.S_ISDIR(st.mode):
                raise FSError(Errno.EPERM, "hard links to directories are not allowed")
            parent_path, name = dirname_basename(self.resolve(new))
            parent = self._lookup(parent_path, follow=True)
            if self._dir_find(parent, name) is not None:
                raise FSError(Errno.EEXIST, new)
            self._dir_add(parent, name, src, FT_REG)
            st.links += 1
            self._put_stat(src, st)
        self._run_modifying(body)

    def unlink(self, path: str) -> None:
        def body():
            parent_path, name = dirname_basename(self.resolve(path))
            parent = self._lookup(parent_path, follow=True)
            found = self._dir_find(parent, name)
            if found is None:
                raise FSError(Errno.ENOENT, path)
            child, _ftype = found
            st = self._get_stat(child)
            if _stat.S_ISDIR(st.mode):
                raise FSError(Errno.EISDIR, path)
            self._dir_remove(parent, name)
            if st.links <= 1:
                self._delete_object(child, st)
            else:
                st.links -= 1
                self._put_stat(child, st)
        self._run_modifying(body)

    def symlink(self, target: str, linkpath: str) -> None:
        def body():
            if len(target.encode()) > self.block_size:
                raise FSError(Errno.ENAMETOOLONG, "symlink target too long")
            parent_path, name = dirname_basename(self.resolve(linkpath))
            parent = self._lookup(parent_path, follow=True)
            if self._dir_find(parent, name) is not None:
                raise FSError(Errno.EEXIST, linkpath)
            pair = self._create_object(DEFAULT_LINK_MODE, links=1)
            st = self._get_stat(pair)
            self._store_object_data(pair, st, target.encode())
            self._dir_add(parent, name, pair, FT_SYMLINK)
        self._run_modifying(body)

    def readlink(self, path: str) -> str:
        self._begin_op(modifying=False)
        try:
            pair = self._lookup(path, follow=False)
            st = self._get_stat(pair)
            if not _stat.S_ISLNK(st.mode):
                raise FSError(Errno.EINVAL, "not a symlink")
            return self._read_object_data(pair, st).decode(errors="replace")
        finally:
            self._end_op(modifying=False)

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        def body():
            parent_path, name = dirname_basename(self.resolve(path))
            parent = self._lookup(parent_path, follow=True)
            pst = self._get_stat(parent)
            if not _stat.S_ISDIR(pst.mode):
                raise FSError(Errno.ENOTDIR, parent_path)
            if self._dir_find(parent, name) is not None:
                raise FSError(Errno.EEXIST, path)
            pair = self._create_object(
                (DEFAULT_DIR_MODE & ~0o777) | (mode & 0o777), links=2
            )
            self._dir_add(pair, ".", pair, FT_DIR)
            self._dir_add(pair, "..", parent, FT_DIR)
            self._dir_add(parent, name, pair, FT_DIR)
            pst = self._get_stat(parent)
            pst.links += 1
            self._put_stat(parent, pst)
        self._run_modifying(body)

    def rmdir(self, path: str) -> None:
        def body():
            resolved = self.resolve(path)
            if resolved == "/":
                raise FSError(Errno.EINVAL, "cannot remove root")
            parent_path, name = dirname_basename(resolved)
            parent = self._lookup(parent_path, follow=True)
            found = self._dir_find(parent, name)
            if found is None:
                raise FSError(Errno.ENOENT, path)
            child, _ = found
            st = self._get_stat(child)
            if not _stat.S_ISDIR(st.mode):
                raise FSError(Errno.ENOTDIR, path)
            if any(n not in (".", "..") for _, _, n in self._dir_entries(child)):
                raise FSError(Errno.ENOTEMPTY, path)
            self._dir_remove(parent, name)
            self._delete_object(child, st)
            pst = self._get_stat(parent)
            pst.links = max(pst.links - 1, 0)
            self._put_stat(parent, pst)
        self._run_modifying(body)

    def rename(self, old: str, new: str) -> None:
        def body():
            old_r, new_r = self.resolve(old), self.resolve(new)
            if is_ancestor(old_r, new_r) and old_r != new_r:
                raise FSError(Errno.EINVAL, "cannot move a directory into itself")
            old_pp, old_name = dirname_basename(old_r)
            new_pp, new_name = dirname_basename(new_r)
            old_parent = self._lookup(old_pp, follow=True)
            found = self._dir_find(old_parent, old_name)
            if found is None:
                raise FSError(Errno.ENOENT, old)
            if old_r == new_r:
                return  # renaming an existing name onto itself: no-op
            moving, ftype = found
            mst = self._get_stat(moving)
            moving_is_dir = _stat.S_ISDIR(mst.mode)
            new_parent = self._lookup(new_pp, follow=True)
            target = self._dir_find(new_parent, new_name)
            if target is not None:
                tpair, _ = target
                tst = self._get_stat(tpair)
                if _stat.S_ISDIR(tst.mode):
                    if not moving_is_dir:
                        raise FSError(Errno.EISDIR, new)
                    if any(n not in (".", "..") for _, _, n in self._dir_entries(tpair)):
                        raise FSError(Errno.ENOTEMPTY, new)
                    self._dir_remove(new_parent, new_name)
                    self._delete_object(tpair, tst)
                    npst = self._get_stat(new_parent)
                    npst.links = max(npst.links - 1, 0)
                    self._put_stat(new_parent, npst)
                else:
                    if moving_is_dir:
                        raise FSError(Errno.ENOTDIR, new)
                    self._dir_remove(new_parent, new_name)
                    if tst.links <= 1:
                        self._delete_object(tpair, tst)
                    else:
                        tst.links -= 1
                        self._put_stat(tpair, tst)
            self._dir_remove(old_parent, old_name)
            self._dir_add(new_parent, new_name, moving, ftype)
            if moving_is_dir and old_parent != new_parent:
                self._dir_remove(moving, "..")
                self._dir_add(moving, "..", new_parent, FT_DIR)
                opst = self._get_stat(old_parent)
                opst.links = max(opst.links - 1, 0)
                self._put_stat(old_parent, opst)
                npst = self._get_stat(new_parent)
                npst.links += 1
                self._put_stat(new_parent, npst)
        self._run_modifying(body)

    def getdirentries(self, path: str) -> List[str]:
        self._begin_op(modifying=False)
        try:
            pair = self._lookup(path, follow=True)
            st = self._get_stat(pair)
            if not _stat.S_ISDIR(st.mode):
                raise FSError(Errno.ENOTDIR, path)
            return [name for _, _, name in self._dir_entries(pair)]
        finally:
            self._end_op(modifying=False)

    def stat(self, path: str) -> StatResult:
        self._begin_op(modifying=False)
        try:
            pair = self._lookup(path, follow=True)
            return self._stat_result(pair)
        finally:
            self._end_op(modifying=False)

    def lstat(self, path: str) -> StatResult:
        self._begin_op(modifying=False)
        try:
            pair = self._lookup(path, follow=False)
            return self._stat_result(pair)
        finally:
            self._end_op(modifying=False)

    def statfs(self) -> StatVFS:
        self._ensure_mounted()
        return StatVFS(
            block_size=self.block_size,
            total_blocks=self.sb.total_blocks,
            free_blocks=self.sb.free_blocks,
            total_inodes=65535,
            free_inodes=65535 - self.sb.nobjects,
        )

    def chmod(self, path: str, mode: int) -> None:
        def body():
            pair = self._lookup(path, follow=True)
            st = self._get_stat(pair)
            st.mode = (st.mode & ~0o7777) | (mode & 0o7777)
            self._put_stat(pair, st)
        self._run_modifying(body)

    def chown(self, path: str, uid: int, gid: int) -> None:
        def body():
            pair = self._lookup(path, follow=True)
            st = self._get_stat(pair)
            st.uid, st.gid = uid, gid
            self._put_stat(pair, st)
        self._run_modifying(body)

    def utimes(self, path: str, atime: float, mtime: float) -> None:
        def body():
            pair = self._lookup(path, follow=True)
            st = self._get_stat(pair)
            st.atime, st.mtime = atime, mtime
            self._put_stat(pair, st)
        self._run_modifying(body)

    # ==================================================================
    # Operation bodies and object helpers
    # ==================================================================

    def _do_creat(self, path: str, mode: int) -> int:
        parent_path, name = dirname_basename(self.resolve(path))
        parent = self._lookup(parent_path, follow=True)
        pst = self._get_stat(parent)
        if not _stat.S_ISDIR(pst.mode):
            raise FSError(Errno.ENOTDIR, parent_path)
        found = self._dir_find(parent, name)
        if found is not None:
            pair, _ = found
            st = self._get_stat(pair)
            if _stat.S_ISDIR(st.mode):
                raise FSError(Errno.EISDIR, path)
            self._store_object_data(pair, st, b"")
            fd = self.fdtable.allocate(pair[1], 1)
            self._fd_pairs[fd] = pair
            return fd
        pair = self._create_object((DEFAULT_FILE_MODE & ~0o777) | (mode & 0o777), links=1)
        self._dir_add(parent, name, pair, FT_REG)
        fd = self.fdtable.allocate(pair[1], 1)
        self._fd_pairs[fd] = pair
        return fd

    def _do_open(self, path: str, flags: int, mode: int) -> int:
        resolved = self.resolve(path)
        try:
            pair = self._lookup(resolved, follow=True)
        except FSError as exc:
            if exc.errno is Errno.ENOENT and flags & O_CREAT:
                return self._do_creat(resolved, mode)
            raise
        st = self._get_stat(pair)
        if _stat.S_ISDIR(st.mode) and (flags & 0x3):
            raise FSError(Errno.EISDIR, path)
        if flags & O_TRUNC and not _stat.S_ISDIR(st.mode):
            self._store_object_data(pair, st, b"")
        fd = self.fdtable.allocate(pair[1], flags)
        self._fd_pairs[fd] = pair
        return fd

    def _create_object(self, mode: int, links: int) -> Pair:
        pair = (1, self.sb.next_objid)
        self.sb.next_objid += 1
        self.sb.nobjects += 1
        st = StatBody(mode=mode, links=links, atime=1.0, mtime=1.0, ctime=1.0)
        self.tree.insert(Item((pair[0], pair[1], 0, IT_STAT), st.pack()))
        self._flush_super()
        return pair

    def _delete_object(self, pair: Pair, st: StatBody) -> None:
        """Remove every item of the object, freeing unformatted blocks.
        Carries the paper's leak bug for indirect-read failures."""
        try:
            items = self._body_items(pair, retries=1)
            for item in items:
                if item.kind == IT_INDIRECT:
                    for ptr in unpack_indirect_body(item.body):
                        if ptr:
                            self._free_block(ptr)
                self.tree.delete(item.key)
            # Directory entries of a directory object.
            for item in self._entry_items(pair):
                self.tree.delete(item.key)
            self.tree.delete((pair[0], pair[1], 0, IT_STAT))
        except FSError:
            # The paper's leak bug (§5.2): the read failure was detected
            # (and logged) but is ignored; whatever was not yet freed
            # leaks, and the super/bitmap land in an inconsistent state.
            self.syslog.action(self.name, "ignored-error",
                               "indirect read failure ignored during delete",
                               severity=Severity.WARNING)
        self.sb.nobjects = max(self.sb.nobjects - 1, 1)
        self._flush_super()

    # -- stat items -------------------------------------------------------------

    def _get_stat(self, pair: Pair, retries: int = 0) -> StatBody:
        item = self.tree.lookup((pair[0], pair[1], 0, IT_STAT), retries)
        if item is None:
            raise FSError(Errno.ENOENT, f"object {pair} has no stat item")
        return StatBody.unpack(item.body)

    def _put_stat(self, pair: Pair, st: StatBody) -> None:
        self.tree.replace(Item((pair[0], pair[1], 0, IT_STAT), st.pack()))

    def _stat_result(self, pair: Pair) -> StatResult:
        st = self._get_stat(pair)
        return StatResult(ino=pair[1], mode=st.mode, nlink=st.links, uid=st.uid,
                          gid=st.gid, size=st.size, atime=st.atime,
                          mtime=st.mtime, ctime=st.ctime)

    # -- file bodies --------------------------------------------------------------

    def _body_items(self, pair: Pair, retries: int = 0) -> List[Item]:
        lo = (pair[0], pair[1], 1, 0)
        hi = (pair[0], pair[1], 0xFFFFFFFF, 0xFF)
        items = self.tree.range_scan(lo, hi, retries)
        return sorted(
            (i for i in items if i.kind in (IT_DIRECT, IT_INDIRECT)),
            key=lambda i: i.key[2],
        )

    def _read_object_data(self, pair: Pair, st: StatBody, retries: int = 0) -> bytes:
        if st.size == 0:
            return b""
        chunks: List[bytes] = []
        for item in self._body_items(pair, retries):
            if item.kind == IT_DIRECT:
                chunks.append(item.body)
            else:
                for ptr in unpack_indirect_body(item.body):
                    if ptr == 0:
                        chunks.append(b"\x00" * self.block_size)
                        continue
                    chunks.append(self._data_bread(ptr))
        return b"".join(chunks)[:st.size]

    def _store_object_data(self, pair: Pair, st: StatBody, content: bytes) -> None:
        """Replace the object's body items with *content* (tail-sized
        bodies become a direct item; larger ones, indirect items over
        unformatted blocks)."""
        cfg = self.config
        old_items = self._body_items(pair, retries=1)
        old_ptrs: List[int] = []
        for item in old_items:
            if item.kind == IT_INDIRECT:
                old_ptrs.extend(p for p in unpack_indirect_body(item.body) if p)
        bs = self.block_size
        nblocks = (len(content) + bs - 1) // bs
        if len(content) <= cfg.tail_threshold:
            new_ptrs: List[int] = []
        else:
            new_ptrs = list(old_ptrs[:nblocks])
            while len(new_ptrs) < nblocks:
                new_ptrs.append(self._alloc_block("data"))
        # Free surplus blocks.
        for ptr in old_ptrs[len(new_ptrs):]:
            self._free_block(ptr)
        # Remove old body items; insert the new shape.
        for item in old_items:
            self.tree.delete(item.key)
        if len(content) <= cfg.tail_threshold:
            if content:
                self.tree.insert(Item((pair[0], pair[1], 1, IT_DIRECT), content))
        else:
            k = cfg.indirect_ptrs_per_item
            for i in range(0, nblocks, k):
                ptrs = new_ptrs[i:i + k]
                key = (pair[0], pair[1], 1 + i * bs, IT_INDIRECT)
                self.tree.insert(Item(key, pack_indirect_body(ptrs)))
            for i, ptr in enumerate(new_ptrs):
                chunk = content[i * bs:(i + 1) * bs]
                payload = chunk + b"\x00" * (bs - len(chunk))
                self._types[ptr] = "data"
                self.journal.add_ordered(ptr, payload)
        st.size = len(content)
        st.mtime += 1.0
        self._put_stat(pair, st)
        self._flush_super()

    # -- directories ----------------------------------------------------------------

    def _entry_items(self, pair: Pair) -> List[Item]:
        lo = (pair[0], pair[1], 0, IT_DIRENTRY)
        hi = (pair[0], pair[1], 0xFFFFFFFF, IT_DIRENTRY)
        items = self.tree.range_scan(lo, hi)
        return sorted(
            (i for i in items if i.kind == IT_DIRENTRY), key=lambda i: i.key[2]
        )

    def _require_dir(self, pair: Pair) -> None:
        # Directory ops on a non-directory must fail with ENOTDIR, the
        # same outcome every other file system here reports.
        if not _stat.S_ISDIR(self._get_stat(pair).mode):
            raise FSError(Errno.ENOTDIR, "not a directory")

    def _dir_entries(self, pair: Pair) -> List[Tuple[Pair, int, str]]:
        self._require_dir(pair)
        out = []
        for item in self._entry_items(pair):
            child, ftype, name = unpack_dirent_body(item.body)
            out.append((child, ftype, name))
        return out

    def _dir_find(self, pair: Pair, name: str) -> Optional[Tuple[Pair, int]]:
        self._require_dir(pair)
        h = name_hash(name)
        for probe in range(16):
            item = self.tree.lookup((pair[0], pair[1], h + probe, IT_DIRENTRY))
            if item is None:
                return None
            child, ftype, found = unpack_dirent_body(item.body)
            if found == name:
                return child, ftype
        return None

    def _dir_add(self, pair: Pair, name: str, child: Pair, ftype: int) -> None:
        self._require_dir(pair)
        h = name_hash(name)
        for probe in range(16):
            key = (pair[0], pair[1], h + probe, IT_DIRENTRY)
            item = self.tree.lookup(key)
            if item is None:
                self.tree.insert(Item(key, pack_dirent_body(child, ftype, name)))
                return
            _, _, found = unpack_dirent_body(item.body)
            if found == name:
                raise FSError(Errno.EEXIST, name)
        raise FSError(Errno.ENOSPC, "directory hash chain exhausted")

    def _dir_remove(self, pair: Pair, name: str) -> None:
        self._require_dir(pair)
        h = name_hash(name)
        for probe in range(16):
            key = (pair[0], pair[1], h + probe, IT_DIRENTRY)
            item = self.tree.lookup(key)
            if item is None:
                break
            _, _, found = unpack_dirent_body(item.body)
            if found == name:
                self.tree.delete(key)
                return
        raise FSError(Errno.ENOENT, name)

    # -- path lookup ---------------------------------------------------------------------

    def _lookup(self, path: str, follow: bool = True, _depth: int = 0) -> Pair:
        if _depth > MAX_SYMLINK_DEPTH:
            raise FSError(Errno.ELOOP, path)
        resolved = self.resolve(path)
        parts = split_path(resolved)
        pair: Pair = ROOT_KEY_PAIR
        for i, name in enumerate(parts):
            st = self._get_stat(pair)
            if not _stat.S_ISDIR(st.mode):
                raise FSError(Errno.ENOTDIR, "/" + "/".join(parts[:i]))
            found = self._dir_find(pair, name)
            if found is None:
                raise FSError(Errno.ENOENT, resolved)
            child, _ftype = found
            cst = self._get_stat(child)
            is_last = i == len(parts) - 1
            if _stat.S_ISLNK(cst.mode) and (follow or not is_last):
                target = self._read_object_data(child, cst).decode(errors="replace")
                if not target.startswith("/"):
                    target = "/" + "/".join(parts[:i]) + "/" + target
                remainder = "/".join(parts[i + 1:])
                full = target + ("/" + remainder if remainder else "")
                return self._lookup(full, follow=follow, _depth=_depth + 1)
            pair = child
        return pair

    # ==================================================================
    # Node and data I/O with ReiserFS's failure policy
    # ==================================================================

    def _node_read(self, block: int, retries: int = 0) -> Node:
        cached = self.journal.cached(block) if self.journal else None
        if cached is not None:
            raw = cached
        else:
            try:
                raw = self.buf.bread(block, retries=retries)
            except DiskError as exc:
                self.syslog.detection(self.name, "read-error",
                                      f"tree block read failed: {exc}",
                                      mechanism="error-code", block=block)
                raise FSError(Errno.EIO, f"tree block {block} unreadable") from exc
        try:
            return Node.unpack(raw, block)
        except CorruptionDetected as exc:
            self.syslog.detection(self.name, "sanity-fail", str(exc),
                                  mechanism="sanity", block=block)
            label = self.block_type(block)
            if label in ("internal", "root"):
                # The paper's bug (§5.2): a sanity failure on an
                # internal node panics instead of returning an error.
                raise KernelPanic("reiserfs", f"corrupt internal tree node {block}") from exc
            raise FSError(Errno.EUCLEAN, f"corrupt tree node {block}") from exc

    def _node_write(self, block: int, node: Node) -> None:
        self._types[block] = self._label_for(block, node)
        self.journal.add_meta(block, node.pack(self.block_size))

    def _label_for(self, block: int, node: Node) -> str:
        if not node.is_leaf:
            return "internal"
        if node.items:
            kinds = {item.kind for item in node.items}
            # Most-specific-kind-present labelling: the paper's tool
            # classifies a leaf by the most distinctive structure it
            # holds, so every Figure-2 row is targetable.
            for kind, label in ((IT_INDIRECT, "indirect"),
                                (IT_DIRENTRY, "dir item"),
                                (IT_STAT, "stat item"),
                                (IT_DIRECT, "direct item")):
                if kind in kinds:
                    return label
        return "leaf node"

    def _data_bread(self, block: int) -> bytes:
        cached = self.journal.cached(block) if self.journal else None
        if cached is not None:
            return cached
        try:
            return self.buf.bread(block)
        except DiskError:
            # Data block reads are retried once (§5.2).
            try:
                return self.buf.bread(block)
            except DiskError as exc:
                self.syslog.detection(self.name, "read-error",
                                      f"data read failed: {exc}",
                                      mechanism="error-code", block=block)
                raise FSError(Errno.EIO, f"data block {block} unreadable") from exc

    # -- allocation -----------------------------------------------------------------------

    def _bitmap_block_of(self, block: int) -> Tuple[int, int]:
        bits = self.block_size * 8
        return self.config.bitmap_start + block // bits, block % bits

    def _read_bitmap(self, bmp_block: int) -> Bitmap:
        cached = self.journal.cached(bmp_block) if self.journal else None
        if cached is not None:
            return Bitmap(self.block_size * 8, cached)
        try:
            raw = self.buf.bread(bmp_block)
        except DiskError as exc:
            self.syslog.detection(self.name, "read-error",
                                  f"bitmap read failed: {exc}",
                                  mechanism="error-code", block=bmp_block)
            raise FSError(Errno.EIO, "bitmap unreadable") from exc
        # No type information: a corrupt bitmap is used blindly (§5.2).
        return Bitmap(self.block_size * 8, raw)

    def _alloc_block(self, kind: str) -> int:
        cfg = self.config
        bits = self.block_size * 8
        for bmp_idx in range(cfg.bitmap_blocks):
            bmp_block = cfg.bitmap_start + bmp_idx
            bmp = self._read_bitmap(bmp_block)
            start = cfg.data_start - bmp_idx * bits
            bit = bmp.find_free(max(start, 0))
            if bit is None:
                continue
            absolute = bmp_idx * bits + bit
            if absolute >= cfg.total_blocks:
                continue
            bmp.set(bit)
            self.journal.add_meta(bmp_block, bmp.to_bytes(pad_to=self.block_size))
            self.sb.free_blocks -= 1
            self._flush_super()
            self._types[absolute] = kind
            return absolute
        raise FSError(Errno.ENOSPC, "out of disk space")

    def _alloc_tree_block(self, kind: str) -> int:
        label = "internal" if kind == "internal" else "leaf node"
        return self._alloc_block(label)

    def _free_block(self, block: int) -> None:
        if not 0 < block < self.config.total_blocks:
            return
        bmp_block, bit = self._bitmap_block_of(block)
        bmp = self._read_bitmap(bmp_block)
        if bmp.test(bit):
            bmp.clear(bit)
            self.journal.add_meta(bmp_block, bmp.to_bytes(pad_to=self.block_size))
            self.sb.free_blocks += 1
            self._flush_super()
        self.journal.revoke(block)
        self._types.pop(block, None)

    def _flush_super(self) -> None:
        self.sb.root_block = self.tree.root_block
        self.sb.height = self.tree.height
        self.journal.add_meta(0, self.sb.pack(self.block_size))

    def _end_op(self, modifying: bool) -> None:
        # Tree splits later in the operation may have moved the root
        # after the last superblock flush; reconcile before committing.
        if (modifying and self.journal is not None and not self.journal.aborted
                and self.sb is not None and self.tree is not None
                and (self.sb.root_block != self.tree.root_block
                     or self.sb.height != self.tree.height)):
            self._flush_super()
        super()._end_op(modifying)

    # ==================================================================
    # Gray-box: block-type oracle
    # ==================================================================

    def block_type(self, block: int) -> Optional[str]:
        cfg = self.config
        if cfg is None:
            return None
        if block == 0:
            return "super"
        if cfg.journal_start <= block < cfg.journal_start + cfg.journal_blocks:
            if block == cfg.journal_start:
                return "j-header"
            return self._jtypes.get(block, "j-data")
        if cfg.bitmap_start <= block < cfg.bitmap_start + cfg.bitmap_blocks:
            return "bitmap"
        label = self._types.get(block)
        if label in ("internal", "root"):
            return "root" if self.tree and block == self.tree.root_block else "internal"
        if self.tree and block == self.tree.root_block:
            return "root"
        return label

    def _set_jtype(self, block: int, jtype: str) -> None:
        self._jtypes[block] = "j-header" if jtype == "j-super" else jtype

    def _rebuild_types(self) -> None:
        cfg = self.config
        self._types = {}
        self._jtypes = {}
        pos = 1
        while pos < cfg.journal_blocks:
            raw = self._peek(cfg.journal_start + pos)
            d = parse_desc(raw)
            if d is not None:
                self._jtypes[cfg.journal_start + pos] = "j-desc"
                pos += 1
                for _ in d[1]:
                    if pos >= cfg.journal_blocks:
                        break
                    self._jtypes[cfg.journal_start + pos] = "j-data"
                    pos += 1
                continue
            if parse_commit(raw) is not None:
                self._jtypes[cfg.journal_start + pos] = "j-commit"
            pos += 1
        if self.tree is not None:
            self._walk_label(self.tree.root_block, 0)

    def _walk_label(self, block: int, depth: int) -> None:
        if depth > 8 or not 0 < block < self.device.num_blocks:
            return
        try:
            node = Node.unpack(self._peek(block), block)
        except CorruptionDetected:
            return
        if node.is_leaf:
            self._types[block] = self._label_for(block, node)
            for item in node.items:
                if item.kind == IT_INDIRECT:
                    for ptr in unpack_indirect_body(item.body):
                        if 0 < ptr < self.device.num_blocks:
                            self._types[ptr] = "data"
            return
        self._types[block] = "internal"
        for child in node.children:
            self._walk_label(child, depth + 1)
