"""Windows NTFS, as characterized by the study (§5.4) — "persistence
is a virtue".  Simplified (the paper's own NTFS analysis is partial).

* **Reads**: error codes checked; failed reads are retried
  aggressively — up to seven attempts — then propagated.
* **Writes**: retried (three attempts for data blocks, two for MFT and
  other metadata).  A data-block write failure is ultimately *recorded
  but not used* (effective ``D_zero``); metadata write failures
  propagate.
* **Sanity**: strong checks on metadata blocks — every MFT record and
  index block carries a magic number, and the volume becomes
  unmountable when any metadata block except the journal is corrupted.
  Block *pointers* are not validated: a corrupted run pointer silently
  reads or overwrites whatever it names (§5.4).
"""

from __future__ import annotations

import stat as _stat
from typing import Dict, List, Optional, Tuple

from repro.common.bitmap import Bitmap
from repro.common.errors import (
    CorruptionDetected,
    DiskError,
    Errno,
    FSError,
    KernelPanic,
)
from repro.common.syslog import Severity
from repro.fs.base import JournaledFS
from repro.fs.ext3.journal import Journal
from repro.fs.ntfs.structures import (
    BootFile,
    FLAG_IN_USE,
    FLAG_IS_DIR,
    MFTRecord,
    NUM_RUNS,
    ROOT_MFT,
    FIRST_USER_MFT,
    pack_index_block,
    unpack_index_block,
)
from repro.vfs.fdtable import O_APPEND, O_CREAT, O_TRUNC
from repro.vfs.paths import MAX_SYMLINK_DEPTH, dirname_basename, is_ancestor, split_path
from repro.vfs.stat import (
    DEFAULT_DIR_MODE,
    DEFAULT_FILE_MODE,
    DEFAULT_LINK_MODE,
    StatResult,
    StatVFS,
)

FT_REG, FT_DIR, FT_SYMLINK = 1, 2, 7


class NTFS(JournaledFS):
    """NTFS over a :class:`BlockDevice`."""

    name = "ntfs"

    #: Table 4: NTFS on-disk structures.
    BLOCK_TYPES: Dict[str, str] = {
        "MFT": "Info about files/directories",
        "directory": "List of files in directory",
        "volume-bitmap": "Tracks free logical clusters",
        "MFT-bitmap": "Tracks unused MFT records",
        "logfile": "The transaction log file",
        "data": "Holds user data",
        "boot": "Contains info about NTFS volume",
    }

    #: Aggressive retry: up to seven read attempts (§5.4).
    GENERIC_READ_RETRIES = 6
    DATA_WRITE_ATTEMPTS = 3
    META_WRITE_ATTEMPTS = 2

    def __init__(self, device, sync_mode: bool = True, commit_every: int = 64,
                 commit_stall_s: Optional[float] = None):
        super().__init__(device, sync_mode=sync_mode, commit_every=commit_every,
                         commit_stall_s=commit_stall_s)
        self.boot: Optional[BootFile] = None
        self._types: Dict[int, str] = {}

    # ==================================================================
    # Failure-policy hooks
    # ==================================================================

    def _write_meta(self, block: int, data: bytes) -> None:
        try:
            self.buf.bwrite(block, data, retries=self.META_WRITE_ATTEMPTS - 1)
        except DiskError as exc:
            self.syslog.detection(self.name, "write-error",
                                  f"metadata write failed after retries: {exc}",
                                  mechanism="error-code", block=block)
            raise FSError(Errno.EIO, f"cannot write block {block}") from exc

    def _write_data(self, block: int, data: bytes) -> None:
        try:
            self.buf.bwrite(block, data, retries=self.DATA_WRITE_ATTEMPTS - 1)
        except DiskError:
            # The error code is recorded but never used (§5.4) —
            # effective D_zero for user data.
            pass

    def _meta_bread(self, block: int) -> bytes:
        cached = self.journal.cached(block) if self.journal else None
        if cached is not None:
            return cached
        try:
            return self.buf.bread(block)
        except DiskError as exc:
            self.syslog.detection(self.name, "read-error",
                                  f"read failed after retries: {exc}",
                                  mechanism="error-code", block=block)
            raise FSError(Errno.EIO, f"block {block} unreadable") from exc

    def _sanity_violation(self, exc: CorruptionDetected) -> FSError:
        self.syslog.detection(self.name, "sanity-fail", str(exc),
                              mechanism="sanity", block=exc.block)
        self.syslog.action(self.name, "unmountable", "volume marked dirty/unmountable")
        self._read_only = True
        if self.journal is not None:
            self.journal.abort()
        return FSError(Errno.EUCLEAN, str(exc))

    # ==================================================================
    # Lifecycle
    # ==================================================================

    def mount(self) -> None:
        if self._mounted:
            raise FSError(Errno.EINVAL, "already mounted")
        try:
            raw = self.buf.bread(0)
        except DiskError as exc:
            self.syslog.detection(self.name, "read-error",
                                  f"boot file unreadable: {exc}",
                                  mechanism="error-code", block=0)
            raise FSError(Errno.EIO, "cannot read boot file") from exc
        boot = BootFile.unpack(raw)
        if not boot.is_valid():
            self.syslog.detection(self.name, "sanity-fail", "boot file magic invalid",
                                  mechanism="sanity", block=0)
            self.syslog.action(self.name, "unmountable", "volume not mountable")
            raise FSError(Errno.EUCLEAN, "bad boot file")
        self.boot = boot
        self.journal = Journal(
            start=boot.logfile_start,
            nblocks=boot.logfile_blocks,
            block_size=self.block_size,
            syslog=self.syslog,
            journal_write=self._write_meta_swallowing,
            home_write=self._write_meta_swallowing,
            ordered_write=self._write_data,
            read_block=self.buf.bread,
            set_type=lambda b, t: None,  # the whole region is 'logfile'
            stall=self._stall,
            commit_stall_s=self.commit_stall_s,
            txn_checksum=False,
        )
        self._rebuild_types()
        try:
            with self._span("journal-replay", "txn"):
                self.journal.recover()
        except CorruptionDetected as exc:
            # The journal is the one structure whose corruption does not
            # make the volume unmountable (§5.4): reset the log.
            self.syslog.action(self.name, "log-reset",
                               f"logfile invalid, reinitializing: {exc}",
                               severity=Severity.WARNING)
            self.journal.checkpoint()
        except DiskError as exc:
            self.syslog.detection(self.name, "read-error",
                                  f"logfile unreadable: {exc}",
                                  mechanism="error-code")
            raise FSError(Errno.EIO, "cannot replay logfile") from exc
        self._mounted = True
        self._rebuild_types()

    def _write_meta_swallowing(self, block: int, data: bytes) -> None:
        """Journal/checkpoint writes: retried, then logged; the commit
        machinery is not unwound mid-flight."""
        try:
            self.buf.bwrite(block, data, retries=self.META_WRITE_ATTEMPTS - 1)
        except DiskError as exc:
            self.syslog.detection(self.name, "write-error",
                                  f"metadata write failed after retries: {exc}",
                                  mechanism="error-code", block=block)

    def unmount(self) -> None:
        self._ensure_mounted()
        if not self._read_only:
            self.journal.commit()
            self.journal.checkpoint()
        self.fdtable.close_all()
        self._mounted = False

    # ==================================================================
    # MFT records
    # ==================================================================

    def _mft_block(self, mft: int) -> int:
        if not 0 <= mft < self.boot.mft_records:
            raise FSError(Errno.EUCLEAN, f"MFT number {mft} out of range")
        return self.boot.mft_start + mft

    def _rget(self, mft: int) -> MFTRecord:
        raw = self._meta_bread(self._mft_block(mft))
        try:
            return MFTRecord.unpack(raw, self._mft_block(mft))
        except CorruptionDetected as exc:
            raise self._sanity_violation(exc) from exc

    def _rput(self, mft: int, record: MFTRecord) -> None:
        self.journal.add_meta(self._mft_block(mft), record.pack(self.block_size))

    # ==================================================================
    # Namespace operations
    # ==================================================================

    def creat(self, path: str, mode: int = 0o644) -> int:
        return self._run_modifying(lambda: self._do_creat(path, mode))

    def open(self, path: str, flags: int = 0, mode: int = 0o644) -> int:
        modifying = bool(flags & (O_CREAT | O_TRUNC))
        self._begin_op(modifying=modifying)
        try:
            fd = self._do_open(path, flags, mode)
        except KernelPanic:
            self._mounted = False
            raise
        except Exception:
            self._end_op(modifying=modifying)
            raise
        self._end_op(modifying=modifying)
        return fd

    def close(self, fd: int) -> None:
        self._ensure_mounted()
        self.fdtable.close(fd)

    def read(self, fd: int, size: int, offset: Optional[int] = None) -> bytes:
        self._begin_op(modifying=False)
        try:
            of = self.fdtable.get(fd)
            if not of.readable:
                raise FSError(Errno.EBADF, "fd not open for reading")
            rec = self._rget(of.ino)
            pos = of.offset if offset is None else offset
            end = min(pos + size, rec.size)
            if end <= pos:
                return b""
            bs = self.block_size
            chunks = []
            for fb in range(pos // bs, (end - 1) // bs + 1):
                bno = rec.runs[fb] if fb < NUM_RUNS else 0
                chunk = self._meta_bread(bno) if bno else b"\x00" * bs
                lo = pos - fb * bs if fb == pos // bs else 0
                hi = end - fb * bs if fb == (end - 1) // bs else bs
                chunks.append(chunk[lo:hi])
            if offset is None:
                of.offset = end
            return b"".join(chunks)
        finally:
            self._end_op(modifying=False)

    def write(self, fd: int, data: bytes, offset: Optional[int] = None) -> int:
        def body():
            of = self.fdtable.get(fd)
            if not of.writable:
                raise FSError(Errno.EBADF, "fd not open for writing")
            if not data:
                return 0
            rec = self._rget(of.ino)
            pos = rec.size if of.flags & O_APPEND else (
                of.offset if offset is None else offset
            )
            end = pos + len(data)
            bs = self.block_size
            if end > NUM_RUNS * bs:
                raise FSError(Errno.EFBIG, "file exceeds run capacity")
            written = 0
            dirty = False
            for fb in range(pos // bs, max(pos, end - 1) // bs + 1):
                lo = pos - fb * bs if fb == pos // bs else 0
                hi = end - fb * bs if fb == (end - 1) // bs else bs
                piece = data[written:written + (hi - lo)]
                if rec.runs[fb] == 0:
                    rec.runs[fb] = self._alloc_block("data")
                    dirty = True
                bno = rec.runs[fb]
                if lo == 0 and hi == bs:
                    payload = piece
                else:
                    base = bytearray(self._meta_bread(bno)
                                     if fb * bs < rec.size else bytes(bs))
                    base[lo:hi] = piece
                    payload = bytes(base)
                self._types[bno] = "data"
                self.journal.add_ordered(bno, payload)
                written += hi - lo
            if end > rec.size:
                rec.size = end
                dirty = True
            rec.mtime += 1.0
            self._rput(of.ino, rec)
            if offset is None or of.flags & O_APPEND:
                of.offset = end
            return written
        return self._run_modifying(body)

    def truncate(self, path: str, size: int) -> None:
        def body():
            mft = self._lookup(path, follow=True)
            rec = self._rget(mft)
            if rec.is_dir:
                raise FSError(Errno.EISDIR, path)
            if size < rec.size:
                bs = self.block_size
                keep = (size + bs - 1) // bs
                for i in range(keep, NUM_RUNS):
                    if rec.runs[i]:
                        self._free_block(rec.runs[i])
                        rec.runs[i] = 0
            rec.size = size
            rec.mtime += 1.0
            self._rput(mft, rec)
        self._run_modifying(body)

    def link(self, existing: str, new: str) -> None:
        def body():
            src = self._lookup(existing, follow=False)
            rec = self._rget(src)
            if rec.is_dir:
                raise FSError(Errno.EPERM, "hard links to directories are not allowed")
            parent_path, name = dirname_basename(self.resolve(new))
            parent = self._lookup(parent_path, follow=True)
            if self._dir_find(parent, name) is not None:
                raise FSError(Errno.EEXIST, new)
            self._dir_add(parent, name, src, FT_REG)
            rec.links += 1
            self._rput(src, rec)
        self._run_modifying(body)

    def unlink(self, path: str) -> None:
        def body():
            parent_path, name = dirname_basename(self.resolve(path))
            parent = self._lookup(parent_path, follow=True)
            found = self._dir_find(parent, name)
            if found is None:
                raise FSError(Errno.ENOENT, path)
            mft, _ = found
            rec = self._rget(mft)
            if rec.is_dir:
                raise FSError(Errno.EISDIR, path)
            self._dir_remove(parent, name)
            if rec.links <= 1:
                for bno in rec.runs:
                    if bno:
                        self._free_block(bno)
                self._free_mft(mft)
            else:
                rec.links -= 1
                self._rput(mft, rec)
        self._run_modifying(body)

    def symlink(self, target: str, linkpath: str) -> None:
        def body():
            if len(target.encode()) > self.block_size:
                raise FSError(Errno.ENAMETOOLONG, "symlink target too long")
            parent_path, name = dirname_basename(self.resolve(linkpath))
            parent = self._lookup(parent_path, follow=True)
            if self._dir_find(parent, name) is not None:
                raise FSError(Errno.EEXIST, linkpath)
            mft = self._alloc_mft(DEFAULT_LINK_MODE, is_dir=False)
            rec = self._rget(mft)
            bno = self._alloc_block("data")
            rec.runs[0] = bno
            raw = target.encode()
            self.journal.add_ordered(bno, raw + b"\x00" * (self.block_size - len(raw)))
            rec.size = len(raw)
            self._rput(mft, rec)
            self._dir_add(parent, name, mft, FT_SYMLINK)
        self._run_modifying(body)

    def readlink(self, path: str) -> str:
        self._begin_op(modifying=False)
        try:
            mft = self._lookup(path, follow=False)
            rec = self._rget(mft)
            if not _stat.S_ISLNK(rec.mode):
                raise FSError(Errno.EINVAL, "not a symlink")
            if rec.runs[0] == 0:
                return ""
            data = self._meta_bread(rec.runs[0])
            return data[:rec.size].decode(errors="replace")
        finally:
            self._end_op(modifying=False)

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        def body():
            parent_path, name = dirname_basename(self.resolve(path))
            parent = self._lookup(parent_path, follow=True)
            prec = self._rget(parent)
            if not prec.is_dir:
                raise FSError(Errno.ENOTDIR, parent_path)
            if self._dir_find(parent, name) is not None:
                raise FSError(Errno.EEXIST, path)
            mft = self._alloc_mft((DEFAULT_DIR_MODE & ~0o777) | (mode & 0o777),
                                  is_dir=True)
            rec = self._rget(mft)
            rec.links = 2
            bno = self._alloc_block("directory")
            rec.runs[0] = bno
            self.journal.add_meta(bno, pack_index_block(
                [(mft, FT_DIR, "."), (parent, FT_DIR, "..")], self.block_size))
            rec.size = self.block_size
            self._rput(mft, rec)
            self._dir_add(parent, name, mft, FT_DIR)
            prec = self._rget(parent)
            prec.links += 1
            self._rput(parent, prec)
        self._run_modifying(body)

    def rmdir(self, path: str) -> None:
        def body():
            resolved = self.resolve(path)
            if resolved == "/":
                raise FSError(Errno.EINVAL, "cannot remove root")
            parent_path, name = dirname_basename(resolved)
            parent = self._lookup(parent_path, follow=True)
            found = self._dir_find(parent, name)
            if found is None:
                raise FSError(Errno.ENOENT, path)
            mft, _ = found
            rec = self._rget(mft)
            if not rec.is_dir:
                raise FSError(Errno.ENOTDIR, path)
            if any(n not in (".", "..") for _, _, n in self._dir_entries(mft, rec)):
                raise FSError(Errno.ENOTEMPTY, path)
            self._dir_remove(parent, name)
            for bno in rec.runs:
                if bno:
                    self._free_block(bno)
            self._free_mft(mft)
            prec = self._rget(parent)
            prec.links = max(prec.links - 1, 0)
            self._rput(parent, prec)
        self._run_modifying(body)

    def rename(self, old: str, new: str) -> None:
        def body():
            old_r, new_r = self.resolve(old), self.resolve(new)
            if is_ancestor(old_r, new_r) and old_r != new_r:
                raise FSError(Errno.EINVAL, "cannot move a directory into itself")
            old_pp, old_name = dirname_basename(old_r)
            new_pp, new_name = dirname_basename(new_r)
            old_parent = self._lookup(old_pp, follow=True)
            found = self._dir_find(old_parent, old_name)
            if found is None:
                raise FSError(Errno.ENOENT, old)
            if old_r == new_r:
                return  # renaming an existing name onto itself: no-op
            moving, ftype = found
            mrec = self._rget(moving)
            new_parent = self._lookup(new_pp, follow=True)
            target = self._dir_find(new_parent, new_name)
            if target is not None:
                tmft, _ = target
                trec = self._rget(tmft)
                if trec.is_dir:
                    if not mrec.is_dir:
                        raise FSError(Errno.EISDIR, new)
                    if any(n not in (".", "..") for _, _, n in self._dir_entries(tmft, trec)):
                        raise FSError(Errno.ENOTEMPTY, new)
                    self._dir_remove(new_parent, new_name)
                    for bno in trec.runs:
                        if bno:
                            self._free_block(bno)
                    self._free_mft(tmft)
                    np = self._rget(new_parent)
                    np.links = max(np.links - 1, 0)
                    self._rput(new_parent, np)
                else:
                    if mrec.is_dir:
                        raise FSError(Errno.ENOTDIR, new)
                    self._dir_remove(new_parent, new_name)
                    if trec.links <= 1:
                        for bno in trec.runs:
                            if bno:
                                self._free_block(bno)
                        self._free_mft(tmft)
                    else:
                        trec.links -= 1
                        self._rput(tmft, trec)
            self._dir_remove(old_parent, old_name)
            self._dir_add(new_parent, new_name, moving, ftype)
            if mrec.is_dir and old_parent != new_parent:
                self._dir_set_dotdot(moving, new_parent)
                op = self._rget(old_parent)
                op.links = max(op.links - 1, 0)
                self._rput(old_parent, op)
                np = self._rget(new_parent)
                np.links += 1
                self._rput(new_parent, np)
        self._run_modifying(body)

    def getdirentries(self, path: str) -> List[str]:
        self._begin_op(modifying=False)
        try:
            mft = self._lookup(path, follow=True)
            rec = self._rget(mft)
            if not rec.is_dir:
                raise FSError(Errno.ENOTDIR, path)
            return [n for _, _, n in self._dir_entries(mft, rec)]
        finally:
            self._end_op(modifying=False)

    def stat(self, path: str) -> StatResult:
        self._begin_op(modifying=False)
        try:
            return self._stat_of(self._lookup(path, follow=True))
        finally:
            self._end_op(modifying=False)

    def lstat(self, path: str) -> StatResult:
        self._begin_op(modifying=False)
        try:
            return self._stat_of(self._lookup(path, follow=False))
        finally:
            self._end_op(modifying=False)

    def statfs(self) -> StatVFS:
        self._ensure_mounted()
        free_blocks = self._count_free_blocks()
        free_mft = self._count_free_mft()
        return StatVFS(
            block_size=self.block_size,
            total_blocks=self.boot.total_blocks,
            free_blocks=free_blocks,
            total_inodes=self.boot.mft_records,
            free_inodes=free_mft,
        )

    def chmod(self, path: str, mode: int) -> None:
        def body():
            mft = self._lookup(path, follow=True)
            rec = self._rget(mft)
            rec.mode = (rec.mode & ~0o7777) | (mode & 0o7777)
            self._rput(mft, rec)
        self._run_modifying(body)

    def chown(self, path: str, uid: int, gid: int) -> None:
        def body():
            mft = self._lookup(path, follow=True)
            rec = self._rget(mft)
            rec.uid, rec.gid = uid, gid
            self._rput(mft, rec)
        self._run_modifying(body)

    def utimes(self, path: str, atime: float, mtime: float) -> None:
        def body():
            mft = self._lookup(path, follow=True)
            rec = self._rget(mft)
            rec.atime, rec.mtime = atime, mtime
            self._rput(mft, rec)
        self._run_modifying(body)

    # ==================================================================
    # Bodies / helpers
    # ==================================================================

    def _do_creat(self, path: str, mode: int) -> int:
        parent_path, name = dirname_basename(self.resolve(path))
        parent = self._lookup(parent_path, follow=True)
        prec = self._rget(parent)
        if not prec.is_dir:
            raise FSError(Errno.ENOTDIR, parent_path)
        found = self._dir_find(parent, name)
        if found is not None:
            mft, _ = found
            rec = self._rget(mft)
            if rec.is_dir:
                raise FSError(Errno.EISDIR, path)
            for bno in rec.runs:
                if bno:
                    self._free_block(bno)
            rec.runs = [0] * NUM_RUNS
            rec.size = 0
            self._rput(mft, rec)
            return self.fdtable.allocate(mft, 1)
        mft = self._alloc_mft((DEFAULT_FILE_MODE & ~0o777) | (mode & 0o777),
                              is_dir=False)
        self._dir_add(parent, name, mft, FT_REG)
        return self.fdtable.allocate(mft, 1)

    def _do_open(self, path: str, flags: int, mode: int) -> int:
        resolved = self.resolve(path)
        try:
            mft = self._lookup(resolved, follow=True)
        except FSError as exc:
            if exc.errno is Errno.ENOENT and flags & O_CREAT:
                return self._do_creat(resolved, mode)
            raise
        rec = self._rget(mft)
        if rec.is_dir and (flags & 0x3):
            raise FSError(Errno.EISDIR, path)
        if flags & O_TRUNC and not rec.is_dir:
            for bno in rec.runs:
                if bno:
                    self._free_block(bno)
            rec.runs = [0] * NUM_RUNS
            rec.size = 0
            self._rput(mft, rec)
        return self.fdtable.allocate(mft, flags)

    def _stat_of(self, mft: int) -> StatResult:
        rec = self._rget(mft)
        mode = rec.mode
        if rec.is_dir and not _stat.S_ISDIR(mode):
            mode |= _stat.S_IFDIR
        return StatResult(ino=mft, mode=mode, nlink=rec.links, uid=rec.uid,
                          gid=rec.gid, size=rec.size, atime=rec.atime,
                          mtime=rec.mtime, ctime=rec.ctime)

    # -- directories --------------------------------------------------------

    @staticmethod
    def _run_span(rec: MFTRecord, bs: int) -> int:
        """File blocks covered by *rec*, clamped to the run table.  A
        stale or corrupted record may carry an absurd size; iterating
        past NUM_RUNS can only ever yield empty runs, so the clamp is
        both a liveness and a sanity bound."""
        return min((rec.size + bs - 1) // bs, NUM_RUNS)

    @staticmethod
    def _require_dir(rec: MFTRecord) -> None:
        # Directory ops on a non-directory must fail with ENOTDIR —
        # parsing file data as index blocks would trip the sanity
        # checks and mark the volume unmountable over a bad path.
        if not rec.is_dir:
            raise FSError(Errno.ENOTDIR, "not a directory")

    def _dir_entries(self, mft: int, rec: MFTRecord) -> List[Tuple[int, int, str]]:
        self._require_dir(rec)
        out = []
        bs = self.block_size
        for fb in range(self._run_span(rec, bs)):
            bno = rec.runs[fb]
            if not bno:
                continue
            raw = self._meta_bread(bno)
            try:
                out.extend(unpack_index_block(raw, bno, bs))
            except CorruptionDetected as exc:
                raise self._sanity_violation(exc) from exc
        return out

    def _dir_find(self, mft: int, name: str) -> Optional[Tuple[int, int]]:
        rec = self._rget(mft)
        for emft, ftype, ename in self._dir_entries(mft, rec):
            if ename == name and 0 < emft < self.boot.mft_records:
                return emft, ftype
        return None

    def _dir_add(self, mft: int, name: str, child: int, ftype: int) -> None:
        rec = self._rget(mft)
        self._require_dir(rec)
        bs = self.block_size
        need = 6 + len(name.encode())
        for fb in range(self._run_span(rec, bs)):
            bno = rec.runs[fb]
            if not bno:
                continue
            raw = self._meta_bread(bno)
            try:
                entries = unpack_index_block(raw, bno, bs)
            except CorruptionDetected as exc:
                raise self._sanity_violation(exc) from exc
            used = 12 + sum(6 + len(n.encode("latin-1", errors="replace")[:255])
                            for _, _, n in entries)
            if used + need <= bs:
                entries.append((child, ftype, name))
                self.journal.add_meta(bno, pack_index_block(entries, bs))
                return
        fb = (rec.size + bs - 1) // bs
        if fb >= NUM_RUNS:
            raise FSError(Errno.ENOSPC, "directory full")
        bno = self._alloc_block("directory")
        rec.runs[fb] = bno
        self.journal.add_meta(bno, pack_index_block([(child, ftype, name)], bs))
        rec.size = (fb + 1) * bs
        self._rput(mft, rec)

    def _dir_remove(self, mft: int, name: str) -> None:
        rec = self._rget(mft)
        self._require_dir(rec)
        bs = self.block_size
        for fb in range(self._run_span(rec, bs)):
            bno = rec.runs[fb]
            if not bno:
                continue
            raw = self._meta_bread(bno)
            try:
                entries = unpack_index_block(raw, bno, bs)
            except CorruptionDetected as exc:
                raise self._sanity_violation(exc) from exc
            kept = [(m, f, n) for m, f, n in entries if n != name]
            if len(kept) != len(entries):
                self.journal.add_meta(bno, pack_index_block(kept, bs))
                return
        raise FSError(Errno.ENOENT, name)

    def _dir_set_dotdot(self, mft: int, new_parent: int) -> None:
        rec = self._rget(mft)
        self._require_dir(rec)
        bs = self.block_size
        for fb in range(self._run_span(rec, bs)):
            bno = rec.runs[fb]
            if not bno:
                continue
            raw = self._meta_bread(bno)
            try:
                entries = unpack_index_block(raw, bno, bs)
            except CorruptionDetected as exc:
                raise self._sanity_violation(exc) from exc
            changed = False
            for i, (m, f, n) in enumerate(entries):
                if n == "..":
                    entries[i] = (new_parent, FT_DIR, "..")
                    changed = True
            if changed:
                self.journal.add_meta(bno, pack_index_block(entries, bs))
                return

    # -- lookup ----------------------------------------------------------------

    def _lookup(self, path: str, follow: bool = True, _depth: int = 0) -> int:
        if _depth > MAX_SYMLINK_DEPTH:
            raise FSError(Errno.ELOOP, path)
        resolved = self.resolve(path)
        parts = split_path(resolved)
        mft = ROOT_MFT
        for i, name in enumerate(parts):
            rec = self._rget(mft)
            if not rec.is_dir:
                raise FSError(Errno.ENOTDIR, "/" + "/".join(parts[:i]))
            found = self._dir_find(mft, name)
            if found is None:
                raise FSError(Errno.ENOENT, resolved)
            child, _ = found
            crec = self._rget(child)
            is_last = i == len(parts) - 1
            if _stat.S_ISLNK(crec.mode) and (follow or not is_last):
                if crec.runs[0] == 0:
                    raise FSError(Errno.ENOENT, "dangling symlink")
                data = self._meta_bread(crec.runs[0])
                target = data[:crec.size].decode(errors="replace")
                if not target.startswith("/"):
                    target = "/" + "/".join(parts[:i]) + "/" + target
                remainder = "/".join(parts[i + 1:])
                full = target + ("/" + remainder if remainder else "")
                return self._lookup(full, follow=follow, _depth=_depth + 1)
            mft = child
        return mft

    # -- allocation --------------------------------------------------------------

    def _read_bitmap(self, block: int, nbits: int) -> Bitmap:
        raw = self._meta_bread(block)
        return Bitmap(nbits, raw)  # bitmaps carry no structure to check

    def _alloc_block(self, kind: str) -> int:
        boot = self.boot
        data_start = boot.mft_start + boot.mft_records
        bmp = self._read_bitmap(boot.vol_bitmap_start, boot.total_blocks - data_start)
        bit = bmp.find_free()
        if bit is None:
            raise FSError(Errno.ENOSPC, "out of disk space")
        bmp.set(bit)
        self.journal.add_meta(boot.vol_bitmap_start,
                              bmp.to_bytes(pad_to=self.block_size))
        bno = data_start + bit
        self._types[bno] = kind
        return bno

    def _free_block(self, bno: int) -> None:
        boot = self.boot
        data_start = boot.mft_start + boot.mft_records
        if not data_start <= bno < boot.total_blocks:
            return
        bmp = self._read_bitmap(boot.vol_bitmap_start, boot.total_blocks - data_start)
        if bmp.test(bno - data_start):
            bmp.clear(bno - data_start)
            self.journal.add_meta(boot.vol_bitmap_start,
                                  bmp.to_bytes(pad_to=self.block_size))
        self.journal.revoke(bno)
        self._types.pop(bno, None)

    def _alloc_mft(self, mode: int, is_dir: bool) -> int:
        boot = self.boot
        bmp = self._read_bitmap(boot.mft_bitmap_block, boot.mft_records)
        bit = bmp.find_free(FIRST_USER_MFT)
        if bit is None:
            raise FSError(Errno.ENOSPC, "MFT full")
        bmp.set(bit)
        self.journal.add_meta(boot.mft_bitmap_block,
                              bmp.to_bytes(pad_to=self.block_size))
        flags = FLAG_IN_USE | (FLAG_IS_DIR if is_dir else 0)
        rec = MFTRecord(flags=flags, links=1, mode=mode,
                        atime=1.0, mtime=1.0, ctime=1.0)
        self._rput(bit, rec)
        return bit

    def _free_mft(self, mft: int) -> None:
        boot = self.boot
        bmp = self._read_bitmap(boot.mft_bitmap_block, boot.mft_records)
        if bmp.test(mft):
            bmp.clear(mft)
            self.journal.add_meta(boot.mft_bitmap_block,
                                  bmp.to_bytes(pad_to=self.block_size))
        self._rput(mft, MFTRecord(flags=0))

    def _count_free_blocks(self) -> int:
        boot = self.boot
        data_start = boot.mft_start + boot.mft_records
        bmp = self._read_bitmap(boot.vol_bitmap_start, boot.total_blocks - data_start)
        return bmp.count_free()

    def _count_free_mft(self) -> int:
        bmp = self._read_bitmap(self.boot.mft_bitmap_block, self.boot.mft_records)
        return bmp.count_free()

    # ==================================================================
    # Gray-box: block-type oracle
    # ==================================================================

    def block_type(self, block: int) -> Optional[str]:
        boot = self.boot
        if boot is None:
            return None
        if block == 0:
            return "boot"
        if boot.logfile_start <= block < boot.logfile_start + boot.logfile_blocks:
            return "logfile"
        if block == boot.vol_bitmap_start:
            return "volume-bitmap"
        if block == boot.mft_bitmap_block:
            return "MFT-bitmap"
        if boot.mft_start <= block < boot.mft_start + boot.mft_records:
            return "MFT"
        return self._types.get(block)

    def _rebuild_types(self) -> None:
        boot = self.boot
        self._types = {}
        for mft in range(boot.mft_records):
            try:
                rec = MFTRecord.unpack(self._peek(boot.mft_start + mft),
                                       boot.mft_start + mft)
            except CorruptionDetected:
                continue
            if not rec.in_use:
                continue
            kind = "directory" if rec.is_dir else "data"
            for bno in rec.runs:
                if 0 < bno < self.device.num_blocks:
                    self._types[bno] = kind
