"""Windows NTFS (§5.4): MFT records, index blocks, aggressive retries."""

from repro.fs.ntfs.mkfs import NTFSConfig, mkfs_ntfs
from repro.fs.ntfs.ntfs import NTFS
from repro.fs.ntfs.structures import BootFile, MFTRecord

__all__ = ["BootFile", "MFTRecord", "NTFS", "NTFSConfig", "mkfs_ntfs"]
