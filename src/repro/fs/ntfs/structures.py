"""NTFS on-disk structures (simplified; the paper's own analysis of
NTFS is partial because it is closed-source, §5.4).

Every metadata block carries a magic number — NTFS performs strong
sanity checking on metadata and the volume becomes unmountable if any
metadata block other than the journal is corrupted.  Block *pointers*,
however, are not validated: a corrupted run pointer silently targets
whatever it happens to name (§5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from struct import Struct
from typing import List, Tuple

from repro.common.errors import CorruptionDetected

BOOT_MAGIC = b"NTFS    "
FILE_MAGIC = b"FILE"
INDX_MAGIC = b"INDX"

#: MFT record numbers 0-15 are reserved for system files; 5 is the
#: root directory, as on real NTFS.
ROOT_MFT = 5
FIRST_USER_MFT = 16

#: Data runs stored inline in an MFT record.
NUM_RUNS = 48

_BOOT_STRUCT = Struct("<8sIIIIIIII")


@dataclass
class BootFile:
    """Contains info about the NTFS volume (Table 4)."""

    magic: bytes
    block_size: int
    total_blocks: int
    mft_start: int
    mft_records: int
    logfile_start: int
    logfile_blocks: int
    vol_bitmap_start: int
    mft_bitmap_block: int

    def pack(self, block_size: int) -> bytes:
        payload = _BOOT_STRUCT.pack(
            self.magic, self.block_size, self.total_blocks,
            self.mft_start, self.mft_records, self.logfile_start,
            self.logfile_blocks, self.vol_bitmap_start, self.mft_bitmap_block,
        )
        return payload + b"\x00" * (block_size - len(payload))

    @classmethod
    def unpack(cls, data: bytes) -> "BootFile":
        return cls(*_BOOT_STRUCT.unpack_from(data))

    def is_valid(self) -> bool:
        return self.magic == BOOT_MAGIC and self.block_size >= 512


FLAG_IN_USE = 1
FLAG_IS_DIR = 2

_MFT_STRUCT = Struct("<4sHHHHIIQddd" + f"{NUM_RUNS}I")


@dataclass
class MFTRecord:
    """Info about files/directories (Table 4).  One record per block."""

    flags: int = 0
    links: int = 0
    mode: int = 0
    uid: int = 0
    gid: int = 0
    size: int = 0
    atime: float = 0.0
    mtime: float = 0.0
    ctime: float = 0.0
    runs: List[int] = field(default_factory=lambda: [0] * NUM_RUNS)

    def pack(self, block_size: int) -> bytes:
        payload = _MFT_STRUCT.pack(
            FILE_MAGIC, self.flags, self.links, self.uid, self.gid,
            self.mode, 0, self.size, self.atime, self.mtime, self.ctime,
            *self.runs,
        )
        return payload + b"\x00" * (block_size - len(payload))

    @classmethod
    def unpack(cls, data: bytes, block: int) -> "MFTRecord":
        f = _MFT_STRUCT.unpack_from(data)
        if f[0] != FILE_MAGIC:
            raise CorruptionDetected(block, "MFT record magic invalid")
        return cls(flags=f[1], links=f[2], uid=f[3], gid=f[4], mode=f[5],
                   size=f[7], atime=f[8], mtime=f[9], ctime=f[10],
                   runs=list(f[11:11 + NUM_RUNS]))

    @property
    def in_use(self) -> bool:
        return bool(self.flags & FLAG_IN_USE)

    @property
    def is_dir(self) -> bool:
        return bool(self.flags & FLAG_IS_DIR)


_INDX_HDR = Struct("<4sII")  # magic, nentries, pad
_INDX_ENT = Struct("<IBB")


def pack_index_block(entries: List[Tuple[int, int, str]], block_size: int) -> bytes:
    """Directory index block: INDX magic + entries of (mft#, ftype, name)."""
    out = bytearray(_INDX_HDR.pack(INDX_MAGIC, len(entries), 0))
    for mft, ftype, name in entries:
        raw = name.encode("latin-1", errors="replace")[:255]
        out += _INDX_ENT.pack(mft, ftype & 0xFF, len(raw)) + raw
    if len(out) > block_size:
        raise ValueError("index block overflow")
    return bytes(out) + b"\x00" * (block_size - len(out))


def unpack_index_block(data: bytes, block: int, block_size: int) -> List[Tuple[int, int, str]]:
    magic, nentries, _ = _INDX_HDR.unpack_from(data)
    if magic != INDX_MAGIC:
        raise CorruptionDetected(block, "index block magic invalid")
    max_entries = (block_size - 12) // 6
    if nentries > max_entries:
        raise CorruptionDetected(block, f"index entry count {nentries} impossible")
    out: List[Tuple[int, int, str]] = []
    off = 12
    for _ in range(nentries):
        if off + 6 > len(data):
            raise CorruptionDetected(block, "index entry runs off the block")
        mft, ftype, nlen = _INDX_ENT.unpack_from(data, off)
        off += 6
        name = data[off:off + nlen].decode("latin-1")
        off += nlen
        out.append((mft, ftype, name))
    return out
