"""mkfs for NTFS volumes: boot file, logfile, bitmaps, MFT with system
records and the root directory (MFT record 5, as on real NTFS)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bitmap import Bitmap
from repro.disk.disk import BlockDevice
from repro.fs.ext3.journal import pack_journal_super
from repro.fs.ntfs.structures import (
    BOOT_MAGIC,
    BootFile,
    FLAG_IN_USE,
    FLAG_IS_DIR,
    FIRST_USER_MFT,
    MFTRecord,
    ROOT_MFT,
    pack_index_block,
)
from repro.vfs.stat import DEFAULT_DIR_MODE

FT_DIR = 2


@dataclass(frozen=True)
class NTFSConfig:
    block_size: int = 1024
    total_blocks: int = 768
    logfile_blocks: int = 48
    mft_records: int = 112

    @property
    def logfile_start(self) -> int:
        return 1

    @property
    def vol_bitmap_start(self) -> int:
        return self.logfile_start + self.logfile_blocks

    @property
    def mft_bitmap_block(self) -> int:
        return self.vol_bitmap_start + 1

    @property
    def mft_start(self) -> int:
        return self.mft_bitmap_block + 1

    @property
    def data_start(self) -> int:
        return self.mft_start + self.mft_records


def mkfs_ntfs(device: BlockDevice, config: NTFSConfig) -> BootFile:
    """Format *device* with an NTFS layout.  Returns the boot file."""
    if device.num_blocks < config.total_blocks:
        raise ValueError("device too small for configured volume")
    if device.block_size != config.block_size:
        raise ValueError("device block size does not match config")
    bs = config.block_size

    boot = BootFile(
        magic=BOOT_MAGIC,
        block_size=bs,
        total_blocks=config.total_blocks,
        mft_start=config.mft_start,
        mft_records=config.mft_records,
        logfile_start=config.logfile_start,
        logfile_blocks=config.logfile_blocks,
        vol_bitmap_start=config.vol_bitmap_start,
        mft_bitmap_block=config.mft_bitmap_block,
    )

    device.write_block(config.logfile_start, pack_journal_super(bs, 1, clean=True))

    root_dir_block = config.data_start
    data_bits = config.total_blocks - config.data_start
    vol_bmp = Bitmap(data_bits)
    vol_bmp.set(0)  # root directory index block
    device.write_block(config.vol_bitmap_start, vol_bmp.to_bytes(pad_to=bs))

    mft_bmp = Bitmap(config.mft_records)
    for i in range(FIRST_USER_MFT):
        mft_bmp.set(i)  # system records, root among them
    device.write_block(config.mft_bitmap_block, mft_bmp.to_bytes(pad_to=bs))

    # System MFT records: in use, empty; root is a directory.
    for i in range(config.mft_records):
        if i == ROOT_MFT:
            rec = MFTRecord(flags=FLAG_IN_USE | FLAG_IS_DIR, links=2,
                            mode=DEFAULT_DIR_MODE, size=bs,
                            atime=1.0, mtime=1.0, ctime=1.0)
            rec.runs[0] = root_dir_block
        elif i < FIRST_USER_MFT:
            rec = MFTRecord(flags=FLAG_IN_USE, links=1)
        else:
            rec = MFTRecord(flags=0)
        device.write_block(config.mft_start + i, rec.pack(bs))

    device.write_block(root_dir_block, pack_index_block(
        [(ROOT_MFT, FT_DIR, "."), (ROOT_MFT, FT_DIR, "..")], bs))

    device.write_block(0, boot.pack(bs))
    return boot
