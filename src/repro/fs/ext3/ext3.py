"""Linux ext3, as characterized by the study (§5.1).

A block-group file system with a JBD-style ordered-mode journal.  The
failure policy lives in the code paths, exactly where a kernel would
put it, so fingerprinting can reverse-engineer it from observables:

* **Reads**: error codes are checked (``D_errorcode``); failures are
  propagated (``R_propagate``) and, on metadata reads in modifying
  paths, the journal is aborted and the file system remounts read-only
  (``R_stop``).  Multi-block (readahead) data reads retry the
  originally requested block once (the paper's sparing ``R_retry``).
* **Writes**: return codes are **not checked** (``D_zero``) — the
  paper's headline ext3 bug.  A failed journal write still commits; a
  failed checkpoint write silently loses metadata.
* **Sanity**: the superblock and journal descriptor/commit blocks are
  type-checked via magic numbers; ``open`` rejects an inode whose size
  field is overly large.  Directories, bitmaps and indirect blocks are
  used blindly.
* **Documented bugs reproduced here**: ``truncate`` and ``rmdir`` fail
  silently on internal read errors; ``unlink`` does not sanity-check
  the link count before decrementing (a corrupted value crashes the
  kernel); superblock replicas are written at mkfs time and never
  updated or consulted afterwards.
"""

from __future__ import annotations

import stat as _stat
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.common.errors import (
    CorruptionDetected,
    DiskError,
    Errno,
    FSError,
    KernelPanic,
)
from repro.common.syslog import Severity
from repro.fs.ext3.config import NUM_DIRECT, ROOT_INO, Ext3Config
from repro.fs.ext3.journal import Journal, parse_commit, parse_desc, parse_revoke
from repro.fs.ext3.structures import (
    DirEntry,
    FT_DIR,
    FT_REG,
    FT_SYMLINK,
    GroupDescriptor,
    Inode,
    STATE_CLEAN,
    STATE_DIRTY,
    Superblock,
    inode_slot,
    iter_allocated_inodes,
    pack_dir_block,
    pack_gdt,
    pack_pointer_block,
    patch_inode_block,
    unpack_dir_block,
    unpack_gdt,
    unpack_pointer_block,
)
from repro.fs.base import JournaledFS
from repro.vfs.fdtable import O_APPEND, O_CREAT, O_TRUNC
from repro.vfs.paths import MAX_SYMLINK_DEPTH, dirname_basename, is_ancestor, split_path
from repro.vfs.stat import (
    DEFAULT_DIR_MODE,
    DEFAULT_FILE_MODE,
    DEFAULT_LINK_MODE,
    StatResult,
    StatVFS,
)

_EMPTY = b""

#: Sentinel in the static type table for journal blocks whose role is
#: dynamic (``j-desc``/``j-data``/``j-commit``/``j-revoke`` depend on
#: what was last written there); lookups fall through to ``_jtypes``.
_JTYPE_DYNAMIC = "__journal-dynamic__"


@lru_cache(maxsize=16)
def _static_types_ext3(cfg: Ext3Config) -> List[Optional[str]]:
    """Per-config block→type table for everything the geometry alone
    determines (Table 4's fixed structures).  ``None`` entries are
    dynamic (file/dir/indirect data — resolved through ``_types``);
    :data:`_JTYPE_DYNAMIC` marks journal-interior blocks.  The oracle
    is consulted on every injected-fault probe, so the common case must
    be one list index, not a chain of geometry comparisons."""
    table: List[Optional[str]] = [None] * cfg.total_blocks
    table[cfg.super_block] = "super"
    table[cfg.gdt_block] = "g-desc"
    js = cfg.journal_start
    table[js] = "j-super"
    for b in range(js + 1, js + cfg.journal_blocks):
        table[b] = _JTYPE_DYNAMIC
    for g in range(cfg.num_groups):
        base = cfg.group_base(g)
        table[base] = "super"  # mkfs-time backup copy
        table[base + 1] = "bitmap"
        table[base + 2] = "i-bitmap"
        for b in range(base + 3, base + 3 + cfg.inode_table_blocks):
            table[b] = "inode"
    return table


class Ext3(JournaledFS):
    """The ext3 file system over a :class:`BlockDevice`."""

    name = "ext3"

    #: Table 4: ext3 on-disk structures.
    BLOCK_TYPES: Dict[str, str] = {
        "inode": "Info about files and directories",
        "dir": "List of files in directory",
        "bitmap": "Tracks data blocks per group",
        "i-bitmap": "Tracks inodes per group",
        "indirect": "Allows for large files to exist",
        "data": "Holds user data",
        "super": "Contains info about file system",
        "g-desc": "Holds info about each block group",
        "j-super": "Describes journal",
        "j-revoke": "Tracks blocks that will not be replayed",
        "j-desc": "Describes contents of transaction",
        "j-commit": "Marks the end of a transaction",
        "j-data": "Contains blocks that are journaled",
    }

    #: Extra read attempts in the generic layer (ext3: none).
    GENERIC_READ_RETRIES = 0
    #: Documented ext3 bugs (§5.1); ixt3 turns these off.
    SILENT_TRUNCATE_BUG = True
    SILENT_RMDIR_BUG = True
    UNLINK_LINKCOUNT_BUG = True

    def __init__(
        self,
        device,
        sync_mode: bool = True,
        commit_every: int = 64,
        commit_stall_s: Optional[float] = None,
    ):
        super().__init__(device, sync_mode=sync_mode, commit_every=commit_every,
                         commit_stall_s=commit_stall_s)
        self.sb: Optional[Superblock] = None
        self.config: Optional[Ext3Config] = None
        self.gdt: List[GroupDescriptor] = []
        self.journal: Optional[Journal] = None
        self._types: Dict[int, str] = {}
        self._jtypes: Dict[int, str] = {}

    # ==================================================================
    # Failure-policy hooks.  ext3's write policy is D_zero: issue the
    # write and discard the return code.  ixt3 overrides these.
    # ==================================================================

    def _write_home(self, block: int, data: bytes) -> None:
        self.buf.bwrite_nocheck(block, data)

    def _write_journal_block(self, block: int, data: bytes) -> None:
        # ext3 bug (§5.1): a failed journal write is ignored and the rest
        # of the transaction, including the commit block, is still written.
        self.buf.bwrite_nocheck(block, data)

    def _write_ordered(self, block: int, data: bytes) -> None:
        self.buf.bwrite_nocheck(block, data)

    def _read_with_verify(self, block: int) -> bytes:
        """Device read; ixt3 layers checksum verification here."""
        return self.buf.bread(block)

    def _recover_meta_read(self, block: int, exc: Exception) -> Optional[bytes]:
        """Redundancy hook: ext3 has none (superblock copies exist but
        are never consulted — the paper's finding)."""
        return None

    def _recover_data_read(self, ino: int, inode: Inode, file_block: int,
                           block: int, exc: Exception) -> Optional[bytes]:
        """Data-redundancy hook: ext3 has none; ixt3 reconstructs from
        parity."""
        return None

    def _on_block_contents_change(self, block: int, data: bytes, kind: str) -> None:
        """ixt3 checksum hook: called whenever a block's logical contents
        change.  *kind* is 'meta' or 'data'."""

    # ==================================================================
    # Lifecycle
    # ==================================================================

    def mount(self) -> None:
        if self._mounted:
            raise FSError(Errno.EINVAL, "already mounted")
        try:
            raw = self.buf.bread(self.config.super_block if self.config else 0)
        except DiskError as exc:
            self.syslog.detection(self.name, "read-error",
                                  f"superblock unreadable: {exc}",
                                  mechanism="error-code", block=0)
            raise FSError(Errno.EIO, "cannot read superblock") from exc
        sb = Superblock.unpack(raw)
        if not sb.is_valid():
            # D_sanity: the superblock carries a magic number and is
            # type-checked at mount.
            self.syslog.detection(self.name, "sanity-fail", "bad superblock magic",
                                  mechanism="sanity", block=0)
            raise FSError(Errno.EUCLEAN, "bad superblock")
        self.sb = sb
        self.config = self._config_from_sb(sb)

        try:
            gdt_raw = self.buf.bread(self.config.gdt_block)
        except DiskError as exc:
            self.syslog.detection(self.name, "read-error",
                                  "group descriptors unreadable",
                                  mechanism="error-code", block=1)
            raise FSError(Errno.EIO, "cannot read group descriptors") from exc
        # No sanity checking on group descriptors (paper: little type
        # checking for many important blocks) — parsed blindly.
        self.gdt = unpack_gdt(gdt_raw, sb.num_groups)

        self.journal = self._make_journal()
        self._rebuild_types()
        try:
            with self._span("journal-replay", "txn"):
                replayed = self.journal.recover()
            if replayed:
                # Replay may have rewritten the superblock and group
                # descriptors; refresh the in-memory copies before the
                # mount-time state write clobbers them.
                sb2 = Superblock.unpack(self.buf.bread(0))
                if sb2.is_valid():
                    self.sb = sb2
                self.gdt = unpack_gdt(self.buf.bread(self.config.gdt_block),
                                      self.sb.num_groups)
        except CorruptionDetected as exc:
            self.syslog.detection(self.name, "sanity-fail", str(exc),
                                  mechanism="sanity", block=exc.block)
            raise FSError(Errno.EUCLEAN, "journal superblock invalid") from exc
        except DiskError as exc:
            self.syslog.error(
                self.name, "read-error", f"journal unreadable during recovery: {exc}",
                block=getattr(exc, "block", None),
            )
            self._abort_journal()

        self._mounted = True
        self._read_only = self._read_only or self.journal.aborted
        self.sb.state = STATE_DIRTY
        self.sb.mount_count += 1
        if not self._read_only:
            self._write_home(0, self.sb.pack(self.block_size))
        self._rebuild_types()

    def unmount(self) -> None:
        self._ensure_mounted()
        if not self._read_only:
            self.journal.commit()
            self.journal.checkpoint()
            self.sb.state = STATE_CLEAN
            self._write_home(0, self.sb.pack(self.block_size))
        self.fdtable.close_all()
        self._mounted = False

    # ==================================================================
    # Namespace operations
    # ==================================================================

    def creat(self, path: str, mode: int = 0o644) -> int:
        self._begin_op(modifying=True)
        try:
            fd = self._do_creat(path, mode)
        except KernelPanic:
            self._mounted = False
            raise
        except Exception:
            self._end_op(modifying=True)
            raise
        self._end_op(modifying=True)
        return fd

    def open(self, path: str, flags: int = 0, mode: int = 0o644) -> int:
        modifying = bool(flags & (O_CREAT | O_TRUNC))
        self._begin_op(modifying=modifying)
        try:
            fd = self._do_open(path, flags, mode)
        except KernelPanic:
            self._mounted = False
            raise
        except Exception:
            self._end_op(modifying=modifying)
            raise
        self._end_op(modifying=modifying)
        return fd

    def close(self, fd: int) -> None:
        self._ensure_mounted()
        self.fdtable.close(fd)

    def read(self, fd: int, size: int, offset: Optional[int] = None) -> bytes:
        self._begin_op(modifying=False)
        try:
            return self._do_read(fd, size, offset)
        finally:
            self._end_op(modifying=False)

    def write(self, fd: int, data: bytes, offset: Optional[int] = None) -> int:
        return self._run_modifying(lambda: self._do_write(fd, data, offset))

    def truncate(self, path: str, size: int) -> None:
        self._run_modifying(lambda: self._do_truncate(path, size))

    def link(self, existing: str, new: str) -> None:
        self._run_modifying(lambda: self._do_link(existing, new))

    def unlink(self, path: str) -> None:
        self._run_modifying(lambda: self._do_unlink(path))

    def symlink(self, target: str, linkpath: str) -> None:
        self._run_modifying(lambda: self._do_symlink(target, linkpath))

    def readlink(self, path: str) -> str:
        self._begin_op(modifying=False)
        try:
            return self._do_readlink(path)
        finally:
            self._end_op(modifying=False)

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        self._run_modifying(lambda: self._do_mkdir(path, mode))

    def rmdir(self, path: str) -> None:
        self._run_modifying(lambda: self._do_rmdir(path))

    def rename(self, old: str, new: str) -> None:
        self._run_modifying(lambda: self._do_rename(old, new))

    def getdirentries(self, path: str) -> List[str]:
        self._begin_op(modifying=False)
        try:
            return self._do_getdirentries(path)
        finally:
            self._end_op(modifying=False)

    def stat(self, path: str) -> StatResult:
        self._begin_op(modifying=False)
        try:
            ino = self._lookup(path, follow=True)
            return self._stat_of(ino)
        finally:
            self._end_op(modifying=False)

    def lstat(self, path: str) -> StatResult:
        self._begin_op(modifying=False)
        try:
            ino = self._lookup(path, follow=False)
            return self._stat_of(ino)
        finally:
            self._end_op(modifying=False)

    def statfs(self) -> StatVFS:
        self._ensure_mounted()
        return StatVFS(
            block_size=self.block_size,
            total_blocks=self.sb.blocks_count,
            free_blocks=self.sb.free_blocks,
            total_inodes=self.sb.inodes_count,
            free_inodes=self.sb.free_inodes,
        )

    def chmod(self, path: str, mode: int) -> None:
        self._run_modifying(lambda: self._update_inode_attr(path, "mode", mode))

    def chown(self, path: str, uid: int, gid: int) -> None:
        def doit():
            ino = self._lookup(path, follow=True)
            inode = self._iget(ino)
            inode.uid, inode.gid = uid, gid
            self._iput(ino, inode)
        self._run_modifying(doit)

    def utimes(self, path: str, atime: float, mtime: float) -> None:
        def doit():
            ino = self._lookup(path, follow=True)
            inode = self._iget(ino)
            inode.atime, inode.mtime = atime, mtime
            self._iput(ino, inode)
        self._run_modifying(doit)

    # ==================================================================
    # Operation bodies
    # ==================================================================

    def _do_creat(self, path: str, mode: int) -> int:
        parent_path, name = dirname_basename(self.resolve(path))
        parent_ino = self._lookup(parent_path, follow=True)
        parent = self._iget(parent_ino)
        if not _stat.S_ISDIR(parent.mode):
            raise FSError(Errno.ENOTDIR, parent_path)
        existing = self._dir_find(parent_ino, parent, name)
        if existing is not None:
            child = self._iget(existing.ino)
            if _stat.S_ISDIR(child.mode):
                raise FSError(Errno.EISDIR, path)
            self._shrink(existing.ino, child, 0)
            child.size = 0
            self._iput(existing.ino, child)
            return self.fdtable.allocate(existing.ino, 1)  # O_WRONLY
        ino = self._alloc_inode(self.config.group_of_inode(parent_ino),
                                DEFAULT_FILE_MODE & ~0o777 | (mode & 0o777))
        self._dir_add(parent_ino, name, ino, FT_REG)
        return self.fdtable.allocate(ino, 1)

    def _do_open(self, path: str, flags: int, mode: int) -> int:
        resolved = self.resolve(path)
        try:
            ino = self._lookup(resolved, follow=True)
        except FSError as exc:
            if exc.errno is Errno.ENOENT and flags & O_CREAT:
                return self._do_creat(resolved, mode)
            raise
        inode = self._iget(ino)
        if _stat.S_ISDIR(inode.mode) and (flags & 0x3):
            raise FSError(Errno.EISDIR, path)
        # D_sanity (§5.1): open detects an overly-large file-size field.
        max_size = self.config.max_file_blocks * self.block_size
        if inode.size > max_size:
            self.syslog.detection(self.name, "sanity-fail",
                                  f"inode {ino} size {inode.size} exceeds maximum",
                                  mechanism="sanity")
            raise FSError(Errno.EUCLEAN, "corrupted inode size")
        if flags & O_TRUNC and not _stat.S_ISDIR(inode.mode):
            self._shrink(ino, inode, 0)
            inode.size = 0
            self._iput(ino, inode)
        return self.fdtable.allocate(ino, flags)

    def _do_read(self, fd: int, size: int, offset: Optional[int]) -> bytes:
        of = self.fdtable.get(fd)
        if not of.readable:
            raise FSError(Errno.EBADF, "fd not open for reading")
        inode = self._iget(of.ino)
        pos = of.offset if offset is None else offset
        end = min(pos + size, inode.size)
        if end <= pos:
            return _EMPTY
        bs = self.block_size
        first, last = pos // bs, (end - 1) // bs
        readahead = last > first
        chunks = []
        for fb in range(first, last + 1):
            bno, _ = self._bmap(inode, fb, allocate=False)
            if bno == 0:
                chunk = b"\x00" * bs
            else:
                chunk = self._data_bread(of.ino, inode, fb, bno, readahead=readahead)
            lo = pos - fb * bs if fb == first else 0
            hi = end - fb * bs if fb == last else bs
            chunks.append(chunk[lo:hi])
        out = b"".join(chunks)
        if offset is None:
            of.offset = end
        return out

    def _do_write(self, fd: int, data: bytes, offset: Optional[int]) -> int:
        of = self.fdtable.get(fd)
        if not of.writable:
            raise FSError(Errno.EBADF, "fd not open for writing")
        if not data:
            return 0
        inode = self._iget(of.ino)
        if of.flags & O_APPEND:
            pos = inode.size
        else:
            pos = of.offset if offset is None else offset
        end = pos + len(data)
        bs = self.block_size
        max_size = self.config.max_file_blocks * bs
        if end > max_size:
            raise FSError(Errno.EFBIG, "file would exceed maximum size")
        first, last = pos // bs, max(pos, end - 1) // bs
        written = 0
        dirty_inode = False
        for fb in range(first, last + 1):
            lo = pos - fb * bs if fb == first else 0
            hi = end - fb * bs if fb == last else bs
            piece = data[written:written + (hi - lo)]
            bno, changed = self._bmap(inode, fb, allocate=True)
            dirty_inode = dirty_inode or changed
            if lo == 0 and hi == bs:
                payload = piece
            else:
                # Read-modify-write of a partial block.
                old_end = inode.size
                if bno and fb * bs < old_end:
                    base = bytearray(self._data_bread(of.ino, inode, fb, bno,
                                                      readahead=False, modifying=True))
                else:
                    base = bytearray(bs)
                base[lo:hi] = piece
                payload = bytes(base)
            # Parity reads the block's *old* contents, so it must run
            # before the new payload enters the journal's write cache.
            self._update_parity(of.ino, inode, fb, bno, payload, fresh=changed)
            self.journal.add_ordered(bno, payload)
            self._on_block_contents_change(bno, payload, "data")
            written += hi - lo
        if end > inode.size:
            inode.size = end
            dirty_inode = True
        inode.mtime += 1.0
        self._iput(of.ino, inode)
        if offset is None and not of.flags & O_APPEND:
            of.offset = end
        elif of.flags & O_APPEND:
            of.offset = end
        return written

    def _update_parity(self, ino: int, inode: Inode, file_block: int,
                       block: int, new_payload: bytes, fresh: bool = False) -> None:
        """ixt3 Dp hook; plain ext3 keeps no parity.  *fresh* marks a
        just-allocated block whose prior contents are zero."""

    def _do_truncate(self, path: str, size: int) -> None:
        ino = self._lookup(path, follow=True)
        inode = self._iget(ino)
        if _stat.S_ISDIR(inode.mode):
            raise FSError(Errno.EISDIR, path)
        if size < inode.size:
            if self.SILENT_TRUNCATE_BUG:
                # ext3 bug (§5.1): internal read errors while releasing
                # blocks are swallowed; truncate fails silently.
                try:
                    self._shrink(ino, inode, size)
                except FSError:
                    self.syslog.action(self.name, "silent-failure",
                                       "truncate abandoned after read error",
                                       severity=Severity.WARNING)
                    return
            else:
                self._shrink(ino, inode, size)
        inode.size = size
        inode.mtime += 1.0
        self._iput(ino, inode)

    def _do_link(self, existing: str, new: str) -> None:
        src_ino = self._lookup(existing, follow=False)
        src = self._iget(src_ino)
        if _stat.S_ISDIR(src.mode):
            raise FSError(Errno.EPERM, "hard links to directories are not allowed")
        parent_path, name = dirname_basename(self.resolve(new))
        parent_ino = self._lookup(parent_path, follow=True)
        parent = self._iget(parent_ino)
        if self._dir_find(parent_ino, parent, name) is not None:
            raise FSError(Errno.EEXIST, new)
        self._dir_add(parent_ino, name, src_ino, FT_REG)
        src.links += 1
        self._iput(src_ino, src)

    def _do_unlink(self, path: str) -> None:
        parent_path, name = dirname_basename(self.resolve(path))
        parent_ino = self._lookup(parent_path, follow=True)
        parent = self._iget(parent_ino)
        entry = self._dir_find(parent_ino, parent, name)
        if entry is None:
            raise FSError(Errno.ENOENT, path)
        child = self._iget(entry.ino)
        if _stat.S_ISDIR(child.mode):
            raise FSError(Errno.EISDIR, path)
        self._dir_remove(parent_ino, name)
        if child.links == 0:
            if self.UNLINK_LINKCOUNT_BUG:
                # ext3 bug (§5.1): no sanity check of the link count
                # before modifying it; a corrupted value crashes.
                raise KernelPanic("ext3", f"inode {entry.ino}: link count already zero")
            self.syslog.detection(self.name, "sanity-fail",
                                  f"inode {entry.ino} link count already zero",
                                  mechanism="sanity")
            raise FSError(Errno.EUCLEAN, "corrupt link count")
        child.links -= 1
        if child.links == 0:
            self._shrink(entry.ino, child, 0)
            self._release_parity(entry.ino, child)
            self._free_inode(entry.ino)
        else:
            self._iput(entry.ino, child)

    def _do_symlink(self, target: str, linkpath: str) -> None:
        if len(target.encode()) > self.block_size:
            raise FSError(Errno.ENAMETOOLONG, "symlink target too long")
        parent_path, name = dirname_basename(self.resolve(linkpath))
        parent_ino = self._lookup(parent_path, follow=True)
        parent = self._iget(parent_ino)
        if self._dir_find(parent_ino, parent, name) is not None:
            raise FSError(Errno.EEXIST, linkpath)
        ino = self._alloc_inode(self.config.group_of_inode(parent_ino), DEFAULT_LINK_MODE)
        inode = self._iget(ino)
        bno, _ = self._bmap(inode, 0, allocate=True)
        raw = target.encode()
        payload = raw + b"\x00" * (self.block_size - len(raw))
        self.journal.add_ordered(bno, payload)
        self._on_block_contents_change(bno, payload, "data")
        inode.size = len(raw)
        self._iput(ino, inode)
        self._dir_add(parent_ino, name, ino, FT_SYMLINK)

    def _do_readlink(self, path: str) -> str:
        ino = self._lookup(path, follow=False)
        inode = self._iget(ino)
        if not _stat.S_ISLNK(inode.mode):
            raise FSError(Errno.EINVAL, "not a symlink")
        bno, _ = self._bmap(inode, 0, allocate=False)
        if bno == 0:
            return ""
        data = self._data_bread(ino, inode, 0, bno, readahead=False)
        return data[:inode.size].decode(errors="replace")

    def _do_mkdir(self, path: str, mode: int) -> None:
        parent_path, name = dirname_basename(self.resolve(path))
        parent_ino = self._lookup(parent_path, follow=True)
        parent = self._iget(parent_ino)
        if not _stat.S_ISDIR(parent.mode):
            raise FSError(Errno.ENOTDIR, parent_path)
        if self._dir_find(parent_ino, parent, name) is not None:
            raise FSError(Errno.EEXIST, path)
        ino = self._alloc_inode(self.config.group_of_inode(parent_ino),
                                DEFAULT_DIR_MODE & ~0o777 | (mode & 0o777))
        inode = self._iget(ino)
        inode.links = 2
        bno, _ = self._bmap(inode, 0, allocate=True, block_kind="dir")
        entries = [DirEntry(ino, FT_DIR, "."), DirEntry(parent_ino, FT_DIR, "..")]
        payload = pack_dir_block(entries, self.block_size)
        self.journal.add_meta(bno, payload)
        self._on_block_contents_change(bno, payload, "meta")
        inode.size = self.block_size
        self._iput(ino, inode)
        self._dir_add(parent_ino, name, ino, FT_DIR)
        parent = self._iget(parent_ino)
        parent.links += 1
        self._iput(parent_ino, parent)

    def _do_rmdir(self, path: str) -> None:
        resolved = self.resolve(path)
        if resolved == "/":
            raise FSError(Errno.EINVAL, "cannot remove root")
        parent_path, name = dirname_basename(resolved)
        parent_ino = self._lookup(parent_path, follow=True)
        parent = self._iget(parent_ino)
        entry = self._dir_find(parent_ino, parent, name)
        if entry is None:
            raise FSError(Errno.ENOENT, path)
        child = self._iget(entry.ino)
        if not _stat.S_ISDIR(child.mode):
            raise FSError(Errno.ENOTDIR, path)
        # ext3 bug (§5.1): read errors during the emptiness scan are
        # swallowed and rmdir returns silently without doing anything.
        try:
            entries = self._dir_entries(entry.ino, child)
        except FSError:
            if self.SILENT_RMDIR_BUG:
                self.syslog.action(self.name, "silent-failure",
                                   "rmdir abandoned after read error",
                                   severity=Severity.WARNING)
                return
            raise
        if any(e.name not in (".", "..") for e in entries):
            raise FSError(Errno.ENOTEMPTY, path)
        self._dir_remove(parent_ino, name)
        self._shrink(entry.ino, child, 0, kind="dir")
        self._free_inode(entry.ino)
        parent = self._iget(parent_ino)
        parent.links = max(parent.links - 1, 0)
        self._iput(parent_ino, parent)

    def _do_rename(self, old: str, new: str) -> None:
        old_r, new_r = self.resolve(old), self.resolve(new)
        if is_ancestor(old_r, new_r) and old_r != new_r:
            raise FSError(Errno.EINVAL, "cannot move a directory into itself")
        old_parent_path, old_name = dirname_basename(old_r)
        new_parent_path, new_name = dirname_basename(new_r)
        old_parent_ino = self._lookup(old_parent_path, follow=True)
        old_parent = self._iget(old_parent_ino)
        entry = self._dir_find(old_parent_ino, old_parent, old_name)
        if entry is None:
            raise FSError(Errno.ENOENT, old)
        if old_r == new_r:
            return  # renaming an existing name onto itself: no-op
        moving = self._iget(entry.ino)
        moving_is_dir = _stat.S_ISDIR(moving.mode)
        new_parent_ino = self._lookup(new_parent_path, follow=True)
        new_parent = self._iget(new_parent_ino)
        target = self._dir_find(new_parent_ino, new_parent, new_name)
        if target is not None:
            tgt_inode = self._iget(target.ino)
            if _stat.S_ISDIR(tgt_inode.mode):
                if not moving_is_dir:
                    raise FSError(Errno.EISDIR, new)
                kids = self._dir_entries(target.ino, tgt_inode)
                if any(e.name not in (".", "..") for e in kids):
                    raise FSError(Errno.ENOTEMPTY, new)
                self._dir_remove(new_parent_ino, new_name)
                self._shrink(target.ino, tgt_inode, 0, kind="dir")
                self._free_inode(target.ino)
                new_parent = self._iget(new_parent_ino)
                new_parent.links = max(new_parent.links - 1, 0)
                self._iput(new_parent_ino, new_parent)
            else:
                if moving_is_dir:
                    raise FSError(Errno.ENOTDIR, new)
                self._dir_remove(new_parent_ino, new_name)
                if tgt_inode.links <= 1:
                    self._shrink(target.ino, tgt_inode, 0)
                    self._free_inode(target.ino)
                else:
                    tgt_inode.links -= 1
                    self._iput(target.ino, tgt_inode)
        self._dir_remove(old_parent_ino, old_name)
        ftype = FT_DIR if moving_is_dir else (
            FT_SYMLINK if _stat.S_ISLNK(moving.mode) else FT_REG
        )
        self._dir_add(new_parent_ino, new_name, entry.ino, ftype)
        if moving_is_dir and old_parent_ino != new_parent_ino:
            # Rewrite '..' and fix parent link counts.
            self._dir_set_dotdot(entry.ino, new_parent_ino)
            op = self._iget(old_parent_ino)
            op.links = max(op.links - 1, 0)
            self._iput(old_parent_ino, op)
            np = self._iget(new_parent_ino)
            np.links += 1
            self._iput(new_parent_ino, np)

    def _do_getdirentries(self, path: str) -> List[str]:
        ino = self._lookup(path, follow=True)
        inode = self._iget(ino)
        if not _stat.S_ISDIR(inode.mode):
            raise FSError(Errno.ENOTDIR, path)
        # Directory blocks carry no type information and are parsed
        # blindly (§5.1): corruption yields garbage names, not errors.
        return [e.name for e in self._dir_entries(ino, inode)]

    # ==================================================================
    # Directories
    # ==================================================================

    def _dir_blocks(self, inode: Inode):
        # Directory ops on a non-directory must fail with ENOTDIR, not
        # parse file data as dirents (content-dependent garbage).
        if not _stat.S_ISDIR(inode.mode):
            raise FSError(Errno.ENOTDIR, "not a directory")
        bs = self.block_size
        nblocks = (inode.size + bs - 1) // bs
        for fb in range(nblocks):
            bno, _ = self._bmap(inode, fb, allocate=False)
            if bno:
                yield fb, bno

    def _dir_entries(self, ino: int, inode: Inode) -> List[DirEntry]:
        out: List[DirEntry] = []
        for _, bno in self._dir_blocks(inode):
            out.extend(unpack_dir_block(self._meta_bread(bno)))
        return out

    def _dir_find(self, ino: int, inode: Inode, name: str) -> Optional[DirEntry]:
        for _, bno in self._dir_blocks(inode):
            for e in unpack_dir_block(self._meta_bread(bno)):
                if e.name == name and 0 < e.ino <= self.sb.inodes_count:
                    return e
        return None

    def _dir_add(self, ino: int, name: str, child_ino: int, ftype: int) -> None:
        inode = self._iget(ino)
        new_entry = DirEntry(child_ino, ftype, name)
        need = len(new_entry.pack())
        for fb, bno in self._dir_blocks(inode):
            raw = self._meta_bread(bno, modifying=True)
            entries = unpack_dir_block(raw)
            used = sum(len(e.pack()) for e in entries)
            if used + need <= self.block_size:
                entries.append(new_entry)
                payload = pack_dir_block(entries, self.block_size)
                self.journal.add_meta(bno, payload)
                self._on_block_contents_change(bno, payload, "meta")
                return
        # Grow the directory by one block.
        fb = (inode.size + self.block_size - 1) // self.block_size
        bno, _ = self._bmap(inode, fb, allocate=True, block_kind="dir")
        payload = pack_dir_block([new_entry], self.block_size)
        self.journal.add_meta(bno, payload)
        self._on_block_contents_change(bno, payload, "meta")
        inode.size = (fb + 1) * self.block_size
        self._iput(ino, inode)

    def _dir_remove(self, ino: int, name: str) -> None:
        inode = self._iget(ino)
        for fb, bno in self._dir_blocks(inode):
            raw = self._meta_bread(bno, modifying=True)
            entries = unpack_dir_block(raw)
            kept = [e for e in entries if e.name != name]
            if len(kept) != len(entries):
                payload = pack_dir_block(kept, self.block_size)
                self.journal.add_meta(bno, payload)
                self._on_block_contents_change(bno, payload, "meta")
                return
        raise FSError(Errno.ENOENT, name)

    def _dir_set_dotdot(self, ino: int, new_parent: int) -> None:
        inode = self._iget(ino)
        for fb, bno in self._dir_blocks(inode):
            raw = self._meta_bread(bno, modifying=True)
            entries = unpack_dir_block(raw)
            changed = False
            for i, e in enumerate(entries):
                if e.name == "..":
                    entries[i] = DirEntry(new_parent, FT_DIR, "..")
                    changed = True
            if changed:
                payload = pack_dir_block(entries, self.block_size)
                self.journal.add_meta(bno, payload)
                self._on_block_contents_change(bno, payload, "meta")
                return

    # ==================================================================
    # Path lookup
    # ==================================================================

    def _lookup(self, path: str, follow: bool = True, _depth: int = 0) -> int:
        if _depth > MAX_SYMLINK_DEPTH:
            raise FSError(Errno.ELOOP, path)
        resolved = self.resolve(path)
        parts = split_path(resolved)
        ino = ROOT_INO
        for i, name in enumerate(parts):
            inode = self._iget(ino)
            if not _stat.S_ISDIR(inode.mode):
                raise FSError(Errno.ENOTDIR, "/" + "/".join(parts[:i]))
            entry = self._dir_find(ino, inode, name)
            if entry is None:
                raise FSError(Errno.ENOENT, resolved)
            child = self._iget(entry.ino)
            is_last = i == len(parts) - 1
            if _stat.S_ISLNK(child.mode) and (follow or not is_last):
                bno, _ = self._bmap(child, 0, allocate=False)
                if bno == 0:
                    raise FSError(Errno.ENOENT, "dangling symlink")
                data = self._data_bread(entry.ino, child, 0, bno, readahead=False)
                target = data[:child.size].decode(errors="replace")
                if not target.startswith("/"):
                    target = "/" + "/".join(parts[:i]) + "/" + target
                remainder = "/".join(parts[i + 1:])
                full = target + ("/" + remainder if remainder else "")
                return self._lookup(full, follow=follow, _depth=_depth + 1)
            ino = entry.ino
        return ino

    def _stat_of(self, ino: int) -> StatResult:
        inode = self._iget(ino)
        return StatResult(
            ino=ino, mode=inode.mode, nlink=inode.links, uid=inode.uid,
            gid=inode.gid, size=inode.size, atime=inode.atime,
            mtime=inode.mtime, ctime=inode.ctime,
        )

    # ==================================================================
    # Inodes
    # ==================================================================

    def _iget(self, ino: int) -> Inode:
        if not 1 <= ino <= self.sb.inodes_count:
            raise FSError(Errno.EUCLEAN, f"inode number {ino} out of range")
        block, off = self.config.inode_location(ino)
        raw = self._meta_bread(block)
        return inode_slot(raw, off)

    def _iput(self, ino: int, inode: Inode) -> None:
        block, off = self.config.inode_location(ino)
        raw = self._meta_bread(block, modifying=True)
        payload = patch_inode_block(raw, off, inode)
        self.journal.add_meta(block, payload)
        self._on_block_contents_change(block, payload, "meta")

    # ==================================================================
    # Allocation
    # ==================================================================

    def _alloc_inode(self, hint_group: int, mode: int) -> int:
        cfg = self.config
        for g in self._group_order(hint_group):
            bmp_block = cfg.inode_bitmap_block(g)
            raw = self._meta_bread(bmp_block, modifying=True)
            from repro.common.bitmap import Bitmap
            bmp = Bitmap(cfg.inodes_per_group, raw)
            bit = bmp.find_free()
            if bit is None:
                continue
            bmp.set(bit)
            payload = bmp.to_bytes(pad_to=self.block_size)
            self.journal.add_meta(bmp_block, payload)
            self._on_block_contents_change(bmp_block, payload, "meta")
            self.gdt[g].free_inodes -= 1
            self.sb.free_inodes -= 1
            self._flush_sb_gdt()
            ino = g * cfg.inodes_per_group + bit + 1
            inode = Inode(mode=mode, links=1, ctime=1.0, mtime=1.0, atime=1.0)
            self._iput(ino, inode)
            return ino
        raise FSError(Errno.ENOSPC, "out of inodes")

    def _free_inode(self, ino: int) -> None:
        cfg = self.config
        g = cfg.group_of_inode(ino)
        bit = (ino - 1) % cfg.inodes_per_group
        bmp_block = cfg.inode_bitmap_block(g)
        raw = self._meta_bread(bmp_block, modifying=True)
        from repro.common.bitmap import Bitmap
        bmp = Bitmap(cfg.inodes_per_group, raw)
        if bmp.test(bit):
            bmp.clear(bit)
            payload = bmp.to_bytes(pad_to=self.block_size)
            self.journal.add_meta(bmp_block, payload)
            self._on_block_contents_change(bmp_block, payload, "meta")
            self.gdt[g].free_inodes += 1
            self.sb.free_inodes += 1
        self._iput(ino, Inode())
        self._flush_sb_gdt()

    def _alloc_block(self, hint_group: int, kind: str) -> int:
        cfg = self.config
        for g in self._group_order(hint_group):
            bmp_block = cfg.block_bitmap_block(g)
            raw = self._meta_bread(bmp_block, modifying=True)
            from repro.common.bitmap import Bitmap
            bmp = Bitmap(cfg.data_blocks_per_group, raw)
            bit = bmp.find_free()
            if bit is None:
                continue
            bmp.set(bit)
            payload = bmp.to_bytes(pad_to=self.block_size)
            self.journal.add_meta(bmp_block, payload)
            self._on_block_contents_change(bmp_block, payload, "meta")
            self.gdt[g].free_blocks -= 1
            self.sb.free_blocks -= 1
            self._flush_sb_gdt()
            bno = cfg.data_start(g) + bit
            self._types[bno] = kind
            return bno
        raise FSError(Errno.ENOSPC, "out of disk space")

    def _free_block(self, bno: int, kind: str) -> None:
        cfg = self.config
        g = cfg.group_of_block(bno)
        if g is None:
            return  # corrupt pointer outside any group: freed blindly, no check
        bit = bno - cfg.data_start(g)
        if not 0 <= bit < cfg.data_blocks_per_group:
            return
        bmp_block = cfg.block_bitmap_block(g)
        raw = self._meta_bread(bmp_block, modifying=True)
        from repro.common.bitmap import Bitmap
        bmp = Bitmap(cfg.data_blocks_per_group, raw)
        if bmp.test(bit):
            bmp.clear(bit)
            payload = bmp.to_bytes(pad_to=self.block_size)
            self.journal.add_meta(bmp_block, payload)
            self._on_block_contents_change(bmp_block, payload, "meta")
            self.gdt[g].free_blocks += 1
            self.sb.free_blocks += 1
            self._flush_sb_gdt()
        if kind in ("dir", "indirect"):
            self.journal.revoke(bno)
        self._types.pop(bno, None)

    def _group_order(self, hint: int):
        n = self.config.num_groups
        hint %= n
        return list(range(hint, n)) + list(range(0, hint))

    def _flush_sb_gdt(self) -> None:
        sb_payload = self.sb.pack(self.block_size)
        self.journal.add_meta(0, sb_payload)
        self._on_block_contents_change(0, sb_payload, "meta")
        gdt_payload = pack_gdt(self.gdt, self.block_size)
        self.journal.add_meta(self.config.gdt_block, gdt_payload)
        self._on_block_contents_change(self.config.gdt_block, gdt_payload, "meta")

    # ==================================================================
    # Block mapping (direct / indirect / double / triple)
    # ==================================================================

    def _bmap(self, inode: Inode, idx: int, allocate: bool,
              block_kind: str = "data") -> Tuple[int, bool]:
        """Map file block *idx* to a device block.  Returns (block,
        inode_dirty); block 0 means a hole."""
        p = self.sb.ptrs_per_block
        if idx < NUM_DIRECT:
            bno = inode.direct[idx]
            if bno == 0 and allocate:
                bno = self._alloc_block(0, block_kind)
                inode.direct[idx] = bno
                inode.nblocks += 1
                return bno, True
            return bno, False
        idx -= NUM_DIRECT
        for level, span in ((1, p), (2, p * p), (3, p * p * p)):
            if idx < span:
                attr = ("indirect", "dindirect", "tindirect")[level - 1]
                root = getattr(inode, attr)
                dirty = False
                if root == 0:
                    if not allocate:
                        return 0, False
                    root = self._alloc_indirect_block()
                    setattr(inode, attr, root)
                    dirty = True
                bno, leaf_alloc = self._walk_indirect(root, level, idx, allocate, block_kind)
                if leaf_alloc:
                    inode.nblocks += 1
                return bno, dirty or leaf_alloc
            idx -= span
        raise FSError(Errno.EFBIG, "file block index beyond triple indirect")

    def _alloc_indirect_block(self) -> int:
        bno = self._alloc_block(0, "indirect")
        payload = pack_pointer_block([0] * self.sb.ptrs_per_block,
                                     self.block_size, self.sb.ptrs_per_block)
        self.journal.add_meta(bno, payload)
        self._on_block_contents_change(bno, payload, "meta")
        return bno

    def _walk_indirect(self, root: int, levels: int, idx: int, allocate: bool,
                       block_kind: str) -> Tuple[int, bool]:
        p = self.sb.ptrs_per_block
        block = root
        # Indirect blocks carry no type information; corrupted pointers
        # are followed blindly (§5.1).
        for level in range(levels, 0, -1):
            span = p ** (level - 1)
            slot, idx = divmod(idx, span)
            raw = self._meta_bread(block, modifying=allocate)
            ptrs = unpack_pointer_block(raw, p)
            nxt = ptrs[slot]
            if nxt == 0:
                if not allocate:
                    return 0, False
                if level == 1:
                    nxt = self._alloc_block(0, block_kind)
                else:
                    nxt = self._alloc_indirect_block()
                ptrs[slot] = nxt
                payload = pack_pointer_block(ptrs, self.block_size, p)
                self.journal.add_meta(block, payload)
                self._on_block_contents_change(block, payload, "meta")
                if level == 1:
                    return nxt, True
            block = nxt
        return block, False

    def _shrink(self, ino: int, inode: Inode, new_size: int, kind: str = "data") -> None:
        """Free all blocks wholly beyond *new_size*."""
        bs = self.block_size
        keep = (new_size + bs - 1) // bs
        p = self.sb.ptrs_per_block
        for i in range(keep, NUM_DIRECT):
            if inode.direct[i]:
                self._free_block(inode.direct[i], kind)
                inode.direct[i] = 0
                inode.nblocks = max(inode.nblocks - 1, 0)
        for level, attr in ((1, "indirect"), (2, "dindirect"), (3, "tindirect")):
            root = getattr(inode, attr)
            base = NUM_DIRECT + sum(p ** j for j in range(1, level))
            if root == 0:
                continue
            if keep <= base:
                freed = self._free_indirect_tree(root, level, kind)
                inode.nblocks = max(inode.nblocks - freed, 0)
                setattr(inode, attr, 0)
            else:
                freed = self._free_indirect_partial(root, level, keep - base, kind)
                inode.nblocks = max(inode.nblocks - freed, 0)
        self._iput(ino, inode)

    def _free_indirect_tree(self, root: int, levels: int, kind: str) -> int:
        p = self.sb.ptrs_per_block
        freed = 0
        if levels >= 1:
            raw = self._meta_bread(root)
            for ptr in unpack_pointer_block(raw, p):
                if ptr == 0:
                    continue
                if levels == 1:
                    self._free_block(ptr, kind)
                    freed += 1
                else:
                    freed += self._free_indirect_tree(ptr, levels - 1, kind)
        self._free_block(root, "indirect")
        return freed

    def _free_indirect_partial(self, root: int, levels: int, keep: int, kind: str) -> int:
        """Free leaf blocks at index >= keep under this tree."""
        p = self.sb.ptrs_per_block
        raw = self._meta_bread(root, modifying=True)
        ptrs = unpack_pointer_block(raw, p)
        span = p ** (levels - 1)
        freed = 0
        dirty = False
        for slot in range(p):
            lo = slot * span
            if ptrs[slot] == 0:
                continue
            if lo >= keep:
                if levels == 1:
                    self._free_block(ptrs[slot], kind)
                    freed += 1
                else:
                    freed += self._free_indirect_tree(ptrs[slot], levels - 1, kind)
                ptrs[slot] = 0
                dirty = True
            elif levels > 1 and lo + span > keep:
                freed += self._free_indirect_partial(ptrs[slot], levels - 1, keep - lo, kind)
        if dirty:
            payload = pack_pointer_block(ptrs, self.block_size, p)
            self.journal.add_meta(root, payload)
            self._on_block_contents_change(root, payload, "meta")
        return freed

    def _release_parity(self, ino: int, inode: Inode) -> None:
        """ixt3 Dp hook."""

    # ==================================================================
    # Read policy
    # ==================================================================

    def _meta_bread(self, block: int, modifying: bool = False) -> bytes:
        cached = self.journal.cached(block) if self.journal else None
        if cached is not None:
            return cached
        try:
            return self._read_with_verify(block)
        except (DiskError, CorruptionDetected) as exc:
            self.syslog.detection(self.name, "read-error",
                                  f"metadata read failed: {exc}",
                                  mechanism="error-code", block=block)
            recovered = self._recover_meta_read(block, exc)
            if recovered is not None:
                return recovered
            if modifying:
                self._abort_journal()
            raise FSError(Errno.EIO, f"metadata block {block} unreadable") from exc

    def _data_bread(self, ino: int, inode: Inode, file_block: int, block: int,
                    readahead: bool, modifying: bool = False) -> bytes:
        cached = self.journal.cached(block) if self.journal else None
        if cached is not None:
            return cached
        try:
            return self._read_with_verify(block)
        except (DiskError, CorruptionDetected) as exc:
            if readahead and isinstance(exc, DiskError):
                # ext3's sparing retry (§5.1): on a failed readahead
                # request, retry only the originally requested block.
                try:
                    return self._read_with_verify(block)
                except (DiskError, CorruptionDetected):
                    pass
            self.syslog.detection(self.name, "read-error",
                                  f"data read failed: {exc}",
                                  mechanism="error-code", block=block)
            recovered = self._recover_data_read(ino, inode, file_block, block, exc)
            if recovered is not None:
                return recovered
            if modifying:
                self._abort_journal()
            raise FSError(Errno.EIO, f"data block {block} unreadable") from exc

    def _abort_journal(self) -> None:
        if self._read_only:
            return
        if self.journal is not None:
            self.journal.abort()
        self._read_only = True
        self.syslog.action(self.name, "journal-abort", "aborting journal")
        self.syslog.action(self.name, "remount-ro", "remounting file system read-only")

    # ==================================================================
    # Operation framing
    # ==================================================================

    def _update_inode_attr(self, path: str, attr: str, value) -> None:
        ino = self._lookup(path, follow=True)
        inode = self._iget(ino)
        if attr == "mode":
            inode.mode = (inode.mode & ~0o7777) | (value & 0o7777)
        else:
            setattr(inode, attr, value)
        self._iput(ino, inode)

    # ==================================================================
    # Gray-box: block-type oracle (Table 4 types)
    # ==================================================================

    #: Lazily-built static label table for the current config (see
    #: :func:`_static_type_table`).  Class-level defaults double as the
    #: "not built yet" state so ``__init__`` needs no extra wiring.
    _type_table: Optional[List[Optional[str]]] = None
    _type_table_cfg: Optional[Ext3Config] = None

    @staticmethod
    def _static_type_table(cfg: Ext3Config) -> List[Optional[str]]:
        return _static_types_ext3(cfg)

    def block_type(self, block: int) -> Optional[str]:
        cfg = self.config
        if cfg is None:
            return None
        if self._type_table_cfg is not cfg:
            self._type_table = self._static_type_table(cfg)
            self._type_table_cfg = cfg
        table = self._type_table
        label = table[block] if 0 <= block < len(table) else None
        if label is None:
            return self._types.get(block)
        if label is _JTYPE_DYNAMIC:
            return self._jtypes.get(block, "j-data")
        return label

    def _set_jtype(self, block: int, jtype: str) -> None:
        self._jtypes[block] = jtype

    def journal_region(self) -> Optional[Tuple[int, int]]:
        """Half-open block range of the on-disk journal.  Consumers that
        reason about *recovered* state (the crash engine's content-keyed
        memos) use this to elide replay residue: after recovery, journal
        contents influence nothing a namespace walk or offline check
        reads."""
        cfg = self.config
        if cfg is None:
            return None
        return (cfg.journal_start, cfg.journal_start + cfg.journal_blocks)

    # ==================================================================
    # Internals
    # ==================================================================

    def _config_from_sb(self, sb: Superblock) -> Ext3Config:
        return Ext3Config(
            block_size=sb.block_size,
            blocks_per_group=sb.blocks_per_group,
            inodes_per_group=sb.inodes_per_group,
            num_groups=sb.num_groups,
            journal_blocks=sb.journal_blocks,
            ptrs_per_block=sb.ptrs_per_block,
            checksum_blocks=sb.checksum_blocks,
            replica_blocks=sb.replica_blocks,
        )

    def _make_journal(self) -> Journal:
        cfg = self.config
        return Journal(
            start=cfg.journal_start,
            nblocks=cfg.journal_blocks,
            block_size=self.block_size,
            syslog=self.syslog,
            journal_write=self._write_journal_block,
            home_write=self._write_home,
            ordered_write=self._write_ordered,
            read_block=self.buf.bread,
            set_type=self._set_jtype,
            stall=self._stall,
            commit_stall_s=self.commit_stall_s,
            txn_checksum=self._txn_checksum_enabled(),
        )

    def _txn_checksum_enabled(self) -> bool:
        return False

    def _rebuild_types(self) -> None:
        """Reconstruct the dynamic block-type map by walking on-disk
        structures out-of-band (gray-box knowledge used by the
        fingerprinting harness; generates no device traffic).

        The reconstruction is a pure function of the blocks it reads
        (journal headers, inode tables, indirect blocks) plus the
        geometry, so the result is memoized on the device's base
        :class:`~repro.disk.disk.SlabImage`, keyed by the exact set of
        blocks the walk touched *and* the contents of whichever of them
        have been privatized since the last restore (the delta
        fingerprint).  A later rebuild reuses an entry when the current
        dirty-dependency contents match the entry's fingerprint exactly
        — which covers both the clean case (hundreds of restores of one
        golden image per fingerprint matrix, empty fingerprint) and the
        crash-replay case, where distinct crash states recover to
        identical journal/inode-table contents and every mount after
        the first hits the cache.  Soundness: the walk only ever reads
        dependency blocks, dependency-block reads determine which
        further blocks become dependencies, and clean dependencies
        carry immutable base-image contents — so equal fingerprints
        imply the walk would observe identical bytes throughout.
        """
        cfg = self.config
        p = self.sb.ptrs_per_block if self.sb else cfg.effective_ptrs
        raw = self._raw_disk()
        image = getattr(raw, "base_image", None)
        entries = None
        if image is not None and hasattr(raw, "dirty_contents"):
            cache_key = (type(self).__name__, cfg, p)
            entries = image.meta.get(cache_key)
            if entries is None:
                entries = image.meta[cache_key] = []
            for deps, fp, types, jtypes in reversed(entries):
                if raw.fingerprint_matches(deps, fp):
                    self._types = dict(types)
                    self._jtypes = dict(jtypes)
                    return
        self._types = {}
        self._jtypes = {cfg.journal_start: "j-super"}
        deps: List[int] = []
        peek = self._peek_view
        jstart = cfg.journal_start
        # Journal region roles from stored headers.
        pos = 1
        while pos < cfg.journal_blocks:
            deps.append(jstart + pos)
            raw_blk = peek(jstart + pos)
            d = parse_desc(raw_blk)
            if d is not None:
                self._jtypes[jstart + pos] = "j-desc"
                pos += 1
                for _ in d[1]:
                    if pos >= cfg.journal_blocks:
                        break
                    self._jtypes[jstart + pos] = "j-data"
                    pos += 1
                continue
            if parse_commit(raw_blk) is not None:
                self._jtypes[jstart + pos] = "j-commit"
            elif parse_revoke(raw_blk) is not None:
                self._jtypes[jstart + pos] = "j-revoke"
            pos += 1
        # File/dir/indirect blocks from the inode tables, scanned one
        # table block at a time over zero-copy views.  Free slots are
        # skipped on a two-field probe; allocated ones are consumed as
        # raw field tuples (Inode.unpack order) without building Inode
        # objects — this walk visits every slot on every mount.
        types = self._types
        isdir = _stat.S_ISDIR
        for g in range(cfg.num_groups):
            table_start = cfg.inode_table_start(g)
            for block_off in range(cfg.inode_table_blocks):
                deps.append(table_start + block_off)
                payload = peek(table_start + block_off)
                for _slot, f in iter_allocated_inodes(payload, cfg.inodes_per_block):
                    kind = "dir" if isdir(f[0]) else "data"
                    for bno in f[9:9 + NUM_DIRECT]:
                        if bno:
                            types[bno] = kind
                    for level in (1, 2, 3):
                        root = f[8 + NUM_DIRECT + level]
                        if root:
                            self._label_indirect_tree(root, level, kind, p, deps)
                    if f[13 + NUM_DIRECT]:
                        types[f[13 + NUM_DIRECT]] = "parity"
        if entries is not None:
            deps_t = tuple(deps)
            entries.append((deps_t, raw.dirty_contents(deps_t),
                            dict(self._types), dict(self._jtypes)))
            if len(entries) > 16:
                del entries[0]

    def _label_indirect_tree(self, root: int, levels: int, kind: str, p: int,
                             deps: List[int]) -> None:
        if not 0 < root < self.device.num_blocks:
            return
        self._types[root] = "indirect"
        deps.append(root)
        for ptr in unpack_pointer_block(self._peek_view(root), p):
            if not 0 < ptr < self.device.num_blocks:
                continue
            if levels == 1:
                self._types[ptr] = kind
            else:
                self._label_indirect_tree(ptr, levels - 1, kind, p, deps)
