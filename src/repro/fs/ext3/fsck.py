"""fsck for ext3/ixt3 volumes — the classic ``R_repair`` tool.

§5.6 observes that "automatic repair is rare: after using an R_stop
technique, most of the file systems require manual intervention ...
(i.e., running fsck)", and §3.1 argues that even journaling file
systems benefit from periodic full-scan integrity checks, because a
buggy journaling file system can unknowingly corrupt its own on-disk
structures (exactly what several of the reproduced bugs do).

This checker performs the classic passes:

1. **Inodes and block reachability** — walk every allocated inode's
   block pointers (direct and indirect chains), clamp out-of-volume
   pointers, detect doubly-claimed blocks, and rebuild the block
   bitmaps from reachability.
2. **Directory structure** — parse every directory, drop entries whose
   target inode is out of range or unallocated, and ensure `.`/`..`.
3. **Connectivity** — reattach allocated-but-unreachable inodes under
   ``/lost+found``.
4. **Link counts** — recompute from directory entries and repair.
5. **Counters** — recompute superblock/group-descriptor free counts.

It operates on the raw device (unmounted volume) and applies repairs
in place when ``repair=True``.
"""

from __future__ import annotations

import stat as _stat
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.common.bitmap import Bitmap
from repro.common.structs import U16x2
from repro.disk.disk import BlockDevice
from repro.fs.ext3.config import NUM_DIRECT, ROOT_INO, Ext3Config
from repro.fs.ext3.structures import (
    DirEntry,
    FT_DIR,
    FT_REG,
    Inode,
    Superblock,
    inode_slot,
    pack_dir_block,
    pack_gdt,
    patch_inode_block,
    unpack_dir_block,
    unpack_gdt,
    unpack_pointer_block,
    pack_pointer_block,
)


@dataclass
class FsckReport:
    """Everything the checker found (and, with repair=True, fixed)."""

    clean: bool = True
    repaired: bool = False
    bad_pointers: List[Tuple[int, int]] = field(default_factory=list)  # (ino, block)
    doubly_claimed: List[int] = field(default_factory=list)
    bad_dir_entries: List[Tuple[int, str]] = field(default_factory=list)
    orphan_inodes: List[int] = field(default_factory=list)
    wrong_link_counts: List[Tuple[int, int, int]] = field(default_factory=list)
    bitmap_fixes: int = 0
    counter_fixes: int = 0
    messages: List[str] = field(default_factory=list)

    def problem(self, message: str) -> None:
        self.clean = False
        self.messages.append(message)

    def render(self) -> str:
        lines = ["fsck: clean" if self.clean else "fsck: problems found"]
        lines += [f"  {m}" for m in self.messages]
        if self.repaired:
            lines.append("  (all repairable problems fixed)")
        return "\n".join(lines)


class Ext3Fsck:
    """Offline checker/repairer over an unmounted ext3/ixt3 volume."""

    def __init__(self, device: BlockDevice, repair: bool = False):
        self.device = device
        self.repair = repair
        self.report = FsckReport()
        self.sb: Optional[Superblock] = None
        self.config: Optional[Ext3Config] = None
        self._inodes: Dict[int, Inode] = {}
        self._dirty_inodes: Set[int] = set()
        self._claimed: Dict[int, int] = {}  # block -> claiming inode

    # -- entry point ----------------------------------------------------------

    def run(self) -> FsckReport:
        raw = self.device.read_block(0)
        sb = Superblock.unpack(raw)
        if not sb.is_valid():
            self.report.problem("superblock invalid; cannot check volume")
            return self.report
        self.sb = sb
        self.config = Ext3Config(
            block_size=sb.block_size,
            blocks_per_group=sb.blocks_per_group,
            inodes_per_group=sb.inodes_per_group,
            num_groups=sb.num_groups,
            journal_blocks=sb.journal_blocks,
            ptrs_per_block=sb.ptrs_per_block,
            checksum_blocks=sb.checksum_blocks,
            replica_blocks=sb.replica_blocks,
        )
        self._load_inodes()
        self._pass1_pointers()
        self._pass2_directories()
        self._pass3_connectivity()
        self._pass4_link_counts()
        self._pass5_counters()
        if self.repair:
            self._write_back()
            self.report.repaired = not self.report.clean
        return self.report

    # -- passes -------------------------------------------------------------------

    def _load_inodes(self) -> None:
        # One read per table block (not per inode slot), and a two-field
        # probe to skip free slots without building an Inode for them.
        cfg = self.config
        read = self.device.read_block
        probe = U16x2.unpack_from
        raw = b""
        last_block = -1
        for ino in range(1, cfg.total_inodes + 1):
            block, off = cfg.inode_location(ino)
            if block != last_block:
                raw = read(block)
                last_block = block
            mode, links = probe(raw, off)
            if links == 0 and mode == 0:
                continue  # Inode.is_allocated is False
            self._inodes[ino] = inode_slot(raw, off)

    def _valid_data_block(self, bno: int) -> bool:
        g = self.config.group_of_block(bno)
        if g is None:
            return False
        return bno >= self.config.data_start(g)

    def _claim(self, ino: int, bno: int) -> bool:
        if bno in self._claimed and self._claimed[bno] != ino:
            self.report.doubly_claimed.append(bno)
            self.report.problem(
                f"block {bno} claimed by inodes {self._claimed[bno]} and {ino}")
            return False
        self._claimed[bno] = ino
        return True

    def _pass1_pointers(self) -> None:
        p = self.sb.ptrs_per_block
        for ino, inode in sorted(self._inodes.items()):
            for i, bno in enumerate(inode.direct):
                if bno and not self._valid_data_block(bno):
                    self.report.bad_pointers.append((ino, bno))
                    self.report.problem(f"inode {ino}: direct pointer {bno} out of volume")
                    inode.direct[i] = 0
                    self._dirty_inodes.add(ino)
                elif bno:
                    self._claim(ino, bno)
            for attr, levels in (("indirect", 1), ("dindirect", 2), ("tindirect", 3)):
                root = getattr(inode, attr)
                if root and not self._valid_data_block(root):
                    self.report.bad_pointers.append((ino, root))
                    self.report.problem(f"inode {ino}: {attr} pointer {root} out of volume")
                    setattr(inode, attr, 0)
                    self._dirty_inodes.add(ino)
                elif root:
                    self._claim(ino, root)
                    self._walk_indirect(ino, root, levels, p)
            if inode.parity_block:
                if not self._valid_data_block(inode.parity_block):
                    self.report.bad_pointers.append((ino, inode.parity_block))
                    self.report.problem(f"inode {ino}: parity pointer out of volume")
                    inode.parity_block = 0
                    self._dirty_inodes.add(ino)
                else:
                    self._claim(ino, inode.parity_block)

    def _walk_indirect(self, ino: int, root: int, levels: int, p: int) -> None:
        raw = self.device.read_block(root)
        ptrs = unpack_pointer_block(raw, p)
        dirty = False
        for i, ptr in enumerate(ptrs):
            if ptr == 0:
                continue
            if not self._valid_data_block(ptr):
                self.report.bad_pointers.append((ino, ptr))
                self.report.problem(
                    f"inode {ino}: indirect chain pointer {ptr} out of volume")
                ptrs[i] = 0
                dirty = True
                continue
            self._claim(ino, ptr)
            if levels > 1:
                self._walk_indirect(ino, ptr, levels - 1, p)
        if dirty and self.repair:
            self.device.write_block(root, pack_pointer_block(
                ptrs, self.config.block_size, p))

    def _dir_blocks(self, inode: Inode) -> List[int]:
        bs = self.config.block_size
        out = []
        for i in range((min(inode.size, NUM_DIRECT * bs) + bs - 1) // bs):
            if i < NUM_DIRECT and inode.direct[i]:
                out.append(inode.direct[i])
        return out

    def _pass2_directories(self) -> None:
        self._children: Dict[int, List[Tuple[str, int]]] = {}
        for ino, inode in sorted(self._inodes.items()):
            if not _stat.S_ISDIR(inode.mode):
                continue
            names_seen: Set[str] = set()
            entries_out: List[DirEntry] = []
            changed = False
            for bno in self._dir_blocks(inode):
                raw = self.device.read_block(bno)
                for entry in unpack_dir_block(raw):
                    bad = (
                        not 1 <= entry.ino <= self.sb.inodes_count
                        or entry.ino not in self._inodes
                        or entry.name in names_seen
                    )
                    if bad:
                        self.report.bad_dir_entries.append((ino, entry.name))
                        self.report.problem(
                            f"directory {ino}: dropping bad entry {entry.name!r} -> {entry.ino}")
                        changed = True
                        continue
                    names_seen.add(entry.name)
                    entries_out.append(entry)
                    if entry.name not in (".", ".."):
                        self._children.setdefault(ino, []).append(
                            (entry.name, entry.ino))
            if "." not in names_seen:
                self.report.problem(f"directory {ino}: missing '.'")
                entries_out.insert(0, DirEntry(ino, FT_DIR, "."))
                changed = True
            if ".." not in names_seen:
                self.report.problem(f"directory {ino}: missing '..'")
                entries_out.insert(1, DirEntry(ROOT_INO, FT_DIR, ".."))
                changed = True
            if changed and self.repair:
                blocks = self._dir_blocks(inode)
                if blocks:
                    # Compact surviving entries into the directory blocks.
                    bs = self.config.block_size
                    per_block: List[List[DirEntry]] = [[]]
                    used = 0
                    for entry in entries_out:
                        size = len(entry.pack())
                        if used + size > bs:
                            per_block.append([])
                            used = 0
                        per_block[-1].append(entry)
                        used += size
                    for bno, chunk in zip(blocks, per_block + [[]] * len(blocks)):
                        self.device.write_block(bno, pack_dir_block(chunk, bs))

    def _pass3_connectivity(self) -> None:
        reachable: Set[int] = set()

        def walk(ino: int) -> None:
            if ino in reachable:
                return
            reachable.add(ino)
            for _, child in self._children.get(ino, []):
                walk(child)

        walk(ROOT_INO)
        orphans = sorted(set(self._inodes) - reachable - {1})
        for ino in orphans:
            self.report.orphan_inodes.append(ino)
            self.report.problem(f"inode {ino} allocated but unreachable")
        if orphans and self.repair:
            self._reattach_orphans(orphans)

    def _reattach_orphans(self, orphans: List[int]) -> None:
        """Give orphans names under /lost+found (created if needed)."""
        root = self._inodes[ROOT_INO]
        root_blocks = self._dir_blocks(root)
        if not root_blocks:
            return
        bs = self.config.block_size
        raw = self.device.read_block(root_blocks[0])
        entries = unpack_dir_block(raw)
        lf_ino = next((e.ino for e in entries if e.name == "lost+found"), None)
        if lf_ino is None:
            # Reuse the first orphan directory as lost+found, or attach
            # orphans directly to the root when none is a directory.
            lf_ino = ROOT_INO
        target_entries = entries if lf_ino == ROOT_INO else None
        for ino in orphans:
            name = f"orphan-{ino}"
            ftype = FT_DIR if _stat.S_ISDIR(self._inodes[ino].mode) else FT_REG
            if target_entries is not None:
                target_entries.append(DirEntry(ino, ftype, name))
                self._children.setdefault(ROOT_INO, []).append((name, ino))
        if target_entries is not None:
            self.device.write_block(root_blocks[0],
                                    pack_dir_block(target_entries, bs))

    def _pass4_link_counts(self) -> None:
        counts: Dict[int, int] = {ino: 0 for ino in self._inodes}
        counts[ROOT_INO] = 2  # '.' plus its own '..'
        for ino, kids in self._children.items():
            for _, child in kids:
                if child not in counts:
                    continue
                if _stat.S_ISDIR(self._inodes[child].mode):
                    counts[child] = counts.get(child, 0) + 2  # entry + its '.'
                    counts[ino] = counts.get(ino, 0) + 1      # child's '..'
                else:
                    counts[child] = counts.get(child, 0) + 1
        for ino, inode in sorted(self._inodes.items()):
            expected = max(counts.get(ino, 0), 1)
            if inode.links != expected:
                self.report.wrong_link_counts.append((ino, inode.links, expected))
                self.report.problem(
                    f"inode {ino}: link count {inode.links}, expected {expected}")
                inode.links = expected
                self._dirty_inodes.add(ino)

    def _pass5_counters(self) -> None:
        cfg = self.config
        free_blocks_total = 0
        gdt_raw = self.device.read_block(cfg.gdt_block)
        gdt = unpack_gdt(gdt_raw, cfg.num_groups)
        gdt_dirty = False
        for g in range(cfg.num_groups):
            bmp = Bitmap(cfg.data_blocks_per_group)
            used_in_group = 0
            # Claimed blocks are sparse; iterate them, not every bit.
            start = cfg.data_start(g)
            end = start + cfg.data_blocks_per_group
            for bno in self._claimed:
                if start <= bno < end:
                    bmp.set(bno - start)
                    used_in_group += 1
            stored = Bitmap(cfg.data_blocks_per_group,
                            self.device.read_block(cfg.block_bitmap_block(g)))
            if stored != bmp:
                self.report.bitmap_fixes += 1
                self.report.problem(f"group {g}: block bitmap does not match reachability")
                if self.repair:
                    self.device.write_block(
                        cfg.block_bitmap_block(g),
                        bmp.to_bytes(pad_to=cfg.block_size))
            free = cfg.data_blocks_per_group - used_in_group
            free_blocks_total += free
            if gdt[g].free_blocks != free:
                self.report.counter_fixes += 1
                self.report.problem(
                    f"group {g}: free-block count {gdt[g].free_blocks}, expected {free}")
                gdt[g].free_blocks = free
                gdt_dirty = True
        if self.sb.free_blocks != free_blocks_total:
            self.report.counter_fixes += 1
            self.report.problem(
                f"superblock: free-block count {self.sb.free_blocks}, "
                f"expected {free_blocks_total}")
            self.sb.free_blocks = free_blocks_total
            if self.repair:
                self.device.write_block(0, self.sb.pack(cfg.block_size))
        # Inode bitmaps and free-inode counters.
        free_inodes_total = 0
        for g in range(cfg.num_groups):
            bmp = Bitmap(cfg.inodes_per_group)
            used = 0
            # Allocated inodes are sparse; iterate them, not every slot.
            lo = g * cfg.inodes_per_group + 1
            hi = lo + cfg.inodes_per_group
            for ino in self._inodes:
                if lo <= ino < hi:
                    bmp.set(ino - lo)
                    used += 1
            if lo == 1 and 1 not in self._inodes:
                bmp.set(0)  # reserved bad-blocks inode is always marked
                used += 1
            stored = Bitmap(cfg.inodes_per_group,
                            self.device.read_block(cfg.inode_bitmap_block(g)))
            if stored != bmp:
                self.report.bitmap_fixes += 1
                self.report.problem(f"group {g}: inode bitmap does not match inode table")
                if self.repair:
                    self.device.write_block(
                        cfg.inode_bitmap_block(g),
                        bmp.to_bytes(pad_to=cfg.block_size))
            free = cfg.inodes_per_group - used
            free_inodes_total += free
            if gdt[g].free_inodes != free:
                self.report.counter_fixes += 1
                self.report.problem(
                    f"group {g}: free-inode count {gdt[g].free_inodes}, expected {free}")
                gdt[g].free_inodes = free
                gdt_dirty = True
        if self.sb.free_inodes != free_inodes_total:
            self.report.counter_fixes += 1
            self.report.problem(
                f"superblock: free-inode count {self.sb.free_inodes}, "
                f"expected {free_inodes_total}")
            self.sb.free_inodes = free_inodes_total
            if self.repair:
                self.device.write_block(0, self.sb.pack(cfg.block_size))
        if gdt_dirty and self.repair:
            self.device.write_block(cfg.gdt_block, pack_gdt(gdt, cfg.block_size))

    # -- write-back -------------------------------------------------------------------

    def _write_back(self) -> None:
        for ino in sorted(self._dirty_inodes):
            block, off = self.config.inode_location(ino)
            raw = self.device.read_block(block)
            self.device.write_block(
                block, patch_inode_block(raw, off, self._inodes[ino]))


def fsck_ext3(device: BlockDevice, repair: bool = False) -> FsckReport:
    """Check (and optionally repair) an unmounted ext3/ixt3 volume."""
    return Ext3Fsck(device, repair=repair).run()
